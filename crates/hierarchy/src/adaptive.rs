//! Adaptive precision setting for MBRs (§VI-A).
//!
//! The paper proposes adapting MBR boundaries along each dimension in the
//! spirit of Olston et al.'s adaptive caching of intervals: a *wide* box is
//! refreshed rarely (cheap for updates) but produces false-positive
//! candidates (expensive for queries); a *tight* box is the reverse. This
//! module implements the controller: an additive-increase /
//! multiplicative-decrease loop on the per-dimension padding driven by the
//! observed update-vs-query cost balance.

use serde::{Deserialize, Serialize};

/// Configuration of the adaptive controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// Cost charged per upward refresh (update message).
    pub update_cost: f64,
    /// Cost charged per false-positive candidate a query had to verify.
    pub false_positive_cost: f64,
    /// Additive step when updates dominate (padding grows).
    pub grow_step: f64,
    /// Multiplicative factor when false positives dominate (padding shrinks).
    pub shrink_factor: f64,
    /// Bounds on the padding.
    pub min_padding: f64,
    /// Upper bound on the padding.
    pub max_padding: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            update_cost: 1.0,
            false_positive_cost: 1.0,
            grow_step: 0.005,
            shrink_factor: 0.7,
            min_padding: 0.0,
            max_padding: 0.25,
        }
    }
}

/// The adaptive padding controller for one stream's MBRs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdaptivePrecision {
    cfg: AdaptiveConfig,
    padding: f64,
    window_updates: u64,
    window_false_positives: u64,
    /// Total refreshes over the controller's lifetime.
    pub total_updates: u64,
    /// Total false positives over the controller's lifetime.
    pub total_false_positives: u64,
}

impl AdaptivePrecision {
    /// Creates a controller starting at the given padding.
    ///
    /// # Panics
    /// Panics on an inconsistent configuration.
    pub fn new(cfg: AdaptiveConfig, initial_padding: f64) -> Self {
        assert!(cfg.update_cost > 0.0 && cfg.false_positive_cost > 0.0, "costs must be positive");
        assert!((0.0..1.0).contains(&cfg.shrink_factor), "shrink factor must be in (0, 1)");
        assert!(cfg.grow_step > 0.0, "grow step must be positive");
        assert!(
            cfg.min_padding <= initial_padding && initial_padding <= cfg.max_padding,
            "initial padding out of bounds"
        );
        AdaptivePrecision {
            cfg,
            padding: initial_padding,
            window_updates: 0,
            window_false_positives: 0,
            total_updates: 0,
            total_false_positives: 0,
        }
    }

    /// Default-configured controller with a small initial padding.
    pub fn standard() -> Self {
        AdaptivePrecision::new(AdaptiveConfig::default(), 0.01)
    }

    /// The current per-dimension padding applied to shipped MBRs.
    #[inline]
    pub fn padding(&self) -> f64 {
        self.padding
    }

    /// Records that a refresh (update message) had to be sent because the
    /// new summary escaped the current padded box.
    pub fn record_update(&mut self) {
        self.window_updates += 1;
        self.total_updates += 1;
    }

    /// Records `n` false-positive candidates charged to this stream's box.
    pub fn record_false_positives(&mut self, n: u64) {
        self.window_false_positives += n;
        self.total_false_positives += n;
    }

    /// Closes an observation window and adapts the padding:
    /// * update cost dominates → grow additively (fewer refreshes);
    /// * false-positive cost dominates → shrink multiplicatively
    ///   (tighter boxes).
    ///
    /// Returns the new padding.
    pub fn adapt(&mut self) -> f64 {
        let up = self.window_updates as f64 * self.cfg.update_cost;
        let fp = self.window_false_positives as f64 * self.cfg.false_positive_cost;
        if up > fp {
            self.padding = (self.padding + self.cfg.grow_step).min(self.cfg.max_padding);
        } else if fp > up {
            self.padding = (self.padding * self.cfg.shrink_factor).max(self.cfg.min_padding);
        }
        self.window_updates = 0;
        self.window_false_positives = 0;
        self.padding
    }
}

/// Drives one [`AdaptivePrecision`] controller per stream against a live
/// cluster: each tuning round reads the deltas of the stream's update count
/// and false-positive count, feeds them to the controller, and installs the
/// adapted padding as the stream's MBR routing-width bound — the full
/// §VI-A loop.
#[derive(Debug, Clone)]
pub struct ClusterTuner {
    controllers: Vec<AdaptivePrecision>,
    last_updates: Vec<u64>,
    last_false_positives: Vec<u64>,
    /// Floor below which the width bound never drops (a zero bound would
    /// ship every summary individually).
    min_width: f64,
}

impl ClusterTuner {
    /// Creates controllers for `num_streams` streams.
    pub fn new(num_streams: usize, cfg: AdaptiveConfig, initial_padding: f64) -> Self {
        ClusterTuner {
            controllers: (0..num_streams)
                .map(|_| AdaptivePrecision::new(cfg.clone(), initial_padding))
                .collect(),
            last_updates: vec![0; num_streams],
            last_false_positives: vec![0; num_streams],
            min_width: 0.004,
        }
    }

    /// The current width bound the tuner has chosen for a stream.
    pub fn width_of(&self, stream: usize) -> f64 {
        self.controllers[stream].padding().max(self.min_width)
    }

    /// One tuning round over every stream of the cluster.
    pub fn tune<R: dsi_chord::ContentRouter>(&mut self, cluster: &mut dsi_core::Cluster<R>) {
        for (sid, ctl) in self.controllers.iter_mut().enumerate() {
            let updates = cluster.stream_early_shipments(sid as u32);
            let fps = cluster.stream_false_positives(sid as u32);
            for _ in self.last_updates[sid]..updates {
                ctl.record_update();
            }
            ctl.record_false_positives(fps - self.last_false_positives[sid]);
            self.last_updates[sid] = updates;
            self.last_false_positives[sid] = fps;
            let padding = ctl.adapt().max(self.min_width);
            cluster.set_stream_mbr_width(sid as u32, Some(padding));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_pressure_grows_padding() {
        let mut a = AdaptivePrecision::standard();
        let p0 = a.padding();
        for _ in 0..10 {
            a.record_update();
        }
        let p1 = a.adapt();
        assert!(p1 > p0, "updates must widen the box");
    }

    #[test]
    fn false_positive_pressure_shrinks_padding() {
        let mut a = AdaptivePrecision::new(AdaptiveConfig::default(), 0.1);
        a.record_false_positives(20);
        let p1 = a.adapt();
        assert!(p1 < 0.1, "false positives must tighten the box");
    }

    #[test]
    fn balanced_costs_leave_padding_unchanged() {
        let mut a = AdaptivePrecision::new(AdaptiveConfig::default(), 0.05);
        a.record_update();
        a.record_false_positives(1);
        assert_eq!(a.adapt(), 0.05);
    }

    #[test]
    fn padding_respects_bounds() {
        let cfg = AdaptiveConfig { max_padding: 0.02, ..Default::default() };
        let mut a = AdaptivePrecision::new(cfg, 0.02);
        for _ in 0..100 {
            a.record_update();
            a.adapt();
        }
        assert!(a.padding() <= 0.02);

        let cfg = AdaptiveConfig { min_padding: 0.001, ..Default::default() };
        let mut a = AdaptivePrecision::new(cfg, 0.01);
        for _ in 0..100 {
            a.record_false_positives(50);
            a.adapt();
        }
        assert!(a.padding() >= 0.001);
    }

    #[test]
    fn converges_between_two_regimes() {
        // Alternating pressure settles into a band rather than oscillating
        // to the extremes (AIMD behavior).
        let mut a = AdaptivePrecision::standard();
        let mut paddings = Vec::new();
        for round in 0..200 {
            if round % 2 == 0 {
                for _ in 0..5 {
                    a.record_update();
                }
            } else {
                a.record_false_positives(8);
            }
            paddings.push(a.adapt());
        }
        let late = &paddings[150..];
        let lo = late.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = late.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(hi < 0.25, "must not pin at max");
        assert!(lo > 0.0, "must not collapse to zero");
    }

    #[test]
    fn lifetime_counters_accumulate() {
        let mut a = AdaptivePrecision::standard();
        a.record_update();
        a.record_false_positives(3);
        a.adapt();
        a.record_update();
        assert_eq!(a.total_updates, 2);
        assert_eq!(a.total_false_positives, 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bad_initial_padding_panics() {
        let _ = AdaptivePrecision::new(AdaptiveConfig::default(), 0.5);
    }
}
