//! Variable-selectivity query handling (§VI-B).
//!
//! Wide-radius queries cover a large slice of the key space; the flat
//! range-multicast of §IV-C would touch a linear number of nodes. Instead,
//! summaries propagate *up* the cluster hierarchy with progressively wider
//! approximation MBRs, and a query whose key range exceeds what a node's
//! cluster covers escalates to its leader — paying coarser precision for a
//! logarithmic number of messages.
//!
//! Correctness hinges on *where* summaries enter the hierarchy: they
//! propagate up from the data center that covers their feature key (the
//! node the flat index stores them at), so ring adjacency of bottom
//! clusters coincides with feature-space adjacency and the escalation rule
//! — climb until the leader's subtree arc contains the query's key range —
//! preserves the no-false-dismissal guarantee.

use crate::clusters::Hierarchy;
use dsi_chord::{ChordId, IdSpace};
use dsi_core::{radius_key_range, SimilarityQuery, StreamId};
use dsi_dsp::Mbr;
use std::collections::HashMap;

/// Per-level widening of a propagated summary: each level up, the MBR is
/// inflated by this much per dimension, buying fewer upward refreshes at the
/// price of precision (§VI-B's consistency/precision trade).
pub const LEVEL_INFLATION: f64 = 0.01;

/// A hierarchy-backed index of coarse summaries at cluster leaders.
#[derive(Debug, Clone)]
pub struct HierarchicalIndex {
    hierarchy: Hierarchy,
    space: IdSpace,
    /// Bottom nodes in ring order (for key-range coverage tests).
    sorted: Vec<ChordId>,
    /// Per (leader, level): the approximation MBRs held at that leader for
    /// that level. Keyed by level as well because one node (e.g. the global
    /// minimum) may lead several levels with different precisions.
    stores: HashMap<(ChordId, usize), HashMap<StreamId, Mbr>>,
    /// Upward refresh messages sent.
    pub update_messages: u64,
    /// Upward refreshes suppressed because the widened MBR still covered
    /// the new summary.
    pub updates_suppressed: u64,
}

/// The answer to an escalated query.
#[derive(Debug, Clone, PartialEq)]
pub struct EscalatedAnswer {
    /// Leader that answered.
    pub answered_by: ChordId,
    /// Levels climbed to reach it (0 = bottom leader).
    pub levels_climbed: usize,
    /// Escalation messages spent (one per climbed edge, plus one to reach
    /// the bottom leader).
    pub messages: u64,
    /// Candidate streams (superset semantics, as in the flat index).
    pub candidates: Vec<StreamId>,
}

impl HierarchicalIndex {
    /// Creates an empty index over a hierarchy in the given identifier
    /// space.
    pub fn new(hierarchy: Hierarchy, space: IdSpace) -> Self {
        let sorted = hierarchy.sorted_nodes();
        HierarchicalIndex {
            hierarchy,
            space,
            sorted,
            stores: HashMap::new(),
            update_messages: 0,
            updates_suppressed: 0,
        }
    }

    /// The underlying hierarchy.
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// The node covering `key` (its successor on the ring) — where a
    /// summary with that feature key enters the hierarchy.
    pub fn covering_node(&self, key: ChordId) -> ChordId {
        match self.sorted.binary_search(&key) {
            Ok(i) => self.sorted[i],
            Err(i) if i == self.sorted.len() => self.sorted[0],
            Err(i) => self.sorted[i],
        }
    }

    /// All nodes covering keys in the clockwise range `[lo, hi]`.
    fn covering_set(&self, lo: ChordId, hi: ChordId) -> Vec<ChordId> {
        let first = self.covering_node(lo);
        let last = self.covering_node(hi);
        let fi = self.sorted.binary_search(&first).expect("member");
        let li = self.sorted.binary_search(&last).expect("member");
        let mut out = Vec::new();
        let mut i = fi;
        loop {
            out.push(self.sorted[i]);
            if i == li || out.len() == self.sorted.len() {
                break;
            }
            i = (i + 1) % self.sorted.len();
        }
        out
    }

    /// Propagates a new summary of `stream` up the leader chain of the node
    /// covering the summary's feature key. At each level the stored MBR is
    /// inflated by [`LEVEL_INFLATION`] per level; a refresh is sent only if
    /// the new summary escapes the MBR the leader already holds.
    pub fn propagate_summary(&mut self, node: ChordId, stream: StreamId, summary: &[f64]) {
        let path = self.hierarchy.path_to_root(node);
        for (level, leader) in path.iter().enumerate() {
            let store = self.stores.entry((*leader, level)).or_default();
            match store.get_mut(&stream) {
                Some(mbr) if mbr.contains(summary) => {
                    // Still covered: this and all higher levels stay silent
                    // (their boxes are supersets by construction).
                    self.updates_suppressed += 1;
                    return;
                }
                Some(mbr) => {
                    mbr.extend_point(summary);
                    let mut inflated = mbr.clone();
                    inflated.inflate(LEVEL_INFLATION * (level as f64 + 1.0));
                    *mbr = inflated;
                    self.update_messages += 1;
                }
                None => {
                    let mut mbr = Mbr::from_point(summary);
                    mbr.inflate(LEVEL_INFLATION * (level as f64 + 1.0));
                    store.insert(stream, mbr);
                    self.update_messages += 1;
                }
            }
        }
    }

    /// Routes a similarity query: starting from the data center covering
    /// the query's own feature key, escalate up the leader chain until the
    /// leader's subtree contains every node covering the query's key range
    /// `[h(q1 - r), h(q1 + r)]`, then answer from that leader's store.
    pub fn route_query(&self, query: &SimilarityQuery) -> EscalatedAnswer {
        let (lo, hi) = radius_key_range(self.space, query.feature.first_real(), query.radius);
        let needed = self.covering_set(lo, hi);
        let entry = self.covering_node(self.space.reduce(lo));
        let path = self.hierarchy.path_to_root(entry);
        assert!(!path.is_empty(), "entry node outside the hierarchy");

        let mut chosen = (*path.last().unwrap(), path.len() - 1);
        for (level, leader) in path.iter().enumerate() {
            let descendants = self
                .hierarchy
                .bottom_descendants(*leader, level)
                .expect("leader participates at its level");
            if needed.iter().all(|n| descendants.binary_search(n).is_ok()) {
                chosen = (*leader, level);
                break;
            }
        }
        let (leader, level) = chosen;
        let point = query.feature.to_reals();
        let mut candidates: Vec<StreamId> = self
            .stores
            .get(&(leader, level))
            .map(|store| {
                store
                    .iter()
                    .filter(|(_, mbr)| mbr.min_dist(&point) <= query.radius + 1e-12)
                    .map(|(sid, _)| *sid)
                    .collect()
            })
            .unwrap_or_default();
        candidates.sort_unstable();
        EscalatedAnswer {
            answered_by: leader,
            levels_climbed: level,
            messages: level as u64 + 1,
            candidates,
        }
    }

    /// The MBR a leader currently holds for a stream at a level.
    pub fn stored_mbr(&self, leader: ChordId, level: usize, stream: StreamId) -> Option<&Mbr> {
        self.stores.get(&(leader, level))?.get(&stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsi_core::{summary_key, SimilarityKind};
    use dsi_dsp::{extract_features, Normalization};
    use dsi_simnet::SimTime;

    fn space() -> IdSpace {
        IdSpace::new(16)
    }

    fn nodes(n: u64) -> Vec<ChordId> {
        // Spread evenly over the 16-bit circle.
        let step = (1u64 << 16) / n;
        (0..n).map(|i| i * step + 11).collect()
    }

    /// A window whose unit-norm features depend smoothly on `level`.
    fn window(level: f64) -> Vec<f64> {
        (0..16).map(|i| level + (i as f64 * 0.7 + level).sin()).collect()
    }

    fn feature(level: f64) -> dsi_dsp::FeatureVector {
        extract_features(&window(level), Normalization::UnitNorm, 2)
    }

    fn query(target_level: f64, radius: f64) -> SimilarityQuery {
        SimilarityQuery::from_target(
            1,
            0,
            window(target_level),
            radius,
            SimilarityKind::Subsequence,
            2,
            0,
            SimTime::from_secs(60),
        )
    }

    fn index(n: u64, cluster: usize) -> HierarchicalIndex {
        HierarchicalIndex::new(Hierarchy::build(&nodes(n), cluster), space())
    }

    /// Stores a summary where the flat index would: at the node covering
    /// its feature key.
    fn store(idx: &mut HierarchicalIndex, stream: StreamId, level: f64) {
        let fv = feature(level);
        let node = idx.covering_node(summary_key(space(), &fv));
        idx.propagate_summary(node, stream, &fv.to_reals());
    }

    #[test]
    fn summary_reaches_every_level_initially() {
        let mut idx = index(27, 3);
        let node = idx.covering_node(1000);
        idx.propagate_summary(node, 0, &[0.5, 0.1, 0.0, 0.0]);
        let path = idx.hierarchy().path_to_root(node);
        assert_eq!(idx.update_messages, path.len() as u64);
        for (level, leader) in path.into_iter().enumerate() {
            assert!(
                idx.stored_mbr(leader, level, 0).is_some(),
                "leader {leader} at level {level} missing summary"
            );
        }
    }

    #[test]
    fn repeated_similar_summaries_are_suppressed() {
        let mut idx = index(27, 3);
        let node = idx.covering_node(1000);
        idx.propagate_summary(node, 0, &[0.5, 0.1, 0.0, 0.0]);
        let sent = idx.update_messages;
        // A summary inside the inflated box: no refresh goes up.
        idx.propagate_summary(node, 0, &[0.505, 0.102, 0.0, 0.0]);
        assert_eq!(idx.update_messages, sent);
        assert_eq!(idx.updates_suppressed, 1);
    }

    #[test]
    fn escaping_summary_triggers_refresh() {
        let mut idx = index(27, 3);
        let node = idx.covering_node(1000);
        idx.propagate_summary(node, 0, &[0.5, 0.1, 0.0, 0.0]);
        let sent = idx.update_messages;
        idx.propagate_summary(node, 0, &[0.9, 0.1, 0.0, 0.0]);
        assert!(idx.update_messages > sent);
        // The widened box covers both summaries.
        let leader = idx.hierarchy().path_to_root(node)[0];
        let mbr = idx.stored_mbr(leader, 0, 0).unwrap();
        assert!(mbr.contains(&[0.5, 0.1, 0.0, 0.0]));
        assert!(mbr.contains(&[0.9, 0.1, 0.0, 0.0]));
    }

    #[test]
    fn narrow_query_answered_low_wide_query_high() {
        let mut idx = index(81, 3);
        store(&mut idx, 0, 0.3);
        let narrow = idx.route_query(&query(0.3, 0.01));
        let wide = idx.route_query(&query(0.3, 0.6));
        assert!(narrow.levels_climbed < wide.levels_climbed);
        assert!(wide.messages <= idx.hierarchy().num_levels() as u64);
    }

    #[test]
    fn no_false_dismissals_across_clusters() {
        // Summaries spread over the whole feature interval; queries of
        // every width must find every stream whose exact feature distance
        // is within the radius.
        let mut idx = index(81, 3);
        let levels: Vec<f64> = (0..40).map(|i| -0.8 + 1.6 * i as f64 / 39.0).collect();
        for (sid, &lv) in levels.iter().enumerate() {
            store(&mut idx, sid as StreamId, lv);
        }
        for &(target, radius) in &[(0.1, 0.05), (0.0, 0.3), (-0.5, 0.7), (0.6, 0.2)] {
            let q = query(target, radius);
            let ans = idx.route_query(&q);
            for (sid, &lv) in levels.iter().enumerate() {
                let d = q.feature.distance(&feature(lv));
                if d <= radius {
                    assert!(
                        ans.candidates.contains(&(sid as StreamId)),
                        "false dismissal: stream {sid} (level {lv}) at distance {d} \
                         missing from query (target {target}, radius {radius})"
                    );
                }
            }
        }
    }

    #[test]
    fn message_bound_versus_flat_multicast() {
        // With 81 nodes and cluster size 3 (4 levels), even a radius-0.5
        // query costs at most 4 messages; flat range multicast touches ~40.
        let idx = index(81, 3);
        let ans = idx.route_query(&query(0.0, 0.5));
        assert!(ans.messages <= 4, "escalation must stay logarithmic: {}", ans.messages);
    }

    #[test]
    fn covering_node_wraps() {
        let idx = index(8, 2);
        let ns = nodes(8);
        // A key past the last node wraps to the first.
        assert_eq!(idx.covering_node(65_000), ns[0]);
        assert_eq!(idx.covering_node(ns[3]), ns[3]);
        assert_eq!(idx.covering_node(ns[3] + 1), ns[4]);
    }
}
