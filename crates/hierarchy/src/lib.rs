//! # dsi-hierarchy — §VI future-work extensions, implemented
//!
//! * [`clusters::Hierarchy`] — constant-size clusters of ring-adjacent data
//!   centers with recursive leader election (§VI-B);
//! * [`selectivity::HierarchicalIndex`] — summary propagation up the leader
//!   chain with widening MBRs, and query escalation for interest volumes a
//!   single node's coverage cannot answer;
//! * [`adaptive::AdaptivePrecision`] — the Olston-style adaptive MBR
//!   precision controller (§VI-A).

#![warn(missing_docs)]

pub mod adaptive;
pub mod clusters;
pub mod selectivity;

pub use adaptive::{AdaptiveConfig, AdaptivePrecision, ClusterTuner};
pub use clusters::{ClusterGroup, Hierarchy};
pub use selectivity::{EscalatedAnswer, HierarchicalIndex, LEVEL_INFLATION};
