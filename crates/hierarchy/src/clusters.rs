//! The data-center cluster hierarchy of §VI-B.
//!
//! Data centers are organized into constant-size clusters of ring-adjacent
//! nodes; each cluster elects a leader, leaders are clustered recursively,
//! until a single root leads everyone — the structure borrowed from
//! NICE-style application-layer multicast (the paper cites Banerjee et al.).

use dsi_chord::ChordId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One cluster at some level: a leader and its members (the leader is also
/// a member).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterGroup {
    /// The elected leader (smallest identifier — deterministic and cheap,
    /// any agreed rule works).
    pub leader: ChordId,
    /// All members, in ring order.
    pub members: Vec<ChordId>,
}

/// The full hierarchy: `levels[0]` clusters all data centers; `levels[l+1]`
/// clusters the leaders of `levels[l]`; the last level has a single group.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hierarchy {
    cluster_size: usize,
    levels: Vec<Vec<ClusterGroup>>,
    /// member -> its cluster index, per level.
    membership: Vec<HashMap<ChordId, usize>>,
}

impl Hierarchy {
    /// Builds the hierarchy over `nodes` (any order; sorted internally into
    /// ring order) with bottom clusters of `cluster_size` adjacent nodes.
    ///
    /// # Panics
    /// Panics if `nodes` is empty or `cluster_size < 2`.
    pub fn build(nodes: &[ChordId], cluster_size: usize) -> Self {
        assert!(!nodes.is_empty(), "cannot build a hierarchy over no nodes");
        assert!(cluster_size >= 2, "clusters must hold at least two nodes");
        let mut current: Vec<ChordId> = nodes.to_vec();
        current.sort_unstable();
        current.dedup();

        let mut levels = Vec::new();
        let mut membership = Vec::new();
        loop {
            let groups: Vec<ClusterGroup> = current
                .chunks(cluster_size)
                .map(|chunk| ClusterGroup {
                    leader: *chunk.iter().min().expect("non-empty chunk"),
                    members: chunk.to_vec(),
                })
                .collect();
            let mut index = HashMap::new();
            for (i, g) in groups.iter().enumerate() {
                for &m in &g.members {
                    index.insert(m, i);
                }
            }
            let leaders: Vec<ChordId> = groups.iter().map(|g| g.leader).collect();
            let done = groups.len() == 1;
            levels.push(groups);
            membership.push(index);
            if done {
                break;
            }
            current = leaders;
        }
        Hierarchy { cluster_size, levels, membership }
    }

    /// Number of levels (>= 1).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The configured bottom cluster size.
    pub fn cluster_size(&self) -> usize {
        self.cluster_size
    }

    /// The clusters at a level.
    pub fn level(&self, l: usize) -> &[ClusterGroup] {
        &self.levels[l]
    }

    /// The root of the hierarchy.
    pub fn root(&self) -> ChordId {
        self.levels.last().expect("at least one level")[0].leader
    }

    /// The leader of `node`'s cluster at level `l`, if the node participates
    /// at that level (only leaders of level `l-1` participate at level `l`).
    pub fn leader_at(&self, node: ChordId, l: usize) -> Option<ChordId> {
        let idx = *self.membership.get(l)?.get(&node)?;
        Some(self.levels[l][idx].leader)
    }

    /// The chain of leaders from `node` up to the root: the path a summary
    /// update travels (§VI-B). Starts with the node's bottom-level leader.
    /// Empty if `node` is unknown.
    pub fn path_to_root(&self, node: ChordId) -> Vec<ChordId> {
        let mut path = Vec::with_capacity(self.levels.len());
        let mut cur = node;
        for l in 0..self.levels.len() {
            match self.leader_at(cur, l) {
                Some(leader) => {
                    path.push(leader);
                    cur = leader;
                }
                None => break,
            }
        }
        path
    }

    /// Fraction of all data centers covered by the cluster of `node` at
    /// level `l` (the feature-space share a leader aggregates): the number
    /// of bottom-level descendants of that cluster over the total.
    pub fn coverage_fraction(&self, node: ChordId, l: usize) -> Option<f64> {
        let count = self.bottom_descendants(node, l)?.len();
        let total = self.membership[0].len();
        Some(count as f64 / total as f64)
    }

    /// Total number of bottom-level data centers.
    pub fn num_nodes(&self) -> usize {
        self.membership[0].len()
    }

    /// All bottom-level data centers, in ring order.
    pub fn sorted_nodes(&self) -> Vec<ChordId> {
        let mut out: Vec<ChordId> = self.membership[0].keys().copied().collect();
        out.sort_unstable();
        out
    }

    /// The bottom-level data centers in the subtree of `node`'s cluster at
    /// level `l` (a contiguous ring arc, because every level chunks a sorted
    /// list). `None` if the node does not participate at that level.
    pub fn bottom_descendants(&self, node: ChordId, l: usize) -> Option<Vec<ChordId>> {
        let idx = *self.membership.get(l)?.get(&node)?;
        let mut members: Vec<ChordId> = self.levels[l][idx].members.clone();
        for down in (0..l).rev() {
            let mut expanded = Vec::new();
            for &m in &members {
                let i = self.membership[down][&m];
                expanded.extend(self.levels[down][i].members.iter().copied());
            }
            expanded.sort_unstable();
            expanded.dedup();
            members = expanded;
        }
        Some(members)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: u64) -> Vec<ChordId> {
        (0..n).map(|i| i * 10 + 3).collect()
    }

    #[test]
    fn single_cluster_when_few_nodes() {
        let h = Hierarchy::build(&nodes(3), 4);
        assert_eq!(h.num_levels(), 1);
        assert_eq!(h.root(), 3);
        assert_eq!(h.level(0).len(), 1);
    }

    #[test]
    fn levels_shrink_by_cluster_size() {
        let h = Hierarchy::build(&nodes(27), 3);
        // 27 nodes -> 9 bottom clusters -> 3 -> 1 (the single-group level
        // terminates the recursion).
        assert_eq!(h.num_levels(), 3);
        assert_eq!(h.level(0).len(), 9);
        assert_eq!(h.level(1).len(), 3);
        assert_eq!(h.level(2).len(), 1);
    }

    #[test]
    fn every_node_has_a_bottom_leader() {
        let ns = nodes(20);
        let h = Hierarchy::build(&ns, 4);
        for &n in &ns {
            let leader = h.leader_at(n, 0).expect("bottom membership");
            assert!(ns.contains(&leader));
        }
    }

    #[test]
    fn leaders_are_cluster_minima_and_members() {
        let h = Hierarchy::build(&nodes(16), 4);
        for level in 0..h.num_levels() {
            for g in h.level(level) {
                assert_eq!(g.leader, *g.members.iter().min().unwrap());
                assert!(g.members.contains(&g.leader));
            }
        }
    }

    #[test]
    fn path_to_root_ends_at_root_and_is_monotone_in_level() {
        let ns = nodes(30);
        let h = Hierarchy::build(&ns, 3);
        for &n in &ns {
            let path = h.path_to_root(n);
            assert!(!path.is_empty());
            assert_eq!(*path.last().unwrap(), h.root());
            assert!(path.len() <= h.num_levels());
        }
    }

    #[test]
    fn non_leader_path_is_shorter_than_levels_only_via_leaders() {
        let h = Hierarchy::build(&nodes(9), 3);
        // Node 13 (second member of first cluster) is not a leader: its path
        // starts at its bottom leader and follows the leader chain.
        let path = h.path_to_root(13);
        assert_eq!(path[0], 3);
        assert_eq!(*path.last().unwrap(), h.root());
    }

    #[test]
    fn coverage_grows_with_level() {
        let ns = nodes(27);
        let h = Hierarchy::build(&ns, 3);
        let leader = h.leader_at(ns[0], 0).unwrap();
        let c0 = h.coverage_fraction(leader, 0).unwrap();
        let l1 = h.leader_at(leader, 1).unwrap();
        let c1 = h.coverage_fraction(l1, 1).unwrap();
        let c_root = h.coverage_fraction(h.root(), h.num_levels() - 1).unwrap();
        assert!(c0 < c1, "coverage must grow up the hierarchy: {c0} vs {c1}");
        assert!((c_root - 1.0).abs() < 1e-12, "root covers everything");
    }

    #[test]
    fn unknown_node_yields_empty_path() {
        let h = Hierarchy::build(&nodes(9), 3);
        assert!(h.path_to_root(999).is_empty());
        assert_eq!(h.leader_at(999, 0), None);
    }

    #[test]
    fn duplicate_nodes_are_deduped() {
        let mut ns = nodes(8);
        ns.extend(nodes(8));
        let h = Hierarchy::build(&ns, 4);
        assert_eq!(h.num_nodes(), 8);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn tiny_cluster_size_panics() {
        let _ = Hierarchy::build(&nodes(5), 1);
    }
}
