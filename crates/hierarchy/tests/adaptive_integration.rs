//! The full §VI-A loop: adaptive per-stream MBR precision driven by
//! observed update and false-positive pressure on a live cluster.

use dsi_core::{Cluster, ClusterConfig, SimilarityKind};
use dsi_hierarchy::{AdaptiveConfig, ClusterTuner};
use dsi_simnet::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn cluster(streams: usize) -> Cluster {
    let mut cfg = ClusterConfig::new(12);
    cfg.workload.window_len = 16;
    cfg.workload.num_coeffs = 2;
    cfg.workload.mbr_batch = 8;
    cfg.workload.mbr_max_width = Some(0.02);
    cfg.kind = SimilarityKind::Subsequence;
    let mut c = Cluster::new(cfg);
    for i in 0..streams {
        c.register_stream(&format!("s{i}"), i);
    }
    c
}

#[test]
fn update_pressure_widens_a_volatile_stream() {
    let mut c = cluster(2);
    let mut tuner = ClusterTuner::new(2, AdaptiveConfig::default(), 0.01);
    let w0_before = tuner.width_of(0);
    let mut rng = StdRng::seed_from_u64(5);

    // Stream 0 is volatile (large level jumps => frequent early shipments);
    // stream 1 is almost constant.
    let mut t = 0u64;
    for round in 0..12 {
        for step in 0..32u64 {
            let volatile =
                ((round * 37 + step) as f64 * 0.9).sin() * 3.0 + rng.gen_range(-1.0..1.0) * 2.0;
            c.post_value(0, volatile, SimTime::from_ms(t));
            c.post_value(1, 5.0 + 0.01 * (step as f64).sin(), SimTime::from_ms(t));
            t += 100;
        }
        tuner.tune(&mut c);
    }
    let w0 = tuner.width_of(0);
    let w1 = tuner.width_of(1);
    assert!(
        w0 > w0_before,
        "volatile stream must widen its MBR bound: {w0} vs initial {w0_before}"
    );
    assert!(w0 > w1, "volatile stream should be wider than the stable one: {w0} vs {w1}");
    // The installed bound is what the cluster actually uses.
    assert_eq!(c.stream_mbr_width(0), Some(w0));
}

#[test]
fn false_positive_pressure_tightens_the_bound() {
    let mut c = cluster(1);
    let mut tuner = ClusterTuner::new(1, AdaptiveConfig::default(), 0.1);
    let before = tuner.width_of(0);

    // Feed a stable stream, then hammer it with queries that candidate-match
    // its boxes (wide radius) but fail exact verification (different shape).
    let mut t = 0u64;
    for step in 0..48u64 {
        c.post_value(0, 1.0 + (step as f64 * 0.5).sin(), SimTime::from_ms(t));
        t += 100;
    }
    let probe: Vec<f64> = (0..16).map(|i| 1.0 + ((i * i) as f64 * 0.9).sin()).collect();
    for round in 0..10 {
        for _ in 0..5 {
            c.post_similarity_query(2, probe.clone(), 0.8, 10_000, SimTime::from_ms(t));
        }
        c.notify_all(SimTime::from_ms(t + 500));
        t += 1000;
        // Keep the stream alive so its MBRs stay fresh.
        for step in 0..8u64 {
            c.post_value(0, 1.0 + ((round * 8 + step) as f64 * 0.5).sin(), SimTime::from_ms(t));
            t += 100;
        }
        tuner.tune(&mut c);
    }
    let after = tuner.width_of(0);
    assert!(
        c.stream_false_positives(0) > 0,
        "the probe queries must generate false positives for this test"
    );
    assert!(after < before, "false positives must tighten the bound: {after} vs {before}");
}
