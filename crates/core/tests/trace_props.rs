//! Property tests of the causal trace (see `dsi-trace`): over random small
//! clusters driven by random operation sequences, the trace must
//!
//! * satisfy causality — every chain terminates at an origin, ids are
//!   unique, children depart from where (and when) their parent arrived;
//! * account for the metrics exactly — per-class message totals, hop sums
//!   and hop counts reconstructed from trace records equal what the
//!   middleware's [`Metrics`] counted, bit for bit.
//!
//! The second property is the strong one: `Metrics` and `Tracer` are
//! updated by separate code paths at every recording site, so any site
//! that counts without tracing (or vice versa) fails here.

use dsi_core::{Cluster, ClusterConfig, SimilarityKind};
use dsi_simnet::{MsgClass, SimTime, NUM_CLASSES};
use dsi_trace::{audit, validate_causality};
use proptest::prelude::*;

const WINDOW: usize = 8;

/// One raw operation: `(kind, count, center, radius)`. Decoded in the
/// test body (the vendored proptest shim has no `prop_oneof`):
/// kind 0–2 feeds `count` values per stream, 3–4 posts a similarity
/// query at `(center, radius)`, 5–6 runs a notify cycle on every node,
/// 7 re-establishes range replication.
type RawOp = (u8, u8, f64, f64);

fn op() -> impl Strategy<Value = RawOp> {
    (0u8..8, 1u8..32, -0.9f64..0.9, 0.02f64..0.5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn trace_is_causal_and_audits_to_metrics(
        num_nodes in 3usize..10,
        num_streams in 1usize..4,
        ops in prop::collection::vec(op(), 1..14),
        salt in 0u64..1024,
    ) {
        let mut cfg = ClusterConfig::new(num_nodes);
        cfg.workload.window_len = WINDOW;
        cfg.kind = SimilarityKind::Subsequence;
        let mut cluster = Cluster::new(cfg);
        let streams: Vec<_> = (0..num_streams)
            .map(|i| cluster.register_stream(&format!("s{i}"), i % num_nodes))
            .collect();

        cluster.enable_tracing(1 << 18);
        cluster.start_measurement();

        let mut now = SimTime::from_ms(1);
        let mut tick = salt;
        for &(kind, count, center, radius) in &ops {
            now += 40;
            match kind {
                0..=2 => {
                    for _ in 0..count {
                        for &sid in &streams {
                            // A deterministic wandering signal: enough
                            // variety to emit MBRs of differing widths.
                            let v = ((tick as f64) * 0.37).sin() + ((tick % 7) as f64) * 0.05;
                            cluster.post_value(sid, v, now);
                            tick += 1;
                        }
                    }
                }
                3..=4 => {
                    let client = (tick as usize) % num_nodes;
                    let target: Vec<f64> =
                        (0..WINDOW).map(|i| center + (i as f64) * 0.01).collect();
                    cluster.post_similarity_query(client, target, radius, 60_000, now);
                    tick += 1;
                }
                5..=6 => cluster.notify_all(now),
                _ => cluster.rebalance_replicas(),
            }
        }
        cluster.stop_measurement();

        let tracer = cluster.tracer();
        prop_assert_eq!(tracer.dropped(), 0, "capacity must not bind in this test");
        if let Err(e) = validate_causality(tracer.iter()) {
            return Err(TestCaseError::Fail(format!("causality violation: {e}")));
        }

        let reconstructed = audit(tracer.iter(), NUM_CLASSES);
        let metrics = cluster.metrics();
        for class in MsgClass::ALL {
            let c = class.index();
            prop_assert_eq!(
                reconstructed.messages[c], metrics.total(class),
                "message total mismatch for {}", class.name()
            );
            prop_assert_eq!(
                reconstructed.hop_sum[c], metrics.hop_sum(class),
                "hop_sum mismatch for {}", class.name()
            );
            prop_assert_eq!(
                reconstructed.hop_count[c], metrics.hop_count(class),
                "hop_count mismatch for {}", class.name()
            );
        }
    }

    /// Tracing must be inert when disabled: same operations, zero records,
    /// identical metrics to an untraced twin.
    #[test]
    fn disabled_tracer_records_nothing_and_changes_nothing(
        num_nodes in 3usize..8,
        values in prop::collection::vec(-1.0f64..1.0, WINDOW..64),
    ) {
        let make = |tracing: bool| {
            let mut cfg = ClusterConfig::new(num_nodes);
            cfg.workload.window_len = WINDOW;
            let mut cluster = Cluster::new(cfg);
            let sid = cluster.register_stream("s", 0);
            if tracing {
                cluster.enable_tracing(1 << 16);
            }
            cluster.start_measurement();
            for (i, &v) in values.iter().enumerate() {
                cluster.post_value(sid, v, SimTime::from_ms(1 + i as u64));
            }
            cluster.notify_all(SimTime::from_ms(values.len() as u64 + 10));
            cluster.stop_measurement();
            cluster
        };
        let plain = make(false);
        let traced = make(true);
        prop_assert_eq!(plain.tracer().len(), 0);
        for class in MsgClass::ALL {
            prop_assert_eq!(plain.metrics().total(class), traced.metrics().total(class));
            prop_assert_eq!(plain.metrics().hop_sum(class), traced.metrics().hop_sum(class));
        }
    }
}
