//! Equivalence of the parallel batch-ingest path with the sequential
//! per-stream feed: same emitted MBRs, same multicast plans, same stored
//! shard state, same metrics — bit for bit.

use dsi_core::{Cluster, ClusterConfig};
use dsi_simnet::SimTime;

/// Deterministic pseudo-value for (stream, tick) without any rng.
fn value(stream: u32, tick: u64) -> f64 {
    5.0 + ((stream as f64) * 0.37 + (tick as f64) * 0.11).sin() * 2.0
}

fn build(num_streams: usize) -> Cluster {
    let mut cfg = ClusterConfig::new(12);
    cfg.workload.window_len = 16;
    let mut cluster = Cluster::new(cfg);
    for i in 0..num_streams {
        cluster.register_stream(&format!("batch-eq-{i}"), i % 12);
    }
    cluster.start_measurement();
    cluster
}

#[test]
fn batch_ingest_is_bit_identical_to_sequential_feed() {
    // Enough streams to cross the parallel threshold and spread chunks over
    // several workers.
    let num_streams = 96usize;
    let mut seq = build(num_streams);
    let mut par = build(num_streams);

    for tick in 0..40u64 {
        let now = SimTime::from_ms(tick * 100);
        let values: Vec<(u32, f64)> =
            (0..num_streams as u32).map(|s| (s, value(s, tick))).collect();

        let mut seq_emitted = Vec::new();
        for &(s, v) in &values {
            if let Some(plan) = seq.post_value(s, v, now) {
                seq_emitted.push((s, plan));
            }
        }
        let par_emitted = par.ingest_batch(&values, now);

        assert_eq!(seq_emitted.len(), par_emitted.len(), "tick {tick}: emission count");
        for ((s_a, plan_a), (s_b, mbr_b, plan_b)) in seq_emitted.iter().zip(par_emitted.iter()) {
            assert_eq!(s_a, s_b, "tick {tick}: emitting stream");
            assert_eq!(plan_a, plan_b, "tick {tick}: multicast plan");
            // The batch-returned MBR is the one that was stored.
            let at = plan_b.deliveries[0].node;
            let stored =
                par.node(at).stored_mbrs_snapshot().into_iter().rev().find(|r| r.stream == *s_b);
            assert_eq!(stored.map(|r| r.mbr), Some(mbr_b.clone()), "tick {tick}: stored MBR");
        }
    }

    // Full shard state and measurement are identical.
    for &n in seq.node_ids().to_vec().iter() {
        assert_eq!(
            serde_json::to_string(&seq.node(n).stored_mbrs_snapshot()).unwrap(),
            serde_json::to_string(&par.node(n).stored_mbrs_snapshot()).unwrap(),
            "node {n}: shard contents diverged"
        );
    }
    assert_eq!(
        serde_json::to_string(seq.metrics()).unwrap(),
        serde_json::to_string(par.metrics()).unwrap(),
        "metrics diverged"
    );
}

#[test]
fn small_batches_use_the_inline_path_with_same_results() {
    let mut seq = build(4);
    let mut par = build(4);
    for tick in 0..200u64 {
        let now = SimTime::from_ms(tick * 100);
        let values: Vec<(u32, f64)> = (0..4u32).map(|s| (s, value(s, tick))).collect();
        let mut seq_count = 0;
        for &(s, v) in &values {
            if seq.post_value(s, v, now).is_some() {
                seq_count += 1;
            }
        }
        assert_eq!(seq_count, par.ingest_batch(&values, now).len(), "tick {tick}");
    }
    for &n in seq.node_ids().to_vec().iter() {
        assert_eq!(
            serde_json::to_string(&seq.node(n).stored_mbrs_snapshot()).unwrap(),
            serde_json::to_string(&par.node(n).stored_mbrs_snapshot()).unwrap(),
        );
    }
}
