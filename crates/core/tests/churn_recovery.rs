//! Churn recovery end to end: crash → orphan detection → re-homing, with
//! *pre-crash* queries surviving the whole cycle, plus the §VII replica
//! rebalancing that keeps the covering-set invariant true across churn.

use dsi_chord::{covering_nodes, RangeStrategy};
use dsi_core::{
    interval_key_range, radius_key_range, Cluster, ClusterConfig, SimilarityKind, StreamId,
};
use dsi_simnet::SimTime;
use std::collections::BTreeSet;

fn cluster(n: usize) -> Cluster {
    let mut cfg = ClusterConfig::new(n);
    cfg.workload.window_len = 16;
    cfg.workload.num_coeffs = 2;
    cfg.workload.mbr_batch = 2;
    cfg.kind = SimilarityKind::Subsequence;
    Cluster::new(cfg)
}

fn wave(window: usize, level: f64) -> Vec<f64> {
    (0..window).map(|i| level + (i as f64 * 0.5).sin()).collect()
}

fn feed(c: &mut Cluster, sid: StreamId, level: f64, from_ms: u64, n: usize) {
    for (i, v) in wave(n, level).into_iter().enumerate() {
        c.post_value(sid, v, SimTime::from_ms(from_ms + i as u64 * 100));
    }
}

/// The issue's scenario: a continuous query is live, the stream's home
/// crashes, the stream is detected as orphaned and re-homed elsewhere —
/// and the *pre-crash* query (posted before any of this) must notify on
/// the re-homed stream's fresh data. No false dismissal across the repair.
#[test]
fn pre_crash_queries_notify_rehomed_streams() {
    let mut c = cluster(12);
    let sid = c.register_stream("patient-42", 3);
    feed(&mut c, sid, 0.3, 0, 32);

    // Post the query BEFORE the crash, shaped on the live window.
    let target = c.streams()[0].extractor.window_snapshot();
    let qid = c.post_similarity_query(1, target, 0.3, 120_000, SimTime::from_ms(3300));
    c.notify_all(SimTime::from_ms(4000));
    let before_crash = c.notifications(qid).len();
    assert!(before_crash > 0, "query must match its own stream pre-crash");

    // Crash the home: the stream is orphaned and silent.
    let home = c.streams()[0].home;
    c.crash_node(home);
    assert_eq!(c.orphaned_streams(), vec![sid]);

    // Re-home to a surviving data center and keep feeding the same wave,
    // so the window at notify time matches the pre-crash target again.
    c.rehome_stream(sid, 0, SimTime::from_ms(5000));
    assert!(c.orphaned_streams().is_empty());
    feed(&mut c, sid, 0.3, 5000, 32);
    c.notify_all(SimTime::from_ms(8300));

    assert!(
        c.notifications(qid).len() > before_crash,
        "pre-crash query must notify on the re-homed stream (no false dismissal)"
    );
}

/// Every surviving replica record must sit on exactly the covering set of
/// its key range after a crash — the invariant `rebalance_replicas`
/// restores (§VII) and the fault harness's oracle 3 audits continuously.
#[test]
fn crash_restores_covering_sets() {
    let mut c = cluster(14);
    let sid = c.register_stream("s", 0);
    feed(&mut c, sid, 0.5, 0, 48);

    // Crash three non-home nodes; repair runs synchronously inside.
    let home = c.streams()[0].home;
    let victims: Vec<_> = c.node_ids().iter().copied().filter(|&n| n != home).take(3).collect();
    for v in victims {
        c.crash_node(v);
    }

    let now = SimTime::from_ms(48 * 100);
    assert_covering_placement(&c, now);
}

/// A newcomer that lands inside an existing record's key range must
/// receive a replica at join time, not only when the stream next ships.
#[test]
fn join_pulls_existing_replicas_onto_the_newcomer() {
    let mut c = cluster(6);
    let sid = c.register_stream("s", 0);
    feed(&mut c, sid, 0.5, 0, 48);
    for salt in 0..8 {
        c.join_node(&format!("newcomer-{salt}"));
    }
    let now = SimTime::from_ms(48 * 100);
    assert_covering_placement(&c, now);
}

/// The known-bug switch: with churn repair disabled, a crash leaves
/// coverage holes — exactly what the fault harness's injected-bug
/// self-test relies on being detectable.
#[test]
fn disabling_churn_repair_leaves_coverage_holes() {
    let seeds: Vec<u64> = (0..20).collect();
    let mut saw_hole = false;
    for seed in seeds {
        let mut c = cluster(14);
        let sid = c.register_stream(&format!("s-{seed}"), 0);
        c.set_churn_repair(false);
        assert!(!c.churn_repair());
        feed(&mut c, sid, 0.3 + seed as f64 * 0.05, 0, 48);
        let home = c.streams()[0].home;
        // Crash nodes that actually hold replicas — those leave holes.
        let victims: Vec<_> = c
            .node_ids()
            .iter()
            .copied()
            .filter(|&n| n != home && c.node(n).mbr_count() > 0)
            .take(3)
            .collect();
        for v in victims {
            c.crash_node(v);
        }
        let now = SimTime::from_ms(48 * 100);
        if !covering_placement_holds(&c, now) {
            saw_hole = true;
            break;
        }
    }
    assert!(saw_hole, "crashing replica holders with repair disabled must leave a coverage hole");
}

fn assert_covering_placement(c: &Cluster, now: SimTime) {
    assert!(covering_placement_holds(c, now), "a record is off its covering set");
}

/// True iff every unexpired stored record sits on exactly its covering set
/// (plus its origin while that origin is alive).
fn covering_placement_holds(c: &Cluster, now: SimTime) -> bool {
    let space = c.space();
    let mut checked: Vec<(StreamId, SimTime)> = Vec::new();
    for &n in c.node_ids() {
        for rec in c.node(n).summaries() {
            if now >= rec.expires || checked.contains(&(rec.stream, rec.expires)) {
                continue;
            }
            checked.push((rec.stream, rec.expires));
            let holders: BTreeSet<_> = c
                .node_ids()
                .iter()
                .copied()
                .filter(|&m| {
                    c.node(m).summaries().any(|s| {
                        s.stream == rec.stream
                            && s.expires == rec.expires
                            && s.low == rec.low
                            && s.high == rec.high
                    })
                })
                .collect();
            let (lo_v, hi_v) = rec.extent0();
            let (lo, hi) = interval_key_range(space, lo_v.clamp(-1.0, 1.0), hi_v.clamp(-1.0, 1.0));
            let mut want: BTreeSet<_> = covering_nodes(c.ring(), lo, hi).into_iter().collect();
            if c.node_ids().contains(&rec.origin) {
                want.insert(rec.origin);
            }
            if holders != want {
                return false;
            }
        }
    }
    true
}

/// Re-posted queries stay subscribed on their whole covering set across a
/// crash, under both multicast strategies.
#[test]
fn query_subscriptions_recover_after_crash() {
    for strategy in [RangeStrategy::Sequential, RangeStrategy::Bidirectional] {
        let mut cfg = ClusterConfig::new(12);
        cfg.workload.window_len = 16;
        cfg.workload.num_coeffs = 2;
        cfg.workload.mbr_batch = 2;
        cfg.kind = SimilarityKind::Subsequence;
        cfg.strategy = strategy;
        let mut c = Cluster::new(cfg);
        let sid = c.register_stream("s", 0);
        feed(&mut c, sid, 0.4, 0, 32);
        let target = c.streams()[0].extractor.window_snapshot();
        let qid = c.post_similarity_query(1, target.clone(), 0.2, 120_000, SimTime::from_ms(3300));

        let q = c
            .node_ids()
            .iter()
            .flat_map(|&n| c.node(n).all_subscriptions())
            .find(|q| q.id == qid)
            .expect("query subscribed somewhere")
            .clone();
        let (lo, hi) = radius_key_range(c.space(), q.feature.first_real(), q.radius);

        // Crash one covering node (if any besides the client exists).
        let cover = covering_nodes(c.ring(), lo, hi);
        if let Some(&victim) = cover.iter().find(|&&n| c.num_nodes() > 3 && n != q.client) {
            c.crash_node(victim);
        }
        for n in covering_nodes(c.ring(), lo, hi) {
            assert!(
                c.node(n).has_subscription(qid),
                "{strategy:?}: query {qid} missing from covering node {n} after crash"
            );
        }
    }
}
