//! Property-based tests of the middleware's building blocks.

use dsi_chord::IdSpace;
use dsi_core::sortable::{decode_f64, encode_f64};
use dsi_core::{
    decode_sortable_key, feature_to_key, interval_key_range, radius_key_range, sortable_key,
    summary_key, DataCenter, InnerProductQuery, MbrBatcher, SimilarityKind, SimilarityQuery,
    SortableSummaryIndex, StoredMbr, SummaryStore,
};
use dsi_dsp::dft::dft;
use dsi_dsp::{extract_features, Complex64, FeatureVector, Mbr, Normalization};
use dsi_simnet::SimTime;
use proptest::prelude::*;

fn window_strategy(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-50.0f64..50.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    // ----- Eq. 6 mapping -----

    #[test]
    fn summary_key_equals_first_real_mapping(
        re in -1.0f64..1.0,
        im in -1.0f64..1.0,
        bits in 4u32..40,
    ) {
        let s = IdSpace::new(bits);
        let fv = FeatureVector::new(vec![Complex64::new(re, im)], Normalization::UnitNorm);
        prop_assert_eq!(summary_key(s, &fv), feature_to_key(s, re));
    }

    #[test]
    fn interval_range_is_ordered_and_contains_interior(
        lo in -1.0f64..1.0,
        w in 0.0f64..0.5,
        t in 0.0f64..1.0,
        bits in 6u32..32,
    ) {
        let s = IdSpace::new(bits);
        let hi = (lo + w).min(1.0);
        let (klo, khi) = interval_key_range(s, lo, hi);
        prop_assert!(klo <= khi);
        let mid = lo + t * (hi - lo);
        let kmid = feature_to_key(s, mid);
        prop_assert!(kmid >= klo && kmid <= khi);
    }

    #[test]
    fn radius_range_is_superset_of_any_smaller_radius(
        center in -1.0f64..1.0,
        r1 in 0.0f64..0.3,
        extra in 0.0f64..0.3,
        bits in 6u32..32,
    ) {
        let s = IdSpace::new(bits);
        let (lo1, hi1) = radius_key_range(s, center, r1);
        let (lo2, hi2) = radius_key_range(s, center, r1 + extra);
        prop_assert!(lo2 <= lo1 && hi1 <= hi2, "wider radius must widen the range");
    }

    // ----- Batching -----

    #[test]
    fn batcher_mbrs_contain_all_members(
        features in prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 1..40),
        zeta in 1usize..8,
        bound in prop::option::of(0.01f64..0.5),
    ) {
        let mut b = MbrBatcher::new(zeta);
        if let Some(w) = bound {
            b = b.with_max_width(w);
        }
        let mut pending: Vec<FeatureVector> = Vec::new();
        for &(re, im) in &features {
            let fv = FeatureVector::new(
                vec![Complex64::new(re, im)],
                Normalization::UnitNorm,
            );
            pending.push(fv.clone());
            if let Some(mbr) = b.push(fv) {
                // The emitted MBR covers exactly the summaries that are no
                // longer pending (all but possibly the newest).
                let kept = b.pending();
                let emitted = pending.len() - kept;
                for f in &pending[..emitted] {
                    prop_assert!(mbr.contains(&f.to_reals()));
                }
                if let Some(w) = bound {
                    let (lo, hi) = mbr.first_interval();
                    prop_assert!(hi - lo <= w + 1e-9, "width bound violated");
                }
                pending.drain(..emitted);
            }
            prop_assert!(b.pending() <= zeta);
        }
    }

    // ----- Interval-indexed matching -----

    #[test]
    fn indexed_local_candidates_equal_brute_force(
        boxes in prop::collection::vec(
            // (center re, center im, box half-width, stream id, expiry ms)
            (-1.0f64..1.0, -1.0f64..1.0, 0.0f64..0.3, 0u32..40, 1u64..5000),
            0..120,
        ),
        queries in prop::collection::vec(
            // (target re, target im, radius, now ms)
            (-1.0f64..1.0, -1.0f64..1.0, 0.0f64..0.8, 0u64..5000),
            1..12,
        ),
        purge_at in prop::option::of(0u64..5000),
    ) {
        let mut dc = DataCenter::new(7);
        for &(re, im, w, stream, exp) in &boxes {
            let low = vec![re - w, im - w];
            let high = vec![re + w, im + w];
            dc.store_mbr(StoredMbr {
                stream,
                mbr: Mbr::from_corners(low, high),
                origin: 1,
                expires: SimTime::from_ms(exp),
            });
        }
        if let Some(t) = purge_at {
            dc.purge_expired(SimTime::from_ms(t));
        }
        for &(re, im, radius, at) in &queries {
            let fv = FeatureVector::new(
                vec![Complex64::new(re, im)],
                Normalization::UnitNorm,
            );
            let q = SimilarityQuery {
                id: 1,
                client: 0,
                feature: fv,
                target: Vec::new(),
                radius,
                kind: SimilarityKind::Subsequence,
                aggregator: 0,
                expires: SimTime::from_ms(10_000),
            };
            let now = SimTime::from_ms(at);
            prop_assert_eq!(
                dc.local_candidates(&q, now),
                dc.local_candidates_linear(&q, now),
                "index diverged from brute force at t={}", at
            );
        }
    }

    #[test]
    fn indexed_matching_subscriptions_equal_brute_force(
        subs in prop::collection::vec(
            (-1.0f64..1.0, -1.0f64..1.0, 0.0f64..0.5, 1u64..5000),
            0..60,
        ),
        boxes in prop::collection::vec(
            (-1.0f64..1.0, -1.0f64..1.0, 0.0f64..0.3),
            1..10,
        ),
        now_ms in 0u64..5000,
    ) {
        let mut dc = DataCenter::new(7);
        for (qid, &(re, im, radius, exp)) in subs.iter().enumerate() {
            let fv = FeatureVector::new(
                vec![Complex64::new(re, im)],
                Normalization::UnitNorm,
            );
            dc.subscribe_similarity(SimilarityQuery {
                id: qid as u64,
                client: 0,
                feature: fv,
                target: Vec::new(),
                radius,
                kind: SimilarityKind::Subsequence,
                aggregator: 0,
                expires: SimTime::from_ms(exp),
            });
        }
        let now = SimTime::from_ms(now_ms);
        for &(re, im, w) in &boxes {
            let mbr = Mbr::from_corners(vec![re - w, im - w], vec![re + w, im + w]);
            let mut indexed: Vec<u64> =
                dc.matching_subscriptions(&mbr, now).iter().map(|q| q.id).collect();
            indexed.sort_unstable();
            let mut brute: Vec<u64> = dc
                .all_subscriptions()
                .filter(|q| !q.expired(now))
                .filter(|q| mbr.min_dist(&q.feature.to_reals()) <= q.radius + 1e-12)
                .map(|q| q.id)
                .collect();
            brute.sort_unstable();
            prop_assert_eq!(indexed, brute);
        }
    }

    // ----- Sortable (Coconut-style) summary keys -----

    #[test]
    fn sortable_key_is_invertible_key_to_mbr_to_key(
        lo_sel in 0u8..7,
        lo_val in -1e6f64..1e6,
        hi_sel in 0u8..5,
        w in 0.0f64..1e6,
    ) {
        // Mix finite values with the special cases a dimension-less extent
        // produces: infinities and the two zeros.
        let lo = match lo_sel {
            0 => f64::NEG_INFINITY,
            1 => 0.0,
            2 => -0.0,
            _ => lo_val,
        };
        let hi = if hi_sel == 0 { f64::INFINITY } else { lo + w };
        let key = sortable_key(lo, hi);
        // key → MBR → key: decoding the key to an extent and re-encoding
        // that extent must reproduce the key exactly (the decoded corner is
        // the canonical representative of its quantization cell).
        let (dlo, dhi) = decode_sortable_key(key);
        prop_assert_eq!(sortable_key(dlo, dhi), key, "re-encoded key diverged");
        // The canonical representative never exceeds the original corner, so
        // range scans built from encoded bounds are conservative (no misses).
        prop_assert!(dlo <= lo || (dlo == 0.0 && lo == 0.0), "decoded low {dlo} above original {lo}");
        prop_assert!(dhi <= hi || (dhi == 0.0 && hi == 0.0), "decoded high {dhi} above original {hi}");
    }

    #[test]
    fn f64_cell_encoding_is_monotone_and_right_invertible(
        a_sel in 0u8..10,
        a_val in -1e9f64..1e9,
        b_sel in 0u8..10,
        b_val in -1e9f64..1e9,
    ) {
        let a = if a_sel == 0 { f64::NEG_INFINITY } else { a_val };
        let b = if b_sel == 0 { f64::INFINITY } else { b_val };
        let (x, y) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(encode_f64(x) <= encode_f64(y), "encoding must be monotone");
        // decode is a right inverse: encode(decode(u)) == u.
        for u in [encode_f64(x), encode_f64(y)] {
            prop_assert_eq!(encode_f64(decode_f64(u)), u);
        }
        // ...and decode never rounds up past the original value.
        prop_assert!(decode_f64(encode_f64(x)) <= x);
    }

    #[test]
    fn sortable_index_query_equals_linear_scan(
        extents in prop::collection::vec((-5.0f64..5.0, 0.0f64..3.0), 0..150),
        queries in prop::collection::vec((-6.0f64..6.0, 0.0f64..4.0), 1..10),
        bulk in any::<bool>(),
    ) {
        let boxes: Vec<(f64, f64)> =
            extents.iter().map(|&(lo, w)| (lo, lo + w)).collect();
        let mut idx = SortableSummaryIndex::default();
        if bulk {
            idx.bulk_load(
                boxes.iter().enumerate().map(|(i, &(lo, hi))| (sortable_key(lo, hi), i as u32)),
            );
        } else {
            for (i, &(lo, hi)) in boxes.iter().enumerate() {
                idx.insert(sortable_key(lo, hi), i as u32);
            }
        }
        for &(a, w) in &queries {
            let b = a + w;
            let mut got: Vec<u32> = Vec::new();
            idx.for_overlapping(a, b, |pos| got.push(pos));
            got.sort_unstable();
            got.dedup();
            // The index may over-approximate (quantization), but must never
            // miss a truly overlapping extent.
            for (i, &(lo, hi)) in boxes.iter().enumerate() {
                if lo <= b && hi >= a {
                    prop_assert!(
                        got.binary_search(&(i as u32)).is_ok(),
                        "missed overlapping extent [{lo}, {hi}] for query [{a}, {b}]"
                    );
                }
            }
        }
    }

    // ----- SoA summary store vs per-entry model -----

    #[test]
    fn summary_store_equals_per_entry_model(
        ops in prop::collection::vec(
            // (selector, corner list for pushes, stream, origin, time/expiry)
            // selector 0..=5: push; 6..=7: purge at t; 8: retain even streams.
            (
                0u8..9,
                prop::collection::vec((-10.0f64..10.0, 0.0f64..2.0), 0..3),
                0u32..20,
                0u64..8,
                1u64..4000,
            ),
            0..60,
        ),
    ) {
        let mut store = SummaryStore::default();
        let mut model: Vec<StoredMbr> = Vec::new();
        for (kind, corners, stream, origin, t) in &ops {
            match kind {
                0..=5 => {
                    let low: Vec<f64> = corners.iter().map(|&(l, _)| l).collect();
                    let high: Vec<f64> = corners.iter().map(|&(l, w)| l + w).collect();
                    let rec = StoredMbr {
                        stream: *stream,
                        mbr: Mbr::from_corners(low, high),
                        origin: *origin,
                        expires: SimTime::from_ms(*t),
                    };
                    store.push_stored(&rec);
                    model.push(rec);
                }
                6 | 7 => {
                    let now = SimTime::from_ms(*t);
                    store.retain(|s| now < s.expires);
                    model.retain(|r| now < r.expires);
                }
                _ => {
                    store.retain(|s| s.stream % 2 == 0);
                    model.retain(|r| r.stream % 2 == 0);
                }
            }
            prop_assert_eq!(store.len(), model.len());
        }
        // Whole-store equivalence, including order and bit-exact corners.
        prop_assert_eq!(&store.to_stored_vec(), &model);
        for (pos, rec) in model.iter().enumerate() {
            prop_assert!(store.get(pos).matches(rec), "record {pos} diverged");
            prop_assert_eq!(store.expires_at(pos), rec.expires);
        }
        prop_assert_eq!(store.iter().count(), model.len());
    }

    // ----- Similarity candidate test -----

    #[test]
    fn candidate_test_is_never_a_false_dismissal(
        a in window_strategy(16),
        b in window_strategy(16),
        znorm in any::<bool>(),
        k in 1usize..5,
    ) {
        let kind = if znorm { SimilarityKind::Correlation } else { SimilarityKind::Subsequence };
        let exact = dsi_dsp::normalized_distance(&a, &b, kind.normalization());
        let q = SimilarityQuery::from_target(
            1, 0, a, exact + 1e-9, kind, k, 0, SimTime::from_secs(1),
        );
        let fb = extract_features(&b, kind.normalization(), k);
        prop_assert!(q.candidate(&fb), "dismissed a window at exactly the radius");
    }

    // ----- Inner-product evaluation -----

    #[test]
    fn full_prefix_inner_product_is_exact(
        window in window_strategy(16),
        idx in prop::collection::vec(0usize..16, 1..6),
    ) {
        let weights = vec![1.0 / idx.len() as f64; idx.len()];
        let q = InnerProductQuery::new(1, 0, 0, idx, weights, SimTime::from_secs(1));
        let exact = q.evaluate_exact(&window);
        // Keeping bins 0..=n/2 of a real signal is lossless.
        let spectrum = dft(&window);
        let approx = q.evaluate_approx(&spectrum[..9], 16);
        prop_assert!((exact - approx).abs() < 1e-6 * (1.0 + exact.abs()));
    }

    #[test]
    fn point_and_range_queries_match_direct_semantics(
        window in window_strategy(16),
        i in 0usize..16,
        start in 0usize..12,
        len in 1usize..4,
    ) {
        let p = InnerProductQuery::point(1, 0, 0, i, SimTime::from_secs(1));
        prop_assert_eq!(p.evaluate_exact(&window), window[i]);

        let end = (start + len).min(16);
        let rs = InnerProductQuery::range_sum(2, 0, 0, start..end, SimTime::from_secs(1));
        let expect: f64 = window[start..end].iter().sum();
        prop_assert!((rs.evaluate_exact(&window) - expect).abs() < 1e-9);

        let ra = InnerProductQuery::range_avg(3, 0, 0, start..end, SimTime::from_secs(1));
        let expect_avg = expect / (end - start) as f64;
        prop_assert!((ra.evaluate_exact(&window) - expect_avg).abs() < 1e-9);
    }
}
