//! Property-based tests of the middleware's building blocks.

use dsi_chord::IdSpace;
use dsi_core::{
    feature_to_key, interval_key_range, radius_key_range, summary_key, DataCenter,
    InnerProductQuery, MbrBatcher, SimilarityKind, SimilarityQuery, StoredMbr,
};
use dsi_dsp::dft::dft;
use dsi_dsp::{extract_features, Complex64, FeatureVector, Mbr, Normalization};
use dsi_simnet::SimTime;
use proptest::prelude::*;

fn window_strategy(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-50.0f64..50.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    // ----- Eq. 6 mapping -----

    #[test]
    fn summary_key_equals_first_real_mapping(
        re in -1.0f64..1.0,
        im in -1.0f64..1.0,
        bits in 4u32..40,
    ) {
        let s = IdSpace::new(bits);
        let fv = FeatureVector::new(vec![Complex64::new(re, im)], Normalization::UnitNorm);
        prop_assert_eq!(summary_key(s, &fv), feature_to_key(s, re));
    }

    #[test]
    fn interval_range_is_ordered_and_contains_interior(
        lo in -1.0f64..1.0,
        w in 0.0f64..0.5,
        t in 0.0f64..1.0,
        bits in 6u32..32,
    ) {
        let s = IdSpace::new(bits);
        let hi = (lo + w).min(1.0);
        let (klo, khi) = interval_key_range(s, lo, hi);
        prop_assert!(klo <= khi);
        let mid = lo + t * (hi - lo);
        let kmid = feature_to_key(s, mid);
        prop_assert!(kmid >= klo && kmid <= khi);
    }

    #[test]
    fn radius_range_is_superset_of_any_smaller_radius(
        center in -1.0f64..1.0,
        r1 in 0.0f64..0.3,
        extra in 0.0f64..0.3,
        bits in 6u32..32,
    ) {
        let s = IdSpace::new(bits);
        let (lo1, hi1) = radius_key_range(s, center, r1);
        let (lo2, hi2) = radius_key_range(s, center, r1 + extra);
        prop_assert!(lo2 <= lo1 && hi1 <= hi2, "wider radius must widen the range");
    }

    // ----- Batching -----

    #[test]
    fn batcher_mbrs_contain_all_members(
        features in prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 1..40),
        zeta in 1usize..8,
        bound in prop::option::of(0.01f64..0.5),
    ) {
        let mut b = MbrBatcher::new(zeta);
        if let Some(w) = bound {
            b = b.with_max_width(w);
        }
        let mut pending: Vec<FeatureVector> = Vec::new();
        for &(re, im) in &features {
            let fv = FeatureVector::new(
                vec![Complex64::new(re, im)],
                Normalization::UnitNorm,
            );
            pending.push(fv.clone());
            if let Some(mbr) = b.push(fv) {
                // The emitted MBR covers exactly the summaries that are no
                // longer pending (all but possibly the newest).
                let kept = b.pending();
                let emitted = pending.len() - kept;
                for f in &pending[..emitted] {
                    prop_assert!(mbr.contains(&f.to_reals()));
                }
                if let Some(w) = bound {
                    let (lo, hi) = mbr.first_interval();
                    prop_assert!(hi - lo <= w + 1e-9, "width bound violated");
                }
                pending.drain(..emitted);
            }
            prop_assert!(b.pending() <= zeta);
        }
    }

    // ----- Interval-indexed matching -----

    #[test]
    fn indexed_local_candidates_equal_brute_force(
        boxes in prop::collection::vec(
            // (center re, center im, box half-width, stream id, expiry ms)
            (-1.0f64..1.0, -1.0f64..1.0, 0.0f64..0.3, 0u32..40, 1u64..5000),
            0..120,
        ),
        queries in prop::collection::vec(
            // (target re, target im, radius, now ms)
            (-1.0f64..1.0, -1.0f64..1.0, 0.0f64..0.8, 0u64..5000),
            1..12,
        ),
        purge_at in prop::option::of(0u64..5000),
    ) {
        let mut dc = DataCenter::new(7);
        for &(re, im, w, stream, exp) in &boxes {
            let low = vec![re - w, im - w];
            let high = vec![re + w, im + w];
            dc.store_mbr(StoredMbr {
                stream,
                mbr: Mbr::from_corners(low, high),
                origin: 1,
                expires: SimTime::from_ms(exp),
            });
        }
        if let Some(t) = purge_at {
            dc.purge_expired(SimTime::from_ms(t));
        }
        for &(re, im, radius, at) in &queries {
            let fv = FeatureVector::new(
                vec![Complex64::new(re, im)],
                Normalization::UnitNorm,
            );
            let q = SimilarityQuery {
                id: 1,
                client: 0,
                feature: fv,
                target: Vec::new(),
                radius,
                kind: SimilarityKind::Subsequence,
                aggregator: 0,
                expires: SimTime::from_ms(10_000),
            };
            let now = SimTime::from_ms(at);
            prop_assert_eq!(
                dc.local_candidates(&q, now),
                dc.local_candidates_linear(&q, now),
                "index diverged from brute force at t={}", at
            );
        }
    }

    #[test]
    fn indexed_matching_subscriptions_equal_brute_force(
        subs in prop::collection::vec(
            (-1.0f64..1.0, -1.0f64..1.0, 0.0f64..0.5, 1u64..5000),
            0..60,
        ),
        boxes in prop::collection::vec(
            (-1.0f64..1.0, -1.0f64..1.0, 0.0f64..0.3),
            1..10,
        ),
        now_ms in 0u64..5000,
    ) {
        let mut dc = DataCenter::new(7);
        for (qid, &(re, im, radius, exp)) in subs.iter().enumerate() {
            let fv = FeatureVector::new(
                vec![Complex64::new(re, im)],
                Normalization::UnitNorm,
            );
            dc.subscribe_similarity(SimilarityQuery {
                id: qid as u64,
                client: 0,
                feature: fv,
                target: Vec::new(),
                radius,
                kind: SimilarityKind::Subsequence,
                aggregator: 0,
                expires: SimTime::from_ms(exp),
            });
        }
        let now = SimTime::from_ms(now_ms);
        for &(re, im, w) in &boxes {
            let mbr = Mbr::from_corners(vec![re - w, im - w], vec![re + w, im + w]);
            let mut indexed: Vec<u64> =
                dc.matching_subscriptions(&mbr, now).iter().map(|q| q.id).collect();
            indexed.sort_unstable();
            let mut brute: Vec<u64> = dc
                .all_subscriptions()
                .filter(|q| !q.expired(now))
                .filter(|q| mbr.min_dist(&q.feature.to_reals()) <= q.radius + 1e-12)
                .map(|q| q.id)
                .collect();
            brute.sort_unstable();
            prop_assert_eq!(indexed, brute);
        }
    }

    // ----- Similarity candidate test -----

    #[test]
    fn candidate_test_is_never_a_false_dismissal(
        a in window_strategy(16),
        b in window_strategy(16),
        znorm in any::<bool>(),
        k in 1usize..5,
    ) {
        let kind = if znorm { SimilarityKind::Correlation } else { SimilarityKind::Subsequence };
        let exact = dsi_dsp::normalized_distance(&a, &b, kind.normalization());
        let q = SimilarityQuery::from_target(
            1, 0, a, exact + 1e-9, kind, k, 0, SimTime::from_secs(1),
        );
        let fb = extract_features(&b, kind.normalization(), k);
        prop_assert!(q.candidate(&fb), "dismissed a window at exactly the radius");
    }

    // ----- Inner-product evaluation -----

    #[test]
    fn full_prefix_inner_product_is_exact(
        window in window_strategy(16),
        idx in prop::collection::vec(0usize..16, 1..6),
    ) {
        let weights = vec![1.0 / idx.len() as f64; idx.len()];
        let q = InnerProductQuery::new(1, 0, 0, idx, weights, SimTime::from_secs(1));
        let exact = q.evaluate_exact(&window);
        // Keeping bins 0..=n/2 of a real signal is lossless.
        let spectrum = dft(&window);
        let approx = q.evaluate_approx(&spectrum[..9], 16);
        prop_assert!((exact - approx).abs() < 1e-6 * (1.0 + exact.abs()));
    }

    #[test]
    fn point_and_range_queries_match_direct_semantics(
        window in window_strategy(16),
        i in 0usize..16,
        start in 0usize..12,
        len in 1usize..4,
    ) {
        let p = InnerProductQuery::point(1, 0, 0, i, SimTime::from_secs(1));
        prop_assert_eq!(p.evaluate_exact(&window), window[i]);

        let end = (start + len).min(16);
        let rs = InnerProductQuery::range_sum(2, 0, 0, start..end, SimTime::from_secs(1));
        let expect: f64 = window[start..end].iter().sum();
        prop_assert!((rs.evaluate_exact(&window) - expect).abs() < 1e-9);

        let ra = InnerProductQuery::range_avg(3, 0, 0, start..end, SimTime::from_secs(1));
        let expect_avg = expect / (end - start) as f64;
        prop_assert!((ra.evaluate_exact(&window) - expect_avg).abs() < 1e-9);
    }
}
