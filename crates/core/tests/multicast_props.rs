//! Property tests of query-range multicast coverage (§IV-E).
//!
//! The covering set of a similarity query's key range `[h(q1−ε), h(q1+ε)]`
//! is computed here by brute force — iterating every key of a small
//! identifier circle and assigning it to its owner by linear scan over the
//! sorted node list (node `n` owns `(pred(n), n]`) — and the multicast
//! plan must deliver to exactly that set, under both the sequential and
//! the bidirectional strategy.

use dsi_chord::{multicast, ChordId, IdSpace, RangeStrategy, Ring};
use dsi_core::radius_key_range;
use proptest::prelude::*;
use std::collections::BTreeSet;

const BITS: u32 = 10;

/// Owner of `key` by definition: the first node at or clockwise after it.
fn brute_owner(sorted: &[ChordId], key: ChordId) -> ChordId {
    *sorted.iter().find(|&&n| n >= key).unwrap_or(&sorted[0])
}

/// Brute-force covering set: every owner of every key in `[lo, hi]`
/// (a wrapped range walks through zero).
fn brute_covering(sorted: &[ChordId], lo: ChordId, hi: ChordId, modulus: u64) -> BTreeSet<ChordId> {
    let mut covered = BTreeSet::new();
    let mut k = lo;
    loop {
        covered.insert(brute_owner(sorted, k));
        if k == hi {
            break;
        }
        k = (k + 1) % modulus;
    }
    covered
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The paper's correctness core: for any node population, query center
    /// q1 and radius ε, the multicast over [h(q1−ε), h(q1+ε)] reaches
    /// exactly the nodes owning keys in that range — no node missed (false
    /// dismissals), none extra (wasted replicas) — for BOTH strategies.
    #[test]
    fn query_range_plan_covers_exactly_the_owner_set(
        ids in prop::collection::btree_set(0u64..(1 << BITS), 2..24),
        center in -1.0f64..1.0,
        radius in 0.0f64..0.6,
        origin_pick in any::<u64>(),
    ) {
        let space = IdSpace::new(BITS);
        let sorted: Vec<ChordId> = ids.iter().copied().collect();
        let ring = Ring::with_nodes(space, sorted.iter().copied());
        let (lo, hi) = radius_key_range(space, center, radius);
        let expect = brute_covering(&sorted, lo, hi, space.modulus());
        let origin = sorted[(origin_pick % sorted.len() as u64) as usize];

        for strat in [RangeStrategy::Sequential, RangeStrategy::Bidirectional] {
            let plan = multicast(&ring, origin, lo, hi, strat);
            let got: BTreeSet<ChordId> = plan.nodes().into_iter().collect();
            prop_assert_eq!(
                &got, &expect,
                "{:?}: center {} radius {} -> [{}, {}]", strat, center, radius, lo, hi
            );
            // Both strategies must agree with each other by construction.
            prop_assert!(expect.contains(&plan.entry), "entry outside the covering set");
        }
    }

    /// Monotonicity at the key level: widening ε can only add nodes.
    #[test]
    fn wider_radius_covers_superset_of_nodes(
        ids in prop::collection::btree_set(0u64..(1 << BITS), 2..24),
        center in -1.0f64..1.0,
        r in 0.0f64..0.3,
        extra in 0.0f64..0.3,
    ) {
        let space = IdSpace::new(BITS);
        let sorted: Vec<ChordId> = ids.iter().copied().collect();
        let (lo1, hi1) = radius_key_range(space, center, r);
        let (lo2, hi2) = radius_key_range(space, center, r + extra);
        let narrow = brute_covering(&sorted, lo1, hi1, space.modulus());
        let wide = brute_covering(&sorted, lo2, hi2, space.modulus());
        prop_assert!(narrow.is_subset(&wide));
    }
}
