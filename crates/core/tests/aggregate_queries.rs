//! End-to-end aggregate queries on a lossless cluster: notifications
//! track a brute-force sliding-window reference within the advertised
//! ε-δ bound, coverage honestly reflects churn, and repair rounds heal
//! replica holes (DESIGN.md §15).

use dsi_core::aggregate::{AggregateKind, AggregateSpec};
use dsi_core::{quantize, AggregateValue, Cluster, ClusterConfig};
use dsi_simnet::SimTime;

const WINDOW_MS: u64 = 4_000;
const EPS: f64 = 0.2;
const DELTA: f64 = 0.1;
const BINS: u64 = 64;

fn small_cluster(n: usize, streams: usize) -> Cluster {
    let mut cfg = ClusterConfig::new(n);
    cfg.workload.window_len = 16;
    cfg.workload.num_coeffs = 2;
    cfg.workload.mbr_batch = 4;
    cfg.workload.mbr_max_width = None;
    let mut c = Cluster::new(cfg);
    for i in 0..streams {
        c.register_stream(&format!("agg-{i}"), i % n);
    }
    c
}

fn spec(kind: AggregateKind) -> AggregateSpec {
    AggregateSpec {
        kind,
        eps: EPS,
        delta: DELTA,
        window_ms: WINDOW_MS,
        lifespan_ms: 600_000,
        bins: BINS,
        forced_dims: None,
    }
}

/// Deterministic pseudo-value for (stream, tick).
fn value(stream: u32, tick: u64) -> f64 {
    5.0 + ((stream as f64) * 0.37 + (tick as f64) * 0.11).sin() * 2.0
}

/// Feeds `ticks` rounds of one value per stream, 100 ms apart, returning
/// the `(value, at_ms)` log.
fn feed(c: &mut Cluster, streams: u32, ticks: u64, t0: u64) -> Vec<(f64, u64)> {
    let mut log = Vec::new();
    for tick in 0..ticks {
        let at = t0 + tick * 100;
        for s in 0..streams {
            let v = value(s, tick);
            c.post_value(s, v, SimTime::from_ms(at));
            log.push((v, at));
        }
    }
    log
}

/// Brute-force count of logged events inside `(now - W, now]`.
fn exact_window(log: &[(f64, u64)], now: u64) -> f64 {
    log.iter().filter(|&&(_, t)| (t as i64) > now as i64 - WINDOW_MS as i64 && t <= now).count()
        as f64
}

fn scalar(v: &AggregateValue) -> f64 {
    match v {
        AggregateValue::Scalar(x) => *x,
        AggregateValue::Bins(_) => panic!("expected a scalar value"),
    }
}

#[test]
fn window_count_tracks_brute_force_within_bound() {
    let mut c = small_cluster(6, 4);
    let qid = c.post_aggregate_query(0, spec(AggregateKind::WindowCount), SimTime::ZERO);
    // Notify rounds interleave with feeding: sliding-window sketches
    // answer "now", never the past.
    let mut log = feed(&mut c, 4, 40, 0);
    c.notify_all(SimTime::from_ms(4_000));
    log.extend(feed(&mut c, 4, 30, 4_000));
    c.notify_all(SimTime::from_ms(7_000));
    log.extend(feed(&mut c, 4, 29, 7_000));
    c.notify_all(SimTime::from_ms(9_900));
    let notes = c.aggregate_notifications(qid);
    assert_eq!(notes.len(), 3, "one notification per notify round");
    for n in notes {
        assert_eq!(n.coverage, 1.0, "lossless run must reach every node");
        assert!((n.eps_effective - EPS).abs() < 1e-12, "full coverage keeps the base eps");
        let truth = exact_window(&log, n.at.as_ms());
        let slack = n.eps_effective * truth + n.components as f64 + 1e-9;
        let est = scalar(&n.value);
        assert!(
            (est - truth).abs() <= slack,
            "at {}: estimate {est} vs exact {truth} (slack {slack})",
            n.at.as_ms()
        );
    }
}

#[test]
fn point_count_and_heavy_hitters_agree_on_a_constant_stream() {
    let mut c = small_cluster(5, 2);
    let bin = quantize(5.0, BINS);
    let q_point = c.post_aggregate_query(0, spec(AggregateKind::PointCount { bin }), SimTime::ZERO);
    let q_hh =
        c.post_aggregate_query(1, spec(AggregateKind::HeavyHitters { phi: 0.5 }), SimTime::ZERO);
    // A constant stream: every event lands in `bin`.
    let mut n_events = 0u64;
    for tick in 0..60u64 {
        let at = SimTime::from_ms(tick * 100);
        for s in 0..2u32 {
            c.post_value(s, 5.0, at);
            n_events += 1;
        }
    }
    let now = SimTime::from_ms(5_900);
    c.notify_all(now);
    let truth = (n_events.min(2 * WINDOW_MS / 100)) as f64;
    let pn = c.aggregate_notifications(q_point).last().expect("point notification");
    let slack = EPS * truth + pn.components as f64 + 1e-9;
    assert!((scalar(&pn.value) - truth).abs() <= slack);
    let hh = c.aggregate_notifications(q_hh).last().expect("hh notification");
    match &hh.value {
        AggregateValue::Bins(bins) => {
            assert!(
                bins.iter().any(|&(b, _)| b == bin),
                "the constant stream's bin must be a heavy hitter"
            );
        }
        AggregateValue::Scalar(_) => panic!("heavy hitters must report bins"),
    }
}

#[test]
fn self_join_size_tracks_brute_force() {
    let mut c = small_cluster(4, 3);
    let qid = c.post_aggregate_query(2, spec(AggregateKind::SelfJoinSize), SimTime::ZERO);
    let mut per_bin = std::collections::BTreeMap::<u64, f64>::new();
    let mut log = Vec::new();
    for tick in 0..80u64 {
        let at = tick * 100;
        for s in 0..3u32 {
            let v = value(s, tick);
            c.post_value(s, v, SimTime::from_ms(at));
            log.push((v, at));
        }
    }
    let now = 7_900u64;
    c.notify_all(SimTime::from_ms(now));
    for &(v, t) in &log {
        if (t as i64) > now as i64 - WINDOW_MS as i64 && t <= now {
            *per_bin.entry(quantize(v, BINS)).or_default() += 1.0;
        }
    }
    let truth: f64 = per_bin.values().map(|f| f * f).sum();
    let n = exact_window(&log, now);
    let note = c.aggregate_notifications(qid).last().expect("self-join notification");
    // Mirror EcmSketch::self_join_error_bound with the merged components.
    let w = (2.0 * std::f64::consts::E / EPS).ceil();
    let slack = 2.0 * EPS * n * n + 3.0 * n + 3.0 * note.components as f64 * w + 1e-9;
    assert!(
        (scalar(&note.value) - truth).abs() <= slack,
        "self-join {} vs exact {truth} (n={n}, slack {slack})",
        scalar(&note.value)
    );
}

#[test]
fn crash_widens_the_bound_and_repair_restores_it() {
    let mut c = small_cluster(6, 4);
    let qid = c.post_aggregate_query(0, spec(AggregateKind::WindowCount), SimTime::ZERO);
    feed(&mut c, 4, 30, 0);
    assert_eq!(c.aggregate_replicas(qid).len(), 6);

    // Crash a non-aggregator node: its replica (and window contribution)
    // is gone, so the next round's coverage and bound widen honestly.
    let agg = c.aggregate_query(qid).expect("live query").aggregator;
    let victim = c.node_ids().iter().copied().find(|&n| n != agg).expect("a non-aggregator");
    c.crash_node(victim);
    assert_eq!(c.aggregate_replicas(qid).len(), 5);

    c.notify_all(SimTime::from_ms(3_000));
    let note = c.aggregate_notifications(qid).last().expect("post-crash notification").clone();
    assert!(note.coverage < 1.0 + 1e-12, "coverage cannot exceed 1");
    assert_eq!(note.contributors.len(), 5);
    assert_eq!(note.coverage, 1.0, "all five live nodes contributed");
    assert!((note.eps_effective - EPS).abs() < 1e-12);

    // A joining node is a replica hole until a repair round heals it.
    let joined = c.join_node("late-joiner");
    assert_eq!(c.aggregate_replicas(qid).len(), 5, "churn rebalance must not heal aggregates");
    c.repair_coverage(SimTime::from_ms(3_500));
    let replicas = c.aggregate_replicas(qid);
    assert_eq!(replicas.len(), 6);
    let (_, since) = replicas.iter().find(|&&(n, _)| n == joined).expect("healed replica");
    assert_eq!(since.as_ms(), 3_500, "healed replica counts from the repair time");
}

#[test]
fn expired_aggregate_is_purged_and_stops_notifying() {
    let mut c = small_cluster(4, 2);
    let mut s = spec(AggregateKind::WindowCount);
    s.lifespan_ms = 1_000;
    let qid = c.post_aggregate_query(0, s, SimTime::ZERO);
    feed(&mut c, 2, 8, 0);
    c.notify_all(SimTime::from_ms(900));
    let before = c.aggregate_notifications(qid).len();
    assert!(before > 0, "a live query notifies");
    c.purge_queries(SimTime::from_ms(1_500));
    assert!(c.aggregate_query(qid).is_none(), "expired query is purged");
    c.notify_all(SimTime::from_ms(1_600));
    assert_eq!(c.aggregate_notifications(qid).len(), before, "no notifications after expiry");
}
