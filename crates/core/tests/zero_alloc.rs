//! Proof that steady-state ingest allocates nothing on the heap.
//!
//! A counting global allocator wraps the system allocator for this whole
//! test process; after a warm-up phase fills every reusable buffer
//! (extractor windows, the cluster's `SummaryScratch`, batcher running
//! bounds, the batch emission slots), a non-emitting tick of `post_value`
//! or a sub-threshold `ingest_batch` must leave the allocation counter
//! untouched.
//!
//! The zero-alloc contract covers the *sequential* inline path: batches
//! below `PARALLEL_INGEST_MIN` (32) and the per-value `post_value` loop.
//! The parallel path spawns scoped threads, which allocate by design.
//!
//! Kept as its own integration test so the global allocator and the
//! single-threaded measurement don't interfere with any other suite.

use dsi_core::aggregate::{AggregateKind, AggregateSpec};
use dsi_core::{Cluster, ClusterConfig};
use dsi_simnet::SimTime;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Deterministic pseudo-value for (stream, tick) without any rng.
fn value(stream: u32, tick: u64) -> f64 {
    5.0 + ((stream as f64) * 0.37 + (tick as f64) * 0.11).sin() * 2.0
}

#[test]
fn steady_state_ingest_is_allocation_free() {
    const STREAMS: usize = 8; // below PARALLEL_INGEST_MIN: inline path
    const WINDOW: usize = 16;

    let mut cfg = ClusterConfig::new(6);
    cfg.workload.window_len = WINDOW;
    // A batch size no run of this test can reach: every measured tick is a
    // non-emitting one, which is exactly the steady state the zero-alloc
    // contract covers.
    cfg.workload.mbr_batch = 1_000_000;
    // No width bound: a width-triggered early shipment would emit (and
    // legitimately allocate) mid-measurement.
    cfg.workload.mbr_max_width = None;
    let mut cluster = Cluster::new(cfg);
    for i in 0..STREAMS {
        cluster.register_stream(&format!("za-{i}"), i % 6);
    }
    // An active aggregate query rides the same contract: per-value sketch
    // updates go through preallocated exponential-histogram storage, so
    // warm non-emitting ticks stay allocation-free with it enabled
    // (notify cycles, which merge and allocate, are not part of the
    // measured steady state).
    cluster.post_aggregate_query(
        0,
        AggregateSpec {
            kind: AggregateKind::WindowCount,
            eps: 0.2,
            delta: 0.1,
            window_ms: 5_000,
            lifespan_ms: u64::MAX / 2,
            bins: 64,
            forced_dims: None,
        },
        SimTime::ZERO,
    );

    // Warm-up: fill every window, grow every scratch buffer, exercise both
    // entry points so `emit_scratch` and the batcher bounds reach their
    // high-water capacity.
    let mut values: Vec<(u32, f64)> = (0..STREAMS as u32).map(|s| (s, 0.0)).collect();
    let mut tick = 0u64;
    for _ in 0..(WINDOW as u64 * 4) {
        for slot in values.iter_mut() {
            slot.1 = value(slot.0, tick);
        }
        let now = SimTime::from_ms(tick * 100);
        if tick.is_multiple_of(2) {
            let emitted = cluster.ingest_batch(&values, now);
            assert!(emitted.is_empty(), "warm-up must not emit (huge batch size)");
        } else {
            for &(s, v) in &values {
                assert!(cluster.post_value(s, v, now).is_none());
            }
        }
        tick += 1;
    }

    // Measured phase: per-value posts.
    let before = allocation_count();
    for _ in 0..64 {
        for slot in values.iter_mut() {
            slot.1 = value(slot.0, tick);
        }
        let now = SimTime::from_ms(tick * 100);
        for &(s, v) in &values {
            let plan = cluster.post_value(s, v, now);
            assert!(plan.is_none(), "measured phase must not emit");
        }
        tick += 1;
    }
    let post_value_allocs = allocation_count() - before;
    assert_eq!(
        post_value_allocs, 0,
        "post_value steady state must not allocate ({post_value_allocs} allocations in 64 ticks)"
    );

    // Measured phase: sub-threshold batches on the inline sequential path.
    let before = allocation_count();
    for _ in 0..64 {
        for slot in values.iter_mut() {
            slot.1 = value(slot.0, tick);
        }
        let now = SimTime::from_ms(tick * 100);
        let emitted = cluster.ingest_batch(&values, now);
        assert!(emitted.is_empty(), "measured phase must not emit");
        tick += 1;
    }
    let batch_allocs = allocation_count() - before;
    assert_eq!(
        batch_allocs, 0,
        "inline ingest_batch steady state must not allocate ({batch_allocs} allocations in 64 ticks)"
    );
}
