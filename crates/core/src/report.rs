//! Experiment reports: the exact series the paper's figures plot.

use dsi_simnet::{Histogram, InputEvent, Metrics, MsgClass};
use serde::{Deserialize, Serialize};

/// One row of Fig. 6(a): average per-node message load (messages/second),
/// broken into the paper's seven components.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LoadComponents {
    /// a) MBR messages originated by the node as a stream source.
    pub mbrs: f64,
    /// b) additional messages when an MBR key range spans multiple nodes.
    pub mbrs_internal: f64,
    /// c) MBR messages by intermediate nodes on the route.
    pub mbrs_in_transit: f64,
    /// d) all query messages.
    pub queries: f64,
    /// e) response messages from the notifying node to the client.
    pub responses: f64,
    /// f) information exchange between neighbor nodes.
    pub responses_internal: f64,
    /// g) response messages by intermediate nodes on the route.
    pub responses_in_transit: f64,
}

impl LoadComponents {
    /// Total load across components.
    pub fn total(&self) -> f64 {
        self.mbrs
            + self.mbrs_internal
            + self.mbrs_in_transit
            + self.queries
            + self.responses
            + self.responses_internal
            + self.responses_in_transit
    }
}

/// One row of Fig. 7: message overhead — additional messages per input
/// event of the matching kind.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OverheadComponents {
    /// a) MBR copies when the key range spans multiple nodes, per MBR.
    pub mbr: f64,
    /// b) MBR messages in transit, per MBR.
    pub mbr_in_transit: f64,
    /// c) query copies when the radius spans multiple nodes, per query.
    pub query: f64,
    /// d) query messages in transit, per query.
    pub query_in_transit: f64,
    /// e) neighbor-exchange messages, per response.
    pub response: f64,
    /// f) response messages in transit, per response.
    pub response_in_transit: f64,
}

/// One row of Fig. 8: average hops per logical message.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HopComponents {
    /// MBR messages (initial routing).
    pub mbr: f64,
    /// Internal MBR messages (replicas reached by forwarding).
    pub mbr_internal: f64,
    /// Query messages (initial routing).
    pub query: f64,
    /// Internal query messages (range forwarding).
    pub query_internal: f64,
    /// Response messages.
    pub response: f64,
}

/// Counts of input events during the measured window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventCounts {
    /// New MBRs produced by stream sources.
    pub mbrs: u64,
    /// New client queries posted.
    pub queries: u64,
    /// Periodic responses pushed.
    pub responses: u64,
}

/// The full result of one experiment run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SystemReport {
    /// Number of data centers.
    pub num_nodes: usize,
    /// Measured window in seconds.
    pub duration_s: f64,
    /// RNG seed of the run.
    pub seed: u64,
    /// Query radius used.
    pub query_radius: f64,
    /// Fig. 6(a) components.
    pub load: LoadComponents,
    /// Fig. 6(b): per-node total load (messages/second), one per node.
    pub per_node_load: Vec<f64>,
    /// Fig. 7 components.
    pub overhead: OverheadComponents,
    /// Fig. 8 components.
    pub hops: HopComponents,
    /// Input events in the window.
    pub events: EventCounts,
    /// Verified match notifications delivered.
    pub matches_delivered: u64,
    /// Candidate (stream, query) pairs before verification.
    pub candidates: u64,
}

impl SystemReport {
    /// Assembles a report from collected metrics.
    pub fn from_metrics(
        metrics: &Metrics,
        all_nodes: &[u64],
        duration_s: f64,
        seed: u64,
        query_radius: f64,
        matches_delivered: u64,
        candidates: u64,
    ) -> Self {
        let n = all_nodes.len();
        let load = LoadComponents {
            mbrs: metrics.avg_load(MsgClass::MbrOriginated, n, duration_s),
            mbrs_internal: metrics.avg_load(MsgClass::MbrInternal, n, duration_s),
            mbrs_in_transit: metrics.avg_load(MsgClass::MbrTransit, n, duration_s),
            queries: metrics.avg_load(MsgClass::Query, n, duration_s)
                + metrics.avg_load(MsgClass::QueryInternal, n, duration_s)
                + metrics.avg_load(MsgClass::QueryTransit, n, duration_s),
            responses: metrics.avg_load(MsgClass::Response, n, duration_s),
            responses_internal: metrics.avg_load(MsgClass::ResponseInternal, n, duration_s),
            responses_in_transit: metrics.avg_load(MsgClass::ResponseTransit, n, duration_s),
        };
        let overhead = OverheadComponents {
            mbr: metrics.overhead(MsgClass::MbrInternal, InputEvent::Mbr),
            mbr_in_transit: metrics.overhead(MsgClass::MbrTransit, InputEvent::Mbr),
            query: metrics.overhead(MsgClass::QueryInternal, InputEvent::Query),
            query_in_transit: metrics.overhead(MsgClass::QueryTransit, InputEvent::Query),
            response: metrics.overhead(MsgClass::ResponseInternal, InputEvent::Response),
            response_in_transit: metrics.overhead(MsgClass::ResponseTransit, InputEvent::Response),
        };
        let hops = HopComponents {
            mbr: metrics.avg_hops(MsgClass::MbrOriginated),
            mbr_internal: metrics.avg_hops(MsgClass::MbrInternal),
            query: metrics.avg_hops(MsgClass::Query),
            query_internal: metrics.avg_hops(MsgClass::QueryInternal),
            response: metrics.avg_hops(MsgClass::Response),
        };
        let per_node_load =
            metrics.per_node_load(all_nodes, duration_s).into_iter().map(|(_, l)| l).collect();
        SystemReport {
            num_nodes: n,
            duration_s,
            seed,
            query_radius,
            load,
            per_node_load,
            overhead,
            hops,
            events: EventCounts {
                mbrs: metrics.event_count(InputEvent::Mbr),
                queries: metrics.event_count(InputEvent::Query),
                responses: metrics.event_count(InputEvent::Response),
            },
            matches_delivered,
            candidates,
        }
    }

    /// Histogram of per-node load for Fig. 6(b).
    pub fn load_histogram(&self, bucket_width: f64) -> Histogram {
        Histogram::build(&self.per_node_load, bucket_width)
    }

    /// Expected end-to-end latency of a response message under a latency
    /// model (hops x mean per-hop delay) — the "time lags for the detected
    /// similarities to be propagated to the client" the paper discusses.
    pub fn response_latency_ms(&self, model: &dsi_simnet::LatencyModel) -> f64 {
        self.hops.response * model.mean_hop_ms()
    }

    /// Expected time for a query to reach the *last* node of its range
    /// (the §IV-C sequential-walk cost Fig. 8 tracks).
    pub fn query_propagation_ms(&self, model: &dsi_simnet::LatencyModel) -> f64 {
        self.hops.query_internal.max(self.hops.query) * model.mean_hop_ms()
    }
}

/// Reliability-layer accounting: what the retry/backoff/dedup machinery
/// did during a run (DESIGN.md §12).
///
/// Kept *separate* from [`SystemReport`] so the golden Figure series stays
/// byte-identical for fault-free runs; a clean run reports all-zero
/// counters and `avg_coverage == 1.0`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReliabilityReport {
    /// Total delivery retries across all message classes.
    pub retries: u64,
    /// Messages whose effect landed one refresh period late.
    pub redeliveries: u64,
    /// Duplicated copies suppressed by the bounded dedup cache.
    pub dups_suppressed: u64,
    /// Number of coverage samples recorded (one per degraded-capable op).
    pub coverage_samples: u64,
    /// Mean fraction of the key range confirmed reached (1.0 = complete).
    pub avg_coverage: f64,
}

impl ReliabilityReport {
    /// Assemble the reliability report from collected metrics.
    pub fn from_metrics(metrics: &Metrics) -> Self {
        let (retries, redeliveries, dups_suppressed) = metrics.reliability_totals();
        ReliabilityReport {
            retries,
            redeliveries,
            dups_suppressed,
            coverage_samples: metrics.coverage_count(),
            avg_coverage: metrics.avg_coverage().unwrap_or(1.0),
        }
    }

    /// Whether the run saw no reliability events at all (fault-free).
    pub fn is_clean(&self) -> bool {
        self.retries == 0
            && self.redeliveries == 0
            && self.dups_suppressed == 0
            && self.coverage_samples == 0
    }
}

/// Load-balance accounting: what the per-node load ledger saw over a run
/// (DESIGN.md §13).
///
/// Kept *separate* from [`SystemReport`] so the golden Figure series stays
/// byte-identical — the ledger is only populated when the driver samples
/// rounds explicitly, and a run that never sampled reports all zeros.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadBalanceReport {
    /// Ledger rounds sampled.
    pub rounds: u64,
    /// Final round's per-host max/mean message ratio (0.0 when idle).
    pub final_max_over_mean: f64,
    /// Final round's Gini coefficient of per-host message load.
    pub final_gini: f64,
    /// Exact percentiles over every per-host per-round message load.
    pub host_load: dsi_trace::Percentiles,
    /// Re-weighting actions the mitigation took.
    pub reweight_actions: u64,
    /// Live virtual identifiers at the end of the run.
    pub virtual_nodes: u64,
}

impl LoadBalanceReport {
    /// Assemble the report from a cluster's load ledger and re-weighting
    /// history.
    pub fn from_ledger(
        ledger: &crate::load::LoadLedger,
        reweight_actions: u64,
        virtual_nodes: u64,
    ) -> Self {
        let last = ledger.rounds().last();
        LoadBalanceReport {
            rounds: ledger.rounds().len() as u64,
            final_max_over_mean: last.and_then(|r| r.max_over_mean()).unwrap_or(0.0),
            final_gini: last.map_or(0.0, |r| r.gini()),
            host_load: dsi_trace::Percentiles::of(&mut ledger.host_load_quantiles()),
            reweight_actions,
            virtual_nodes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_assembles_from_metrics() {
        let mut m = Metrics::new();
        m.record_event(InputEvent::Mbr);
        m.record_route(MsgClass::MbrOriginated, MsgClass::MbrTransit, &[1, 2, 3]);
        m.record_hops(MsgClass::MbrOriginated, 2);
        let r = SystemReport::from_metrics(&m, &[1, 2, 3], 10.0, 42, 0.1, 0, 0);
        assert_eq!(r.num_nodes, 3);
        assert_eq!(r.events.mbrs, 1);
        assert!(r.load.mbrs > 0.0);
        assert!(r.load.mbrs_in_transit > 0.0);
        assert!((r.overhead.mbr_in_transit - 1.0).abs() < 1e-12);
        assert!((r.hops.mbr - 2.0).abs() < 1e-12);
        assert_eq!(r.per_node_load.len(), 3);
    }

    #[test]
    fn latency_derivation_uses_hop_counts() {
        let mut m = Metrics::new();
        m.record_hops(MsgClass::Response, 4);
        m.record_hops(MsgClass::QueryInternal, 10);
        let r = SystemReport::from_metrics(&m, &[1], 1.0, 0, 0.1, 0, 0);
        let model = dsi_simnet::LatencyModel::default();
        assert!((r.response_latency_ms(&model) - 200.0).abs() < 1e-9);
        assert!((r.query_propagation_ms(&model) - 500.0).abs() < 1e-9);
    }

    #[test]
    fn load_total_sums_components() {
        let l = LoadComponents {
            mbrs: 1.0,
            mbrs_internal: 0.5,
            mbrs_in_transit: 2.0,
            queries: 0.25,
            responses: 0.5,
            responses_internal: 1.0,
            responses_in_transit: 0.75,
        };
        assert!((l.total() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn reliability_report_reads_counters_and_detects_clean_runs() {
        let mut m = Metrics::new();
        let clean = ReliabilityReport::from_metrics(&m);
        assert!(clean.is_clean());
        assert!((clean.avg_coverage - 1.0).abs() < 1e-12);

        m.record_retry(MsgClass::MbrOriginated);
        m.record_retry(MsgClass::Query);
        m.record_redelivery(MsgClass::Response);
        m.record_dup_suppressed(MsgClass::QueryInternal);
        m.record_coverage(0.5);
        m.record_coverage(1.0);
        let r = ReliabilityReport::from_metrics(&m);
        assert!(!r.is_clean());
        assert_eq!(r.retries, 2);
        assert_eq!(r.redeliveries, 1);
        assert_eq!(r.dups_suppressed, 1);
        assert_eq!(r.coverage_samples, 2);
        assert!((r.avg_coverage - 0.75).abs() < 1e-12);
    }
}
