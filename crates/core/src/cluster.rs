//! The distributed indexing middleware (§IV): a cluster of data centers on
//! a Chord ring, with content-based routing of summaries, range replication
//! of similarity queries, location-service handling of inner-product
//! queries, and periodic response aggregation.
//!
//! `Cluster` is *driven*: callers (the experiment driver in
//! [`crate::system`], examples, tests)
//! push stream values, post queries, and run notify cycles at the times they
//! choose. Every overlay message is recorded in [`dsi_simnet::Metrics`]
//! while measurement is enabled; message deliveries are applied at send time
//! and latency is charged analytically (50 ms per overlay hop), which is
//! exactly the cost model of the Chord simulator the paper used.

use crate::aggregate::{
    quantize, AggregateKind, AggregateNotification, AggregateQuery, AggregateRuntime,
    AggregateSpec, AggregateValue,
};
use crate::batching::MbrBatcher;
use crate::datacenter::{DataCenter, StoredMbr};
use crate::load::{LoadLedger, ReweightAction, ReweightConfig};
use crate::mapping::{interval_key_range, radius_key_range, stream_key};
use crate::query::{
    InnerProductQuery, MatchNotification, QueryId, SimilarityKind, SimilarityQuery, StreamId,
};
use crate::reliability::{
    DeliveryVerdict, PendingDelivery, PendingEffect, ReliabilityState, Resolution,
};
use dsi_chord::{
    multicast, multicast_with_failover, reachable_fraction, BuildRouter, ChordId, ContentRouter,
    FailoverOutcome, HopKind, HopOutcome, IdSpace, MulticastPlan, RangeStrategy, Ring,
};
use dsi_dsp::{normalized_distance, FeatureExtractor, FeatureVector, Mbr, SummaryScratch};
use dsi_simnet::{FaultPlan, InputEvent, Metrics, MsgClass, SimTime};
use dsi_sketch::{EcmSketch, SketchDims, SketchParams};
use dsi_streamgen::WorkloadConfig;
use dsi_trace::Tracer;
use std::collections::HashMap;

/// Static configuration of a cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of data centers.
    pub num_nodes: usize,
    /// Workload / summarization parameters (Table I).
    pub workload: WorkloadConfig,
    /// Identifier-space width in bits.
    pub id_bits: u32,
    /// Range multicast strategy (§IV-C sequential vs §VI-B bidirectional).
    pub strategy: RangeStrategy,
    /// Similarity flavor streams are indexed under.
    pub kind: SimilarityKind,
}

impl ClusterConfig {
    /// A cluster with the paper's defaults: Table I workload, 32-bit ids,
    /// sequential range multicast, correlation similarity.
    pub fn new(num_nodes: usize) -> Self {
        ClusterConfig {
            num_nodes,
            workload: WorkloadConfig::default(),
            id_bits: 32,
            strategy: RangeStrategy::Sequential,
            kind: SimilarityKind::Correlation,
        }
    }
}

/// Runtime state of one registered stream.
#[derive(Debug, Clone)]
pub struct StreamRuntime {
    /// Stream identifier (dense index).
    pub id: StreamId,
    /// Stream name (hashed by `h2` for the location service).
    pub name: String,
    /// The data center sourcing this stream.
    pub home: ChordId,
    /// Incremental summarizer.
    pub extractor: FeatureExtractor,
    /// ζ-batcher.
    pub batcher: MbrBatcher,
    /// Latest emitted feature vector, if any.
    pub last_feature: Option<FeatureVector>,
}

/// Batches smaller than this are summarized inline: thread-spawn overhead
/// would dominate the O(k)-per-item sliding-DFT work.
const PARALLEL_INGEST_MIN: usize = 32;

/// Worker count for parallel phases: `DSI_WORKERS` if set (useful under CPU
/// quotas and for oversubscription experiments), else the host parallelism,
/// clamped to `[1, cap]`.
///
/// The host parallelism is probed once and cached: `available_parallelism`
/// re-reads the cgroup quota files on every call (tens of microseconds on
/// Linux), which used to dominate small per-tick batches. The `DSI_WORKERS`
/// override stays dynamic so harnesses can re-point it between configs.
pub(crate) fn worker_count(cap: usize) -> usize {
    static HOST_PARALLELISM: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    std::env::var("DSI_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            *HOST_PARALLELISM
                .get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
        })
        .clamp(1, cap.max(1))
}

/// Advances one stream's summarizer through the allocation-free scratch
/// path and records the MBR its batcher emitted, if any. Mirrors the
/// per-stream half of the historical `post_value` exactly (orphaned streams
/// keep sliding their window but ship nothing): `update_scratch` and
/// `push_reals` are bit-identical to their allocating ancestors, so emitted
/// MBRs — and everything downstream — are unchanged byte for byte.
#[inline(always)]
fn summarize_one(
    nodes: &HashMap<ChordId, DataCenter>,
    s: &mut StreamRuntime,
    value: f64,
    scratch: &mut SummaryScratch,
) -> Option<Mbr> {
    let homed = nodes.contains_key(&s.home);
    if s.extractor.update_scratch(value, scratch) {
        store_last_feature(s, scratch);
        if homed {
            return s.batcher.push_reals(&scratch.reals);
        }
    }
    None
}

/// Refreshes `last_feature` from the scratch coefficients, reusing the
/// existing vector's capacity after the first emission.
#[inline]
fn store_last_feature(s: &mut StreamRuntime, scratch: &SummaryScratch) {
    let mode = s.extractor.mode();
    match &mut s.last_feature {
        Some(lf) => lf.overwrite(&scratch.coeffs, mode),
        // dsilint: allow(hot-path-alloc, first emission of a stream only: every later tick takes the overwrite arm and reuses this capacity)
        None => s.last_feature = Some(FeatureVector::new(scratch.coeffs.clone(), mode)),
    }
}

/// Worker body for [`Cluster::ingest_batch`]'s parallel path: one private
/// scratch per worker, then [`summarize_one`] per task.
fn summarize_chunk(
    nodes: &HashMap<ChordId, DataCenter>,
    tasks: &mut [(&mut StreamRuntime, f64)],
    emitted: &mut [Option<Mbr>],
) {
    let mut scratch = SummaryScratch::default();
    for ((s, v), slot) in tasks.iter_mut().zip(emitted.iter_mut()) {
        *slot = summarize_one(nodes, s, *v, &mut scratch);
    }
}

#[derive(Debug, Clone)]
enum QueryRuntime {
    Similarity(SimilarityQuery),
    InnerProduct(InnerProductQuery),
}

/// Aggregate quality counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QualityStats {
    /// Candidate (stream, query) pairs the index produced.
    pub candidates: u64,
    /// Candidates that survived exact verification.
    pub verified: u64,
}

/// The distributed stream-indexing middleware.
///
/// Generic over the routing backend `R` (the paper's portability claim):
/// [`dsi_chord::Ring`] (Chord, the default) and [`dsi_chord::PastryNet`]
/// both work unchanged, because the middleware only consumes the
/// [`ContentRouter`] surface.
pub struct Cluster<R: ContentRouter = Ring> {
    cfg: ClusterConfig,
    space: IdSpace,
    ring: R,
    nodes: HashMap<ChordId, DataCenter>,
    node_order: Vec<ChordId>,
    streams: Vec<StreamRuntime>,
    queries: HashMap<QueryId, QueryRuntime>,
    /// Live aggregate queries with their per-node replica sketches, in
    /// posting (= id) order. Empty unless the driver posts aggregate
    /// queries, so undriven runs stay byte-identical (DESIGN.md §15).
    aggregates: Vec<AggregateRuntime>,
    /// Delivered aggregate notifications, per query.
    aggregate_notifications: HashMap<QueryId, Vec<AggregateNotification>>,
    notifications: HashMap<QueryId, Vec<MatchNotification>>,
    ip_results: HashMap<QueryId, Vec<(SimTime, f64)>>,
    ip_alerts: HashMap<QueryId, Vec<(SimTime, f64)>>,
    /// Client-side location cache (§IV-D): (client, stream) -> source node.
    location_cache: HashMap<(ChordId, StreamId), ChordId>,
    /// Location-service lookups avoided by the cache.
    location_cache_hits: u64,
    /// Location-service lookups that found no record (lost to churn).
    location_misses: u64,
    metrics: Metrics,
    measuring: bool,
    /// Causal message tracer (disabled by default; see `dsi-trace`). Records
    /// exactly the overlay messages `metrics` counts, as parent-linked
    /// chains, whenever both measurement and tracing are on.
    tracer: Tracer,
    /// Whether churn operations re-establish range replication (§VII);
    /// disabled it models pure soft-state coverage holes.
    repair_on_churn: bool,
    /// Whether the periodic Chord stabilization protocol runs (DESIGN.md
    /// §17). Disabling it is the partition negative control: islands never
    /// repair their successor/finger tables, and a heal without re-probing
    /// leaves a permanent fork the convergence oracle must flag.
    stabilization_enabled: bool,
    next_query: QueryId,
    quality: QualityStats,
    /// Per-stream candidates that failed exact verification (false
    /// positives charged to that stream's MBRs) — the §VI-A cost signal.
    stream_false_positives: HashMap<StreamId, u64>,
    /// Retry/backoff/dedup state machine (DESIGN.md §12); `None` (the
    /// default) keeps every send on the exact historical lossless path.
    reliability: Option<ReliabilityState>,
    /// State effects of `Delay`ed messages, parked until the receiver's
    /// next notify cycle drains them.
    pending: Vec<PendingDelivery>,
    /// Achieved dissemination coverage per query posted while a fault
    /// plan was armed (1.0 = the full key range was confirmed reached).
    query_coverage: HashMap<QueryId, f64>,
    /// Per-round load history (see [`crate::load`]); filled only when the
    /// driver calls [`Cluster::record_load_round`], so undriven runs stay
    /// byte-identical to the historical behavior.
    load_ledger: LoadLedger,
    /// Virtual identifier → physical host it is accounted to. Empty until
    /// re-weighting acts.
    virtual_of: HashMap<ChordId, ChordId>,
    /// Re-weighting policy; `None` (the default) disables the mitigation.
    reweight: Option<ReweightConfig>,
    /// Re-weighting actions taken, in execution order.
    reweight_actions: Vec<ReweightAction>,
    /// Reusable summarization scratch for the sequential ingest path: once
    /// its buffers hold their high-water capacity, steady-state
    /// `post_value`/`ingest_batch` ticks perform zero heap allocations
    /// (DESIGN.md §14).
    ingest_scratch: SummaryScratch,
    /// Reusable per-batch emission slots for [`Cluster::ingest_batch`].
    emit_scratch: Vec<Option<Mbr>>,
    /// Reusable `(stream, MBR)` staging for the sequential batch path.
    pending_emit: Vec<(StreamId, Mbr)>,
    /// Worker preference for [`Cluster::ingest_batch`], snapshotted from
    /// `DSI_WORKERS` / host parallelism at construction: re-reading the
    /// environment every tick costs a lock-guarded scan (plus an
    /// allocation when the override is set) on the hot path.
    ingest_workers: usize,
}

impl Cluster<Ring> {
    /// Builds a cluster on the default Chord backend.
    ///
    /// # Panics
    /// Panics if `num_nodes == 0` or the workload config is invalid.
    pub fn new(cfg: ClusterConfig) -> Self {
        Cluster::with_backend(cfg)
    }
}

impl<R: BuildRouter> Cluster<R> {
    /// Builds a cluster on any routing backend: node identifiers are SHA-1
    /// hashes of their labels (consistent hashing), and the backend's
    /// routing state is fully constructed.
    ///
    /// # Panics
    /// Panics if `num_nodes == 0` or the workload config is invalid.
    pub fn with_backend(cfg: ClusterConfig) -> Self {
        assert!(cfg.num_nodes > 0, "need at least one data center");
        cfg.workload.validate();
        let space = IdSpace::new(cfg.id_bits);
        let mut ids = Vec::with_capacity(cfg.num_nodes);
        let mut salt = 0u32;
        while ids.len() < cfg.num_nodes {
            let label = format!("data-center-{}-{}", ids.len(), salt);
            let id = space.hash_str(&label);
            if ids.contains(&id) {
                salt += 1; // hash collision in a small space: re-salt
            } else {
                ids.push(id);
                salt = 0;
            }
        }
        let ring = R::build(space, &ids);
        let nodes = ids.iter().map(|&id| (id, DataCenter::new(id))).collect();
        Cluster {
            cfg,
            space,
            ring,
            nodes,
            node_order: ids,
            streams: Vec::new(),
            queries: HashMap::new(),
            aggregates: Vec::new(),
            aggregate_notifications: HashMap::new(),
            notifications: HashMap::new(),
            ip_results: HashMap::new(),
            ip_alerts: HashMap::new(),
            location_cache: HashMap::new(),
            location_cache_hits: 0,
            location_misses: 0,
            metrics: Metrics::new(),
            measuring: false,
            tracer: Tracer::disabled(),
            repair_on_churn: true,
            stabilization_enabled: true,
            next_query: 1,
            quality: QualityStats::default(),
            stream_false_positives: HashMap::new(),
            reliability: None,
            pending: Vec::new(),
            query_coverage: HashMap::new(),
            load_ledger: LoadLedger::new(),
            virtual_of: HashMap::new(),
            reweight: None,
            reweight_actions: Vec::new(),
            ingest_scratch: SummaryScratch::default(),
            emit_scratch: Vec::new(),
            pending_emit: Vec::new(),
            ingest_workers: worker_count(usize::MAX),
        }
    }
}

/// Runs a failover range multicast with every hop resolved through the
/// reliability state machine; `classes` is the (route, forward) message
/// class pair. Returns the achieved outcome plus the per-hop resolutions
/// in deterministic judge order, for counter accounting by the caller,
/// plus the classes of hops suppressed by a network partition.
///
/// A hop whose endpoints sit on different partition sides fails *before*
/// the reliability machine is consulted: topology cuts are deterministic,
/// so they consume zero fault randomness and are tallied separately from
/// random loss (the severed list; the caller feeds it to the
/// partition-suppressed counters).
fn reliable_multicast<R: ContentRouter>(
    ring: &R,
    rel: &mut ReliabilityState,
    strategy: RangeStrategy,
    origin: ChordId,
    lo: ChordId,
    hi: ChordId,
    classes: (MsgClass, MsgClass),
) -> (FailoverOutcome, Vec<(MsgClass, Resolution)>, Vec<MsgClass>) {
    let mut log = Vec::new();
    let mut severed = Vec::new();
    let out = multicast_with_failover(ring, origin, lo, hi, strategy, &mut |from, to, kind| {
        let class = match kind {
            HopKind::Route => classes.0,
            HopKind::Forward => classes.1,
        };
        if !ring.reachable(from, to) {
            severed.push(class);
            return HopOutcome::Fail;
        }
        let res = rel.resolve(class);
        log.push((class, res));
        match res.verdict {
            DeliveryVerdict::Deliver => HopOutcome::Deliver,
            DeliveryVerdict::Late => HopOutcome::DeliverLate,
            DeliveryVerdict::Lost => HopOutcome::Fail,
        }
    });
    (out, log, severed)
}

impl<R: ContentRouter> Cluster<R> {
    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// The identifier space.
    pub fn space(&self) -> IdSpace {
        self.space
    }

    /// The underlying routing backend.
    pub fn ring(&self) -> &R {
        &self.ring
    }

    /// Chord identifier of the `i`-th data center.
    pub fn node_id(&self, i: usize) -> ChordId {
        self.node_order[i]
    }

    /// All data-center identifiers, in creation order.
    pub fn node_ids(&self) -> &[ChordId] {
        &self.node_order
    }

    /// Number of data centers.
    pub fn num_nodes(&self) -> usize {
        self.node_order.len()
    }

    /// Read access to a data center.
    pub fn node(&self, id: ChordId) -> &DataCenter {
        &self.nodes[&id]
    }

    /// Registered streams.
    pub fn streams(&self) -> &[StreamRuntime] {
        &self.streams
    }

    /// Collected metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Quality counters (candidates vs verified matches).
    pub fn quality(&self) -> QualityStats {
        self.quality
    }

    /// False-positive candidates charged to one stream's MBRs so far.
    pub fn stream_false_positives(&self, stream: StreamId) -> u64 {
        self.stream_false_positives.get(&stream).copied().unwrap_or(0)
    }

    /// MBRs this stream has shipped so far.
    pub fn stream_updates(&self, stream: StreamId) -> u64 {
        self.streams[stream as usize].batcher.produced()
    }

    /// MBRs this stream shipped early because of its width bound — the
    /// §VI-A update-pressure signal (regular ζ-full shipments are the
    /// baseline cost and carry no pressure).
    pub fn stream_early_shipments(&self, stream: StreamId) -> u64 {
        self.streams[stream as usize].batcher.early_shipments()
    }

    /// Sets (or clears) a stream's MBR routing-width bound — the §VI-A
    /// adaptive-precision knob.
    pub fn set_stream_mbr_width(&mut self, stream: StreamId, width: Option<f64>) {
        self.streams[stream as usize].batcher.set_max_width(width);
    }

    /// A stream's current MBR routing-width bound.
    pub fn stream_mbr_width(&self, stream: StreamId) -> Option<f64> {
        self.streams[stream as usize].batcher.max_width()
    }

    /// Starts counting messages (call after warm-up); clears history —
    /// including any captured trace, so trace and metrics describe the same
    /// measurement window.
    pub fn start_measurement(&mut self) {
        self.metrics.reset();
        self.tracer.clear();
        self.measuring = true;
    }

    /// Stops counting messages.
    pub fn stop_measurement(&mut self) {
        self.measuring = false;
    }

    /// Enables causal message tracing into a ring buffer of at most
    /// `capacity` records. While both tracing and measurement are on, every
    /// overlay message charged to [`Cluster::metrics`] also appends a
    /// `dsi_trace::TraceRecord`, parent-linked to the event that caused it;
    /// the conformance suite reconciles the two bit-for-bit. Off by
    /// default: the instrumented paths then cost a single branch.
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.tracer.enable(capacity);
    }

    /// Stops tracing (captured records are kept until the next
    /// [`Cluster::start_measurement`] or [`Cluster::enable_tracing`]).
    pub fn disable_tracing(&mut self) {
        self.tracer.disable();
    }

    /// The causal tracer (records, multicast metadata, drop counter).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Sets the trace clock. Entry points that take a `now` argument stamp
    /// it themselves; drivers should call this before operations that do
    /// not ([`Cluster::rebalance_replicas`] via churn, registration) so
    /// their records carry the right simulated time.
    pub fn set_trace_time(&mut self, now: SimTime) {
        self.tracer.set_now_ms(now.as_ms());
    }

    /// Installs a per-class fault plan and arms the reliability layer
    /// (retry/backoff, bounded dedup, successor-list multicast failover,
    /// parked late effects — DESIGN.md §12). `FaultPlan::NONE` disarms it:
    /// sends then take the exact lossless code paths and consume no fault
    /// randomness, keeping golden outputs byte-identical. The fault RNG is
    /// seeded from `seed`; derive it from the scenario seed.
    ///
    /// # Panics
    /// Panics if the plan's probabilities are invalid.
    pub fn set_fault_plan(&mut self, plan: FaultPlan, seed: u64) {
        plan.validate();
        self.reliability =
            if plan.is_none() { None } else { Some(ReliabilityState::new(plan, seed)) };
    }

    /// Whether a fault plan is currently armed.
    pub fn fault_plan_active(&self) -> bool {
        self.reliability.is_some()
    }

    /// Fraction of a query's key range confirmed reached when it was
    /// disseminated. `None` for queries posted while no fault plan was
    /// armed — dissemination is then complete by construction.
    pub fn query_coverage(&self, q: QueryId) -> Option<f64> {
        self.query_coverage.get(&q).copied()
    }

    /// Analytic retry-backoff latency accumulated so far, in virtual
    /// milliseconds (the virtual clock itself is never shifted).
    pub fn backoff_ms_total(&self) -> u64 {
        self.reliability.as_ref().map_or(0, |r| r.backoff_ms_total)
    }

    /// Parked late effects not yet drained by their receiver's cycle.
    pub fn pending_effects(&self) -> usize {
        self.pending.len()
    }

    /// Notifications delivered so far for a similarity query.
    pub fn notifications(&self, q: QueryId) -> &[MatchNotification] {
        self.notifications.get(&q).map_or(&[], |v| v.as_slice())
    }

    /// Periodic values pushed so far for an inner-product query.
    pub fn ip_results(&self, q: QueryId) -> &[(SimTime, f64)] {
        self.ip_results.get(&q).map_or(&[], |v| v.as_slice())
    }

    /// Alert pushes (value satisfied the query's alert condition).
    pub fn ip_alerts(&self, q: QueryId) -> &[(SimTime, f64)] {
        self.ip_alerts.get(&q).map_or(&[], |v| v.as_slice())
    }

    /// Location-service lookups avoided thanks to client-side caching
    /// (§IV-D).
    pub fn location_cache_hits(&self) -> u64 {
        self.location_cache_hits
    }

    /// Location-service lookups that found no record (lost to churn and not
    /// yet refreshed by the source's periodic re-registration).
    pub fn location_misses(&self) -> u64 {
        self.location_misses
    }

    /// Notifications delivered so far for an aggregate query.
    pub fn aggregate_notifications(&self, q: QueryId) -> &[AggregateNotification] {
        self.aggregate_notifications.get(&q).map_or(&[], |v| v.as_slice())
    }

    /// Total aggregate notifications delivered across all queries.
    pub fn total_aggregate_notifications(&self) -> u64 {
        // dsilint: allow(unordered-iter, commutative sum over all queries)
        self.aggregate_notifications.values().map(|v| v.len() as u64).sum()
    }

    /// The live (unexpired, unpurged) aggregate query with this id.
    pub fn aggregate_query(&self, q: QueryId) -> Option<&AggregateQuery> {
        self.aggregates.iter().find(|a| a.query.id == q).map(|a| &a.query)
    }

    /// Nodes currently holding a replica sketch for an aggregate query,
    /// each with the virtual time its replica started counting.
    pub fn aggregate_replicas(&self, q: QueryId) -> Vec<(ChordId, SimTime)> {
        self.aggregates
            .iter()
            .find(|a| a.query.id == q)
            .map_or(Vec::new(), |a| a.replicas.iter().map(|&(n, since, _)| (n, since)).collect())
    }

    /// Total match notifications delivered across all queries.
    pub fn total_notifications(&self) -> u64 {
        // dsilint: allow(unordered-iter, commutative sum over all queries)
        self.notifications.values().map(|v| v.len() as u64).sum()
    }

    /// Drops expired queries from the global registry (per-node replicas are
    /// purged by each node's notify cycle).
    pub fn purge_queries(&mut self, now: SimTime) {
        self.queries.retain(|_, q| match q {
            QueryRuntime::Similarity(sq) => !sq.expired(now),
            QueryRuntime::InnerProduct(ip) => !ip.expired(now),
        });
        // Expired aggregate queries drop their replicas cluster-wide;
        // delivered notifications stay with the client.
        self.aggregates.retain(|a| !a.query.expired(now));
    }

    /// Whether churn operations automatically rebalance replicas.
    pub fn churn_repair(&self) -> bool {
        self.repair_on_churn
    }

    /// Enables or disables the automatic [`Cluster::rebalance_replicas`]
    /// pass after [`Cluster::crash_node`] / [`Cluster::join_node`] (on by
    /// default). Disabled, the middleware falls back to pure soft-state
    /// healing: coverage holes persist until the next MBR shipment or
    /// location refresh. The fault-injection harness uses this switch to
    /// verify its oracles catch the resulting coverage violations.
    pub fn set_churn_repair(&mut self, enabled: bool) {
        self.repair_on_churn = enabled;
    }

    // ------------------------------------------------------------------
    // Load ledger & virtual-node accounting (see crate::load)
    // ------------------------------------------------------------------

    /// The per-round load history. Empty unless the driver sampled rounds
    /// with [`Cluster::record_load_round`].
    pub fn load_ledger(&self) -> &LoadLedger {
        &self.load_ledger
    }

    /// Physical host an identifier's load is attributed to: virtual
    /// identifiers map to their assigned host while that host lives,
    /// everything else (including virtuals orphaned by a host crash) maps
    /// to itself.
    pub fn physical_of(&self, id: ChordId) -> ChordId {
        match self.virtual_of.get(&id) {
            Some(&host) if self.nodes.contains_key(&host) => host,
            _ => id,
        }
    }

    /// Number of live virtual identifiers created by re-weighting.
    pub fn virtual_node_count(&self) -> usize {
        // dsilint: allow(unordered-iter, commutative count over map keys)
        self.virtual_of.keys().filter(|id| self.nodes.contains_key(id)).count()
    }

    /// Arms (or disarms, with `None`) the virtual-node re-weighting
    /// mitigation evaluated by `Cluster::maybe_reweight`.
    ///
    /// # Panics
    /// Panics if the config is internally inconsistent.
    pub fn set_reweighting(&mut self, cfg: Option<ReweightConfig>) {
        if let Some(c) = &cfg {
            c.validate();
        }
        self.reweight = cfg;
    }

    /// Re-weighting actions taken so far, in execution order.
    pub fn reweight_actions(&self) -> &[ReweightAction] {
        &self.reweight_actions
    }

    /// Samples one load-ledger round at `now`: every live identifier's
    /// cumulative message count (from [`Metrics`]), stored MBRs and
    /// subscription gauge, attributed to its physical host. Call once per
    /// NPER round; purely observational (no RNG, no messages, no state
    /// change beyond the ledger).
    pub fn record_load_round(&mut self, now: SimTime) {
        let samples: Vec<(ChordId, ChordId, u64, u64, u64)> = self
            .node_order
            .iter()
            .map(|&id| {
                let dc = &self.nodes[&id];
                (
                    id,
                    self.physical_of(id),
                    self.metrics.node_message_count(id),
                    dc.mbr_count() as u64,
                    dc.subscription_count() as u64,
                )
            })
            .collect();
        self.load_ledger.record(now.as_ms(), samples);
    }

    // ------------------------------------------------------------------
    // Replica rebalancing (§VII)
    // ------------------------------------------------------------------

    /// Restores the range-replication invariant after a topology change
    /// (§VII): every surviving stored MBR ends up on exactly the covering
    /// set of its Eq. 10 key range (plus its origin while that node lives),
    /// and every registered similarity query is subscribed at every node of
    /// its Eq. 8 radius range. Surviving replicas are the copy source, so
    /// a record vanishes only when *all* of its holders failed — then it is
    /// gone until the soft-state refresh (the next shipment) restores it.
    ///
    /// Runs automatically from the churn operations unless disabled with
    /// [`Cluster::set_churn_repair`]. Copy messages are charged to metrics
    /// as internal MBR / query traffic: one neighbor-to-neighbor hop per
    /// copy, like range forwarding.
    pub fn rebalance_replicas(&mut self) {
        self.rebalance_inner(None);
    }

    /// Reliability-layer repair round (DESIGN.md §12): like
    /// [`Cluster::rebalance_replicas`], but skips records and queries
    /// already expired at `now` — healing a coverage hole must not
    /// resurrect state whose purge the expiry oracle requires — and routes
    /// every copy through the armed fault plan, so a copy lost after
    /// retries leaves the hole for the next round. The fault-injection
    /// harness runs one such round per NPER tick to restore the
    /// no-false-dismissal invariant within its eventual-completeness
    /// budget.
    pub fn repair_coverage(&mut self, now: SimTime) {
        self.rebalance_inner(Some(now));
    }

    fn rebalance_inner(&mut self, filter: Option<SimTime>) {
        // ---- MBR replicas ----
        // One entry per distinct surviving record, with a holder to copy
        // from.
        let mut records: Vec<(StoredMbr, ChordId)> = Vec::new();
        for &n in &self.node_order {
            for s in self.nodes[&n].summaries() {
                if filter.is_some_and(|now| now >= s.expires) {
                    continue;
                }
                if !records.iter().any(|(r, _)| s.matches(r)) {
                    records.push((s.to_stored(), n));
                }
            }
        }
        let mut wants: Vec<Vec<ChordId>> = Vec::with_capacity(records.len());
        for (rec, holder) in &records {
            let (lo_v, hi_v) = rec.mbr.first_interval();
            let (lo, hi) =
                interval_key_range(self.space, lo_v.clamp(-1.0, 1.0), hi_v.clamp(-1.0, 1.0));
            let mut want = dsi_chord::covering_nodes(&self.ring, lo, hi);
            if self.nodes.contains_key(&rec.origin) && !want.contains(&rec.origin) {
                want.push(rec.origin);
            }
            for &n in &want {
                if !self.nodes[&n].summaries().any(|s| s.matches(rec)) {
                    // The want-list stays global: a cross-side hole is
                    // suppressed (not healed) while the cut lasts, and the
                    // first post-heal repair round closes it (anti-entropy).
                    if self.partition_severed(*holder, n, MsgClass::MbrInternal) {
                        continue;
                    }
                    if let Some(res) = self.resolve_send(MsgClass::MbrInternal) {
                        if res.verdict == DeliveryVerdict::Lost {
                            // Copy lost after retries: the hole persists
                            // until the next repair round or shipment.
                            continue;
                        }
                    }
                    if self.measuring {
                        self.metrics.record_message(MsgClass::MbrInternal, *holder, n);
                        self.metrics.record_hops(MsgClass::MbrInternal, 1);
                        if self.tracer.is_enabled() {
                            self.tracer.single(MsgClass::MbrInternal.index() as u8, *holder, n);
                        }
                    }
                    self.nodes.get_mut(&n).expect("covering node is live").store_mbr(rec.clone());
                }
            }
            wants.push(want);
        }
        for n in self.node_order.clone() {
            self.nodes.get_mut(&n).expect("live node").retain_mbrs(|s| {
                records.iter().zip(&wants).any(|((r, _), w)| s.matches(r) && w.contains(&n))
            });
        }

        // ---- similarity-query replicas ----
        // The global registry is ground truth for posted queries; nodes
        // newly inside a query's radius range get its subscription. Stale
        // copies outside the range are harmless (aggregation only reads the
        // covering set) and expire with the query.
        let mut sims: Vec<SimilarityQuery> = self
            .queries
            .values()
            .filter_map(|q| match q {
                QueryRuntime::Similarity(sq) => Some(sq.clone()),
                _ => None,
            })
            .collect();
        sims.sort_unstable_by_key(|q| q.id);
        for q in sims {
            if filter.is_some_and(|now| q.expired(now)) {
                continue;
            }
            let (lo, hi) = radius_key_range(self.space, q.feature.first_real(), q.radius);
            for n in dsi_chord::covering_nodes(&self.ring, lo, hi) {
                if !self.nodes[&n].has_subscription(q.id) {
                    if self.partition_severed(q.aggregator, n, MsgClass::QueryInternal) {
                        continue;
                    }
                    if let Some(res) = self.resolve_send(MsgClass::QueryInternal) {
                        if res.verdict == DeliveryVerdict::Lost {
                            continue;
                        }
                    }
                    if self.measuring {
                        self.metrics.record_message(MsgClass::QueryInternal, q.aggregator, n);
                        self.metrics.record_hops(MsgClass::QueryInternal, 1);
                        if self.tracer.is_enabled() {
                            self.tracer.single(
                                MsgClass::QueryInternal.index() as u8,
                                q.aggregator,
                                n,
                            );
                        }
                    }
                    self.nodes
                        .get_mut(&n)
                        .expect("covering node is live")
                        .subscribe_similarity(q.clone());
                }
            }
        }

        // ---- aggregate-query replicas ----
        // Only the timed repair rounds heal aggregates: a healed replica
        // needs a `since` timestamp (it missed everything before the
        // repair), and churn rebalancing carries no clock. The copy is an
        // empty sketch pushed from the aggregator, charged like any other
        // internal query copy.
        if let Some(now) = filter {
            for i in 0..self.aggregates.len() {
                if self.aggregates[i].query.expired(now) {
                    continue;
                }
                let aggregator = self.aggregates[i].query.aggregator;
                let missing: Vec<ChordId> = self
                    .node_order
                    .iter()
                    .copied()
                    .filter(|&n| self.aggregates[i].slot(n).is_err())
                    .collect();
                for n in missing {
                    if self.partition_severed(aggregator, n, MsgClass::QueryInternal) {
                        continue;
                    }
                    if let Some(res) = self.resolve_send(MsgClass::QueryInternal) {
                        if res.verdict == DeliveryVerdict::Lost {
                            // Copy lost after retries: the coverage hole
                            // persists until the next repair round.
                            continue;
                        }
                    }
                    if self.measuring {
                        self.metrics.record_message(MsgClass::QueryInternal, aggregator, n);
                        self.metrics.record_hops(MsgClass::QueryInternal, 1);
                        if self.tracer.is_enabled() {
                            self.tracer.single(
                                MsgClass::QueryInternal.index() as u8,
                                aggregator,
                                n,
                            );
                        }
                    }
                    let sketch = self.aggregates[i].query.fresh_sketch();
                    if let Err(pos) = self.aggregates[i].slot(n) {
                        self.aggregates[i].replicas.insert(pos, (n, now, sketch));
                    }
                }
            }
        }
    }
}

impl Cluster<Ring> {
    // ------------------------------------------------------------------
    // Churn (§I, §VII: "accommodates dynamic changes ... without the need
    // to temporarily block the normal system operation") — Chord-specific:
    // it drives the join/crash/stabilization protocol directly.
    // ------------------------------------------------------------------

    /// Abrupt data-center failure. Its routing state and stored replicas
    /// vanish; streams it sourced go silent until re-homed with
    /// [`Cluster::rehome_stream`]. Queries the dead node aggregated are
    /// re-assigned to the new owner of their range's middle key, and
    /// [`Cluster::rebalance_replicas`] (unless disabled) re-establishes
    /// range replication from surviving copies — records whose every holder
    /// died stay gone until the next shipment (soft state).
    ///
    /// # Panics
    /// Panics if `id` is unknown or it is the last data center.
    pub fn crash_node(&mut self, id: ChordId) {
        assert!(self.nodes.contains_key(&id), "unknown data center {id}");
        assert!(self.node_order.len() > 1, "cannot crash the last data center");
        self.ring.crash(id);
        self.nodes.remove(&id);
        self.node_order.retain(|&n| n != id);
        // A crashed virtual identifier stops counting against its host;
        // virtuals whose *host* crashed fall back to self-attribution.
        self.virtual_of.remove(&id);
        self.location_cache.retain(|_, &mut source| source != id);
        // In-flight delayed effects addressed to the victim die with it.
        self.pending.retain(|p| p.to != id);
        // Chord repairs itself; the middleware keeps operating meanwhile.
        self.stabilize();
        // Re-assign orphaned aggregators.
        let mut fixes: Vec<(QueryId, ChordId)> = self
            .queries
            .iter()
            .filter_map(|(qid, q)| match q {
                QueryRuntime::Similarity(sq) if sq.aggregator == id => {
                    let (lo, hi) = radius_key_range(self.space, sq.feature.first_real(), sq.radius);
                    let mid = self.space.midpoint(lo, hi);
                    // During a partition the replacement aggregator must sit
                    // on the client's side, or responses could never reach it.
                    Some((
                        *qid,
                        self.ring.ideal_successor_from(sq.client, mid).expect("non-empty ring"),
                    ))
                }
                _ => None,
            })
            .collect();
        // Repair in query-id order so recovery replays byte-identically.
        fixes.sort_unstable_by_key(|&(qid, _)| qid);
        for (qid, agg) in fixes {
            if let Some(QueryRuntime::Similarity(sq)) = self.queries.get_mut(&qid) {
                sq.aggregator = agg;
            }
        }
        // The victim's aggregate replicas die with it (their window
        // contribution is simply gone); orphaned aggregate aggregators
        // move to the new owner of their query key. Iteration is id order.
        for a in &mut self.aggregates {
            if let Ok(pos) = a.slot(id) {
                a.replicas.remove(pos);
            }
            if a.query.aggregator == id {
                let key = self.space.hash_str(&format!("aggregate-query-{}", a.query.id));
                a.query.aggregator =
                    self.ring.ideal_successor_from(a.query.client, key).expect("non-empty ring");
            }
        }
        // Re-establish range replication from the surviving replicas.
        if self.repair_on_churn {
            self.rebalance_replicas();
        }
    }

    /// A new data center joins through the Chord protocol (bootstrap = the
    /// first live node) and starts with empty middleware state; summaries
    /// mapping into its interval flow to it from the next MBR shipment on.
    /// Returns its ring identifier.
    ///
    /// # Panics
    /// Panics if the label hashes onto an existing node.
    pub fn join_node(&mut self, label: &str) -> ChordId {
        let id = self.space.hash_str(label);
        assert!(!self.nodes.contains_key(&id), "identifier collision for {label}");
        let bootstrap = self.node_order[0];
        self.ring.join(id, bootstrap);
        self.stabilize();
        self.nodes.insert(id, DataCenter::new(id));
        self.node_order.push(id);
        // The joiner took over part of its successor's key interval; hand it
        // the replicas (and query subscriptions) it now covers.
        if self.repair_on_churn {
            self.rebalance_replicas();
        }
        id
    }

    /// Streams whose home data center is no longer alive.
    pub fn orphaned_streams(&self) -> Vec<StreamId> {
        self.streams.iter().filter(|s| !self.nodes.contains_key(&s.home)).map(|s| s.id).collect()
    }

    /// Re-homes an orphaned (or migrating) stream to the data center at
    /// `home_idx` and refreshes its location-service record.
    pub fn rehome_stream(&mut self, stream: StreamId, home_idx: usize, now: SimTime) {
        let home = self.node_order[home_idx];
        self.streams[stream as usize].home = home;
        let name = self.streams[stream as usize].name.clone();
        let key = stream_key(self.space, &name);
        let lookup = self.ring.route(home, key);
        if self.tracer.is_enabled() {
            self.tracer.set_now_ms(now.as_ms());
        }
        self.record_route(MsgClass::Query, MsgClass::QueryTransit, &lookup.path, false);
        self.nodes.get_mut(&lookup.owner).expect("owner is live").location_put(stream, home);
    }

    /// Virtual-node re-weighting: the mitigation lever for Fourier-space
    /// hotspots (correlated streams collapsing onto one arc, §IV-B).
    ///
    /// When armed via [`Cluster::set_reweighting`] and the ledger's
    /// per-host max/mean ratio has exceeded `trip_ratio` for `trip_rounds`
    /// consecutive rounds, the hottest identifier's owned arc
    /// `(pred, hot]` is split by joining `split_into` additional *virtual*
    /// identifiers at evenly spaced points inside it, each attributed (via
    /// the load ledger) to one of the currently coldest physical hosts.
    /// The virtual identifiers are full ring members joined through the
    /// ordinary Chord protocol, so routing and the Eq. 6 covering sets
    /// stay correct by construction; [`Cluster::repair_coverage`] then
    /// hands them the live replicas and subscriptions of their new
    /// intervals without resurrecting expired state.
    ///
    /// No-op (returns `None`) when disarmed, the streak is short, an
    /// action is still cooling down, the action budget is spent, or the
    /// hot arc is too narrow to split. Consumes no RNG.
    pub fn maybe_reweight(&mut self, now: SimTime) -> Option<ReweightAction> {
        let cfg = self.reweight?;
        if self.ring.partitioned() {
            // No re-weighting while the network is split: virtual joins
            // bootstrap through node 0 and would be visible on one side
            // only; the load signal itself is partition-skewed anyway.
            return None;
        }
        if self.reweight_actions.len() >= cfg.max_actions as usize {
            return None;
        }
        let round_idx = self.load_ledger.rounds().len().checked_sub(1)?;
        if let Some(last) = self.reweight_actions.last() {
            if round_idx.saturating_sub(last.round) <= cfg.cooldown_rounds as usize {
                return None;
            }
        }
        if self.load_ledger.hot_streak(cfg.trip_ratio) < cfg.trip_rounds {
            return None;
        }
        let last_round = &self.load_ledger.rounds()[round_idx];
        let hot = last_round.hottest()?.node;
        let hot_host = self.physical_of(hot);
        let pred = self.ring.ideal_predecessor(hot)?;
        if pred == hot {
            // Single-node ring: nothing to split against.
            return None;
        }
        let arc = self.space.distance_cw(pred, hot);
        let step = arc / (cfg.split_into as u64 + 1);
        if step == 0 {
            return None;
        }
        // Coldest physical hosts first (ties toward the lower id), the hot
        // identifier's own host excluded: they receive the new intervals.
        let mut cold: Vec<(ChordId, u64)> = last_round
            .by_host()
            .into_iter()
            .filter(|&(h, _)| h != hot_host && self.nodes.contains_key(&h))
            .collect();
        cold.sort_unstable_by_key(|&(h, m)| (m, h));
        if cold.is_empty() {
            return None;
        }
        let bootstrap = self.node_order[0];
        let mut new_ids = Vec::new();
        let mut hosts = Vec::new();
        for k in 1..=cfg.split_into as u64 {
            let id = self.space.add(pred, step * k);
            if self.nodes.contains_key(&id) {
                continue; // identifier collision: skip this split point
            }
            let host = cold[new_ids.len() % cold.len()].0;
            self.ring.join(id, bootstrap);
            self.stabilize();
            self.nodes.insert(id, DataCenter::new(id));
            self.node_order.push(id);
            self.virtual_of.insert(id, host);
            new_ids.push(id);
            hosts.push(host);
        }
        if new_ids.is_empty() {
            return None;
        }
        if self.tracer.is_enabled() {
            self.tracer.set_now_ms(now.as_ms());
        }
        // Hand the new identifiers the live state of their intervals; the
        // expiry filter keeps purged records purged.
        self.repair_coverage(now);
        let action = ReweightAction { round: round_idx, hot, new_ids, hosts, time_ms: now.as_ms() };
        self.reweight_actions.push(action.clone());
        Some(action)
    }

    /// Runs stabilization until the ring is fully consistent (bounded).
    /// A no-op when stabilization is disabled (the partition negative
    /// control) — the tables then stay however the last topology event
    /// left them.
    fn stabilize(&mut self) {
        if !self.stabilization_enabled {
            return;
        }
        for _ in 0..24 {
            if self.ring.is_fully_consistent() {
                return;
            }
            self.ring.stabilize_round();
            self.ring.fix_fingers_round();
        }
        debug_assert!(self.ring.is_fully_consistent(), "stabilization did not converge");
    }

    /// Enables or disables the periodic stabilization protocol (enabled by
    /// default). See the `stabilization_enabled` field for why anyone
    /// would turn it off.
    pub fn set_stabilization_enabled(&mut self, enabled: bool) {
        self.stabilization_enabled = enabled;
    }

    /// Splits the network into islands: `islands[k]` lists the data-center
    /// indices (into [`Cluster::node_ids`] order) placed on side `k + 1`;
    /// unlisted nodes (and out-of-range indices, ignored) stay on side 0.
    /// Virtual identifiers follow their physical host's side. Each side
    /// then runs suspicion + stabilization and becomes a self-consistent
    /// sub-ring (unless stabilization is disabled).
    pub fn split_partition(&mut self, islands: &[Vec<usize>]) {
        let mut assignment: Vec<(ChordId, u8)> = Vec::new();
        for (k, island) in islands.iter().enumerate() {
            for &idx in island {
                if let Some(&id) = self.node_order.get(idx) {
                    assignment.push((id, (k + 1) as u8));
                }
            }
        }
        // Virtual identifiers live or die with their host's connectivity.
        let mut hosted: Vec<(ChordId, ChordId)> =
            self.virtual_of.iter().map(|(&v, &h)| (v, h)).collect();
        hosted.sort_unstable();
        for (v, host) in hosted {
            let side = assignment.iter().find(|&&(id, _)| id == host).map_or(0, |&(_, s)| s);
            if side != 0 && !assignment.iter().any(|&(id, _)| id == v) {
                assignment.push((v, side));
            }
        }
        self.ring.split(assignment);
        // `Ring::is_fully_consistent` is side-relative, so the ordinary
        // loop converges every island to its own consistent sub-ring.
        self.stabilize();
    }

    /// Heals the partition: every link works again. With `reprobe` each
    /// node re-adopts the best parked suspect and stabilization re-knits
    /// one global ring; without it the suspicion lists are forgotten and
    /// the former islands stay routed apart — the split-brain fork the
    /// post-heal convergence oracle exists to catch.
    pub fn heal_partition(&mut self, reprobe: bool) {
        self.ring.heal(reprobe);
        if reprobe {
            self.stabilize();
        }
    }
}

impl<R: ContentRouter> Cluster<R> {
    // ------------------------------------------------------------------
    // Stream registration & updates
    // ------------------------------------------------------------------

    /// Registers a stream sourced at data center `home_idx` and "puts" its
    /// location record at the `h2` owner (§IV-D). Returns the stream id.
    pub fn register_stream(&mut self, name: &str, home_idx: usize) -> StreamId {
        let home = self.node_order[home_idx];
        let id = self.streams.len() as StreamId;
        let w = &self.cfg.workload;
        self.streams.push(StreamRuntime {
            id,
            name: name.to_string(),
            home,
            extractor: FeatureExtractor::new(
                w.window_len,
                w.num_coeffs,
                self.cfg.kind.normalization(),
            ),
            batcher: match w.mbr_max_width {
                Some(width) => MbrBatcher::new(w.mbr_batch).with_max_width(width),
                None => MbrBatcher::new(w.mbr_batch),
            },
            last_feature: None,
        });
        // Location put: route (home -> h2 owner) and store the record.
        let key = stream_key(self.space, name);
        let lookup = self.ring.route(home, key);
        self.record_route(MsgClass::Query, MsgClass::QueryTransit, &lookup.path, false);
        self.nodes.get_mut(&lookup.owner).expect("owner is live").location_put(id, home);
        id
    }

    /// Feeds one new value into a stream. When ζ summaries have accumulated,
    /// the resulting MBR is content-routed and replicated over its key range;
    /// the plan is returned for inspection.
    pub fn post_value(
        &mut self,
        stream: StreamId,
        value: f64,
        now: SimTime,
    ) -> Option<MulticastPlan> {
        if !self.aggregates.is_empty() {
            self.update_aggregates(stream, value, now);
        }
        let s = &mut self.streams[stream as usize];
        // An orphaned stream (its home data center crashed) is silent until
        // re-homed; the sensor's own window keeps sliding.
        let homed = self.nodes.contains_key(&s.home);
        // Allocation-free steady state: the cluster-held scratch and the
        // batcher's running bounds absorb every non-emitting tick without
        // heap traffic (bit-identical to the allocating path, see
        // `summarize_one`).
        let scratch = &mut self.ingest_scratch;
        if !s.extractor.update_scratch(value, scratch) {
            return None;
        }
        store_last_feature(s, scratch);
        if !homed {
            return None;
        }
        let mbr = s.batcher.push_reals(&scratch.reals)?;
        Some(self.replicate_mbr(stream, mbr, now))
    }

    /// Feeds one value into each of many streams at the same instant.
    ///
    /// The per-stream summarization work (sliding-DFT update, normalization,
    /// feature extraction, ζ-batching) is sharded across `std::thread::scope`
    /// workers — stream summarizers are mutually independent, which is the
    /// paper's own distribution argument turned inward onto one host. Any
    /// emitted MBRs are then content-routed *sequentially* in ascending
    /// stream order, so metrics, storage, and the returned plans — and
    /// therefore `SystemReport` — are bit-identical to calling
    /// [`Cluster::post_value`] once per entry in `values` order.
    ///
    /// Returns `(stream, emitted MBR, multicast plan)` for every stream
    /// whose batcher shipped a summary this tick.
    ///
    /// # Panics
    /// Panics if `values` is not sorted by strictly increasing stream id or
    /// names an unregistered stream.
    pub fn ingest_batch(
        &mut self,
        values: &[(StreamId, f64)],
        now: SimTime,
    ) -> Vec<(StreamId, Mbr, MulticastPlan)> {
        // dsilint: allow(hot-path-alloc, capacity-0 Vec is heap-free; only emissions grow it, and callers on the steady path use ingest_batch_into)
        let mut out = Vec::new();
        self.ingest_batch_into(values, now, &mut out);
        out
    }

    /// [`Cluster::ingest_batch`] writing emissions into a caller-owned
    /// buffer (cleared first). Under emission-heavy workloads the per-tick
    /// result vector is the batch path's last steady-state allocation;
    /// reusing its high-water capacity across ticks removes it, which is
    /// what keeps a 1-core batch from losing to a `post_value` loop.
    ///
    /// # Panics
    /// Panics if `values` is not sorted by strictly increasing stream id or
    /// names an unregistered stream.
    pub fn ingest_batch_into(
        &mut self,
        values: &[(StreamId, f64)],
        now: SimTime,
        out: &mut Vec<(StreamId, Mbr, MulticastPlan)>,
    ) {
        out.clear();
        if !self.aggregates.is_empty() {
            for &(sid, v) in values {
                self.update_aggregates(sid, v, now);
            }
        }
        let workers = if values.len() < PARALLEL_INGEST_MIN {
            1
        } else {
            self.ingest_workers.clamp(1, values.len())
        };
        if workers == 1 {
            // Sequential fallback (one effective worker): summarize and
            // route each stream inline — no task-list carve, no
            // thread-spawn, no per-batch emission-slot array and no second
            // pass — so a 1-core batch never loses to a `post_value` loop.
            // Emissions are staged in a reused buffer and routed after the
            // summarize loop, exactly like the parallel path below: the
            // loop then never takes `&mut self` whole, so field base
            // pointers stay hoisted across iterations.
            let mut pending = std::mem::take(&mut self.pending_emit);
            pending.clear();
            {
                let nodes = &self.nodes;
                let streams = &mut self.streams;
                let scratch = &mut self.ingest_scratch;
                // The sortedness contract is checked inline (fused with the
                // loop instead of a separate pre-pass over the batch).
                let mut prev: i64 = -1;
                for &(sid, v) in values {
                    assert!(
                        i64::from(sid) > prev,
                        "ingest_batch requires strictly increasing stream ids"
                    );
                    prev = i64::from(sid);
                    if let Some(mbr) = summarize_one(nodes, &mut streams[sid as usize], v, scratch)
                    {
                        pending.push((sid, mbr));
                    }
                }
            }
            for (sid, mbr) in pending.drain(..) {
                let (mbr, plan) = self.replicate_mbr_ret(sid, mbr, now);
                out.push((sid, mbr, plan));
            }
            self.pending_emit = pending;
            return;
        }
        // The carve below requires sorted ids, so the parallel path checks
        // the whole batch up front.
        assert!(
            values.len() < 2 || values.iter().zip(&values[1..]).all(|(a, b)| a.0 < b.0),
            "ingest_batch requires strictly increasing stream ids"
        );
        // Reused emission slots: `clear` + `resize` keep the high-water
        // capacity across ticks.
        let mut emitted = std::mem::take(&mut self.emit_scratch);
        emitted.clear();
        emitted.resize(values.len(), None);
        {
            // Carve disjoint `&mut` views of the touched streams, in order.
            // dsilint: allow(hot-path-alloc, parallel lane only — batches under PARALLEL_INGEST_MIN never get here, and the §14 contract covers the sequential path; scoped threads allocate by design)
            let mut tasks: Vec<(&mut StreamRuntime, f64)> = Vec::with_capacity(values.len());
            let mut rest: &mut [StreamRuntime] = &mut self.streams;
            let mut offset = 0usize;
            for &(sid, v) in values {
                let (_, tail) = rest.split_at_mut(sid as usize - offset);
                let (s, tail) = tail.split_first_mut().expect("stream id in range");
                rest = tail;
                offset = sid as usize + 1;
                tasks.push((s, v));
            }
            let nodes = &self.nodes;
            let chunk = tasks.len().div_ceil(workers);
            std::thread::scope(|scope| {
                for (t_chunk, e_chunk) in tasks.chunks_mut(chunk).zip(emitted.chunks_mut(chunk)) {
                    scope.spawn(move || summarize_chunk(nodes, t_chunk, e_chunk));
                }
            });
        }
        for (&(sid, _), slot) in values.iter().zip(emitted.iter_mut()) {
            if let Some(mbr) = slot.take() {
                let (mbr, plan) = self.replicate_mbr_ret(sid, mbr, now);
                out.push((sid, mbr, plan));
            }
        }
        self.emit_scratch = emitted;
    }

    /// Feeds one stream value into every aggregate-query replica at the
    /// stream's home node. Allocation-free in steady state: the replica
    /// lookup is a binary search and [`dsi_sketch::EcmSketch::update`]
    /// writes into preallocated bucket storage, so an active aggregate
    /// query keeps non-emitting ingest ticks off the heap (the
    /// zero-alloc contract, DESIGN.md §14). Orphaned streams (home not
    /// in any replica set) contribute nothing, like their silent MBRs.
    #[inline]
    fn update_aggregates(&mut self, stream: StreamId, value: f64, now: SimTime) {
        let home = self.streams[stream as usize].home;
        let at = now.as_ms();
        for a in &mut self.aggregates {
            if let Ok(pos) = a.slot(home) {
                let bin = quantize(value, a.query.spec.bins);
                a.replicas[pos].2.update(bin, at);
            }
        }
    }

    /// Content-routes an MBR from the stream's home to every node covering
    /// its key range (§IV-G), storing a replica (with BSPAN expiry) at each.
    pub fn replicate_mbr(&mut self, stream: StreamId, mbr: Mbr, now: SimTime) -> MulticastPlan {
        self.replicate_mbr_ret(stream, mbr, now).1
    }

    /// [`Cluster::replicate_mbr`] that also hands the summary back: the
    /// batch ingest path returns every emitted MBR to its caller, and
    /// re-using the owned value avoids one clone per emission (the home
    /// replica usually comes from a delivery clone anyway). Kept out of
    /// line so the per-item summarization loops stay tight — emissions are
    /// the rare path.
    #[inline(never)]
    // dsilint: allow(hot-path-alloc, cold boundary: MBR emission is the rare path — §14 pins non-emitting steady-state ticks, and emission owns its plan buffers and replica clones)
    fn replicate_mbr_ret(
        &mut self,
        stream: StreamId,
        mbr: Mbr,
        now: SimTime,
    ) -> (Mbr, MulticastPlan) {
        let s = &self.streams[stream as usize];
        let home = s.home;
        let (lo_v, hi_v) = mbr.first_interval();
        let (lo, hi) = interval_key_range(self.space, lo_v.clamp(-1.0, 1.0), hi_v.clamp(-1.0, 1.0));
        if self.reliability.is_some() {
            let plan = self.replicate_mbr_reliable(stream, mbr.clone(), now, home, lo, hi);
            return (mbr, plan);
        }
        let plan = multicast(&self.ring, home, lo, hi, self.cfg.strategy);

        if self.measuring {
            self.metrics.record_event(InputEvent::Mbr);
            self.metrics.record_route(
                MsgClass::MbrOriginated,
                MsgClass::MbrTransit,
                &plan.route_path,
            );
            self.metrics.record_hops(MsgClass::MbrOriginated, plan.route_hops);
            for (from, to) in plan.forward_edges() {
                self.metrics.record_message(MsgClass::MbrInternal, from, to);
            }
            for d in plan.deliveries.iter().filter(|d| d.node != plan.entry) {
                self.metrics.record_hops(MsgClass::MbrInternal, d.hops);
            }
            if self.tracer.is_enabled() {
                self.tracer.set_now_ms(now.as_ms());
                plan.trace_into(
                    &mut self.tracer,
                    MsgClass::MbrOriginated.index() as u8,
                    MsgClass::MbrTransit.index() as u8,
                    MsgClass::MbrInternal.index() as u8,
                    lo,
                    hi,
                );
            }
        }

        let expires = now + self.cfg.workload.bspan_ms;
        let stored = StoredMbr { stream, mbr, origin: home, expires };
        for d in &plan.deliveries {
            self.nodes.get_mut(&d.node).expect("delivery node is live").store_mbr(stored.clone());
        }
        // The summary is also stored locally at the source (§IV-A); when the
        // multicast already delivered there, the owned value goes back to
        // the caller unconsumed.
        let mbr = if plan.deliveries.iter().any(|d| d.node == home) {
            stored.mbr
        } else {
            let mbr = stored.mbr.clone();
            self.nodes.get_mut(&home).expect("home is live").store_mbr(stored);
            mbr
        };
        (mbr, plan)
    }

    /// [`Cluster::replicate_mbr`] under an armed fault plan: the multicast
    /// fails over dropped hops via the ring's successor lists, charges the
    /// *achieved* plan (messages are charged once, at send time; dropped
    /// attempts only count retries), parks `Delay`ed replica copies for the
    /// target's next cycle, and on total loss degrades to the §IV-A local
    /// store with coverage 0.
    fn replicate_mbr_reliable(
        &mut self,
        stream: StreamId,
        mbr: Mbr,
        now: SimTime,
        home: ChordId,
        lo: ChordId,
        hi: ChordId,
    ) -> MulticastPlan {
        let (out, log, severed) = reliable_multicast(
            &self.ring,
            self.reliability.as_mut().expect("reliable path requires an armed plan"),
            self.cfg.strategy,
            home,
            lo,
            hi,
            (MsgClass::MbrOriginated, MsgClass::MbrInternal),
        );
        if self.measuring {
            self.metrics.record_event(InputEvent::Mbr);
            self.metrics.record_coverage(out.coverage);
        }
        for (class, res) in &log {
            self.record_resolution(*class, res);
        }
        self.record_severed(&severed);
        let expires = now + self.cfg.workload.bspan_ms;
        let stored = StoredMbr { stream, mbr, origin: home, expires };
        let Some(plan) = out.plan else {
            // Every entry attempt exhausted its retry budget: nothing on
            // the wire took effect. The summary still lands locally at the
            // source (§IV-A); the next shipment or repair round refreshes
            // the range.
            self.nodes.get_mut(&home).expect("home is live").store_mbr(stored);
            return MulticastPlan {
                origin: home,
                entry: home,
                route_hops: 0,
                deliveries: Vec::new(),
                forward_messages: 0,
                route_path: vec![home],
            };
        };
        if self.measuring {
            self.metrics.record_route(
                MsgClass::MbrOriginated,
                MsgClass::MbrTransit,
                &plan.route_path,
            );
            self.metrics.record_hops(MsgClass::MbrOriginated, plan.route_hops);
            for (from, to) in plan.forward_edges() {
                self.metrics.record_message(MsgClass::MbrInternal, from, to);
            }
            for d in plan.deliveries.iter().filter(|d| d.node != plan.entry) {
                self.metrics.record_hops(MsgClass::MbrInternal, d.hops);
            }
            if self.tracer.is_enabled() {
                self.tracer.set_now_ms(now.as_ms());
                if out.skipped.is_empty() {
                    plan.trace_into(
                        &mut self.tracer,
                        MsgClass::MbrOriginated.index() as u8,
                        MsgClass::MbrTransit.index() as u8,
                        MsgClass::MbrInternal.index() as u8,
                        lo,
                        hi,
                    );
                } else {
                    // Degraded plan: trace the achieved tree without the
                    // multicast meta, so the delivery-set audit only vets
                    // complete multicasts.
                    plan.trace_tree_into(
                        &mut self.tracer,
                        MsgClass::MbrOriginated.index() as u8,
                        MsgClass::MbrTransit.index() as u8,
                        MsgClass::MbrInternal.index() as u8,
                    );
                }
            }
        }
        let due = now + self.cfg.workload.nper_ms;
        for d in &plan.deliveries {
            if out.late.contains(&d.node) {
                self.pending.push(PendingDelivery {
                    due,
                    to: d.node,
                    effect: PendingEffect::StoreMbr(stored.clone()),
                });
            } else {
                self.nodes
                    .get_mut(&d.node)
                    .expect("delivery node is live")
                    .store_mbr(stored.clone());
            }
        }
        // The summary is also stored locally at the source (§IV-A).
        if !plan.deliveries.iter().any(|d| d.node == home) {
            self.nodes.get_mut(&home).expect("home is live").store_mbr(stored);
        }
        plan
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Posts a continuous similarity query from data center `client_idx`.
    /// The query is replicated over the key range `[h(q1 - r), h(q1 + r)]`
    /// (§IV-E); the node covering the middle of the range becomes its
    /// aggregator (§IV-F). Returns the query id.
    pub fn post_similarity_query(
        &mut self,
        client_idx: usize,
        target: Vec<f64>,
        radius: f64,
        lifespan_ms: u64,
        now: SimTime,
    ) -> QueryId {
        assert_eq!(
            target.len(),
            self.cfg.workload.window_len,
            "query sequence must match the window length"
        );
        let client = self.node_order[client_idx];
        let id = self.next_query;
        self.next_query += 1;

        let mut q = SimilarityQuery::from_target(
            id,
            client,
            target,
            radius,
            self.cfg.kind,
            self.cfg.workload.num_coeffs,
            0, // aggregator fixed below
            now + lifespan_ms,
        );
        let (lo, hi) = radius_key_range(self.space, q.feature.first_real(), radius);
        let mid = self.space.midpoint(lo, hi);
        // Side-aware: a query posted during a partition aggregates on the
        // client's reachable side (global owner when the network is whole).
        q.aggregator = self.ring.ideal_successor_from(client, mid).expect("ring non-empty");

        if self.reliability.is_some() {
            return self.post_similarity_reliable(q, lo, hi, now);
        }
        if self.ring.partitioned() {
            // Lossless sends, but the cut still shrinks the reachable
            // covering set: record the honest dissemination fraction so
            // responses are tagged as partial answers, exactly like the
            // reliable path records its achieved coverage.
            self.record_query_coverage(id, reachable_fraction(&self.ring, client, lo, hi));
        }
        let plan = multicast(&self.ring, client, lo, hi, self.cfg.strategy);
        if self.measuring {
            self.metrics.record_event(InputEvent::Query);
            self.metrics.record_route(MsgClass::Query, MsgClass::QueryTransit, &plan.route_path);
            self.metrics.record_hops(MsgClass::Query, plan.route_hops);
            for (from, to) in plan.forward_edges() {
                self.metrics.record_message(MsgClass::QueryInternal, from, to);
            }
            for d in plan.deliveries.iter().filter(|d| d.node != plan.entry) {
                self.metrics.record_hops(MsgClass::QueryInternal, d.hops);
            }
            if self.tracer.is_enabled() {
                self.tracer.set_now_ms(now.as_ms());
                plan.trace_into(
                    &mut self.tracer,
                    MsgClass::Query.index() as u8,
                    MsgClass::QueryTransit.index() as u8,
                    MsgClass::QueryInternal.index() as u8,
                    lo,
                    hi,
                );
            }
        }
        for d in &plan.deliveries {
            self.nodes
                .get_mut(&d.node)
                .expect("delivery node is live")
                .subscribe_similarity(q.clone());
        }
        self.queries.insert(id, QueryRuntime::Similarity(q));
        id
    }

    /// [`Cluster::post_similarity_query`] under an armed fault plan:
    /// dissemination fails over dropped hops, `Delay`ed subscriptions are
    /// parked for the target's next cycle, and the achieved coverage is
    /// recorded so responses are tagged as partial answers.
    fn post_similarity_reliable(
        &mut self,
        q: SimilarityQuery,
        lo: ChordId,
        hi: ChordId,
        now: SimTime,
    ) -> QueryId {
        let id = q.id;
        let client = q.client;
        let (out, log, severed) = reliable_multicast(
            &self.ring,
            self.reliability.as_mut().expect("reliable path requires an armed plan"),
            self.cfg.strategy,
            client,
            lo,
            hi,
            (MsgClass::Query, MsgClass::QueryInternal),
        );
        if self.measuring {
            self.metrics.record_event(InputEvent::Query);
        }
        for (class, res) in &log {
            self.record_resolution(*class, res);
        }
        self.record_severed(&severed);
        self.record_query_coverage(id, out.coverage);
        let Some(plan) = out.plan else {
            // Retry budget exhausted on every entry candidate: the query
            // is registered (the client owns it) but no node subscribed.
            // Responses carry coverage 0 until a repair round heals the
            // range.
            self.queries.insert(id, QueryRuntime::Similarity(q));
            return id;
        };
        if self.measuring {
            self.metrics.record_route(MsgClass::Query, MsgClass::QueryTransit, &plan.route_path);
            self.metrics.record_hops(MsgClass::Query, plan.route_hops);
            for (from, to) in plan.forward_edges() {
                self.metrics.record_message(MsgClass::QueryInternal, from, to);
            }
            for d in plan.deliveries.iter().filter(|d| d.node != plan.entry) {
                self.metrics.record_hops(MsgClass::QueryInternal, d.hops);
            }
            if self.tracer.is_enabled() {
                self.tracer.set_now_ms(now.as_ms());
                if out.skipped.is_empty() {
                    plan.trace_into(
                        &mut self.tracer,
                        MsgClass::Query.index() as u8,
                        MsgClass::QueryTransit.index() as u8,
                        MsgClass::QueryInternal.index() as u8,
                        lo,
                        hi,
                    );
                } else {
                    plan.trace_tree_into(
                        &mut self.tracer,
                        MsgClass::Query.index() as u8,
                        MsgClass::QueryTransit.index() as u8,
                        MsgClass::QueryInternal.index() as u8,
                    );
                }
            }
        }
        let due = now + self.cfg.workload.nper_ms;
        for d in &plan.deliveries {
            if out.late.contains(&d.node) {
                self.pending.push(PendingDelivery {
                    due,
                    to: d.node,
                    effect: PendingEffect::SubscribeSimilarity(q.clone()),
                });
            } else {
                self.nodes
                    .get_mut(&d.node)
                    .expect("delivery node is live")
                    .subscribe_similarity(q.clone());
            }
        }
        self.queries.insert(id, QueryRuntime::Similarity(q));
        id
    }

    /// Posts a continuous aggregate query from data center `client_idx`
    /// (DESIGN.md §15): every live node receives an empty ECM-sketch
    /// replica via a full-ring multicast (the population of an aggregate
    /// is *all* streams, so its "key range" is the whole identifier
    /// circle), and the successor of the query key becomes its
    /// aggregator. Each notify cycle the aggregator collects the
    /// replicas up the multicast tree — partial sketches merge at the
    /// middle nodes — and pushes one coverage-tagged
    /// [`AggregateNotification`] to the client. Returns the query id.
    pub fn post_aggregate_query(
        &mut self,
        client_idx: usize,
        spec: AggregateSpec,
        now: SimTime,
    ) -> QueryId {
        let client = self.node_order[client_idx];
        let id = self.next_query;
        self.next_query += 1;
        // Replicas must hash identically, so the seed is a pure function
        // of the query id (SplitMix64 increment as the mixing constant).
        let seed = (id).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x6A09_E667_F3BC_C908;
        let params =
            SketchParams { eps: spec.eps, delta: spec.delta, window_ms: spec.window_ms, seed };
        let dims = spec.forced_dims.unwrap_or_else(|| SketchDims::for_bound(spec.eps, spec.delta));
        let key = self.space.hash_str(&format!("aggregate-query-{id}"));
        let aggregator = self.ring.ideal_successor_from(client, key).expect("ring non-empty");
        let q = AggregateQuery {
            id,
            client,
            aggregator,
            spec,
            params,
            dims,
            expires: now + spec.lifespan_ms,
        };
        // Full-circle range starting just past the client: covers every
        // live node, and the delivery-set audit's brute-force covering
        // set of `(client, client]` is exactly the whole ring.
        let lo = self.space.add(client, 1);
        let hi = client;
        if self.reliability.is_some() {
            return self.post_aggregate_reliable(q, lo, hi, now);
        }
        let plan = multicast(&self.ring, client, lo, hi, self.cfg.strategy);
        if self.measuring {
            self.metrics.record_event(InputEvent::Query);
            self.metrics.record_route(MsgClass::Query, MsgClass::QueryTransit, &plan.route_path);
            self.metrics.record_hops(MsgClass::Query, plan.route_hops);
            for (from, to) in plan.forward_edges() {
                self.metrics.record_message(MsgClass::QueryInternal, from, to);
            }
            for d in plan.deliveries.iter().filter(|d| d.node != plan.entry) {
                self.metrics.record_hops(MsgClass::QueryInternal, d.hops);
            }
            if self.tracer.is_enabled() {
                self.tracer.set_now_ms(now.as_ms());
                plan.trace_into(
                    &mut self.tracer,
                    MsgClass::Query.index() as u8,
                    MsgClass::QueryTransit.index() as u8,
                    MsgClass::QueryInternal.index() as u8,
                    lo,
                    hi,
                );
            }
        }
        let mut rt = AggregateRuntime { query: q, replicas: Vec::new() };
        for d in &plan.deliveries {
            if let Err(pos) = rt.slot(d.node) {
                rt.replicas.insert(pos, (d.node, now, rt.query.fresh_sketch()));
            }
        }
        self.aggregates.push(rt);
        id
    }

    /// [`Cluster::post_aggregate_query`] under an armed fault plan:
    /// dissemination fails over dropped hops, `Delay`ed replica
    /// installations are parked for the target's next cycle (their
    /// sketches then start counting at the drain time), and the achieved
    /// coverage is recorded so early notifications are tagged partial.
    fn post_aggregate_reliable(
        &mut self,
        q: AggregateQuery,
        lo: ChordId,
        hi: ChordId,
        now: SimTime,
    ) -> QueryId {
        let id = q.id;
        let client = q.client;
        let (out, log, severed) = reliable_multicast(
            &self.ring,
            self.reliability.as_mut().expect("reliable path requires an armed plan"),
            self.cfg.strategy,
            client,
            lo,
            hi,
            (MsgClass::Query, MsgClass::QueryInternal),
        );
        if self.measuring {
            self.metrics.record_event(InputEvent::Query);
        }
        for (class, res) in &log {
            self.record_resolution(*class, res);
        }
        self.record_severed(&severed);
        self.record_query_coverage(id, out.coverage);
        let Some(plan) = out.plan else {
            // Retry budget exhausted on every entry candidate: the query
            // is registered with zero replicas; notifications carry
            // coverage 0 until repair rounds install sketches.
            self.aggregates.push(AggregateRuntime { query: q, replicas: Vec::new() });
            return id;
        };
        if self.measuring {
            self.metrics.record_route(MsgClass::Query, MsgClass::QueryTransit, &plan.route_path);
            self.metrics.record_hops(MsgClass::Query, plan.route_hops);
            for (from, to) in plan.forward_edges() {
                self.metrics.record_message(MsgClass::QueryInternal, from, to);
            }
            for d in plan.deliveries.iter().filter(|d| d.node != plan.entry) {
                self.metrics.record_hops(MsgClass::QueryInternal, d.hops);
            }
            if self.tracer.is_enabled() {
                self.tracer.set_now_ms(now.as_ms());
                if out.skipped.is_empty() {
                    plan.trace_into(
                        &mut self.tracer,
                        MsgClass::Query.index() as u8,
                        MsgClass::QueryTransit.index() as u8,
                        MsgClass::QueryInternal.index() as u8,
                        lo,
                        hi,
                    );
                } else {
                    plan.trace_tree_into(
                        &mut self.tracer,
                        MsgClass::Query.index() as u8,
                        MsgClass::QueryTransit.index() as u8,
                        MsgClass::QueryInternal.index() as u8,
                    );
                }
            }
        }
        let due = now + self.cfg.workload.nper_ms;
        let mut rt = AggregateRuntime { query: q, replicas: Vec::new() };
        for d in &plan.deliveries {
            if out.late.contains(&d.node) {
                self.pending.push(PendingDelivery {
                    due,
                    to: d.node,
                    effect: PendingEffect::SubscribeAggregate { query: id },
                });
            } else if let Err(pos) = rt.slot(d.node) {
                rt.replicas.insert(pos, (d.node, now, rt.query.fresh_sketch()));
            }
        }
        self.aggregates.push(rt);
        id
    }

    /// Posts a continuous inner-product query (§IV-D): resolve the stream's
    /// source through the location service (`h2`), then subscribe at the
    /// source. Returns the query id.
    pub fn post_inner_product_query(
        &mut self,
        client_idx: usize,
        stream: StreamId,
        indices: Vec<usize>,
        weights: Vec<f64>,
        lifespan_ms: u64,
        now: SimTime,
    ) -> QueryId {
        let client = self.node_order[client_idx];
        let q = InnerProductQuery::new(0, client, stream, indices, weights, now + lifespan_ms);
        if self.tracer.is_enabled() {
            self.tracer.set_now_ms(now.as_ms());
        }
        self.submit_inner_product(client, q, now)
    }

    /// Posts a pre-built inner-product query (a point / range / alerting
    /// query from the [`InnerProductQuery`] constructors) from data center
    /// `client_idx`. The query's id, client and expiry are assigned here.
    pub fn post_inner_product(
        &mut self,
        client_idx: usize,
        mut query: InnerProductQuery,
        lifespan_ms: u64,
        now: SimTime,
    ) -> QueryId {
        let client = self.node_order[client_idx];
        query.client = client;
        query.expires = now + lifespan_ms;
        if self.tracer.is_enabled() {
            self.tracer.set_now_ms(now.as_ms());
        }
        self.submit_inner_product(client, query, now)
    }

    fn submit_inner_product(
        &mut self,
        client: ChordId,
        mut q: InnerProductQuery,
        now: SimTime,
    ) -> QueryId {
        let id = self.next_query;
        self.next_query += 1;
        q.id = id;
        let stream = q.stream;

        // §IV-D: the client "remembers the mapping between SID and Ps so
        // that next time it does not need to retrieve it".
        let source = match self.location_cache.get(&(client, stream)) {
            Some(&cached) if self.ring.contains(cached) => {
                self.location_cache_hits += 1;
                cached
            }
            _ => {
                // "get" at the h2 owner...
                let get_res = self.resolve_send(MsgClass::Query);
                if get_res.is_some_and(|r| r.verdict == DeliveryVerdict::Lost) {
                    // The lookup exhausted its retry budget: client-side
                    // this is indistinguishable from a missing record.
                    self.location_misses += 1;
                    self.record_query_coverage(id, 0.0);
                    return id;
                }
                let name = self.streams[stream as usize].name.clone();
                let key = stream_key(self.space, &name);
                let get = self.ring.route(client, key);
                let record = self.nodes[&get.owner].location_get(stream);
                if self.measuring {
                    self.record_route(MsgClass::Query, MsgClass::QueryTransit, &get.path, false);
                }
                // ...and the reply returns to the client.
                let reply_res = self.resolve_send(MsgClass::Response);
                if reply_res.is_some_and(|r| r.verdict == DeliveryVerdict::Lost) {
                    // The reply never made it back: same client-side
                    // observation as a missing record.
                    self.location_misses += 1;
                    self.record_query_coverage(id, 0.0);
                    return id;
                }
                let reply = self.ring.route(get.owner, client);
                if self.measuring {
                    self.record_route(
                        MsgClass::Response,
                        MsgClass::ResponseTransit,
                        &reply.path,
                        false,
                    );
                }
                match record {
                    Some(source) => {
                        self.location_cache.insert((client, stream), source);
                        source
                    }
                    None => {
                        // Record lost to churn and not yet refreshed: the
                        // client learns nothing this round (it may repost).
                        self.location_misses += 1;
                        self.record_query_coverage(id, 0.0);
                        return id;
                    }
                }
            }
        };

        // The query itself is routed to the source node.
        if self.partition_severed(client, source, MsgClass::Query) {
            // The source sits across a partition cut (stale cache entry or
            // a pre-split location record): no subscription can be placed;
            // coverage 0 flags the honest degraded answer until reposted
            // after heal.
            self.record_query_coverage(id, 0.0);
            self.queries.insert(id, QueryRuntime::InnerProduct(q));
            return id;
        }
        let send_res = self.resolve_send(MsgClass::Query);
        if send_res.is_some_and(|r| r.verdict == DeliveryVerdict::Lost) {
            // Retry budget exhausted: the query is registered client-side
            // but no subscription exists; coverage 0 flags the degraded
            // answer (no pushes until reposted).
            self.record_query_coverage(id, 0.0);
            self.queries.insert(id, QueryRuntime::InnerProduct(q));
            return id;
        }
        let send = self.ring.route(client, source);
        if self.measuring {
            self.metrics.record_event(InputEvent::Query);
            self.record_route(MsgClass::Query, MsgClass::QueryTransit, &send.path, true);
            self.metrics.record_hops(MsgClass::Query, send.hops());
        }
        self.record_query_coverage(id, 1.0);
        if send_res.is_some_and(|r| r.verdict == DeliveryVerdict::Late) {
            self.pending.push(PendingDelivery {
                due: now + self.cfg.workload.nper_ms,
                to: source,
                effect: PendingEffect::SubscribeInnerProduct(q.clone()),
            });
        } else {
            self.nodes.get_mut(&source).expect("source is live").subscribe_inner_product(q.clone());
        }
        self.queries.insert(id, QueryRuntime::InnerProduct(q));
        id
    }

    // ------------------------------------------------------------------
    // Periodic processing (NPER)
    // ------------------------------------------------------------------

    /// Runs one notify cycle for data center `node` at time `now` (§IV-F):
    /// purge expired state, exchange aggregated similarity information with
    /// ring neighbors, and — if this node aggregates any query — verify
    /// candidates and push a response to the client. Inner-product
    /// subscriptions sourced here push their current value.
    pub fn notify_cycle(&mut self, node: ChordId, now: SimTime) {
        if self.tracer.is_enabled() {
            self.tracer.set_now_ms(now.as_ms());
        }
        // Delayed messages re-deliver at the receiver's refresh tick,
        // before this cycle's purge (a late copy of expired state is
        // dropped inside the drain).
        if self.reliability.is_some() {
            self.drain_pending(node, now);
        }
        let dc = self.nodes.get_mut(&node).expect("live node");
        dc.purge_expired(now);
        let has_subs = dc.has_active_subscriptions(now);

        // Soft-state location refresh: if churn moved (or lost) the h2
        // record of a stream homed here, re-register it. Free in the steady
        // state; one routed message when the owner changed.
        let homed: Vec<(StreamId, ChordId)> = self
            .streams
            .iter()
            .filter(|s| s.home == node)
            .map(|s| (s.id, stream_key(self.space, &s.name)))
            .collect();
        for (sid, key) in homed {
            // Side-aware: during a partition the stream re-registers with
            // the owner on its *own* side (split-brain serving); the first
            // whole-network refresh after heal re-registers globally — the
            // NPER soft-state rounds double as post-heal anti-entropy.
            let owner = self.ring.ideal_successor_from(node, key).expect("non-empty ring");
            if self.nodes[&owner].location_get(sid) != Some(node) {
                let res = self.resolve_send(MsgClass::Query);
                if res.is_some_and(|r| r.verdict == DeliveryVerdict::Lost) {
                    // Refresh lost after retries; the next NPER tick
                    // retries it naturally (soft state).
                    continue;
                }
                let lookup = self.ring.route(node, key);
                self.record_route(MsgClass::Query, MsgClass::QueryTransit, &lookup.path, false);
                if res.is_some_and(|r| r.verdict == DeliveryVerdict::Late) {
                    self.pending.push(PendingDelivery {
                        due: now + self.cfg.workload.nper_ms,
                        to: owner,
                        effect: PendingEffect::LocationPut { stream: sid, source: node },
                    });
                } else {
                    self.nodes.get_mut(&owner).expect("owner is live").location_put(sid, node);
                }
            }
        }

        // Neighbor information exchange: one aggregated message to each ring
        // neighbor per period (component f of Fig. 6(a)).
        if has_subs {
            let succ = self.ring.successor_of(node);
            let pred = self.ring.ideal_predecessor_from(node, node).unwrap_or(succ);
            // A lost exchange only skips the charge: the aggregation model
            // reads the converged in-range state, and the next NPER round
            // repeats the exchange (soft-state redundancy).
            if succ != node {
                let res = self.resolve_send(MsgClass::ResponseInternal);
                if !res.is_some_and(|r| r.verdict == DeliveryVerdict::Lost) && self.measuring {
                    self.metrics.record_message(MsgClass::ResponseInternal, node, succ);
                    self.metrics.record_hops(MsgClass::ResponseInternal, 1);
                    if self.tracer.is_enabled() {
                        self.tracer.single(MsgClass::ResponseInternal.index() as u8, node, succ);
                    }
                }
            }
            if pred != node && pred != succ {
                let res = self.resolve_send(MsgClass::ResponseInternal);
                if !res.is_some_and(|r| r.verdict == DeliveryVerdict::Lost) && self.measuring {
                    self.metrics.record_message(MsgClass::ResponseInternal, node, pred);
                    self.metrics.record_hops(MsgClass::ResponseInternal, 1);
                    if self.tracer.is_enabled() {
                        self.tracer.single(MsgClass::ResponseInternal.index() as u8, node, pred);
                    }
                }
            }
        }

        // Response aggregation for queries whose middle node this is.
        let mut aggregated: Vec<SimilarityQuery> = self
            .queries
            .values()
            .filter_map(|q| match q {
                QueryRuntime::Similarity(sq) if sq.aggregator == node && !sq.expired(now) => {
                    Some(sq.clone())
                }
                _ => None,
            })
            .collect();
        // Id order, not HashMap order: response traffic (and its causal
        // trace) must be reproducible under a pinned seed.
        aggregated.sort_unstable_by_key(|q| q.id);
        for q in aggregated {
            let matches = self.aggregate_and_verify(&q, now);
            if self.partition_severed(node, q.client, MsgClass::Response) {
                // The client sits on the other side of a partition: no
                // response can cross the cut. The next NPER cycle after
                // heal re-aggregates and delivers.
                continue;
            }
            let res = self.resolve_send(MsgClass::Response);
            if res.is_some_and(|r| r.verdict == DeliveryVerdict::Lost) {
                // Response lost after retries: the client hears nothing
                // this period; the next NPER cycle re-aggregates and
                // resends (the event is charged only when a response
                // actually goes out).
                continue;
            }
            // Periodic response to the client, routed over the overlay.
            let path = self.ring.route(node, q.client).path;
            if self.measuring {
                self.metrics.record_event(InputEvent::Response);
                self.record_route(MsgClass::Response, MsgClass::ResponseTransit, &path, true);
                self.metrics.record_hops(MsgClass::Response, (path.len().saturating_sub(1)) as u32);
            }
            if res.is_some_and(|r| r.verdict == DeliveryVerdict::Late) {
                if !matches.is_empty() {
                    self.pending.push(PendingDelivery {
                        due: now + self.cfg.workload.nper_ms,
                        to: q.client,
                        effect: PendingEffect::Notify { query: q.id, matches, at: now },
                    });
                }
                continue;
            }
            let mut coverage = self.query_coverage.get(&q.id).copied().unwrap_or(1.0);
            if self.ring.partitioned() {
                // A query disseminated before the split has subscriptions
                // on both sides, but this aggregator only hears its own:
                // clamp to what it can actually reach right now.
                let (lo, hi) = radius_key_range(self.space, q.feature.first_real(), q.radius);
                coverage = coverage.min(reachable_fraction(&self.ring, node, lo, hi));
            }
            let entry = self.notifications.entry(q.id).or_default();
            for stream in matches {
                entry.push(MatchNotification { query: q.id, stream, at: now, coverage });
            }
        }

        // Aggregate-query collection for queries whose aggregator this is.
        if !self.aggregates.is_empty() {
            self.collect_aggregates(node, now);
        }

        // Inner-product pushes for streams sourced here.
        let mut pushes: Vec<InnerProductQuery> =
            self.nodes[&node].active_ip_subscriptions(now).cloned().collect();
        pushes.sort_unstable_by_key(|q| q.id);
        for q in pushes {
            let s = &self.streams[q.stream as usize];
            if !s.extractor.is_warm() {
                continue;
            }
            let value = q.evaluate_approx(s.extractor.raw_prefix(), self.cfg.workload.window_len);
            if self.partition_severed(node, q.client, MsgClass::Response) {
                // Cross-cut push suppressed; the post-heal cycle pushes a
                // fresh value.
                continue;
            }
            let res = self.resolve_send(MsgClass::Response);
            if res.is_some_and(|r| r.verdict == DeliveryVerdict::Lost) {
                // Push lost after retries: the client misses this period's
                // value; the next NPER cycle pushes a fresh one.
                continue;
            }
            let path = self.ring.route(node, q.client).path;
            if self.measuring {
                self.metrics.record_event(InputEvent::Response);
                self.record_route(MsgClass::Response, MsgClass::ResponseTransit, &path, true);
                self.metrics.record_hops(MsgClass::Response, (path.len().saturating_sub(1)) as u32);
            }
            let alert = q.alert.is_some_and(|a| a.triggered(value));
            if res.is_some_and(|r| r.verdict == DeliveryVerdict::Late) {
                self.pending.push(PendingDelivery {
                    due: now + self.cfg.workload.nper_ms,
                    to: q.client,
                    effect: PendingEffect::IpResult { query: q.id, value, alert, at: now },
                });
                continue;
            }
            self.ip_results.entry(q.id).or_default().push((now, value));
            if alert {
                self.ip_alerts.entry(q.id).or_default().push((now, value));
            }
        }
    }

    /// Runs a notify cycle on every node (convenience for drivers that don't
    /// stagger NPER phases).
    pub fn notify_all(&mut self, now: SimTime) {
        for node in self.node_order.clone() {
            self.notify_cycle(node, now);
        }
    }

    /// Union of candidates over the query's covering nodes (the converged
    /// state of the in-range gossip), filtered by exact verification against
    /// the streams' current windows.
    fn aggregate_and_verify(&mut self, q: &SimilarityQuery, now: SimTime) -> Vec<StreamId> {
        let (lo, hi) = radius_key_range(self.space, q.feature.first_real(), q.radius);
        // One feature->point conversion per query, shared across every
        // covering node's index probe; per-node results arrive unsorted and
        // possibly duplicated, so one global sort+dedup replaces the
        // per-node ones (same final set).
        let point = q.feature.to_reals();
        let mut candidates: Vec<StreamId> = Vec::new();
        // Side-aware: the aggregator can only gossip with covering nodes it
        // can reach, so a split answers from one side with honest coverage.
        for n in dsi_chord::covering_nodes_from(&self.ring, q.aggregator, lo, hi) {
            self.nodes[&n].collect_candidates(q, &point, now, &mut candidates);
        }
        candidates.sort_unstable();
        candidates.dedup();
        self.quality.candidates += candidates.len() as u64;
        let verified: Vec<StreamId> = candidates
            .into_iter()
            .filter(|&sid| {
                let s = &self.streams[sid as usize];
                if !s.extractor.is_warm() {
                    return false;
                }
                let window = s.extractor.window_snapshot();
                let ok = normalized_distance(&q.target, &window, q.kind.normalization())
                    <= q.radius + 1e-9;
                if !ok {
                    *self.stream_false_positives.entry(sid).or_default() += 1;
                }
                ok
            })
            .collect();
        self.quality.verified += verified.len() as u64;
        verified
    }

    /// Collects every aggregate query whose aggregator is `node`: merges
    /// the per-node replica sketches up the (reversed) multicast tree and
    /// delivers a coverage-tagged notification to the client.
    fn collect_aggregates(&mut self, node: ChordId, now: SimTime) {
        // Index loop in id order: `collect_one_aggregate` needs `&mut self`
        // for fault resolution and metrics, so no iterator borrow survives.
        for i in 0..self.aggregates.len() {
            let is_mine = {
                let q = &self.aggregates[i].query;
                q.aggregator == node && !q.expired(now)
            };
            if is_mine {
                self.collect_one_aggregate(i, now);
            }
        }
    }

    /// One collection round for `self.aggregates[idx]` (§IV-F in-network
    /// aggregation applied to sketches): the dissemination multicast tree
    /// is walked children-before-parents, each node merges its own
    /// replica with its children's partials and pushes ONE merged sketch
    /// to its parent (`AggPush`), so the root receives one sketch per
    /// subtree rather than one per owner. A push lost after retries drops
    /// that whole subtree from the round — the notification's coverage
    /// and effective ε then widen honestly instead of silently lying.
    fn collect_one_aggregate(&mut self, idx: usize, now: SimTime) {
        let query = self.aggregates[idx].query.clone();
        let root = query.aggregator;
        let at = now.as_ms();
        // Same full-circle range as dissemination, re-rooted at the
        // aggregator; with churn the tree tracks the current ring.
        let lo = self.space.add(root, 1);
        let plan = multicast(&self.ring, root, lo, root, self.cfg.strategy);
        let mut children: HashMap<ChordId, Vec<ChordId>> = HashMap::new();
        for (from, to) in plan.forward_edges() {
            children.entry(from).or_default().push(to);
        }
        // Reverse pre-order visits children before parents.
        let mut pre = Vec::with_capacity(plan.deliveries.len());
        let mut stack = vec![plan.entry];
        while let Some(v) = stack.pop() {
            pre.push(v);
            if let Some(cs) = children.get(&v) {
                stack.extend(cs.iter().copied());
            }
        }
        // Per-node accumulator: merged partial + its contributors. Only
        // non-empty partials exist (and only those reach the wire).
        let mut acc: HashMap<ChordId, (EcmSketch, Vec<(ChordId, SimTime)>)> = HashMap::new();
        for &v in pre.iter().rev() {
            let mut sk: Option<EcmSketch> = None;
            let mut contrib: Vec<(ChordId, SimTime)> = Vec::new();
            if let Ok(pos) = self.aggregates[idx].slot(v) {
                let (n, since, sketch) = &self.aggregates[idx].replicas[pos];
                sk = Some(sketch.clone());
                contrib.push((*n, *since));
            }
            if let Some(cs) = children.get(&v) {
                for &c in cs {
                    let Some((csk, ccontrib)) = acc.remove(&c) else { continue };
                    if let Some(res) = self.resolve_send(MsgClass::AggPush) {
                        if res.verdict == DeliveryVerdict::Lost {
                            // Subtree lost this round: its contributors
                            // drop out and the bound widens with them.
                            continue;
                        }
                    }
                    if self.measuring {
                        self.metrics.record_message(MsgClass::AggPush, c, v);
                        self.metrics.record_hops(MsgClass::AggPush, 1);
                        if self.tracer.is_enabled() {
                            self.tracer.single(MsgClass::AggPush.index() as u8, c, v);
                        }
                    }
                    match &mut sk {
                        Some(mine) => mine
                            .merge_from(&csk, at)
                            .expect("replicas share params by construction"),
                        None => sk = Some(csk),
                    }
                    contrib.extend(ccontrib);
                }
            }
            if let Some(sk) = sk {
                acc.insert(v, (sk, contrib));
            }
        }
        // The entry hands the root one merged sketch for the whole tree.
        let collected = match acc.remove(&plan.entry) {
            Some(partial) if plan.entry != root => {
                if let Some(res) = self.resolve_send(MsgClass::AggPush) {
                    if res.verdict == DeliveryVerdict::Lost {
                        // The whole round's collection is lost; the next
                        // NPER cycle re-collects from the live replicas.
                        return;
                    }
                }
                if self.measuring {
                    self.metrics.record_message(MsgClass::AggPush, plan.entry, root);
                    self.metrics.record_hops(MsgClass::AggPush, 1);
                    if self.tracer.is_enabled() {
                        self.tracer.single(MsgClass::AggPush.index() as u8, plan.entry, root);
                    }
                }
                Some(partial)
            }
            other => other,
        };
        let (sketch, mut contributors) = match collected {
            Some((sk, c)) => (Some(sk), c),
            None => (None, Vec::new()),
        };
        contributors.sort_unstable_by_key(|&(n, _)| n);
        let live = self.node_order.len().max(1);
        let coverage = contributors.len() as f64 / live as f64;
        let bound = query.bound();
        let value = match query.spec.kind {
            AggregateKind::WindowCount => {
                AggregateValue::Scalar(sketch.as_ref().map_or(0.0, |s| s.total_estimate(at)))
            }
            AggregateKind::PointCount { bin } => {
                AggregateValue::Scalar(sketch.as_ref().map_or(0.0, |s| s.point_estimate(bin, at)))
            }
            AggregateKind::SelfJoinSize => {
                AggregateValue::Scalar(sketch.as_ref().map_or(0.0, |s| s.self_join_size(at)))
            }
            AggregateKind::HeavyHitters { phi } => {
                let universe: Vec<u64> = (0..query.spec.bins).collect();
                AggregateValue::Bins(
                    sketch.as_ref().map_or(Vec::new(), |s| s.heavy_hitters(&universe, phi, at)),
                )
            }
        };
        let note = AggregateNotification {
            query: query.id,
            kind: query.spec.kind,
            value,
            eps_effective: bound.effective_eps(coverage),
            delta: bound.delta,
            coverage,
            components: contributors.len() as u32,
            contributors,
            at: now,
        };
        // One overlay message carries the answer to the client.
        if self.partition_severed(root, query.client, MsgClass::AggNotify) {
            // Aggregator and client sit on different sides of a partition
            // (the query predates the split): this period's answer cannot
            // cross the cut; collection resumes delivery after heal.
            return;
        }
        let res = self.resolve_send(MsgClass::AggNotify);
        if res.is_some_and(|r| r.verdict == DeliveryVerdict::Lost) {
            // Lost after retries: the client misses this period's answer;
            // the next cycle re-collects and resends.
            return;
        }
        if self.measuring {
            self.metrics.record_message(MsgClass::AggNotify, root, query.client);
            self.metrics.record_hops(MsgClass::AggNotify, 1);
            if self.tracer.is_enabled() {
                self.tracer.single(MsgClass::AggNotify.index() as u8, root, query.client);
            }
        }
        if res.is_some_and(|r| r.verdict == DeliveryVerdict::Late) {
            self.pending.push(PendingDelivery {
                due: now + self.cfg.workload.nper_ms,
                to: query.client,
                effect: PendingEffect::AggregateNotify(Box::new(note)),
            });
            return;
        }
        self.aggregate_notifications.entry(query.id).or_default().push(note);
    }

    /// Measurement-gated route accounting: charges `Metrics::record_route`
    /// and, when tracing, records the same path as one causal chain.
    /// `log_hops` marks the chain's tail as a `record_hops(base, ..)` point
    /// — pass `true` exactly when the caller also logs the route's hop
    /// count, so the trace audit reconstructs `hop_count`/`hop_sum`.
    fn record_route(
        &mut self,
        base: MsgClass,
        transit: MsgClass,
        path: &[ChordId],
        log_hops: bool,
    ) {
        if self.measuring {
            self.metrics.record_route(base, transit, path);
            if self.tracer.is_enabled() {
                self.tracer.route(path, base.index() as u8, transit.index() as u8, log_hops);
            }
        }
    }

    /// Resolves one logical message through the armed fault plan and
    /// records its retry/redelivery/dup counters. `None` means no plan is
    /// armed: the caller must take the lossless path, and no fault
    /// randomness is consumed.
    fn resolve_send(&mut self, class: MsgClass) -> Option<Resolution> {
        let res = self.reliability.as_mut()?.resolve(class);
        if self.measuring {
            for _ in 0..res.retries {
                self.metrics.record_retry(class);
            }
            if res.dup_suppressed {
                self.metrics.record_dup_suppressed(class);
            }
            if res.verdict == DeliveryVerdict::Late {
                self.metrics.record_redelivery(class);
            }
            // Send-conservation ledger: every decided send is either
            // delivered (Late counts — the payload arrives) or lost.
            if res.verdict == DeliveryVerdict::Lost {
                self.metrics.record_send_lost(class);
            } else {
                self.metrics.record_send_delivered(class);
            }
        }
        Some(res)
    }

    /// True when a partition severs the `from -> to` link right now; the
    /// send must then be skipped entirely. Counted on the conservation
    /// ledger and the tracer's suppression tallies — separately from
    /// random drops, and without consuming any fault randomness.
    fn partition_severed(&mut self, from: ChordId, to: ChordId, class: MsgClass) -> bool {
        if self.ring.reachable(from, to) {
            return false;
        }
        if self.measuring {
            self.metrics.record_partition_suppressed(class);
            self.tracer.note_suppressed(class.index() as u8);
        }
        true
    }

    /// Feeds the severed-hop classes of one failover multicast to the
    /// partition-suppressed counters (judge-order twin of
    /// [`Cluster::record_resolution`]).
    fn record_severed(&mut self, severed: &[MsgClass]) {
        if !self.measuring {
            return;
        }
        for &class in severed {
            self.metrics.record_partition_suppressed(class);
            self.tracer.note_suppressed(class.index() as u8);
        }
    }

    /// Records the counters of an already-resolved send (used by the
    /// failover multicast, whose resolutions happen inside the judge).
    fn record_resolution(&mut self, class: MsgClass, res: &Resolution) {
        if !self.measuring {
            return;
        }
        for _ in 0..res.retries {
            self.metrics.record_retry(class);
        }
        if res.dup_suppressed {
            self.metrics.record_dup_suppressed(class);
        }
        if res.verdict == DeliveryVerdict::Late {
            self.metrics.record_redelivery(class);
        }
        if res.verdict == DeliveryVerdict::Lost {
            self.metrics.record_send_lost(class);
        } else {
            self.metrics.record_send_delivered(class);
        }
    }

    /// Stores a query's achieved dissemination coverage and records the
    /// metrics sample. No-op while no fault plan is armed *and* the
    /// network is whole (a partition degrades coverage even without
    /// random loss).
    fn record_query_coverage(&mut self, id: QueryId, coverage: f64) {
        if self.reliability.is_none() && !self.ring.partitioned() {
            return;
        }
        self.query_coverage.insert(id, coverage);
        if self.measuring {
            self.metrics.record_coverage(coverage);
        }
    }

    /// Applies parked late effects addressed to `node` that have come due
    /// (the receiver's first refresh tick after the delayed delivery).
    fn drain_pending(&mut self, node: ChordId, now: SimTime) {
        if self.pending.is_empty() {
            return;
        }
        let mut due = Vec::new();
        let mut rest = Vec::with_capacity(self.pending.len());
        for p in std::mem::take(&mut self.pending) {
            if p.to == node && p.due <= now {
                due.push(p);
            } else {
                rest.push(p);
            }
        }
        self.pending = rest;
        for p in due {
            match p.effect {
                PendingEffect::StoreMbr(rec) => {
                    // A copy that would be purged on arrival is dropped,
                    // and one the node re-acquired meanwhile is a dedup.
                    if rec.expires > now {
                        let dc = self.nodes.get_mut(&node).expect("live node");
                        if !dc.summaries().any(|s| s.matches(&rec)) {
                            dc.store_mbr(rec);
                        }
                    }
                }
                PendingEffect::SubscribeSimilarity(q) => {
                    if !q.expired(now) {
                        self.nodes.get_mut(&node).expect("live node").subscribe_similarity(q);
                    }
                }
                PendingEffect::SubscribeInnerProduct(q) => {
                    if !q.expired(now) {
                        self.nodes.get_mut(&node).expect("live node").subscribe_inner_product(q);
                    }
                }
                PendingEffect::LocationPut { stream, source } => {
                    self.nodes.get_mut(&node).expect("live node").location_put(stream, source);
                }
                PendingEffect::SubscribeAggregate { query } => {
                    // A late replica installation starts counting at its
                    // drain time (it missed everything before); one the
                    // node re-acquired meanwhile is a dedup.
                    if let Some(a) = self.aggregates.iter_mut().find(|a| a.query.id == query) {
                        if !a.query.expired(now) {
                            if let Err(pos) = a.slot(node) {
                                let sketch = a.query.fresh_sketch();
                                a.replicas.insert(pos, (node, now, sketch));
                            }
                        }
                    }
                }
                PendingEffect::AggregateNotify(note) => {
                    let query = note.query;
                    self.aggregate_notifications.entry(query).or_default().push(*note);
                }
                PendingEffect::Notify { query, matches, at } => {
                    let coverage = self.query_coverage.get(&query).copied().unwrap_or(1.0);
                    let entry = self.notifications.entry(query).or_default();
                    for stream in matches {
                        entry.push(MatchNotification { query, stream, at, coverage });
                    }
                }
                PendingEffect::IpResult { query, value, alert, at } => {
                    self.ip_results.entry(query).or_default().push((at, value));
                    if alert {
                        self.ip_alerts.entry(query).or_default().push((at, value));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cluster(n: usize) -> Cluster {
        let mut cfg = ClusterConfig::new(n);
        cfg.workload.window_len = 16;
        cfg.workload.num_coeffs = 2;
        cfg.workload.mbr_batch = 4;
        // These tests exercise exact ζ cadence and matching against
        // z-normalized (phase-rotating) features; the routing-width bound
        // would split batches and is covered by its own tests.
        cfg.workload.mbr_max_width = None;
        Cluster::new(cfg)
    }

    fn wave(n: usize, f: f64, phase: f64) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * f + phase).sin() * 3.0 + 10.0).collect()
    }

    /// Feeds a full window + enough extra values to flush at least one MBR.
    fn feed_stream(c: &mut Cluster, sid: StreamId, values: &[f64], now: SimTime) -> usize {
        let mut mbrs = 0;
        for &v in values {
            if c.post_value(sid, v, now).is_some() {
                mbrs += 1;
            }
        }
        mbrs
    }

    #[test]
    fn node_ids_are_unique() {
        let c = small_cluster(50);
        let mut ids = c.node_ids().to_vec();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 50);
    }

    #[test]
    fn posting_values_emits_mbrs_at_zeta_cadence() {
        let mut c = small_cluster(8);
        let sid = c.register_stream("s0", 0);
        // Window 16 warms after 16 values; every 4 summaries -> 1 MBR.
        let vals = wave(16 + 16, 0.4, 0.0);
        let mbrs = feed_stream(&mut c, sid, &vals, SimTime::ZERO);
        // 17 summaries emitted (one at warmup + 16 more) -> 4 MBRs.
        assert_eq!(mbrs, 4);
    }

    #[test]
    fn mbr_replicas_land_on_covering_nodes() {
        let mut c = small_cluster(8);
        let sid = c.register_stream("s0", 0);
        let vals = wave(32, 0.4, 0.0);
        let mut plan = None;
        for &v in &vals {
            if let Some(p) = c.post_value(sid, v, SimTime::ZERO) {
                plan = Some(p);
            }
        }
        let plan = plan.expect("an MBR was shipped");
        for n in plan.nodes() {
            assert!(c.node(n).mbr_count() > 0, "covering node {n} holds no replica");
        }
    }

    #[test]
    fn similarity_query_end_to_end_finds_identical_stream() {
        let mut c = small_cluster(8);
        let sid = c.register_stream("s0", 0);
        let vals = wave(40, 0.4, 0.0);
        feed_stream(&mut c, sid, &vals, SimTime::ZERO);
        // Query with the stream's current window as target.
        let target = c.streams()[sid as usize].extractor.window_snapshot();
        let qid = c.post_similarity_query(3, target, 0.05, 60_000, SimTime::ZERO);
        c.notify_all(SimTime::from_ms(2000));
        let notes = c.notifications(qid);
        assert!(
            notes.iter().any(|n| n.stream == sid),
            "query over its own stream's window must match"
        );
    }

    #[test]
    fn dissimilar_stream_is_not_reported() {
        let mut c = small_cluster(8);
        let sid = c.register_stream("s0", 0);
        feed_stream(&mut c, sid, &wave(40, 0.4, 0.0), SimTime::ZERO);
        // An alternating target is far from a smooth sine in z-norm space.
        let target: Vec<f64> = (0..16).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let qid = c.post_similarity_query(3, target, 0.05, 60_000, SimTime::ZERO);
        c.notify_all(SimTime::from_ms(2000));
        assert!(c.notifications(qid).is_empty());
    }

    #[test]
    fn expired_query_stops_producing_responses() {
        let mut c = small_cluster(8);
        let sid = c.register_stream("s0", 0);
        feed_stream(&mut c, sid, &wave(40, 0.4, 0.0), SimTime::ZERO);
        let target = c.streams()[sid as usize].extractor.window_snapshot();
        let qid = c.post_similarity_query(3, target, 0.05, 1000, SimTime::ZERO);
        c.notify_all(SimTime::from_ms(500));
        let after_first = c.notifications(qid).len();
        assert!(after_first > 0);
        c.notify_all(SimTime::from_ms(5000)); // past expiry
        assert_eq!(c.notifications(qid).len(), after_first);
    }

    #[test]
    fn mbr_expiry_clears_candidates() {
        let mut c = small_cluster(8);
        let sid = c.register_stream("s0", 0);
        feed_stream(&mut c, sid, &wave(40, 0.4, 0.0), SimTime::ZERO);
        let target = c.streams()[sid as usize].extractor.window_snapshot();
        // Post the query *after* BSPAN so all MBRs have expired.
        let late = SimTime::from_ms(6000);
        let qid = c.post_similarity_query(3, target, 0.05, 60_000, late);
        c.notify_all(late + 100);
        assert!(c.notifications(qid).is_empty(), "expired MBRs must not match");
    }

    #[test]
    fn inner_product_query_pushes_accurate_values() {
        let mut c = small_cluster(8);
        let sid = c.register_stream("s0", 0);
        let vals = wave(24, 0.15, 0.0);
        feed_stream(&mut c, sid, &vals, SimTime::ZERO);
        let span = 8;
        let qid = c.post_inner_product_query(
            2,
            sid,
            (0..span).collect(),
            vec![1.0 / span as f64; span],
            60_000,
            SimTime::ZERO,
        );
        c.notify_all(SimTime::from_ms(2000));
        let results = c.ip_results(qid);
        assert!(!results.is_empty(), "source must push values");
        let window = c.streams()[sid as usize].extractor.window_snapshot();
        let exact: f64 = window[..span].iter().sum::<f64>() / span as f64;
        let (_, approx) = results[0];
        assert!(
            (approx - exact).abs() / exact.abs() < 0.5,
            "approximation {approx} too far from exact {exact}"
        );
    }

    #[test]
    fn metrics_only_recorded_while_measuring() {
        let mut c = small_cluster(8);
        let sid = c.register_stream("s0", 0);
        feed_stream(&mut c, sid, &wave(40, 0.4, 0.0), SimTime::ZERO);
        assert_eq!(c.metrics().event_count(InputEvent::Mbr), 0);
        c.start_measurement();
        feed_stream(&mut c, sid, &wave(16, 0.4, 1.0), SimTime::from_ms(100));
        assert!(c.metrics().event_count(InputEvent::Mbr) > 0);
    }

    #[test]
    fn quality_counts_candidates_and_verified() {
        let mut c = small_cluster(8);
        let sid = c.register_stream("s0", 0);
        feed_stream(&mut c, sid, &wave(40, 0.4, 0.0), SimTime::ZERO);
        let target = c.streams()[sid as usize].extractor.window_snapshot();
        c.post_similarity_query(1, target, 0.05, 60_000, SimTime::ZERO);
        c.notify_all(SimTime::from_ms(1000));
        let q = c.quality();
        assert!(q.candidates >= q.verified);
        assert!(q.verified > 0);
    }

    #[test]
    #[should_panic(expected = "match the window length")]
    fn wrong_target_length_panics() {
        let mut c = small_cluster(4);
        c.post_similarity_query(0, vec![1.0; 5], 0.1, 1000, SimTime::ZERO);
    }

    // ------------------------------------------------------------------
    // Reliability layer (DESIGN.md §12)
    // ------------------------------------------------------------------

    use dsi_simnet::{FaultPlan, FaultSpec};

    fn spec(drop: f64, dup: f64, delay: f64) -> FaultSpec {
        FaultSpec { drop_prob: drop, dup_prob: dup, delay_prob: delay }
    }

    #[test]
    fn none_plan_leaves_reliability_disarmed() {
        let mut c = small_cluster(8);
        c.set_fault_plan(FaultPlan::NONE, 1);
        assert!(!c.fault_plan_active());
        let sid = c.register_stream("s0", 0);
        feed_stream(&mut c, sid, &wave(40, 0.4, 0.0), SimTime::ZERO);
        let qid = c.post_similarity_query(1, wave(16, 0.4, 0.0), 0.3, 60_000, SimTime::ZERO);
        assert_eq!(c.query_coverage(qid), None, "no coverage tracking while disarmed");
        assert_eq!(c.pending_effects(), 0);
        assert_eq!(c.metrics().reliability_totals(), (0, 0, 0));
    }

    #[test]
    fn certain_delay_parks_effects_until_the_next_cycle() {
        let mut c = small_cluster(8);
        let sid = c.register_stream("s0", 0);
        c.set_fault_plan(FaultPlan::uniform(spec(0.0, 0.0, 1.0)), 5);
        feed_stream(&mut c, sid, &wave(40, 0.4, 0.0), SimTime::ZERO);
        let qid = c.post_similarity_query(1, wave(16, 0.4, 0.0), 0.3, 60_000, SimTime::ZERO);
        assert!(c.pending_effects() > 0, "delayed deliveries must be parked");
        assert_eq!(c.query_coverage(qid), Some(1.0), "late deliveries still cover the range");
        // One NPER period later every receiver drains its parked effects.
        let later = SimTime::from_ms(c.config().workload.nper_ms);
        c.notify_all(later);
        assert_eq!(
            c.pending.iter().filter(|p| p.due <= later).count(),
            0,
            "all due effects drained"
        );
    }

    #[test]
    fn certain_drop_degrades_to_local_store_with_zero_coverage() {
        let mut c = small_cluster(8);
        let sid = c.register_stream("s0", 0);
        c.set_fault_plan(FaultPlan::uniform(spec(1.0, 0.0, 0.0)), 9);
        c.start_measurement();
        feed_stream(&mut c, sid, &wave(40, 0.4, 0.0), SimTime::ZERO);
        // Every multicast totally lost: only the home holds replicas.
        let home = c.streams()[sid as usize].home;
        for &n in c.node_ids() {
            if n != home {
                assert_eq!(c.node(n).mbr_count(), 0, "node {n} got a replica through a dead net");
            }
        }
        assert!(c.node(home).mbr_count() > 0, "§IV-A local store survives total loss");
        let (retries, _, _) = c.metrics().reliability_totals();
        assert!(retries > 0, "drops must burn the retry budget");
        assert_eq!(c.metrics().avg_coverage(), Some(0.0), "total loss is coverage 0");
    }

    #[test]
    fn similarity_matches_survive_a_lossy_network_via_failover() {
        let mut c = small_cluster(8);
        let sid = c.register_stream("s0", 0);
        c.set_fault_plan(FaultPlan::uniform(spec(0.3, 0.1, 0.1)), 77);
        c.start_measurement();
        feed_stream(&mut c, sid, &wave(40, 0.4, 0.0), SimTime::ZERO);
        let target = c.streams()[sid as usize].extractor.window_snapshot();
        let qid = c.post_similarity_query(1, target, 0.05, 60_000, SimTime::ZERO);
        // Two NPER rounds: late effects drain, responses go out.
        c.notify_all(SimTime::from_ms(1000));
        c.notify_all(SimTime::from_ms(2000));
        for n in c.notifications(qid) {
            assert!((0.0..=1.0).contains(&n.coverage), "coverage {} out of range", n.coverage);
        }
        let cov = c.query_coverage(qid).expect("armed plan tracks coverage");
        assert!((0.0..=1.0).contains(&cov));
        assert!(c.metrics().coverage_count() > 0);
    }

    #[test]
    fn reliable_runs_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut c = small_cluster(8);
            let sid = c.register_stream("s0", 0);
            c.set_fault_plan(FaultPlan::uniform(spec(0.25, 0.15, 0.15)), seed);
            c.start_measurement();
            feed_stream(&mut c, sid, &wave(40, 0.4, 0.0), SimTime::ZERO);
            let target = c.streams()[sid as usize].extractor.window_snapshot();
            let qid = c.post_similarity_query(1, target, 0.05, 60_000, SimTime::ZERO);
            c.notify_all(SimTime::from_ms(1000));
            let per_class: Vec<u64> = MsgClass::ALL.iter().map(|&m| c.metrics().total(m)).collect();
            (
                c.metrics().reliability_totals(),
                per_class,
                c.notifications(qid).to_vec(),
                c.query_coverage(qid),
                c.backoff_ms_total(),
            )
        };
        assert_eq!(run(42), run(42), "same seed, same run");
        assert_ne!(run(42).0, run(43).0, "different fault seeds diverge");
    }

    #[test]
    fn repair_coverage_heals_holes_without_resurrecting_expired_state() {
        let mut c = small_cluster(8);
        let sid = c.register_stream("s0", 0);
        c.set_fault_plan(FaultPlan::uniform(spec(1.0, 0.0, 0.0)), 3);
        feed_stream(&mut c, sid, &wave(40, 0.4, 0.0), SimTime::ZERO);
        // All replicas lost except the home's local store.
        c.set_fault_plan(FaultPlan::uniform(spec(0.0, 0.0, 0.0)), 3);
        assert!(!c.fault_plan_active(), "zero-probability plan is NONE");
        c.set_fault_plan(FaultPlan::uniform(spec(0.2, 0.0, 0.0)), 3);
        // Before expiry, a repair round restores covering-set replication.
        c.repair_coverage(SimTime::from_ms(100));
        c.repair_coverage(SimTime::from_ms(200));
        let total: usize = c.node_ids().iter().map(|&n| c.node(n).mbr_count()).sum();
        assert!(total > c.node(c.streams()[sid as usize].home).mbr_count(), "holes healed");
        // At/after expiry the filtered pass copies nothing.
        let expired_at = SimTime::from_ms(c.config().workload.bspan_ms);
        let mut d = small_cluster(8);
        let sid2 = d.register_stream("s0", 0);
        d.set_fault_plan(FaultPlan::uniform(spec(1.0, 0.0, 0.0)), 3);
        feed_stream(&mut d, sid2, &wave(40, 0.4, 0.0), SimTime::ZERO);
        d.set_fault_plan(FaultPlan::uniform(spec(0.2, 0.0, 0.0)), 3);
        d.repair_coverage(expired_at);
        for &n in d.node_ids() {
            assert_eq!(
                d.node(n).summaries().filter(|s| expired_at >= s.expires).count(),
                0,
                "expired records must not be re-copied"
            );
        }
    }

    // ------------------------------------------------------------------
    // Network partitions (DESIGN.md §17)
    // ------------------------------------------------------------------

    #[test]
    fn split_partition_serves_each_side_with_honest_coverage() {
        let mut c = small_cluster(12);
        let sid = c.register_stream("s0", 0);
        feed_stream(&mut c, sid, &wave(40, 0.4, 0.0), SimTime::ZERO);

        c.split_partition(&[vec![6, 7, 8, 9, 10, 11]]);
        assert!(c.ring().partitioned());
        assert!(
            c.ring().is_fully_consistent(),
            "each island must converge to a consistent sub-ring"
        );

        // A wide query posted during the split covers the whole circle, so
        // its reachable fraction is exactly what this side owns of it.
        let target = c.streams()[sid as usize].extractor.window_snapshot();
        let qid = c.post_similarity_query(0, target, 10.0, 60_000, SimTime::ZERO);
        let cov = c.query_coverage(qid).expect("partition-time posts record honest coverage");
        assert!(cov > 0.0 && cov < 1.0, "coverage {cov} must be honestly partial");

        // Dissemination stayed on the client's side of the cut.
        let client = c.node_id(0);
        for &n in &c.node_ids().to_vec() {
            if c.node(n).has_subscription(qid) {
                assert!(
                    c.ring().reachable(client, n),
                    "subscription for {qid} teleported across the cut to {n}"
                );
            }
        }

        // The side still answers — with the partial tag on every match.
        c.notify_all(SimTime::from_ms(1000));
        let notes = c.notifications(qid);
        assert!(!notes.is_empty(), "reachable side must keep answering");
        assert!(notes.iter().all(|n| n.coverage < 1.0), "answers must carry the partial tag");

        // Heal with re-probe: one global ring again, and the NPER repair
        // machinery restores full coverage for post-heal posts.
        c.heal_partition(true);
        assert!(!c.ring().partitioned());
        assert!(c.ring().is_fully_consistent(), "heal with re-probe re-knits the global ring");
        c.repair_coverage(SimTime::from_ms(1500));
        let target2 = c.streams()[sid as usize].extractor.window_snapshot();
        let q2 = c.post_similarity_query(0, target2, 10.0, 60_000, SimTime::from_ms(1600));
        assert_eq!(
            c.query_coverage(q2),
            None,
            "whole-network lossless posts record no degradation"
        );
        c.notify_all(SimTime::from_ms(2000));
        let notes2 = c.notifications(q2);
        assert!(!notes2.is_empty());
        assert!(notes2.iter().all(|n| n.coverage == 1.0), "post-heal coverage returns to 1.0");
    }

    #[test]
    fn heal_without_reprobe_leaves_the_fork_stabilization_repairs() {
        // Negative control: stabilization off, heal without re-probing.
        let mut c = small_cluster(10);
        c.set_stabilization_enabled(false);
        c.split_partition(&[vec![5, 6, 7, 8, 9]]);
        c.heal_partition(false);
        assert!(!c.ring().partitioned(), "links are back up");
        assert!(
            !c.ring().is_fully_consistent(),
            "without stabilization the tables must stay forked"
        );

        // The enabled twin on the same topology re-knits completely.
        let mut d = small_cluster(10);
        d.split_partition(&[vec![5, 6, 7, 8, 9]]);
        d.heal_partition(true);
        assert!(d.ring().is_fully_consistent(), "stabilization heals the same split");
    }

    #[test]
    fn partition_suppression_is_ledgered_separately_from_random_loss() {
        let mut c = small_cluster(10);
        let sid = c.register_stream("s0", 0);
        c.start_measurement();
        c.set_fault_plan(FaultPlan::uniform(spec(0.2, 0.0, 0.1)), 7);
        feed_stream(&mut c, sid, &wave(40, 0.4, 0.0), SimTime::ZERO);

        c.split_partition(&[vec![5, 6, 7, 8, 9]]);
        // Shipments and repair rounds now hit the cut: suppressed copies
        // land on the partition ledger, not the random-loss one.
        feed_stream(&mut c, sid, &wave(16, 0.4, 1.0), SimTime::from_ms(100));
        c.repair_coverage(SimTime::from_ms(200));
        c.notify_all(SimTime::from_ms(300));

        let m = c.metrics();
        let mut suppressed_total = 0;
        for class in MsgClass::ALL {
            let (decisions, delivered, lost, partitioned) = m.send_accounting(class);
            assert_eq!(
                decisions,
                delivered + lost + partitioned,
                "send conservation must hold for {class:?}"
            );
            suppressed_total += partitioned;
        }
        assert!(suppressed_total > 0, "cross-cut sends must appear on the partition ledger");

        // Same run without the split: zero partition suppressions.
        let mut d = small_cluster(10);
        let sid2 = d.register_stream("s0", 0);
        d.start_measurement();
        d.set_fault_plan(FaultPlan::uniform(spec(0.2, 0.0, 0.1)), 7);
        feed_stream(&mut d, sid2, &wave(40, 0.4, 0.0), SimTime::ZERO);
        feed_stream(&mut d, sid2, &wave(16, 0.4, 1.0), SimTime::from_ms(100));
        d.repair_coverage(SimTime::from_ms(200));
        d.notify_all(SimTime::from_ms(300));
        for class in MsgClass::ALL {
            let (_, _, _, partitioned) = d.metrics().send_accounting(class);
            assert_eq!(partitioned, 0, "whole networks never suppress {class:?}");
        }
    }

    #[test]
    fn mbr_shipments_during_split_stay_island_local() {
        let mut c = small_cluster(12);
        let sid = c.register_stream("s0", 0);
        // Warm up without shipping past the batcher yet.
        feed_stream(&mut c, sid, &wave(16, 0.4, 0.0), SimTime::ZERO);
        c.split_partition(&[vec![6, 7, 8, 9, 10, 11]]);
        let home = c.streams()[sid as usize].home;
        let mut plan = None;
        for &v in wave(16, 0.4, 1.0).iter() {
            if let Some(p) = c.post_value(sid, v, SimTime::from_ms(100)) {
                plan = Some(p);
            }
        }
        let plan = plan.expect("an MBR was shipped during the split");
        for n in plan.nodes() {
            assert!(c.ring().reachable(home, n), "replica teleported across the cut to {n}");
        }
    }
}
