//! Aggregate queries over ECM-sketches (DESIGN.md §15).
//!
//! A continuous aggregate query asks a sliding-window question about the
//! *whole population* of stream values — total arrival count, frequency
//! of a value bin, heavy-hitter bins, self-join size — rather than about
//! one stream. Every data-center node maintains a local [`EcmSketch`]
//! replica fed from its own ingest path; at each notification cycle the
//! query's aggregator collects the replicas up the multicast tree,
//! merging partial sketches at the middle nodes so the root receives one
//! sketch per subtree, and pushes an [`AggregateNotification`] to the
//! client. The notification carries the ε-δ contract actually achieved:
//! the advertised error widens by the uncovered population fraction when
//! faults keep some replicas out of the round.

use crate::query::QueryId;
use dsi_chord::ChordId;
use dsi_simnet::SimTime;
use dsi_sketch::{EcmSketch, ErrorBound, SketchDims, SketchParams};
use serde::{Deserialize, Serialize};

/// Lower edge of the value range [`quantize`] maps onto bins.
pub const QUANTIZE_LO: f64 = -16.0;
/// Upper edge of the value range [`quantize`] maps onto bins.
pub const QUANTIZE_HI: f64 = 16.0;

/// Maps a raw stream value to a sketch item id: the value is clamped to
/// `[QUANTIZE_LO, QUANTIZE_HI]` and bucketed uniformly into `bins` bins.
/// Pure and total — the accuracy oracle applies the same function to its
/// brute-force reference, so estimates and truth always share a domain.
pub fn quantize(value: f64, bins: u64) -> u64 {
    let bins = bins.max(1);
    let v = if value.is_nan() { QUANTIZE_LO } else { value.clamp(QUANTIZE_LO, QUANTIZE_HI) };
    let t = (v - QUANTIZE_LO) / (QUANTIZE_HI - QUANTIZE_LO);
    ((t * bins as f64) as u64).min(bins - 1)
}

/// Which aggregate function a query computes over the sliding window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AggregateKind {
    /// Total number of values that arrived in the window.
    WindowCount,
    /// Number of window arrivals that quantize into `bin`.
    PointCount {
        /// The quantized value bin being counted.
        bin: u64,
    },
    /// Bins whose window frequency is at least `phi` of the total.
    HeavyHitters {
        /// Heavy-hitter threshold as a fraction of the window total.
        phi: f64,
    },
    /// Second frequency moment `Σ f_b²` over the quantized bins.
    SelfJoinSize,
}

/// Client-side description of an aggregate query before it is posted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggregateSpec {
    /// The aggregate function.
    pub kind: AggregateKind,
    /// Target relative error ε at full coverage.
    pub eps: f64,
    /// Failure probability δ.
    pub delta: f64,
    /// Sliding-window width in milliseconds.
    pub window_ms: u64,
    /// Query lifespan in milliseconds (expiry = posting time + lifespan).
    pub lifespan_ms: u64,
    /// Quantization universe size (see [`quantize`]).
    pub bins: u64,
    /// Explicit sketch dimensions, overriding the `(ε, δ)`-derived ones.
    /// Tests use this to inject an under-sized sketch whose advertised
    /// bound is a lie — the accuracy oracle's negative control.
    pub forced_dims: Option<SketchDims>,
}

/// A posted aggregate query in flight.
#[derive(Debug, Clone)]
pub struct AggregateQuery {
    /// Unique query identifier (shared namespace with similarity queries).
    pub id: QueryId,
    /// Node that posted the query and receives the notifications.
    pub client: ChordId,
    /// Node collecting replica sketches and emitting notifications.
    pub aggregator: ChordId,
    /// The spec this query was posted from.
    pub spec: AggregateSpec,
    /// Sketch construction parameters shared by every replica.
    pub params: SketchParams,
    /// Sketch grid dimensions shared by every replica.
    pub dims: SketchDims,
    /// Absolute expiry time.
    pub expires: SimTime,
}

impl AggregateQuery {
    /// True if the query has expired at `now`.
    pub fn expired(&self, now: SimTime) -> bool {
        now >= self.expires
    }

    /// A fresh, empty replica sketch with this query's parameters.
    pub fn fresh_sketch(&self) -> EcmSketch {
        EcmSketch::with_dims(self.params, self.dims)
    }

    /// The advertised full-coverage accuracy contract.
    pub fn bound(&self) -> ErrorBound {
        ErrorBound { eps: self.params.eps, delta: self.params.delta }
    }
}

/// The value part of an aggregate notification.
#[derive(Debug, Clone, PartialEq)]
pub enum AggregateValue {
    /// A single estimate (window count, point count, self-join size).
    Scalar(f64),
    /// Heavy-hitter bins with their estimated window frequencies.
    Bins(Vec<(u64, f64)>),
}

/// One periodic answer to an aggregate query, tagged with the accuracy
/// contract the collection round actually achieved.
#[derive(Debug, Clone)]
pub struct AggregateNotification {
    /// Query this notification answers.
    pub query: QueryId,
    /// The aggregate function computed.
    pub kind: AggregateKind,
    /// The estimate.
    pub value: AggregateValue,
    /// The advertised relative error: base ε widened by the uncovered
    /// population fraction ([`ErrorBound::effective_eps`]).
    pub eps_effective: f64,
    /// Failure probability of the contract.
    pub delta: f64,
    /// Fraction of live nodes whose replica reached the aggregator.
    pub coverage: f64,
    /// Number of replica sketches folded into the estimate.
    pub components: u32,
    /// The nodes that contributed, each with the virtual time its replica
    /// started counting (sketches installed by repair missed earlier
    /// events; the oracle scopes its reference accordingly).
    pub contributors: Vec<(ChordId, SimTime)>,
    /// Virtual time the aggregator emitted the notification.
    pub at: SimTime,
}

/// Cluster-side runtime state of one aggregate query: the query plus the
/// per-node replica sketches, sorted by owning node id.
#[derive(Debug, Clone)]
pub(crate) struct AggregateRuntime {
    pub(crate) query: AggregateQuery,
    /// `(node, since, sketch)` — `since` is when this replica started
    /// counting (posting time, or the repair time for healed replicas).
    pub(crate) replicas: Vec<(ChordId, SimTime, EcmSketch)>,
}

impl AggregateRuntime {
    /// Index of `node`'s replica slot, or where to insert one.
    pub(crate) fn slot(&self, node: ChordId) -> Result<usize, usize> {
        self.replicas.binary_search_by(|(n, _, _)| n.cmp(&node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_is_monotone_and_total() {
        let bins = 64u64;
        let mut last = 0u64;
        let mut seen_distinct = 0usize;
        for i in 0..=1000 {
            let v = QUANTIZE_LO + (QUANTIZE_HI - QUANTIZE_LO) * (i as f64) / 1000.0;
            let b = quantize(v, bins);
            assert!(b < bins);
            assert!(b >= last, "quantize must be monotone");
            if b != last || i == 0 {
                seen_distinct += 1;
            }
            last = b;
        }
        assert_eq!(seen_distinct, bins as usize, "the range must cover every bin");
        // Out-of-range and non-finite values clamp, never panic.
        assert_eq!(quantize(f64::NEG_INFINITY, bins), 0);
        assert_eq!(quantize(f64::INFINITY, bins), bins - 1);
        assert_eq!(quantize(f64::NAN, bins), 0);
        assert_eq!(quantize(1e300, bins), bins - 1);
        assert_eq!(quantize(0.0, 1), 0);
    }

    #[test]
    fn kind_round_trips_through_serde() {
        for kind in [
            AggregateKind::WindowCount,
            AggregateKind::PointCount { bin: 7 },
            AggregateKind::HeavyHitters { phi: 0.125 },
            AggregateKind::SelfJoinSize,
        ] {
            let v = kind.to_value();
            let back = AggregateKind::from_value(&v).expect("round trip");
            assert_eq!(kind, back);
        }
    }
}
