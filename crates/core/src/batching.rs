//! ζ-batching of consecutive feature vectors into MBRs (§IV-G).
//!
//! Consecutive summaries of the same stream differ in only one window entry,
//! so they cluster tightly in feature space ("Fourier locality", Fig. 3(b)).
//! Shipping one MBR per ζ summaries cuts the update bandwidth by roughly ζ
//! at the cost of coarser (but never lossy) candidate filtering.

use dsi_dsp::{FeatureVector, Mbr};
use serde::{Deserialize, Serialize};

/// Groups every ζ consecutive feature vectors of one stream into an MBR.
///
/// Optionally bounds the *first-dimension width* of a batch: the first
/// feature dimension determines the replication key range (Eq. 10), so a
/// volatile stream would otherwise occasionally produce an MBR replicated
/// across a large slice of the ring. When adding a summary would push the
/// routing interval past `max_width`, the pending batch is shipped early —
/// the fixed-ζ ancestor of the §VI-A adaptive-precision scheme.
///
/// Internally only the *running corner bounds* of the pending batch are
/// kept, not the member vectors: each push folds the new point in with the
/// exact comparison sequence of [`Mbr::extend_point`], so the emitted MBR is
/// bit-identical to `Mbr::from_features` over the members while the
/// steady-state (non-emitting) push path performs zero heap allocations —
/// the ingest hot-path contract of DESIGN.md §14.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MbrBatcher {
    zeta: usize,
    max_width: Option<f64>,
    /// Running lower corner of the pending batch.
    low: Vec<f64>,
    /// Running upper corner of the pending batch.
    high: Vec<f64>,
    /// Number of summaries folded into the pending batch.
    members: usize,
    produced: u64,
    early_shipments: u64,
}

impl MbrBatcher {
    /// Creates a batcher with factor ζ (`zeta == 1` ships every summary as a
    /// degenerate point MBR, i.e. batching disabled) and no width bound.
    ///
    /// # Panics
    /// Panics if `zeta == 0`.
    pub fn new(zeta: usize) -> Self {
        assert!(zeta > 0, "batching factor must be positive");
        MbrBatcher {
            zeta,
            max_width: None,
            low: Vec::new(),
            high: Vec::new(),
            members: 0,
            produced: 0,
            early_shipments: 0,
        }
    }

    /// Adds a bound on the batch's first-dimension (routing) width.
    ///
    /// # Panics
    /// Panics if `max_width` is not positive.
    pub fn with_max_width(mut self, max_width: f64) -> Self {
        assert!(max_width > 0.0, "width bound must be positive");
        self.max_width = Some(max_width);
        self
    }

    /// Changes the width bound at runtime (`None` removes it) — the knob
    /// the §VI-A adaptive-precision controller turns.
    ///
    /// # Panics
    /// Panics if the new bound is not positive.
    pub fn set_max_width(&mut self, max_width: Option<f64>) {
        if let Some(w) = max_width {
            assert!(w > 0.0, "width bound must be positive");
        }
        self.max_width = max_width;
    }

    /// The current width bound.
    pub fn max_width(&self) -> Option<f64> {
        self.max_width
    }

    /// The batching factor ζ.
    #[inline]
    pub fn zeta(&self) -> usize {
        self.zeta
    }

    /// Number of MBRs emitted so far.
    #[inline]
    pub fn produced(&self) -> u64 {
        self.produced
    }

    /// MBRs shipped *early* because the width bound would have been
    /// violated — the update-pressure signal of the §VI-A controller.
    #[inline]
    pub fn early_shipments(&self) -> u64 {
        self.early_shipments
    }

    /// Number of feature vectors waiting for the current batch to fill.
    #[inline]
    pub fn pending(&self) -> usize {
        self.members
    }

    /// Adds a summary; returns an MBR when ζ summaries accumulated, or
    /// earlier when the width bound would be violated (the pending batch is
    /// shipped and the new summary starts the next one).
    // dsilint: allow(hot-path-alloc, legacy per-FeatureVector entry that allocates via to_reals; the ingest path feeds push_reals with scratch coordinates directly)
    pub fn push(&mut self, fv: FeatureVector) -> Option<Mbr> {
        self.push_reals(&fv.to_reals())
    }

    /// [`MbrBatcher::push`] over a summary's flattened real coordinates —
    /// the allocation-free variant: a push that does not complete a batch
    /// touches only the running bounds (no heap traffic once the corner
    /// buffers hold their capacity).
    ///
    /// # Panics
    /// Panics if `reals` has a different dimensionality than the pending
    /// batch.
    pub fn push_reals(&mut self, reals: &[f64]) -> Option<Mbr> {
        if self.members == 0 {
            self.start_batch(reals);
        } else {
            assert_eq!(reals.len(), self.low.len(), "point dimensionality mismatch");
            if let Some(limit) = self.max_width {
                if !self.low.is_empty() {
                    // Per-dimension independence of `extend_point` means the
                    // probe's routing interval is just the running dim-0
                    // interval extended by the new first coordinate.
                    let p0 = reals[0];
                    let lo = if p0 < self.low[0] { p0 } else { self.low[0] };
                    let hi = if p0 > self.high[0] { p0 } else { self.high[0] };
                    if hi - lo > limit {
                        let mbr = self.take_mbr();
                        self.start_batch(reals);
                        self.early_shipments += 1;
                        return Some(mbr);
                    }
                }
            }
            // The exact comparison sequence of `Mbr::extend_point`.
            for ((l, h), &v) in self.low.iter_mut().zip(self.high.iter_mut()).zip(reals.iter()) {
                if v < *l {
                    *l = v;
                }
                if v > *h {
                    *h = v;
                }
            }
            self.members += 1;
        }
        if self.members == self.zeta {
            Some(self.take_mbr())
        } else {
            None
        }
    }

    /// Flushes a partial batch (used at stream shutdown), if any.
    pub fn flush(&mut self) -> Option<Mbr> {
        if self.members == 0 {
            return None;
        }
        Some(self.take_mbr())
    }

    /// Resets the running bounds onto a fresh batch seeded with one point.
    fn start_batch(&mut self, reals: &[f64]) {
        self.low.clear();
        self.low.extend_from_slice(reals);
        self.high.clear();
        self.high.extend_from_slice(reals);
        self.members = 1;
    }

    /// Emits the pending batch's MBR and resets the member count.
    // dsilint: allow(hot-path-alloc, cold boundary: called only when a batch closes — the emission path; non-emitting pushes return before reaching it)
    fn take_mbr(&mut self) -> Mbr {
        self.produced += 1;
        self.members = 0;
        Mbr::from_corners(self.low.clone(), self.high.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsi_dsp::{Complex64, Normalization};

    fn fv(re: f64) -> FeatureVector {
        FeatureVector::new(vec![Complex64::new(re, re / 2.0)], Normalization::ZNorm)
    }

    #[test]
    fn emits_every_zeta_pushes() {
        let mut b = MbrBatcher::new(3);
        assert!(b.push(fv(0.1)).is_none());
        assert!(b.push(fv(0.2)).is_none());
        let mbr = b.push(fv(0.15)).expect("third push completes the batch");
        assert_eq!(mbr.low(), &[0.1, 0.05]);
        assert_eq!(mbr.high(), &[0.2, 0.1]);
        assert_eq!(b.pending(), 0);
        assert_eq!(b.produced(), 1);
    }

    #[test]
    fn mbr_contains_all_batch_members() {
        let mut b = MbrBatcher::new(5);
        let members: Vec<FeatureVector> = (0..5).map(|i| fv(0.1 * i as f64)).collect();
        let mut out = None;
        for m in &members {
            out = b.push(m.clone());
        }
        let mbr = out.unwrap();
        for m in &members {
            assert!(mbr.contains(&m.to_reals()));
        }
    }

    #[test]
    fn zeta_one_ships_points() {
        let mut b = MbrBatcher::new(1);
        let mbr = b.push(fv(0.3)).unwrap();
        assert_eq!(mbr.volume(), 0.0);
        assert_eq!(b.produced(), 1);
    }

    #[test]
    fn flush_partial_batch() {
        let mut b = MbrBatcher::new(4);
        b.push(fv(0.1));
        b.push(fv(0.4));
        let mbr = b.flush().expect("two pending summaries");
        assert!(mbr.contains(&fv(0.1).to_reals()));
        assert!(mbr.contains(&fv(0.4).to_reals()));
        assert!(b.flush().is_none());
    }

    #[test]
    fn bandwidth_reduction_factor() {
        // n summaries produce floor(n / zeta) MBR shipments.
        let mut b = MbrBatcher::new(10);
        let mut shipped = 0;
        for i in 0..95 {
            if b.push(fv(i as f64 * 0.01)).is_some() {
                shipped += 1;
            }
        }
        assert_eq!(shipped, 9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_zeta_panics() {
        let _ = MbrBatcher::new(0);
    }

    #[test]
    fn width_bound_ships_early() {
        let mut b = MbrBatcher::new(10).with_max_width(0.05);
        assert!(b.push(fv(0.10)).is_none());
        assert!(b.push(fv(0.12)).is_none());
        // 0.30 would widen the routing interval to 0.20 > 0.05:
        // the pending pair ships, 0.30 starts a new batch.
        let mbr = b.push(fv(0.30)).expect("early shipment");
        assert_eq!(mbr.first_interval(), (0.10, 0.12));
        assert_eq!(b.pending(), 1);
        // The new batch still honors zeta.
        for i in 0..8 {
            assert!(b.push(fv(0.30 + i as f64 * 0.001)).is_none());
        }
        let full = b.push(fv(0.305)).expect("zeta reached");
        let (lo, hi) = full.first_interval();
        assert!(hi - lo <= 0.05 + 1e-12);
    }

    #[test]
    fn width_bound_never_exceeded_on_emitted_mbrs() {
        let mut b = MbrBatcher::new(10).with_max_width(0.02);
        let mut rng_state = 7u64;
        let mut x = 0.0f64;
        for _ in 0..500 {
            // Cheap deterministic pseudo-random walk.
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let step = ((rng_state >> 33) as f64 / (1u64 << 31) as f64 - 0.5) * 0.02;
            x = (x + step).clamp(-0.9, 0.9);
            if let Some(mbr) = b.push(fv(x)) {
                let (lo, hi) = mbr.first_interval();
                assert!(hi - lo <= 0.02 + 1e-12, "width {}", hi - lo);
            }
        }
    }

    #[test]
    #[should_panic(expected = "width bound must be positive")]
    fn zero_width_bound_panics() {
        let _ = MbrBatcher::new(5).with_max_width(0.0);
    }

    /// The pre-SoA batcher, verbatim: kept as the reference model the
    /// running-bounds rewrite must match bit-for-bit.
    struct ModelBatcher {
        zeta: usize,
        max_width: Option<f64>,
        pending: Vec<FeatureVector>,
    }

    impl ModelBatcher {
        fn push(&mut self, fv: FeatureVector) -> Option<Mbr> {
            if let Some(limit) = self.max_width {
                if !self.pending.is_empty() {
                    let mut probe = Mbr::from_features(self.pending.iter());
                    probe.extend_point(&fv.to_reals());
                    let (lo, hi) = probe.first_interval();
                    if hi - lo > limit {
                        let mbr = Mbr::from_features(self.pending.iter());
                        self.pending.clear();
                        self.pending.push(fv);
                        return Some(mbr);
                    }
                }
            }
            self.pending.push(fv);
            if self.pending.len() == self.zeta {
                let mbr = Mbr::from_features(self.pending.iter());
                self.pending.clear();
                Some(mbr)
            } else {
                None
            }
        }
    }

    #[test]
    fn running_bounds_are_bit_identical_to_member_list_model() {
        for limit in [None, Some(0.04), Some(0.5)] {
            let mut b = MbrBatcher::new(6);
            b.set_max_width(limit);
            let mut model = ModelBatcher { zeta: 6, max_width: limit, pending: Vec::new() };
            let mut state = 42u64;
            for _ in 0..800 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let x = ((state >> 33) as f64 / (1u64 << 31) as f64 - 0.5) * 0.3;
                let f = fv(x);
                let (got, want) = (b.push(f.clone()), model.push(f));
                assert_eq!(got.is_some(), want.is_some());
                if let (Some(g), Some(w)) = (got, want) {
                    for (a, c) in g.low().iter().zip(w.low().iter()) {
                        assert_eq!(a.to_bits(), c.to_bits());
                    }
                    for (a, c) in g.high().iter().zip(w.high().iter()) {
                        assert_eq!(a.to_bits(), c.to_bits());
                    }
                }
                assert_eq!(b.pending(), model.pending.len());
            }
        }
    }

    #[test]
    fn non_emitting_push_reals_does_not_regrow_buffers() {
        let mut b = MbrBatcher::new(1000);
        b.push_reals(&[0.1, 0.2]);
        let caps = (b.low.capacity(), b.high.capacity());
        for i in 0..500 {
            assert!(b.push_reals(&[0.1 + i as f64 * 1e-4, 0.2]).is_none());
        }
        assert_eq!((b.low.capacity(), b.high.capacity()), caps);
    }
}
