//! Wire-format model of the middleware's messages, with size accounting.
//!
//! Figures 6-8 measure network cost in *messages*; the paper's deeper claim
//! — "minimizing the amount of network ... resources consumed by data
//! centers and network links" — is about bandwidth. This module gives every
//! message a concrete wire size so the ζ-batching saving can be stated in
//! bytes: shipping one MBR (two corner vectors) replaces ζ individual
//! summary vectors.

use crate::query::{InnerProductQuery, QueryId, SimilarityQuery, StreamId};
use dsi_chord::ChordId;
use dsi_dsp::{FeatureVector, Mbr};
use dsi_simnet::SimTime;
use serde::{Deserialize, Serialize};

/// Fixed per-message overlay header: source, destination key, type tag,
/// and a sequence number (the usual 8+8+4+4 layout).
pub const HEADER_BYTES: usize = 24;

/// Bytes of one `f64`.
const F64: usize = 8;

/// A middleware message on the wire.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Message {
    /// A single stream summary ("put"), when batching is disabled.
    SummaryUpdate {
        /// Stream the summary describes.
        stream: StreamId,
        /// The feature vector.
        feature: FeatureVector,
        /// Expiry at the storing node.
        expires: SimTime,
    },
    /// A batched update: one MBR standing for ζ summaries (§IV-G).
    MbrUpdate {
        /// Stream the batch describes.
        stream: StreamId,
        /// The bounding box.
        mbr: Mbr,
        /// Expiry at the storing nodes.
        expires: SimTime,
    },
    /// A similarity query replicated over its key range.
    SimilaritySubscribe(SimilarityQuery),
    /// An inner-product subscription routed to the stream source.
    InnerProductSubscribe(InnerProductQuery),
    /// Aggregated candidate information exchanged between neighbors /
    /// flowed to the middle node (§IV-F).
    SimilarityInfo {
        /// The query the candidates answer.
        query: QueryId,
        /// Candidate stream identifiers.
        candidates: Vec<StreamId>,
    },
    /// A periodic response from the aggregator to the client.
    SimilarityResponse {
        /// The answered query.
        query: QueryId,
        /// Verified matching streams.
        matches: Vec<StreamId>,
    },
    /// A periodic inner-product value push.
    InnerProductPush {
        /// The answered query.
        query: QueryId,
        /// The approximate value (Eq. 7).
        value: f64,
    },
    /// Location-service put: `stream -> source`.
    LocationPut {
        /// Stream being registered.
        stream: StreamId,
        /// Its source data center.
        source: ChordId,
    },
    /// Location-service get (the reply carries a `LocationPut`).
    LocationGet {
        /// Stream being resolved.
        stream: StreamId,
    },
    /// Reliability-layer acknowledgment of a delivered message id
    /// (DESIGN.md §12); an unacked send retries with exponential backoff.
    Ack {
        /// Id of the message being acknowledged.
        msg_id: u64,
    },
}

impl Message {
    /// Payload bytes (excluding the overlay header).
    pub fn payload_size(&self) -> usize {
        match self {
            Message::SummaryUpdate { feature, .. } => 4 + feature.k() * 2 * F64 + 8,
            Message::MbrUpdate { mbr, .. } => 4 + mbr.dims() * 2 * F64 + 8,
            Message::SimilaritySubscribe(q) => {
                // id + client + radius + expires + feature + aggregator.
                8 + 8 + F64 + 8 + q.feature.k() * 2 * F64 + 8
            }
            Message::InnerProductSubscribe(q) => {
                8 + 8 + 4 + q.indices.len() * 4 + q.weights.len() * F64 + 8
            }
            Message::SimilarityInfo { candidates, .. } => 8 + 4 + candidates.len() * 4,
            Message::SimilarityResponse { matches, .. } => 8 + 4 + matches.len() * 4,
            Message::InnerProductPush { .. } => 8 + F64,
            Message::LocationPut { .. } => 4 + 8,
            Message::LocationGet { .. } => 4,
            Message::Ack { .. } => 8,
        }
    }

    /// Total wire size including the header.
    pub fn wire_size(&self) -> usize {
        HEADER_BYTES + self.payload_size()
    }
}

/// Bandwidth of shipping ζ summaries *individually* versus as one MBR, per
/// batch and per replica: the §IV-G saving in bytes.
pub fn batching_saving(k: usize, zeta: usize) -> (usize, usize) {
    let summary = HEADER_BYTES + 4 + k * 2 * F64 + 8;
    let mbr = HEADER_BYTES + 4 + (k * 2) * 2 * F64 + 8;
    (summary * zeta, mbr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::SimilarityKind;
    use dsi_dsp::{Complex64, Normalization};

    fn fv(k: usize) -> FeatureVector {
        FeatureVector::new(vec![Complex64::new(0.1, 0.2); k], Normalization::UnitNorm)
    }

    #[test]
    fn sizes_scale_with_payload() {
        let small = Message::SummaryUpdate { stream: 1, feature: fv(2), expires: SimTime::ZERO };
        let large = Message::SummaryUpdate { stream: 1, feature: fv(8), expires: SimTime::ZERO };
        assert!(large.wire_size() > small.wire_size());
        assert_eq!(large.wire_size() - small.wire_size(), 6 * 2 * 8);
    }

    #[test]
    fn mbr_update_is_twice_a_summary_plus_constant() {
        let k = 3;
        let summary = Message::SummaryUpdate { stream: 1, feature: fv(k), expires: SimTime::ZERO };
        let mbr = Mbr::from_point(&fv(k).to_reals());
        let update = Message::MbrUpdate { stream: 1, mbr, expires: SimTime::ZERO };
        // An MBR carries low + high corners: 2x the coefficient payload.
        assert_eq!(update.payload_size() - 12, 2 * (summary.payload_size() - 12));
    }

    #[test]
    fn batching_saves_bandwidth_beyond_zeta_two() {
        for k in [1usize, 2, 4] {
            for zeta in [3usize, 5, 10, 20] {
                let (individual, batched) = batching_saving(k, zeta);
                assert!(batched < individual, "zeta={zeta}, k={k}: {batched} not < {individual}");
            }
            // zeta = 1 is strictly worse (an MBR is bigger than a point).
            let (individual, batched) = batching_saving(k, 1);
            assert!(batched > individual);
        }
    }

    #[test]
    fn info_and_response_sizes_track_candidate_count() {
        let a = Message::SimilarityInfo { query: 1, candidates: vec![1, 2, 3] };
        let b = Message::SimilarityInfo { query: 1, candidates: vec![] };
        assert_eq!(a.payload_size() - b.payload_size(), 12);
    }

    #[test]
    fn serde_roundtrip() {
        let q = SimilarityQuery::from_target(
            7,
            3,
            vec![1.0; 16],
            0.1,
            SimilarityKind::Subsequence,
            2,
            9,
            SimTime::from_secs(10),
        );
        let m = Message::SimilaritySubscribe(q);
        let json = serde_json::to_string(&m).unwrap();
        let back: Message = serde_json::from_str(&json).unwrap();
        assert_eq!(m.wire_size(), back.wire_size());
    }

    #[test]
    fn every_variant_has_nonzero_payload_accounting() {
        let msgs = vec![
            Message::SummaryUpdate { stream: 1, feature: fv(2), expires: SimTime::ZERO },
            Message::MbrUpdate {
                stream: 1,
                mbr: Mbr::from_point(&[0.0; 4]),
                expires: SimTime::ZERO,
            },
            Message::SimilarityInfo { query: 1, candidates: vec![4] },
            Message::SimilarityResponse { query: 1, matches: vec![4, 5] },
            Message::InnerProductPush { query: 1, value: 3.5 },
            Message::LocationPut { stream: 2, source: 77 },
            Message::LocationGet { stream: 2 },
            Message::Ack { msg_id: 9 },
        ];
        for m in msgs {
            assert!(m.payload_size() > 0, "{m:?}");
            assert!(m.wire_size() > HEADER_BYTES);
        }
    }
}
