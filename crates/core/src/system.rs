//! The experiment driver (§V): replays the paper's workload — periodic
//! streams, Poisson query arrivals, staggered NPER notify cycles — through
//! the discrete-event engine and produces a [`SystemReport`] with every
//! figure's raw series.

use crate::cluster::{Cluster, ClusterConfig};
use crate::query::SimilarityKind;
use crate::report::SystemReport;
use dsi_chord::{BuildRouter, RangeStrategy, Ring};
use dsi_simnet::{Engine, PoissonArrivals, SimTime};
use dsi_streamgen::{QueryWorkload, RandomWalk, WorkloadConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of one experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Number of data centers; each is the source of exactly one stream
    /// (the paper's setup).
    pub num_nodes: usize,
    /// Workload parameters (Table I).
    pub workload: WorkloadConfig,
    /// RNG seed — equal seeds give identical reports.
    pub seed: u64,
    /// Identifier-space bits.
    pub id_bits: u32,
    /// Range multicast strategy.
    pub strategy: RangeStrategy,
    /// Similarity flavor.
    pub kind: SimilarityKind,
    /// Warm-up before measurement starts (streams fill windows, queries
    /// accumulate), in ms.
    pub warmup_ms: u64,
    /// Measured window, in ms.
    pub measure_ms: u64,
    /// Fraction of arriving queries that are inner-product queries
    /// (the paper's figures use pure similarity workloads: 0.0).
    pub inner_product_fraction: f64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            num_nodes: 50,
            workload: WorkloadConfig::default(),
            seed: 42,
            id_bits: 32,
            strategy: RangeStrategy::Sequential,
            // The evaluation indexes streams under the subsequence flavor:
            // its routing coefficient (the unit-norm DC bin) is stable as
            // the window slides, which is what keeps MBR key ranges small
            // (the paper's "relatively small ranges" observation) and makes
            // batching effective. See DESIGN.md §5.
            kind: SimilarityKind::Subsequence,
            warmup_ms: 30_000,
            measure_ms: 60_000,
            inner_product_fraction: 0.0,
        }
    }
}

impl ExperimentConfig {
    /// Shorthand varying only the node count (the figures' x-axis).
    pub fn with_nodes(num_nodes: usize) -> Self {
        ExperimentConfig { num_nodes, ..Default::default() }
    }
}

/// Events driving the simulation.
enum Ev {
    /// A stream produces its next value.
    StreamTick { stream: usize },
    /// A client query arrives (Poisson process).
    QueryArrival,
    /// A data center runs its periodic NPER cycle.
    NotifyTick { node_idx: usize },
}

struct Driver<R: dsi_chord::ContentRouter> {
    cluster: Cluster<R>,
    rng: StdRng,
    walks: Vec<RandomWalk>,
    periods: Vec<u64>,
    qw: QueryWorkload,
    arrivals: PoissonArrivals,
    ip_fraction: f64,
}

/// Runs one experiment on the default Chord backend.
///
/// # Panics
/// Panics on invalid configuration.
pub fn run_experiment(cfg: &ExperimentConfig) -> SystemReport {
    run_experiment_on::<Ring>(cfg)
}

/// Runs one experiment on any routing backend (the portability claim:
/// identical middleware, different substrate).
///
/// # Panics
/// Panics on invalid configuration.
pub fn run_experiment_on<R: BuildRouter>(cfg: &ExperimentConfig) -> SystemReport {
    run_experiment_inner::<R>(cfg, None).report
}

/// A traced experiment: the ordinary [`SystemReport`] plus everything the
/// observability layer captured alongside it.
pub struct TracedExperiment<R: dsi_chord::ContentRouter = Ring> {
    /// The report — identical to the untraced run's (tracing is
    /// observationally free; the golden conformance test pins this).
    pub report: SystemReport,
    /// The cluster in its end-of-run state: its
    /// [`Cluster::tracer`](crate::Cluster::tracer) holds the causal trace
    /// of the measurement window, its metrics the matching counters.
    pub cluster: Cluster<R>,
    /// The engine's dispatched-event tick log (`(sim_ms, seq)`), for the
    /// scheduler lane of `dsi_trace::write_chrome_trace`.
    pub engine_ticks: Vec<(u64, u64)>,
}

/// [`run_experiment`] with causal tracing enabled: records up to
/// `trace_capacity` trace records (and as many engine ticks) over the
/// measured window and returns them alongside the report.
///
/// # Panics
/// Panics on invalid configuration.
pub fn run_experiment_traced(
    cfg: &ExperimentConfig,
    trace_capacity: usize,
) -> TracedExperiment<Ring> {
    run_experiment_inner::<Ring>(cfg, Some(trace_capacity))
}

fn run_experiment_inner<R: BuildRouter>(
    cfg: &ExperimentConfig,
    trace_capacity: Option<usize>,
) -> TracedExperiment<R> {
    assert!(
        (0.0..=1.0).contains(&cfg.inner_product_fraction),
        "inner-product fraction must be a probability"
    );
    let cluster_cfg = ClusterConfig {
        num_nodes: cfg.num_nodes,
        workload: cfg.workload.clone(),
        id_bits: cfg.id_bits,
        strategy: cfg.strategy,
        kind: cfg.kind,
    };
    let mut cluster: Cluster<R> = Cluster::with_backend(cluster_cfg);
    if let Some(capacity) = trace_capacity {
        cluster.enable_tracing(capacity);
    }
    for i in 0..cfg.num_nodes {
        cluster.register_stream(&format!("stream-{i}"), i);
    }

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let qw = QueryWorkload::new(cfg.workload.clone(), cfg.num_nodes);
    let periods: Vec<u64> = (0..cfg.num_nodes).map(|_| qw.sample_period_ms(&mut rng)).collect();
    // Heterogeneous stream population: feature levels spread uniformly over
    // the routing interval, realizing the paper's uniformity assumption.
    let walks: Vec<RandomWalk> =
        (0..cfg.num_nodes).map(|_| RandomWalk::sample_spread(&mut rng)).collect();
    let arrivals = PoissonArrivals::new(cfg.workload.qrate_per_sec);

    let mut engine: Engine<Ev> = Engine::new();
    if let Some(capacity) = trace_capacity {
        engine.enable_tick_log(capacity);
    }
    for (i, &p) in periods.iter().enumerate() {
        let phase = rng.gen_range(0..p);
        engine.schedule_at(SimTime::from_ms(phase), Ev::StreamTick { stream: i });
    }
    for i in 0..cfg.num_nodes {
        let phase = rng.gen_range(0..cfg.workload.nper_ms);
        engine.schedule_at(SimTime::from_ms(phase), Ev::NotifyTick { node_idx: i });
    }
    let first_arrival = arrivals.next_gap_ms(&mut rng);
    engine.schedule_at(SimTime::from_ms(first_arrival), Ev::QueryArrival);

    let mut driver = Driver {
        cluster,
        rng,
        walks,
        periods,
        qw,
        arrivals,
        ip_fraction: cfg.inner_product_fraction,
    };

    let nper = cfg.workload.nper_ms;
    let handler = move |eng: &mut Engine<Ev>, d: &mut Driver<R>, now: SimTime, ev: Ev| match ev {
        Ev::StreamTick { stream } => {
            let v = d.walks[stream].next_value(&mut d.rng);
            d.cluster.post_value(stream as u32, v, now);
            eng.schedule_after(d.periods[stream], Ev::StreamTick { stream });
        }
        Ev::QueryArrival => {
            if d.ip_fraction > 0.0 && d.rng.gen_bool(d.ip_fraction) {
                let spec = d.qw.inner_product_query(&mut d.rng);
                d.cluster.post_inner_product_query(
                    spec.issuer,
                    spec.stream as u32,
                    spec.indices,
                    spec.weights,
                    spec.lifespan_ms,
                    now,
                );
            } else {
                let spec = d.qw.similarity_query(&mut d.rng);
                d.cluster.post_similarity_query(
                    spec.issuer,
                    spec.target,
                    spec.radius,
                    spec.lifespan_ms,
                    now,
                );
            }
            let gap = d.arrivals.next_gap_ms(&mut d.rng);
            eng.schedule_after(gap, Ev::QueryArrival);
        }
        Ev::NotifyTick { node_idx } => {
            let node = d.cluster.node_id(node_idx);
            d.cluster.notify_cycle(node, now);
            if node_idx == 0 {
                d.cluster.purge_queries(now);
            }
            eng.schedule_after(nper, Ev::NotifyTick { node_idx });
        }
    };

    // Warm up without measuring, then measure.
    let mut handler = handler;
    engine.run_until(&mut driver, SimTime::from_ms(cfg.warmup_ms), &mut handler);
    driver.cluster.start_measurement();
    let quality_before = driver.cluster.quality();
    let matches_before: u64 = count_matches(&driver.cluster);
    engine.run_until(&mut driver, SimTime::from_ms(cfg.warmup_ms + cfg.measure_ms), &mut handler);
    driver.cluster.stop_measurement();

    let duration_s = cfg.measure_ms as f64 / 1000.0;
    let quality = driver.cluster.quality();
    let report = SystemReport::from_metrics(
        driver.cluster.metrics(),
        driver.cluster.node_ids(),
        duration_s,
        cfg.seed,
        cfg.workload.query_radius,
        count_matches(&driver.cluster) - matches_before,
        quality.candidates - quality_before.candidates,
    );
    TracedExperiment { report, cluster: driver.cluster, engine_ticks: engine.tick_log() }
}

fn count_matches<R: dsi_chord::ContentRouter>(cluster: &Cluster<R>) -> u64 {
    cluster.total_notifications()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(n: usize, seed: u64) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::with_nodes(n);
        cfg.seed = seed;
        cfg.workload.window_len = 32;
        cfg.warmup_ms = 12_000;
        cfg.measure_ms = 20_000;
        cfg
    }

    #[test]
    fn small_experiment_produces_sane_report() {
        let r = run_experiment(&quick_cfg(20, 7));
        assert_eq!(r.num_nodes, 20);
        assert!(r.events.mbrs > 0, "streams must produce MBRs");
        assert!(r.events.queries > 0, "queries must arrive");
        assert!(r.events.responses > 0, "aggregators must respond");
        assert!(r.load.mbrs > 0.0);
        assert!(r.load.total() > 0.0);
        assert_eq!(r.per_node_load.len(), 20);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = run_experiment(&quick_cfg(15, 99));
        let b = run_experiment(&quick_cfg(15, 99));
        assert_eq!(serde_json::to_string(&a).unwrap(), serde_json::to_string(&b).unwrap());
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_experiment(&quick_cfg(15, 1));
        let b = run_experiment(&quick_cfg(15, 2));
        assert_ne!(serde_json::to_string(&a).unwrap(), serde_json::to_string(&b).unwrap());
    }

    #[test]
    fn transit_load_grows_with_nodes() {
        // The only component the paper predicts to grow (logarithmically)
        // is MBR-in-transit.
        let small = run_experiment(&quick_cfg(10, 5));
        let large = run_experiment(&quick_cfg(60, 5));
        assert!(
            large.load.mbrs_in_transit > small.load.mbrs_in_transit,
            "transit load must grow with node count: {} vs {}",
            small.load.mbrs_in_transit,
            large.load.mbrs_in_transit
        );
    }

    #[test]
    fn per_node_responses_shrink_with_nodes() {
        // Total responses are proportional to the (constant) query rate, so
        // the per-node share decreases.
        let small = run_experiment(&quick_cfg(10, 5));
        let large = run_experiment(&quick_cfg(60, 5));
        assert!(
            large.load.responses < small.load.responses,
            "per-node response load must shrink: {} vs {}",
            small.load.responses,
            large.load.responses
        );
    }

    #[test]
    fn wider_radius_increases_query_overhead() {
        let narrow = run_experiment(&quick_cfg(40, 5));
        let mut wide_cfg = quick_cfg(40, 5);
        wide_cfg.workload.query_radius = 0.2;
        let wide = run_experiment(&wide_cfg);
        assert!(
            wide.overhead.query > narrow.overhead.query * 1.4,
            "doubling the radius should roughly double internal query messages: {} vs {}",
            narrow.overhead.query,
            wide.overhead.query
        );
    }

    #[test]
    fn inner_product_workload_runs() {
        let mut cfg = quick_cfg(12, 3);
        cfg.inner_product_fraction = 0.5;
        let r = run_experiment(&cfg);
        assert!(r.events.queries > 0);
    }
}
