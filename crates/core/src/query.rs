//! Query types and evaluation (§III-B, §IV-D, §IV-E).

use dsi_chord::ChordId;
use dsi_dsp::dft::reconstruct_from_prefix;
use dsi_dsp::{extract_features, Complex64, FeatureVector, Normalization};
use dsi_simnet::SimTime;
use serde::{Deserialize, Serialize};

/// Identifier of a stream within the system.
pub type StreamId = u32;

/// Identifier of a posted query.
pub type QueryId = u64;

/// Which similarity flavor a query uses (§III-B.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SimilarityKind {
    /// Correlation queries: distance between z-normalized windows.
    Correlation,
    /// Subsequence queries: distance between unit-normalized windows.
    Subsequence,
}

impl SimilarityKind {
    /// The normalization this flavor applies to windows and queries.
    pub fn normalization(self) -> Normalization {
        match self {
            SimilarityKind::Correlation => Normalization::ZNorm,
            SimilarityKind::Subsequence => Normalization::UnitNorm,
        }
    }
}

/// A continuous similarity query `(Q, epsilon, lifespan)` in flight.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimilarityQuery {
    /// Unique query identifier.
    pub id: QueryId,
    /// Node that posted the query and receives the periodic responses.
    pub client: ChordId,
    /// Feature vector extracted from the query sequence.
    pub feature: FeatureVector,
    /// Raw query sequence (kept for exact false-positive filtering).
    pub target: Vec<f64>,
    /// Similarity threshold `epsilon`.
    pub radius: f64,
    /// Query flavor.
    pub kind: SimilarityKind,
    /// Node aggregating candidates for this query (the "middle node").
    pub aggregator: ChordId,
    /// Absolute expiry time (posting time + lifespan).
    pub expires: SimTime,
}

impl SimilarityQuery {
    /// Builds a query from a raw target sequence.
    #[allow(clippy::too_many_arguments)]
    pub fn from_target(
        id: QueryId,
        client: ChordId,
        target: Vec<f64>,
        radius: f64,
        kind: SimilarityKind,
        k: usize,
        aggregator: ChordId,
        expires: SimTime,
    ) -> Self {
        let feature = extract_features(&target, kind.normalization(), k);
        SimilarityQuery { id, client, feature, target, radius, kind, aggregator, expires }
    }

    /// Candidate test against another summary: may the underlying windows be
    /// within `radius`? Uses the lower-bounding feature distance, so a
    /// `false` here can never be a false dismissal.
    pub fn candidate(&self, other: &FeatureVector) -> bool {
        self.feature.distance(other) <= self.radius + 1e-12
    }

    /// True if the query has expired at `now`.
    pub fn expired(&self, now: SimTime) -> bool {
        now >= self.expires
    }
}

/// An alert condition attached to a continuous inner-product query — the
/// paper's "notify when the weighted average of the last measurements of a
/// patient exceeds a threshold value".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AlertCondition {
    /// Fire when the inner product exceeds the threshold.
    Above(f64),
    /// Fire when the inner product drops below the threshold.
    Below(f64),
}

impl AlertCondition {
    /// Whether `value` triggers the alert.
    pub fn triggered(self, value: f64) -> bool {
        match self {
            AlertCondition::Above(t) => value > t,
            AlertCondition::Below(t) => value < t,
        }
    }
}

/// A continuous inner-product query `(sid, I, W, lifespan)` (§III-B.1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InnerProductQuery {
    /// Unique query identifier.
    pub id: QueryId,
    /// Node that posted the query.
    pub client: ChordId,
    /// Target stream.
    pub stream: StreamId,
    /// Index vector: window positions of interest.
    pub indices: Vec<usize>,
    /// Weight vector, parallel to `indices`.
    pub weights: Vec<f64>,
    /// Optional alert condition: when set, the source additionally flags
    /// pushes whose value triggers it.
    pub alert: Option<AlertCondition>,
    /// Absolute expiry time.
    pub expires: SimTime,
}

impl InnerProductQuery {
    /// Builds a plain inner-product query.
    pub fn new(
        id: QueryId,
        client: ChordId,
        stream: StreamId,
        indices: Vec<usize>,
        weights: Vec<f64>,
        expires: SimTime,
    ) -> Self {
        assert_eq!(indices.len(), weights.len(), "index/weight vectors must align");
        InnerProductQuery { id, client, stream, indices, weights, alert: None, expires }
    }

    /// A *point query* — the value at one window position — expressed as an
    /// inner product with a unit weight ("simple point and range queries can
    /// be expressed as inner product queries", §III-B.1).
    pub fn point(
        id: QueryId,
        client: ChordId,
        stream: StreamId,
        index: usize,
        expires: SimTime,
    ) -> Self {
        Self::new(id, client, stream, vec![index], vec![1.0], expires)
    }

    /// A *range-sum query* over window positions `[start, end)` expressed as
    /// an inner product with all-ones weights.
    pub fn range_sum(
        id: QueryId,
        client: ChordId,
        stream: StreamId,
        range: std::ops::Range<usize>,
        expires: SimTime,
    ) -> Self {
        assert!(!range.is_empty(), "range query needs a non-empty range");
        let indices: Vec<usize> = range.collect();
        let weights = vec![1.0; indices.len()];
        Self::new(id, client, stream, indices, weights, expires)
    }

    /// A *range-average query* over `[start, end)` — all weights `1/len`.
    pub fn range_avg(
        id: QueryId,
        client: ChordId,
        stream: StreamId,
        range: std::ops::Range<usize>,
        expires: SimTime,
    ) -> Self {
        assert!(!range.is_empty(), "range query needs a non-empty range");
        let indices: Vec<usize> = range.collect();
        let weights = vec![1.0 / indices.len() as f64; indices.len()];
        Self::new(id, client, stream, indices, weights, expires)
    }

    /// Attaches an alert condition.
    pub fn with_alert(mut self, alert: AlertCondition) -> Self {
        self.alert = Some(alert);
        self
    }

    /// True if the query has expired at `now`.
    pub fn expired(&self, now: SimTime) -> bool {
        now >= self.expires
    }

    /// Exact weighted inner product over a raw window.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn evaluate_exact(&self, window: &[f64]) -> f64 {
        self.indices.iter().zip(self.weights.iter()).map(|(&i, &w)| window[i] * w).sum()
    }

    /// Approximate weighted inner product from a DFT coefficient prefix of
    /// the raw window (Eq. 7): reconstruct `x̂` from the retained
    /// coefficients, then compute `sum_i W_i * x̂_{I_i}`.
    pub fn evaluate_approx(&self, prefix: &[Complex64], window_len: usize) -> f64 {
        let approx = reconstruct_from_prefix(prefix, window_len);
        self.indices.iter().zip(self.weights.iter()).map(|(&i, &w)| approx[i] * w).sum()
    }
}

/// A match notification pushed to a client.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatchNotification {
    /// The query this match answers.
    pub query: QueryId,
    /// The matching stream.
    pub stream: StreamId,
    /// When the aggregator emitted the notification.
    pub at: SimTime,
    /// Fraction of the query's key range confirmed reached when the
    /// query was disseminated: `1.0` on a lossless network, lower when
    /// the reliability layer exhausted its retry budget on part of the
    /// range and degraded to a partial answer (DESIGN.md §12).
    pub coverage: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsi_dsp::dft::dft;

    fn wave(n: usize, f: f64, amp: f64) -> Vec<f64> {
        (0..n).map(|i| amp * (i as f64 * f).sin() + 10.0).collect()
    }

    #[test]
    fn candidate_accepts_identical_shape() {
        let target = wave(32, 0.3, 2.0);
        let q = SimilarityQuery::from_target(
            1,
            0,
            target.clone(),
            0.1,
            SimilarityKind::Correlation,
            3,
            0,
            SimTime::from_secs(10),
        );
        // Same shape scaled: identical z-norm features.
        let scaled: Vec<f64> = target.iter().map(|v| v * 3.0 + 5.0).collect();
        let fv = extract_features(&scaled, Normalization::ZNorm, 3);
        assert!(q.candidate(&fv));
    }

    #[test]
    fn candidate_rejects_distant_shape() {
        let q = SimilarityQuery::from_target(
            1,
            0,
            wave(32, 0.3, 2.0),
            0.05,
            SimilarityKind::Correlation,
            3,
            0,
            SimTime::from_secs(10),
        );
        let other: Vec<f64> = (0..32).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let fv = extract_features(&other, Normalization::ZNorm, 3);
        assert!(!q.candidate(&fv));
    }

    #[test]
    fn candidate_never_false_dismisses() {
        // If the exact normalized distance is within radius, the candidate
        // test must accept (lower-bounding property, Eq. 9).
        let base = wave(32, 0.25, 1.5);
        for perturb in [0.0, 0.01, 0.05, 0.2] {
            let other: Vec<f64> = base
                .iter()
                .enumerate()
                .map(|(i, v)| v + perturb * (i as f64 * 1.7).cos())
                .collect();
            let exact = dsi_dsp::normalized_distance(&base, &other, Normalization::ZNorm);
            let q = SimilarityQuery::from_target(
                1,
                0,
                base.clone(),
                exact + 1e-9,
                SimilarityKind::Correlation,
                2,
                0,
                SimTime::from_secs(10),
            );
            let fv = extract_features(&other, Normalization::ZNorm, 2);
            assert!(q.candidate(&fv), "false dismissal at perturbation {perturb}");
        }
    }

    #[test]
    fn expiry() {
        let q = SimilarityQuery::from_target(
            1,
            0,
            wave(16, 0.3, 1.0),
            0.1,
            SimilarityKind::Subsequence,
            2,
            0,
            SimTime::from_ms(500),
        );
        assert!(!q.expired(SimTime::from_ms(499)));
        assert!(q.expired(SimTime::from_ms(500)));
    }

    #[test]
    fn inner_product_exact() {
        let q = InnerProductQuery::new(1, 0, 0, vec![0, 2], vec![0.5, 0.5], SimTime::from_secs(1));
        assert_eq!(q.evaluate_exact(&[2.0, 9.0, 4.0]), 3.0);
    }

    #[test]
    fn inner_product_approx_converges_with_more_coefficients() {
        let window = wave(64, 0.12, 3.0);
        let spectrum = dft(&window);
        let q = InnerProductQuery::new(
            1,
            0,
            0,
            (0..20).collect(),
            vec![0.05; 20],
            SimTime::from_secs(1),
        );
        let exact = q.evaluate_exact(&window);
        let err_small = (q.evaluate_approx(&spectrum[..2], 64) - exact).abs();
        let err_large = (q.evaluate_approx(&spectrum[..8], 64) - exact).abs();
        assert!(err_large <= err_small + 1e-9, "more coefficients must not hurt");
        assert!(err_large / exact.abs() < 0.15, "8-coefficient error too large");
    }

    #[test]
    fn inner_product_weighted_average_semantics() {
        // A weighted average of a constant window is the constant, exactly,
        // even from a 1-coefficient (DC-only) prefix.
        let window = vec![7.0; 16];
        let spectrum = dft(&window);
        let q = InnerProductQuery::new(
            2,
            0,
            0,
            (4..12).collect(),
            vec![1.0 / 8.0; 8],
            SimTime::from_secs(1),
        );
        assert!((q.evaluate_exact(&window) - 7.0).abs() < 1e-12);
        assert!((q.evaluate_approx(&spectrum[..1], 16) - 7.0).abs() < 1e-9);
    }

    #[test]
    fn similarity_kind_normalizations() {
        assert_eq!(SimilarityKind::Correlation.normalization(), Normalization::ZNorm);
        assert_eq!(SimilarityKind::Subsequence.normalization(), Normalization::UnitNorm);
    }
}
