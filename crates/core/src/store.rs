//! Struct-of-arrays storage for summary (MBR) replicas.
//!
//! At the million-stream scale targeted by the ROADMAP, per-record boxed
//! entries (`Vec<StoredMbr>`, each holding two heap-allocated corner `Vec`s)
//! dominate both memory traffic and cache misses on the candidate hot path.
//! [`SummaryStore`] keeps the same logical records in parallel columns —
//! stream ids, origins, expiry ticks and a single flattened corner pool — so
//! a candidate scan touches densely packed `f64`s instead of chasing two
//! pointers per record.
//!
//! Records are exposed as borrowed [`SummaryRef`] views; the owned
//! [`StoredMbr`] stays the wire/transport representation (replication
//! messages, traces, serialized audits) and converts losslessly both ways.

use crate::datacenter::StoredMbr;
use crate::query::StreamId;
use dsi_chord::ChordId;
use dsi_dsp::Mbr;
use dsi_simnet::SimTime;
use serde::{Deserialize, Serialize};

/// A borrowed view of one stored summary record.
///
/// Field-for-field equivalent to [`StoredMbr`], with the corner points
/// borrowed from the store's flattened pool instead of owned.
#[derive(Debug, Clone, Copy)]
pub struct SummaryRef<'a> {
    /// Stream the summary describes.
    pub stream: StreamId,
    /// Node that sourced the stream.
    pub origin: ChordId,
    /// Absolute expiry time.
    pub expires: SimTime,
    /// Lower corner of the bounding box.
    pub low: &'a [f64],
    /// Upper corner of the bounding box.
    pub high: &'a [f64],
}

impl SummaryRef<'_> {
    /// Dimensionality of the box.
    #[inline]
    pub fn dims(&self) -> usize {
        self.low.len()
    }

    /// The dim-0 extent, widened to the whole axis for dimension-less boxes
    /// (mirrors `datacenter::extent0`).
    #[inline]
    pub fn extent0(&self) -> (f64, f64) {
        if self.low.is_empty() {
            (f64::NEG_INFINITY, f64::INFINITY)
        } else {
            (self.low[0], self.high[0])
        }
    }

    /// Minimum squared Euclidean distance from `p` to the box — the exact
    /// same operation sequence as [`Mbr::min_dist_sqr`], so the result is
    /// bit-identical to the per-entry store's.
    pub fn min_dist_sqr(&self, p: &[f64]) -> f64 {
        assert_eq!(p.len(), self.low.len(), "point dimensionality mismatch");
        self.low
            .iter()
            .zip(self.high.iter())
            .zip(p.iter())
            .map(|((l, h), v)| {
                let d = if v < l {
                    l - v
                } else if v > h {
                    v - h
                } else {
                    0.0
                };
                d * d
            })
            .sum()
    }

    /// Minimum Euclidean distance from `p` to the box (bit-identical to
    /// [`Mbr::min_dist`]).
    pub fn min_dist(&self, p: &[f64]) -> f64 {
        self.min_dist_sqr(p).sqrt()
    }

    /// Materializes the owned transport record.
    pub fn to_stored(&self) -> StoredMbr {
        StoredMbr {
            stream: self.stream,
            mbr: Mbr::from_corners(self.low.to_vec(), self.high.to_vec()),
            origin: self.origin,
            expires: self.expires,
        }
    }

    /// Replica-record identity against a transport record: one batch shipped
    /// by one origin (the SoA counterpart of `same_record`).
    pub fn matches(&self, r: &StoredMbr) -> bool {
        self.stream == r.stream
            && self.origin == r.origin
            && self.expires == r.expires
            && self.low == r.mbr.low()
            && self.high == r.mbr.high()
    }
}

/// Struct-of-arrays store of summary records.
///
/// Parallel columns indexed by record position; the two corner columns are
/// flattened into shared pools with a prefix-offset table, so records of any
/// (even mixed) dimensionality pack contiguously.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SummaryStore {
    streams: Vec<StreamId>,
    origins: Vec<ChordId>,
    expires_ms: Vec<u64>,
    lows: Vec<f64>,
    highs: Vec<f64>,
    /// `offsets[i]..offsets[i+1]` is record `i`'s slice of the corner pools.
    offsets: Vec<u32>,
}

impl Default for SummaryStore {
    fn default() -> Self {
        SummaryStore {
            streams: Vec::new(),
            origins: Vec::new(),
            expires_ms: Vec::new(),
            lows: Vec::new(),
            highs: Vec::new(),
            offsets: vec![0],
        }
    }
}

impl SummaryStore {
    /// Number of stored records.
    #[inline]
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// Whether the store is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// Appends one record from explicit columns.
    pub fn push(
        &mut self,
        stream: StreamId,
        origin: ChordId,
        expires: SimTime,
        low: &[f64],
        high: &[f64],
    ) {
        assert_eq!(low.len(), high.len(), "corner dimensionality mismatch");
        self.streams.push(stream);
        self.origins.push(origin);
        self.expires_ms.push(expires.as_ms());
        self.lows.extend_from_slice(low);
        self.highs.extend_from_slice(high);
        self.offsets.push(self.lows.len() as u32);
    }

    /// Appends one transport record.
    pub fn push_stored(&mut self, s: &StoredMbr) {
        self.push(s.stream, s.origin, s.expires, s.mbr.low(), s.mbr.high());
    }

    /// The record at position `pos`.
    ///
    /// # Panics
    /// Panics if `pos >= len()`.
    #[inline]
    pub fn get(&self, pos: usize) -> SummaryRef<'_> {
        let (s, e) = (self.offsets[pos] as usize, self.offsets[pos + 1] as usize);
        SummaryRef {
            stream: self.streams[pos],
            origin: self.origins[pos],
            expires: SimTime::from_ms(self.expires_ms[pos]),
            low: &self.lows[s..e],
            high: &self.highs[s..e],
        }
    }

    /// Expiry of the record at `pos` without touching the corner pools —
    /// the candidate walk checks this first and skips the column loads for
    /// dead records.
    #[inline]
    pub fn expires_at(&self, pos: usize) -> SimTime {
        SimTime::from_ms(self.expires_ms[pos])
    }

    /// Iterates over all records in position order.
    pub fn iter(&self) -> impl Iterator<Item = SummaryRef<'_>> {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Drops every record rejected by `keep`, compacting the columns in
    /// place (positions shift exactly like `Vec::retain`).
    pub fn retain(&mut self, mut keep: impl FnMut(SummaryRef<'_>) -> bool) {
        let n = self.len();
        let mut w = 0usize; // next write position
        let mut bw = 0usize; // next write offset into the corner pools
        for i in 0..n {
            let (s, e) = (self.offsets[i] as usize, self.offsets[i + 1] as usize);
            if !keep(self.get(i)) {
                continue;
            }
            self.streams[w] = self.streams[i];
            self.origins[w] = self.origins[i];
            self.expires_ms[w] = self.expires_ms[i];
            self.lows.copy_within(s..e, bw);
            self.highs.copy_within(s..e, bw);
            bw += e - s;
            w += 1;
            // `w <= i + 1`, and iteration `i + 1` reads offsets[i+1] cached
            // into `s` before this line can clobber it.
            self.offsets[w] = bw as u32;
        }
        self.streams.truncate(w);
        self.origins.truncate(w);
        self.expires_ms.truncate(w);
        self.lows.truncate(bw);
        self.highs.truncate(bw);
        self.offsets.truncate(w + 1);
    }

    /// Removes every record.
    pub fn clear(&mut self) {
        self.streams.clear();
        self.origins.clear();
        self.expires_ms.clear();
        self.lows.clear();
        self.highs.clear();
        self.offsets.clear();
        self.offsets.push(0);
    }

    /// Owned transport copies of every record, in position order — the audit
    /// snapshot external checkers serialize and diff.
    pub fn to_stored_vec(&self) -> Vec<StoredMbr> {
        self.iter().map(|s| s.to_stored()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(stream: StreamId, low: Vec<f64>, high: Vec<f64>, expires_ms: u64) -> StoredMbr {
        StoredMbr {
            stream,
            mbr: Mbr::from_corners(low, high),
            origin: 7,
            expires: SimTime::from_ms(expires_ms),
        }
    }

    #[test]
    fn push_get_roundtrip() {
        let mut st = SummaryStore::default();
        let a = rec(1, vec![0.0, -1.0], vec![0.5, 1.0], 100);
        let b = rec(2, vec![3.0], vec![4.0], 200);
        st.push_stored(&a);
        st.push_stored(&b);
        assert_eq!(st.len(), 2);
        assert!(st.get(0).matches(&a));
        assert!(st.get(1).matches(&b));
        assert!(!st.get(0).matches(&b));
        assert_eq!(st.get(1).low, &[3.0]);
        assert_eq!(st.get(1).high, &[4.0]);
        assert_eq!(st.expires_at(1), SimTime::from_ms(200));
    }

    #[test]
    fn to_stored_is_lossless() {
        let mut st = SummaryStore::default();
        let a = rec(9, vec![-0.25, 0.75], vec![0.0, 2.5], 42);
        st.push_stored(&a);
        let back = st.get(0).to_stored();
        assert_eq!(back.stream, a.stream);
        assert_eq!(back.origin, a.origin);
        assert_eq!(back.expires, a.expires);
        assert_eq!(back.mbr, a.mbr);
    }

    #[test]
    fn min_dist_matches_mbr_bitwise() {
        let mut st = SummaryStore::default();
        let a = rec(1, vec![0.1, -0.9, 2.0], vec![0.3, 0.4, 2.0], 1);
        st.push_stored(&a);
        for p in [[0.0f64, 0.0, 0.0], [0.2, 0.1, 2.0], [-5.0, 9.0, 1.5]] {
            assert_eq!(st.get(0).min_dist_sqr(&p).to_bits(), a.mbr.min_dist_sqr(&p).to_bits());
            assert_eq!(st.get(0).min_dist(&p).to_bits(), a.mbr.min_dist(&p).to_bits());
        }
    }

    #[test]
    fn retain_compacts_mixed_dims() {
        let mut st = SummaryStore::default();
        let recs = [
            rec(0, vec![0.0], vec![1.0], 10),
            rec(1, vec![0.0, 0.0], vec![1.0, 1.0], 20),
            rec(2, vec![5.0], vec![6.0], 30),
            rec(3, vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0], 40),
            rec(4, vec![], vec![], 50),
            rec(5, vec![-1.0], vec![-0.5], 60),
        ];
        for r in &recs {
            st.push_stored(r);
        }
        st.retain(|s| s.stream % 2 == 1);
        assert_eq!(st.len(), 3);
        assert!(st.get(0).matches(&recs[1]));
        assert!(st.get(1).matches(&recs[3]));
        assert!(st.get(2).matches(&recs[5]));
        st.retain(|_| false);
        assert!(st.is_empty());
        assert_eq!(st.iter().count(), 0);
    }

    #[test]
    fn clear_resets_offsets() {
        let mut st = SummaryStore::default();
        st.push_stored(&rec(1, vec![0.0], vec![1.0], 10));
        st.clear();
        assert!(st.is_empty());
        st.push_stored(&rec(2, vec![2.0], vec![3.0], 10));
        assert_eq!(st.get(0).low, &[2.0]);
    }

    #[test]
    fn extent0_widens_dimensionless_boxes() {
        let mut st = SummaryStore::default();
        st.push_stored(&rec(1, vec![], vec![], 10));
        st.push_stored(&rec(2, vec![0.25], vec![0.5], 10));
        assert_eq!(st.get(0).extent0(), (f64::NEG_INFINITY, f64::INFINITY));
        assert_eq!(st.get(1).extent0(), (0.25, 0.5));
    }

    #[test]
    fn serde_roundtrip() {
        let mut st = SummaryStore::default();
        st.push_stored(&rec(1, vec![0.5, -0.5], vec![1.5, 0.5], 77));
        let js = serde_json::to_string(&st).unwrap();
        let back: SummaryStore = serde_json::from_str(&js).unwrap();
        assert_eq!(back.len(), 1);
        assert!(back.get(0).matches(&st.get(0).to_stored()));
    }
}
