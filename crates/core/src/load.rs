//! Per-node load ledger and virtual-node re-weighting policy.
//!
//! The paper's uniformity assumption (§IV-B) makes per-node load a
//! first-class health signal: correlated streams collapse their summary
//! keys onto a narrow arc and hotspot the few nodes owning it. The
//! [`LoadLedger`] samples, once per NPER round, every ring identifier's
//! message delta (sent + received, from [`dsi_simnet::Metrics`]), stored
//! MBRs and active subscriptions, attributing each identifier to its
//! *physical host* — virtual identifiers created by re-weighting charge
//! the host they were assigned to. Distribution statistics reuse the exact
//! quantile machinery of `dsi-trace` ([`QuantileBuffer`]), so ledger
//! percentiles are sample-exact like every other series in the repo.
//!
//! [`ReweightConfig`] is the mitigation policy: when the per-host max/mean
//! message ratio stays above `trip_ratio` for `trip_rounds` consecutive
//! rounds, the cluster splits the hottest identifier's owned arc across
//! `split_into` additional virtual identifiers hosted on the
//! least-loaded physical nodes (see `Cluster::maybe_reweight`). Chord
//! routing and the Eq. 6 covering sets stay correct because the virtual
//! identifiers are full ring members joined through the ordinary protocol.

use dsi_trace::QuantileBuffer;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Ring identifiers are plain `u64`s here (mirrors `dsi_chord::ChordId`
/// without a dependency cycle concern — `dsi-core` already re-exports it).
type ChordId = u64;

/// One ring identifier's load sample for one round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeLoad {
    /// The ring identifier the sample belongs to.
    pub node: ChordId,
    /// Physical host the identifier's load is attributed to (equals
    /// `node` for non-virtual identifiers).
    pub host: ChordId,
    /// Overlay messages charged to the identifier this round (sent +
    /// received delta since the previous round).
    pub messages: u64,
    /// MBR replica records stored at round time (gauge).
    pub stored_mbrs: u64,
    /// Active similarity + inner-product subscriptions at round time
    /// (gauge).
    pub subscriptions: u64,
}

/// One NPER round's load sample across the whole ring, sorted by
/// identifier for deterministic iteration and serialization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundLoad {
    /// Simulated time of the round, in ms.
    pub time_ms: u64,
    /// Per-identifier samples, ascending by `node`.
    pub per_node: Vec<NodeLoad>,
}

impl RoundLoad {
    /// Message load aggregated per physical host, ascending by host id.
    pub fn by_host(&self) -> Vec<(ChordId, u64)> {
        let mut agg: Vec<(ChordId, u64)> = Vec::new();
        for s in &self.per_node {
            match agg.iter_mut().find(|(h, _)| *h == s.host) {
                Some((_, m)) => *m += s.messages,
                None => agg.push((s.host, s.messages)),
            }
        }
        agg.sort_unstable_by_key(|&(h, _)| h);
        agg
    }

    /// Hotspot ratio: max over mean of per-host message load. `None` when
    /// the round is empty or entirely idle (a 0/0 round is not a hotspot).
    pub fn max_over_mean(&self) -> Option<f64> {
        let hosts = self.by_host();
        let mut buf = QuantileBuffer::new();
        for &(_, m) in &hosts {
            buf.push(m);
        }
        let mean = buf.mean()?;
        if mean == 0.0 {
            return None;
        }
        Some(buf.max().unwrap_or(0) as f64 / mean)
    }

    /// Gini coefficient of per-host message load in `[0, 1)`: 0 is a
    /// perfectly even round, values near 1 mean one host carries
    /// everything. 0 for empty or idle rounds.
    pub fn gini(&self) -> f64 {
        let loads: Vec<u64> = self.by_host().into_iter().map(|(_, m)| m).collect();
        gini(&loads)
    }

    /// The identifier with the highest message load this round (ties break
    /// toward the lower id). `None` on an empty round.
    pub fn hottest(&self) -> Option<&NodeLoad> {
        // per_node is ascending by id, so max_by_key's "last wins" is made
        // deterministic by strict comparison.
        self.per_node.iter().fold(None, |best: Option<&NodeLoad>, s| match best {
            Some(b) if b.messages >= s.messages => Some(b),
            _ => Some(s),
        })
    }
}

/// Exact Gini coefficient of a load vector (0 for empty/idle inputs).
pub fn gini(loads: &[u64]) -> f64 {
    let n = loads.len();
    let total: u64 = loads.iter().sum();
    if n == 0 || total == 0 {
        return 0.0;
    }
    let mut sorted: Vec<u64> = loads.to_vec();
    sorted.sort_unstable();
    // G = (2 Σ_i i·x_i) / (n Σ x) - (n + 1) / n, with i ranked from 1.
    let weighted: f64 = sorted.iter().enumerate().map(|(i, &x)| (i as f64 + 1.0) * x as f64).sum();
    (2.0 * weighted) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64
}

/// The per-round load history of one cluster run.
///
/// Rounds are appended by `Cluster::record_load_round` (one call per NPER
/// round); message deltas are computed against the previous round's
/// cumulative counters, which the ledger tracks internally.
#[derive(Debug, Clone, Default)]
pub struct LoadLedger {
    rounds: Vec<RoundLoad>,
    /// Cumulative message count per identifier at the previous round.
    prev: HashMap<ChordId, u64>,
}

impl LoadLedger {
    /// Empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// All recorded rounds, oldest first.
    pub fn rounds(&self) -> &[RoundLoad] {
        &self.rounds
    }

    /// Records one round. `samples` holds, per live ring identifier:
    /// `(node, host, cumulative_messages, stored_mbrs, subscriptions)`,
    /// in any order; the ledger sorts by identifier and converts the
    /// cumulative counter into a per-round delta. Identifiers first seen
    /// this round (joiners, virtual splits) delta against zero.
    pub fn record(&mut self, time_ms: u64, samples: Vec<(ChordId, ChordId, u64, u64, u64)>) {
        let mut per_node: Vec<NodeLoad> = samples
            .into_iter()
            .map(|(node, host, cum, stored_mbrs, subscriptions)| {
                let before = self.prev.get(&node).copied().unwrap_or(0);
                NodeLoad {
                    node,
                    host,
                    messages: cum.saturating_sub(before),
                    stored_mbrs,
                    subscriptions,
                }
            })
            .collect();
        per_node.sort_unstable_by_key(|s| s.node);
        for s in &per_node {
            let cum = self.prev.get(&s.node).copied().unwrap_or(0) + s.messages;
            self.prev.insert(s.node, cum);
        }
        self.rounds.push(RoundLoad { time_ms, per_node });
    }

    /// Number of trailing consecutive rounds whose per-host max/mean ratio
    /// exceeds `trip_ratio` — the hot-streak the re-weighting trigger and
    /// the load-balance oracle both read.
    pub fn hot_streak(&self, trip_ratio: f64) -> u32 {
        let mut streak = 0;
        for r in self.rounds.iter().rev() {
            match r.max_over_mean() {
                Some(ratio) if ratio > trip_ratio => streak += 1,
                _ => break,
            }
        }
        streak
    }

    /// Exact quantile buffer over every per-host per-round message load in
    /// the ledger — the distribution the load-balance report summarizes.
    pub fn host_load_quantiles(&self) -> QuantileBuffer {
        let mut buf = QuantileBuffer::new();
        for r in &self.rounds {
            for (_, m) in r.by_host() {
                buf.push(m);
            }
        }
        buf
    }
}

/// Virtual-node re-weighting policy (the mitigation lever).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReweightConfig {
    /// Per-host max/mean message ratio above which a round counts as hot.
    pub trip_ratio: f64,
    /// Consecutive hot rounds required before the cluster acts (the K in
    /// "over threshold for K rounds").
    pub trip_rounds: u32,
    /// Virtual identifiers the hot arc is split across per action.
    pub split_into: usize,
    /// Hard cap on re-weighting actions per run (keeps the ring bounded).
    pub max_actions: u32,
    /// Rounds to wait after an action before re-evaluating (lets the new
    /// arc assignment show up in the ledger before acting again).
    pub cooldown_rounds: u32,
}

impl Default for ReweightConfig {
    /// Trip at 2.5× mean sustained for 2 rounds; split the hot arc across
    /// 3 virtual ids; at most 4 actions with a 2-round cooldown.
    fn default() -> Self {
        ReweightConfig {
            trip_ratio: 2.5,
            trip_rounds: 2,
            split_into: 3,
            max_actions: 4,
            cooldown_rounds: 2,
        }
    }
}

impl ReweightConfig {
    /// Validates internal consistency.
    ///
    /// # Panics
    /// Panics with a description of the first violated constraint.
    pub fn validate(&self) {
        assert!(
            self.trip_ratio.is_finite() && self.trip_ratio > 1.0,
            "trip ratio must exceed 1 (max/mean is never below 1)"
        );
        assert!(self.trip_rounds > 0, "need at least one hot round to trip");
        assert!(self.split_into > 0, "must split into at least one virtual id");
        assert!(self.max_actions > 0, "mitigation with zero actions is disabled");
    }
}

/// One executed re-weighting action.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReweightAction {
    /// Ledger round index (0-based) at which the action fired.
    pub round: usize,
    /// The hot identifier whose owned arc was split.
    pub hot: ChordId,
    /// Virtual identifiers inserted into the arc, ascending insert order.
    pub new_ids: Vec<ChordId>,
    /// Physical hosts the new identifiers were assigned to (parallel to
    /// `new_ids`).
    pub hosts: Vec<ChordId>,
    /// Simulated time of the action, in ms.
    pub time_ms: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round(samples: &[(u64, u64, u64)]) -> RoundLoad {
        RoundLoad {
            time_ms: 0,
            per_node: samples
                .iter()
                .map(|&(node, host, messages)| NodeLoad {
                    node,
                    host,
                    messages,
                    stored_mbrs: 0,
                    subscriptions: 0,
                })
                .collect(),
        }
    }

    #[test]
    fn deltas_are_taken_per_identifier() {
        let mut l = LoadLedger::new();
        l.record(100, vec![(1, 1, 10, 0, 0), (2, 2, 4, 0, 0)]);
        l.record(200, vec![(1, 1, 25, 0, 0), (2, 2, 4, 0, 0), (3, 1, 6, 0, 0)]);
        let r = &l.rounds()[1];
        assert_eq!(r.per_node[0].messages, 15, "node 1: 25 - 10");
        assert_eq!(r.per_node[1].messages, 0, "node 2 was idle");
        assert_eq!(r.per_node[2].messages, 6, "joiner deltas against zero");
    }

    #[test]
    fn host_aggregation_charges_virtuals_to_their_host() {
        let r = round(&[(1, 1, 10), (2, 2, 2), (7, 1, 5)]);
        assert_eq!(r.by_host(), vec![(1, 15), (2, 2)]);
    }

    #[test]
    fn max_over_mean_flags_the_hotspot() {
        let even = round(&[(1, 1, 10), (2, 2, 10), (3, 3, 10)]);
        assert!((even.max_over_mean().unwrap() - 1.0).abs() < 1e-12);
        let hot = round(&[(1, 1, 28), (2, 2, 1), (3, 3, 1)]);
        assert!((hot.max_over_mean().unwrap() - 2.8).abs() < 1e-12);
        let idle = round(&[(1, 1, 0), (2, 2, 0)]);
        assert_eq!(idle.max_over_mean(), None, "idle rounds are not hotspots");
    }

    #[test]
    fn gini_spans_even_to_concentrated() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[5, 5, 5, 5]), 0.0);
        let one_hot = gini(&[100, 0, 0, 0]);
        assert!(one_hot > 0.7, "all load on one node must score high, got {one_hot}");
        assert!(gini(&[10, 8, 12, 9]) < 0.15);
    }

    #[test]
    fn hottest_prefers_lower_id_on_ties() {
        let r = round(&[(3, 3, 7), (9, 9, 7), (5, 5, 2)]);
        assert_eq!(r.hottest().unwrap().node, 3);
    }

    #[test]
    fn hot_streak_counts_trailing_hot_rounds() {
        let mut l = LoadLedger::new();
        l.record(1, vec![(1, 1, 10, 0, 0), (2, 2, 10, 0, 0)]); // even
        l.record(2, vec![(1, 1, 110, 0, 0), (2, 2, 12, 0, 0)]); // hot
        l.record(3, vec![(1, 1, 260, 0, 0), (2, 2, 16, 0, 0)]); // hot
        assert_eq!(l.hot_streak(1.5), 2);
        assert_eq!(l.hot_streak(10.0), 0);
    }

    #[test]
    fn quantiles_cover_all_rounds() {
        let mut l = LoadLedger::new();
        l.record(1, vec![(1, 1, 4, 0, 0), (2, 2, 8, 0, 0)]);
        l.record(2, vec![(1, 1, 5, 0, 0), (2, 2, 20, 0, 0)]);
        let mut q = l.host_load_quantiles();
        assert_eq!(q.len(), 4);
        assert_eq!(q.max(), Some(12), "round-2 host 2 delta is 20 - 8");
    }

    #[test]
    #[should_panic(expected = "trip ratio")]
    fn reweight_config_rejects_sub_unity_trip() {
        ReweightConfig { trip_ratio: 0.9, ..ReweightConfig::default() }.validate();
    }
}
