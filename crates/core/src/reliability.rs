//! Reliability layer: acked delivery with retry/backoff, dedup, and
//! parked late effects (§ DESIGN.md §12).
//!
//! The simulator charges every message **once, at send time**; this module
//! decides what happens to that message afterwards.  Each logical send is
//! assigned a fresh message id and resolved through the active
//! [`FaultPlan`]:
//!
//! * **Deliver** — the common case; the id lands in the dedup cache so a
//!   replayed copy would be recognised.
//! * **Duplicate** — the second copy hits the bounded dedup cache and is
//!   suppressed (`dups_suppressed` counter); the receiver observes exactly
//!   one delivery.
//! * **Delay** — the message is in flight (charged and traced at send
//!   time) but its *state effect* on the receiver is parked as a
//!   [`PendingDelivery`] and drained at the receiver's next refresh tick,
//!   mirroring [`dsi_simnet::DelayQueue`] semantics.
//! * **Drop** — the sender retries with exponential backoff and
//!   deterministic, seed-driven jitter, up to
//!   [`ReliabilityConfig::max_retries`]; a message that exhausts the
//!   budget is **Lost** and the caller degrades gracefully (partial
//!   results tagged with a coverage estimate).
//!
//! Backoff is *analytic*: the virtual clock is not shifted, the total
//! backoff spent is accumulated in [`ReliabilityState::backoff_ms_total`]
//! as a latency model the report layer can surface.  This keeps retries
//! from perturbing the deterministic NPER schedule.

use dsi_chord::ChordId;
use dsi_simnet::{FaultOutcome, FaultPlan, MsgClass, SimTime, HOP_DELAY_MS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashSet, VecDeque};

use crate::datacenter::StoredMbr;
use crate::query::{InnerProductQuery, QueryId, SimilarityQuery, StreamId};

/// Tuning knobs for the retry/backoff state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReliabilityConfig {
    /// Retry budget per logical message; exhaustion makes the message
    /// `Lost` and triggers graceful degradation at the call site.
    pub max_retries: u32,
    /// First backoff step in virtual milliseconds; step `k` waits
    /// `base << k` plus jitter.
    pub base_backoff_ms: u64,
    /// Capacity of the bounded dedup cache (oldest ids evicted first).
    pub dedup_capacity: usize,
}

impl Default for ReliabilityConfig {
    fn default() -> Self {
        ReliabilityConfig {
            max_retries: 5,
            // One network hop is a natural first retry horizon.
            base_backoff_ms: HOP_DELAY_MS,
            dedup_capacity: 1024,
        }
    }
}

/// Bounded first-seen cache for message ids.
///
/// Backed by a `HashSet` for membership plus a `VecDeque` for FIFO
/// eviction.  The set is never iterated, so map-order nondeterminism
/// (lint rule D01) cannot leak into behaviour.
#[derive(Debug, Default)]
pub struct DedupCache {
    capacity: usize,
    seen: HashSet<u64>,
    order: VecDeque<u64>,
}

impl DedupCache {
    /// Create a cache that remembers at most `capacity` ids.
    pub fn new(capacity: usize) -> Self {
        DedupCache { capacity: capacity.max(1), seen: HashSet::new(), order: VecDeque::new() }
    }

    /// Record `id`; returns `true` when the id is fresh (first copy) and
    /// `false` when it is a duplicate that must be suppressed.
    pub fn insert(&mut self, id: u64) -> bool {
        if !self.seen.insert(id) {
            return false;
        }
        self.order.push_back(id);
        while self.order.len() > self.capacity {
            if let Some(evicted) = self.order.pop_front() {
                self.seen.remove(&evicted);
            }
        }
        true
    }

    /// Number of ids currently remembered.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

/// Terminal fate of one logical message after retries and dedup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryVerdict {
    /// The receiver observes the message this tick.
    Deliver,
    /// The message is in flight but its effect lands one refresh period
    /// late (parked as a [`PendingDelivery`]).
    Late,
    /// The retry budget is exhausted; the caller must degrade.
    Lost,
}

/// Full accounting for one resolved send: verdict plus the counters the
/// metrics layer records ([`dsi_simnet::Metrics::record_retry`] et al.).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resolution {
    /// What the receiver ultimately observes.
    pub verdict: DeliveryVerdict,
    /// Retries consumed before the terminal outcome (0 on first-try
    /// success, `max_retries` on a lost message).
    pub retries: u32,
    /// A duplicated copy arrived and was suppressed by the dedup cache.
    pub dup_suppressed: bool,
    /// Analytic backoff latency accumulated by the retries, in virtual
    /// milliseconds (exponential steps plus seeded jitter).
    pub backoff_ms: u64,
}

/// Seeded, deterministic retry/backoff/dedup state machine.
///
/// Lives inside `Cluster` and is consulted once per logical message on
/// every faulted send path.  Holding its own `StdRng` keeps the fault
/// stream independent of workload randomness: a fault-free run consumes
/// no draws and stays byte-identical to the historical golden outputs.
#[derive(Debug)]
pub struct ReliabilityState {
    /// Per-class fault probabilities driving each delivery attempt.
    pub plan: FaultPlan,
    /// Retry/backoff/dedup tuning.
    pub cfg: ReliabilityConfig,
    rng: StdRng,
    next_msg_id: u64,
    dedup: DedupCache,
    /// Total analytic backoff latency spent across all resolved sends.
    pub backoff_ms_total: u64,
}

impl ReliabilityState {
    /// Build the state machine for `plan`, seeding the fault RNG from
    /// `seed` (derive it from the scenario seed for reproducibility).
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        plan.validate();
        ReliabilityState::with_config(plan, seed, ReliabilityConfig::default())
    }

    /// [`ReliabilityState::new`] with explicit tuning knobs.
    pub fn with_config(plan: FaultPlan, seed: u64, cfg: ReliabilityConfig) -> Self {
        ReliabilityState {
            plan,
            cfg,
            rng: StdRng::seed_from_u64(seed),
            next_msg_id: 0,
            dedup: DedupCache::new(cfg.dedup_capacity),
            backoff_ms_total: 0,
        }
    }

    /// Resolve the fate of one logical message of `class`.
    ///
    /// Each delivery attempt consumes exactly one fault draw; each retry
    /// additionally consumes one jitter draw.  The first non-`Drop`
    /// outcome within the budget wins.
    pub fn resolve(&mut self, class: MsgClass) -> Resolution {
        let spec = self.plan.spec_for(class);
        let mut retries = 0u32;
        let mut backoff_ms = 0u64;
        loop {
            let msg_id = self.next_msg_id;
            self.next_msg_id += 1;
            match spec.outcome(&mut self.rng) {
                FaultOutcome::Deliver => {
                    self.dedup.insert(msg_id);
                    self.backoff_ms_total += backoff_ms;
                    return Resolution {
                        verdict: DeliveryVerdict::Deliver,
                        retries,
                        dup_suppressed: false,
                        backoff_ms,
                    };
                }
                FaultOutcome::Duplicate => {
                    // Two copies of the same id hit the wire; the dedup
                    // cache admits the first and suppresses the second.
                    let first = self.dedup.insert(msg_id);
                    let second = self.dedup.insert(msg_id);
                    debug_assert!(first && !second, "dedup must admit once");
                    self.backoff_ms_total += backoff_ms;
                    return Resolution {
                        verdict: DeliveryVerdict::Deliver,
                        retries,
                        dup_suppressed: true,
                        backoff_ms,
                    };
                }
                FaultOutcome::Delay => {
                    self.dedup.insert(msg_id);
                    self.backoff_ms_total += backoff_ms;
                    return Resolution {
                        verdict: DeliveryVerdict::Late,
                        retries,
                        dup_suppressed: false,
                        backoff_ms,
                    };
                }
                // [`FaultSpec::outcome`] only draws probabilistic fates;
                // partitions are deterministic topology cuts enforced at
                // the send site before `resolve` is ever consulted.
                FaultOutcome::Partitioned => {
                    unreachable!("outcome() never draws Partitioned")
                }
                FaultOutcome::Drop => {
                    if retries >= self.cfg.max_retries {
                        self.backoff_ms_total += backoff_ms;
                        return Resolution {
                            verdict: DeliveryVerdict::Lost,
                            retries,
                            dup_suppressed: false,
                            backoff_ms,
                        };
                    }
                    retries += 1;
                    // Exponential step, capped so the shift cannot
                    // overflow, plus one seeded jitter draw.
                    let step = self.cfg.base_backoff_ms << (retries - 1).min(16);
                    let jitter = self.rng.gen_range(0..=self.cfg.base_backoff_ms);
                    backoff_ms += step + jitter;
                }
            }
        }
    }
}

/// Deferred receiver-side state change for a `Delay`ed message.
#[derive(Debug, Clone)]
pub enum PendingEffect {
    /// A late replica copy lands in the target's MBR index.
    StoreMbr(StoredMbr),
    /// A late similarity subscription activates on the target node.
    SubscribeSimilarity(SimilarityQuery),
    /// A late inner-product subscription activates on the source node.
    SubscribeInnerProduct(InnerProductQuery),
    /// A late location-service refresh lands on the `h2` owner.
    LocationPut {
        /// Stream whose home is being advertised.
        stream: StreamId,
        /// Data-center currently homing the stream.
        source: ChordId,
    },
    /// A late aggregated similarity response reaches the client.
    Notify {
        /// Query the response answers.
        query: QueryId,
        /// Matching streams confirmed by the aggregator.
        matches: Vec<StreamId>,
        /// Virtual time the aggregator emitted the response.
        at: SimTime,
    },
    /// A late aggregate-query subscription activates on the target node,
    /// which starts a fresh replica sketch counting from the drain time.
    SubscribeAggregate {
        /// The aggregate query being subscribed to.
        query: QueryId,
    },
    /// A late aggregate notification reaches the client.
    AggregateNotify(Box<crate::aggregate::AggregateNotification>),
    /// A late periodic inner-product push reaches the client.
    IpResult {
        /// Query the push answers.
        query: QueryId,
        /// Reconstructed inner-product value.
        value: f64,
        /// Whether the alert condition fired for this value.
        alert: bool,
        /// Virtual time the source emitted the push.
        at: SimTime,
    },
}

/// A parked effect waiting for the receiver's next refresh tick.
#[derive(Debug, Clone)]
pub struct PendingDelivery {
    /// Earliest virtual time the effect may apply.
    pub due: SimTime,
    /// Node whose refresh tick drains this effect.
    pub to: ChordId,
    /// The deferred state change.
    pub effect: PendingEffect,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsi_simnet::FaultSpec;

    fn drop_only(p: f64) -> FaultPlan {
        FaultPlan::uniform(FaultSpec { drop_prob: p, dup_prob: 0.0, delay_prob: 0.0 })
    }

    #[test]
    fn dedup_cache_is_bounded_and_suppresses_repeats() {
        let mut cache = DedupCache::new(3);
        assert!(cache.insert(1));
        assert!(!cache.insert(1));
        assert!(cache.insert(2));
        assert!(cache.insert(3));
        assert!(cache.insert(4)); // evicts 1
        assert_eq!(cache.len(), 3);
        assert!(cache.insert(1), "evicted id is fresh again");
        assert!(!cache.insert(4), "recent id still suppressed");
    }

    #[test]
    fn lossless_plan_always_delivers_without_retries() {
        let mut state = ReliabilityState::new(drop_only(0.0), 7);
        for class in MsgClass::ALL {
            let res = state.resolve(class);
            assert_eq!(res.verdict, DeliveryVerdict::Deliver);
            assert_eq!(res.retries, 0);
            assert_eq!(res.backoff_ms, 0);
            assert!(!res.dup_suppressed);
        }
        assert_eq!(state.backoff_ms_total, 0);
    }

    #[test]
    fn certain_drop_exhausts_budget_and_reports_lost() {
        let mut state = ReliabilityState::new(drop_only(1.0), 7);
        let res = state.resolve(MsgClass::MbrOriginated);
        assert_eq!(res.verdict, DeliveryVerdict::Lost);
        assert_eq!(res.retries, state.cfg.max_retries);
        // Exponential schedule: base * (2^0 + ... + 2^(r-1)) plus jitter
        // in [0, base] per retry.
        let base = state.cfg.base_backoff_ms;
        let floor = base * ((1 << state.cfg.max_retries) - 1);
        assert!(res.backoff_ms >= floor);
        assert!(res.backoff_ms <= floor + base * u64::from(state.cfg.max_retries));
        assert_eq!(state.backoff_ms_total, res.backoff_ms);
    }

    #[test]
    fn duplicate_outcome_is_suppressed_exactly_once() {
        let mut state = ReliabilityState::new(
            FaultPlan::uniform(FaultSpec { drop_prob: 0.0, dup_prob: 1.0, delay_prob: 0.0 }),
            42,
        );
        let res = state.resolve(MsgClass::Query);
        assert_eq!(res.verdict, DeliveryVerdict::Deliver);
        assert!(res.dup_suppressed);
    }

    #[test]
    fn resolution_stream_is_deterministic_for_a_seed() {
        let plan = drop_only(0.4).with_class(
            MsgClass::Query,
            FaultSpec { drop_prob: 0.2, dup_prob: 0.2, delay_prob: 0.2 },
        );
        let run = |seed: u64| {
            let mut state = ReliabilityState::new(plan, seed);
            (0..256)
                .map(|i| state.resolve(MsgClass::ALL[i % MsgClass::ALL.len()]))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99), run(100), "different seeds diverge");
    }

    #[test]
    fn delay_outcome_reports_late() {
        let mut state = ReliabilityState::new(
            FaultPlan::uniform(FaultSpec { drop_prob: 0.0, dup_prob: 0.0, delay_prob: 1.0 }),
            3,
        );
        let res = state.resolve(MsgClass::Response);
        assert_eq!(res.verdict, DeliveryVerdict::Late);
        assert_eq!(res.retries, 0);
    }
}
