//! Coconut-style sortable summary keys and the sorted-run index over them.
//!
//! Coconut's observation (PAPERS.md) is that data-series summaries become
//! bulk-loadable and mergeable once each summary maps to an *invertible
//! sortable key*: sorting by key clusters similar summaries, and range
//! queries become contiguous-ish key scans. Here the summary is an MBR's
//! dim-0 extent `[low0, high0]` (the routing axis of Eq. 6), and the key is
//! the bit-interleaved (z-order / Morton) pairing of the two monotone
//! 32-bit encodings:
//!
//! * [`encode_f64`] maps an `f64` to a `u32` such that `x <= y` implies
//!   `encode_f64(x) <= encode_f64(y)` (sign-flip trick, `-0.0` normalized
//!   to `+0.0`, then the top 32 bits);
//! * [`sortable_key`] interleaves `encode_f64(low0)` (even bits) with
//!   `encode_f64(high0)` (odd bits);
//! * [`decode_sortable_key`] inverts the key back to the quantized extent —
//!   re-encoding the decoded extent reproduces the key bit-for-bit, which is
//!   the invertibility contract the proptests pin down.
//!
//! An interval query "dim-0 extent intersects `[a, b]`" is the z-order
//! rectangle `low0 <= b && high0 >= a`, i.e. `x in [0, encode(b)]`,
//! `y in [encode(a), u32::MAX]`. The 32-bit quantization makes the scan a
//! conservative *superset* (never a miss: `low0 <= b` implies
//! `enc(low0) <= enc(b)`), and the caller's exact `min_dist` test drops the
//! false positives, so candidate sets are identical to a linear scan.
//!
//! [`SortableSummaryIndex`] stores `(key, position)` pairs in sorted,
//! mergeable runs (bulk-loaded wholesale on rebuilds) plus a small unsorted
//! staged tail, compacted LSM-style; range scans use BIGMIN (Tropf &
//! Herzog) to jump over z-order gaps outside the query rectangle.

use serde::{Deserialize, Serialize};

/// Monotone `f64 -> u32` encoding: order-preserving on every non-NaN value
/// (`x <= y` implies `encode_f64(x) <= encode_f64(y)`), with `-0.0`
/// normalized to `+0.0` so the two zeros cannot order against each other.
#[inline]
pub fn encode_f64(x: f64) -> u32 {
    // `-0.0 + 0.0 == +0.0` under IEEE round-to-nearest; every other value
    // (including NaN and infinities) is unchanged.
    let bits = (x + 0.0).to_bits();
    let flipped = if bits >> 63 == 1 { !bits } else { bits | 0x8000_0000_0000_0000 };
    (flipped >> 32) as u32
}

/// Inverts [`encode_f64`] to the smallest non-NaN `f64` of the quantization
/// cell: `encode_f64(decode_f64(u)) == u` for every `u`, and
/// `decode_f64(encode_f64(x)) <= x` for every non-NaN `x`.
#[inline]
pub fn decode_f64(u: u32) -> f64 {
    let flipped = (u as u64) << 32;
    let bits = if flipped >> 63 == 1 { flipped & !0x8000_0000_0000_0000 } else { !flipped };
    let x = f64::from_bits(bits);
    // The cell holding `-inf` also holds negative NaNs, and its raw minimum
    // is one of them; `-inf` is the smallest *value* in that cell.
    if x.is_nan() && u == encode_f64(f64::NEG_INFINITY) {
        return f64::NEG_INFINITY;
    }
    x
}

/// Spreads the 32 bits of `x` into the even bit positions of a `u64`.
#[inline]
fn spread(x: u32) -> u64 {
    let mut v = x as u64;
    v = (v | (v << 16)) & 0x0000_FFFF_0000_FFFF;
    v = (v | (v << 8)) & 0x00FF_00FF_00FF_00FF;
    v = (v | (v << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    v = (v | (v << 2)) & 0x3333_3333_3333_3333;
    v = (v | (v << 1)) & 0x5555_5555_5555_5555;
    v
}

/// Collapses the even bit positions of `v` back into 32 contiguous bits.
#[inline]
fn compact(v: u64) -> u32 {
    let mut v = v & 0x5555_5555_5555_5555;
    v = (v | (v >> 1)) & 0x3333_3333_3333_3333;
    v = (v | (v >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    v = (v | (v >> 4)) & 0x00FF_00FF_00FF_00FF;
    v = (v | (v >> 8)) & 0x0000_FFFF_0000_FFFF;
    v = (v | (v >> 16)) & 0x0000_0000_FFFF_FFFF;
    v as u32
}

/// Interleaves two 32-bit coordinates into one z-order code (`x` on even
/// bits, `y` on odd bits).
#[inline]
pub fn morton(x: u32, y: u32) -> u64 {
    spread(x) | (spread(y) << 1)
}

/// Splits a z-order code back into its `(x, y)` coordinates.
#[inline]
pub fn demorton(code: u64) -> (u32, u32) {
    (compact(code), compact(code >> 1))
}

/// The sortable key of a summary with dim-0 extent `[low0, high0]`.
#[inline]
pub fn sortable_key(low0: f64, high0: f64) -> u64 {
    morton(encode_f64(low0), encode_f64(high0))
}

/// Inverts a sortable key to the quantized dim-0 extent it encodes:
/// `sortable_key` of the result reproduces the key exactly.
#[inline]
pub fn decode_sortable_key(key: u64) -> (f64, f64) {
    let (x, y) = demorton(key);
    (decode_f64(x), decode_f64(y))
}

/// Same-dimension bits strictly below position `bit` (dimension = parity).
#[inline]
fn lower_dim_mask(bit: u32) -> u64 {
    let dim = if bit & 1 == 0 { 0x5555_5555_5555_5555u64 } else { 0xAAAA_AAAA_AAAA_AAAAu64 };
    dim & ((1u64 << bit) - 1)
}

/// BIGMIN (Tropf & Herzog 1981): the smallest z-code inside the rectangle
/// `[zmin, zmax]` (corner codes) that is strictly greater than `code`, or
/// `None` if the rectangle holds no such code. Lets a sorted z-code scan
/// jump over the gaps where the curve leaves the query rectangle.
fn bigmin(code: u64, mut zmin: u64, mut zmax: u64) -> Option<u64> {
    let mut result = None;
    for bit in (0..64).rev() {
        let mask = 1u64 << bit;
        let lower = lower_dim_mask(bit);
        match (code & mask != 0, zmin & mask != 0, zmax & mask != 0) {
            (false, false, false) => {}
            (false, false, true) => {
                // The rect spans this bit: the half above `code` starts at
                // zmin with this dim forced up; keep searching the low half.
                result = Some((zmin & !(mask | lower)) | mask);
                zmax = (zmax & !mask) | lower;
            }
            (false, true, true) => return Some(zmin),
            (true, false, false) => return result,
            (true, false, true) => {
                // `code` is in the upper half; restrict the rect to it.
                zmin = (zmin & !(mask | lower)) | mask;
            }
            (true, true, true) => {}
            // zmin's bit above zmax's is impossible for corner codes.
            (_, true, false) => unreachable!("inverted rectangle corner codes"),
        }
    }
    result
}

/// One sorted run of `(key, position)` pairs (columns kept parallel).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct Run {
    keys: Vec<u64>,
    pos: Vec<u32>,
}

impl Run {
    fn from_pairs(mut pairs: Vec<(u64, u32)>) -> Run {
        pairs.sort_unstable();
        Run { keys: pairs.iter().map(|p| p.0).collect(), pos: pairs.iter().map(|p| p.1).collect() }
    }

    fn len(&self) -> usize {
        self.keys.len()
    }

    /// Merges two sorted runs into one (stable on equal keys: `self` first —
    /// but pairs are unique by position, and `from_pairs` sorts by
    /// `(key, pos)`, so merged order is simply ascending `(key, pos)`).
    fn merge(self, other: Run) -> Run {
        let mut keys = Vec::with_capacity(self.len() + other.len());
        let mut pos = Vec::with_capacity(self.len() + other.len());
        let (mut i, mut j) = (0, 0);
        while i < self.len() && j < other.len() {
            if (self.keys[i], self.pos[i]) <= (other.keys[j], other.pos[j]) {
                keys.push(self.keys[i]);
                pos.push(self.pos[i]);
                i += 1;
            } else {
                keys.push(other.keys[j]);
                pos.push(other.pos[j]);
                j += 1;
            }
        }
        keys.extend_from_slice(&self.keys[i..]);
        pos.extend_from_slice(&self.pos[i..]);
        keys.extend_from_slice(&other.keys[j..]);
        pos.extend_from_slice(&other.pos[j..]);
        Run { keys, pos }
    }

    /// Visits every position whose key's coordinates satisfy `x <= xb` and
    /// `y >= ya`, in ascending `(key, pos)` order, skipping out-of-rect key
    /// gaps via BIGMIN.
    fn scan(&self, xb: u32, ya: u32, visit: &mut impl FnMut(u32)) {
        let zmin = morton(0, ya);
        let zmax = morton(xb, u32::MAX);
        let mut i = self.keys.partition_point(|&k| k < zmin);
        while i < self.keys.len() {
            let k = self.keys[i];
            if k > zmax {
                break;
            }
            let (x, y) = demorton(k);
            if x <= xb && y >= ya {
                visit(self.pos[i]);
                i += 1;
            } else {
                match bigmin(k, zmin, zmax) {
                    Some(next) => i += self.keys[i..].partition_point(|&kk| kk < next),
                    None => break,
                }
            }
        }
    }
}

/// A sorted-run index mapping z-order summary keys to store positions.
///
/// Writes go to an unsorted staged tail; once the tail outgrows
/// `16 + len/16` it is sorted into a new run, and adjacent runs within 2x of
/// each other's size merge (LSM-style), so the run count stays `O(log n)`
/// and amortized insert cost `O(log n)`. Rebuilds ([`Self::bulk_load`])
/// produce a single sorted run in one shot.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SortableSummaryIndex {
    /// Sorted runs, oldest first; sizes decrease (roughly geometrically).
    runs: Vec<Run>,
    /// Recent inserts, unsorted, scanned linearly until compacted.
    staged: Vec<(u64, u32)>,
}

impl SortableSummaryIndex {
    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.runs.iter().map(Run::len).sum::<usize>() + self.staged.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty() && self.staged.is_empty()
    }

    /// Number of sorted runs (compaction observability).
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.runs.clear();
        self.staged.clear();
    }

    /// Indexes a store position under a key; compacts the staged tail when
    /// it outgrows its bound.
    pub fn insert(&mut self, key: u64, pos: u32) {
        self.staged.push((key, pos));
        if self.staged.len() > 16 + (self.len() - self.staged.len()) / 16 {
            self.compact();
        }
    }

    /// Sorts the staged tail into a run and merges runs of similar size.
    // dsilint: allow(hot-path-alloc, cold boundary: compaction runs when a shipped summary is indexed — the delivery side of an emission; §14 pins non-emitting ticks, and run merges amortize to O of log n reallocations per insert)
    pub fn compact(&mut self) {
        if self.staged.is_empty() {
            return;
        }
        self.runs.push(Run::from_pairs(std::mem::take(&mut self.staged)));
        while self.runs.len() >= 2 {
            let last = self.runs[self.runs.len() - 1].len();
            let prev = self.runs[self.runs.len() - 2].len();
            if prev > 2 * last {
                break;
            }
            let a = self.runs.pop().unwrap_or_default();
            let b = self.runs.pop().unwrap_or_default();
            self.runs.push(b.merge(a));
        }
    }

    /// Replaces the whole index with one bulk-loaded sorted run.
    pub fn bulk_load(&mut self, pairs: impl IntoIterator<Item = (u64, u32)>) {
        self.clear();
        let pairs: Vec<(u64, u32)> = pairs.into_iter().collect();
        if !pairs.is_empty() {
            self.runs.push(Run::from_pairs(pairs));
        }
    }

    /// Visits the position of every summary whose dim-0 extent may intersect
    /// `[a, b]` — a conservative superset of the exact intersection, visited
    /// in deterministic (run order, then staged insertion) order.
    pub fn for_overlapping(&self, a: f64, b: f64, mut visit: impl FnMut(u32)) {
        // extent intersects [a, b]  <=>  low0 <= b && high0 >= a, which the
        // monotone encoding relaxes to enc(low0) <= enc(b) && enc(high0) >= enc(a).
        let xb = encode_f64(b);
        let ya = encode_f64(a);
        for run in &self.runs {
            run.scan(xb, ya, &mut visit);
        }
        for &(k, pos) in &self.staged {
            let (x, y) = demorton(k);
            if x <= xb && y >= ya {
                visit(pos);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_is_monotone_on_interesting_values() {
        let vals = [
            f64::NEG_INFINITY,
            -1e300,
            -2.5,
            -1.0,
            -1e-300,
            -0.0,
            0.0,
            1e-300,
            0.5,
            1.0,
            333.25,
            1e300,
            f64::INFINITY,
        ];
        for w in vals.windows(2) {
            assert!(
                encode_f64(w[0]) <= encode_f64(w[1]),
                "{} -> {:#x} vs {} -> {:#x}",
                w[0],
                encode_f64(w[0]),
                w[1],
                encode_f64(w[1])
            );
        }
        assert_eq!(encode_f64(-0.0), encode_f64(0.0));
    }

    #[test]
    fn decode_is_right_inverse_of_encode() {
        for u in [0u32, 1, 0x7FFF_FFFF, 0x8000_0000, 0x8000_0001, 0xFFFF_FFFE, 0xFFFF_FFFF] {
            assert_eq!(encode_f64(decode_f64(u)), u, "u = {u:#x}");
        }
    }

    #[test]
    fn morton_roundtrip() {
        for (x, y) in [(0u32, 0u32), (1, 0), (0, 1), (0xFFFF_FFFF, 0), (123_456, 0xDEAD_BEEF)] {
            assert_eq!(demorton(morton(x, y)), (x, y));
        }
        assert_eq!(morton(0xFFFF_FFFF, 0xFFFF_FFFF), u64::MAX);
    }

    #[test]
    fn sortable_key_roundtrips_through_decode() {
        for (l, h) in [(-1.5f64, 2.5f64), (0.0, 0.0), (-0.0, 3.0), (1e-9, 1e9)] {
            let k = sortable_key(l, h);
            let (dl, dh) = decode_sortable_key(k);
            assert_eq!(sortable_key(dl, dh), k, "extent ({l}, {h})");
        }
    }

    /// Brute-force reference for BIGMIN over small coordinate spaces.
    fn bigmin_naive(code: u64, xb: u32, ya: u32, coord_bits: u32) -> Option<u64> {
        let lim = 1u32 << coord_bits;
        let mut best = None;
        for x in 0..lim.min(xb.saturating_add(1)) {
            for y in ya..lim {
                let z = morton(x, y);
                if z > code && best.is_none_or(|b| z < b) {
                    best = Some(z);
                }
            }
        }
        best
    }

    #[test]
    fn bigmin_matches_brute_force() {
        // Exhaustive over a 4-bit coordinate space and a grid of rectangles.
        for xb in [0u32, 1, 3, 7, 9, 15] {
            for ya in [0u32, 1, 4, 8, 15] {
                let zmin = morton(0, ya);
                let zmax = morton(xb, 15);
                for code in 0..=morton(15, 15) {
                    let got = bigmin(code, zmin, zmax);
                    let want = bigmin_naive(code, xb, ya, 4);
                    assert_eq!(got, want, "code={code:#x} rect x<= {xb} y>= {ya}");
                }
            }
        }
    }

    #[test]
    fn index_query_matches_linear_filter() {
        // Pseudo-random extents; compare indexed superset *post-filter*
        // against a direct interval-overlap scan.
        let mut state = 0x9E37_79B9_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 * 8.0 - 4.0
        };
        let mut extents: Vec<(f64, f64)> = Vec::new();
        let mut idx = SortableSummaryIndex::default();
        for i in 0..500u32 {
            let (a, b) = (next(), next());
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            extents.push((lo, hi));
            idx.insert(sortable_key(lo, hi), i);
        }
        assert!(idx.run_count() >= 1, "inserts must have compacted into runs");
        for qi in 0..60 {
            let (a, b) = (next(), next());
            let (qa, qb) = if a <= b { (a, b) } else { (b, a) };
            let mut got: Vec<u32> = Vec::new();
            idx.for_overlapping(qa, qb, |p| {
                let (lo, hi) = extents[p as usize];
                if lo <= qb && hi >= qa {
                    got.push(p);
                }
            });
            got.sort_unstable();
            let want: Vec<u32> = (0..extents.len() as u32)
                .filter(|&p| {
                    let (lo, hi) = extents[p as usize];
                    lo <= qb && hi >= qa
                })
                .collect();
            assert_eq!(got, want, "query {qi}: [{qa}, {qb}]");
        }
    }

    #[test]
    fn bulk_load_equals_incremental() {
        let extents: Vec<(f64, f64)> =
            (0..100).map(|i| (i as f64 * 0.1 - 5.0, i as f64 * 0.1 - 4.5)).collect();
        let mut inc = SortableSummaryIndex::default();
        let mut bulk = SortableSummaryIndex::default();
        for (i, &(l, h)) in extents.iter().enumerate() {
            inc.insert(sortable_key(l, h), i as u32);
        }
        bulk.bulk_load(
            extents.iter().enumerate().map(|(i, &(l, h))| (sortable_key(l, h), i as u32)),
        );
        assert_eq!(bulk.run_count(), 1);
        assert_eq!(inc.len(), bulk.len());
        let collect = |ix: &SortableSummaryIndex, a: f64, b: f64| {
            let mut v = Vec::new();
            ix.for_overlapping(a, b, |p| v.push(p));
            v.sort_unstable();
            v
        };
        for (a, b) in [(-5.0, -4.8), (-1.0, 1.0), (4.0, 9.0), (-100.0, 100.0)] {
            assert_eq!(collect(&inc, a, b), collect(&bulk, a, b));
        }
    }

    #[test]
    fn infinite_extents_always_visited() {
        let mut idx = SortableSummaryIndex::default();
        idx.insert(sortable_key(f64::NEG_INFINITY, f64::INFINITY), 0);
        idx.compact();
        for (a, b) in [(0.0, 0.0), (-1e300, 1e300), (5.0, 6.0)] {
            let mut hit = false;
            idx.for_overlapping(a, b, |p| hit |= p == 0);
            assert!(hit, "query [{a}, {b}] missed the whole-axis extent");
        }
    }
}
