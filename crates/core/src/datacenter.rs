//! Per-node middleware state: the data center (sensor proxy / base station)
//! of §IV.
//!
//! Each data center stores the MBRs content-routed to it, the similarity
//! subscriptions replicated over its key interval, the inner-product
//! subscriptions for streams it sources, and its slice of the
//! location-service table (`h2(stream) -> source node`).

use crate::query::{InnerProductQuery, QueryId, SimilarityQuery, StreamId};
use dsi_chord::ChordId;
use dsi_dsp::Mbr;
use dsi_simnet::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// An MBR stored at a data center, with provenance and expiry (BSPAN).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StoredMbr {
    /// Stream the MBR summarizes.
    pub stream: StreamId,
    /// The bounding box in feature space.
    pub mbr: Mbr,
    /// Node that sourced the stream (for follow-up verification).
    pub origin: ChordId,
    /// Absolute expiry time.
    pub expires: SimTime,
}

/// State of one data center.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DataCenter {
    /// This node's Chord identifier.
    pub id: ChordId,
    /// MBRs content-routed here (the local shard of the distributed index).
    mbrs: Vec<StoredMbr>,
    /// Similarity subscriptions replicated over this node's interval.
    subscriptions: HashMap<QueryId, SimilarityQuery>,
    /// Inner-product subscriptions for streams this node sources.
    ip_subscriptions: HashMap<QueryId, InnerProductQuery>,
    /// Location-service shard: streams whose `h2` key this node owns.
    location: HashMap<StreamId, ChordId>,
    /// Peak number of simultaneously stored MBRs (storage accounting).
    peak_mbrs: usize,
}

impl DataCenter {
    /// Creates an empty data center with the given ring identifier.
    pub fn new(id: ChordId) -> Self {
        DataCenter { id, ..Default::default() }
    }

    // ------------------------------------------------------------------
    // Index shard
    // ------------------------------------------------------------------

    /// Stores an MBR replica. Expired entries for the same batch are left to
    /// the periodic purge (the paper expires by life span, not by version).
    pub fn store_mbr(&mut self, stored: StoredMbr) {
        self.mbrs.push(stored);
        self.peak_mbrs = self.peak_mbrs.max(self.mbrs.len());
    }

    /// Number of currently stored MBRs (including not-yet-purged expired
    /// ones).
    pub fn mbr_count(&self) -> usize {
        self.mbrs.len()
    }

    /// Every stored MBR replica, including not-yet-purged expired ones —
    /// the raw shard contents an external auditor checks placement and
    /// expiry invariants against.
    pub fn stored_mbrs(&self) -> &[StoredMbr] {
        &self.mbrs
    }

    /// Drops the stored MBRs rejected by `keep` (replica rebalancing after
    /// churn moves records off nodes that no longer cover their range).
    pub(crate) fn retain_mbrs(&mut self, keep: impl FnMut(&StoredMbr) -> bool) {
        self.mbrs.retain(keep);
    }

    /// Peak storage footprint in MBRs.
    pub fn peak_mbr_count(&self) -> usize {
        self.peak_mbrs
    }

    /// The streams whose live MBRs at `now` are candidates for `query`:
    /// every stream with a stored box whose minimum distance to the query
    /// feature is within the radius. This is the superset guarantee — false
    /// positives possible, false dismissals impossible.
    pub fn local_candidates(&self, query: &SimilarityQuery, now: SimTime) -> Vec<StreamId> {
        let point = query.feature.to_reals();
        let mut out: Vec<StreamId> = self
            .mbrs
            .iter()
            .filter(|s| now < s.expires)
            .filter(|s| s.mbr.min_dist(&point) <= query.radius + 1e-12)
            .map(|s| s.stream)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    // ------------------------------------------------------------------
    // Subscriptions
    // ------------------------------------------------------------------

    /// Registers a similarity subscription (replica of a query whose key
    /// range covers this node).
    pub fn subscribe_similarity(&mut self, q: SimilarityQuery) {
        self.subscriptions.insert(q.id, q);
    }

    /// Registers an inner-product subscription at the stream's source node.
    pub fn subscribe_inner_product(&mut self, q: InnerProductQuery) {
        self.ip_subscriptions.insert(q.id, q);
    }

    /// Whether a similarity subscription with this id is replicated here
    /// (expired or not).
    pub fn has_subscription(&self, q: QueryId) -> bool {
        self.subscriptions.contains_key(&q)
    }

    /// Every similarity subscription, including not-yet-purged expired ones.
    pub fn all_subscriptions(&self) -> impl Iterator<Item = &SimilarityQuery> {
        self.subscriptions.values()
    }

    /// Every inner-product subscription, including not-yet-purged expired
    /// ones.
    pub fn all_ip_subscriptions(&self) -> impl Iterator<Item = &InnerProductQuery> {
        self.ip_subscriptions.values()
    }

    /// Active similarity subscriptions at `now`.
    pub fn active_subscriptions(&self, now: SimTime) -> impl Iterator<Item = &SimilarityQuery> {
        self.subscriptions.values().filter(move |q| !q.expired(now))
    }

    /// Active inner-product subscriptions at `now`.
    pub fn active_ip_subscriptions(
        &self,
        now: SimTime,
    ) -> impl Iterator<Item = &InnerProductQuery> {
        self.ip_subscriptions.values().filter(move |q| !q.expired(now))
    }

    /// Whether any subscription of either kind is active.
    pub fn has_active_subscriptions(&self, now: SimTime) -> bool {
        self.active_subscriptions(now).next().is_some()
            || self.active_ip_subscriptions(now).next().is_some()
    }

    // ------------------------------------------------------------------
    // Location service
    // ------------------------------------------------------------------

    /// Stores a `stream -> source node` record ("put" at the `h2` owner).
    pub fn location_put(&mut self, stream: StreamId, source: ChordId) {
        self.location.insert(stream, source);
    }

    /// Resolves a stream's source node ("get").
    pub fn location_get(&self, stream: StreamId) -> Option<ChordId> {
        self.location.get(&stream).copied()
    }

    // ------------------------------------------------------------------
    // Expiry
    // ------------------------------------------------------------------

    /// Drops expired MBRs and subscriptions; returns how many were removed.
    /// The paper removes both "in order to prevent cluttering of storage
    /// space and to eliminate query responses that contain stale
    /// information".
    pub fn purge_expired(&mut self, now: SimTime) -> usize {
        let before = self.mbrs.len() + self.subscriptions.len() + self.ip_subscriptions.len();
        self.mbrs.retain(|s| now < s.expires);
        self.subscriptions.retain(|_, q| !q.expired(now));
        self.ip_subscriptions.retain(|_, q| !q.expired(now));
        before - (self.mbrs.len() + self.subscriptions.len() + self.ip_subscriptions.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::SimilarityKind;
    use dsi_dsp::{extract_features, Normalization};

    fn wave(n: usize, f: f64) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * f).sin() * 2.0 + 5.0).collect()
    }

    fn query(id: QueryId, target: Vec<f64>, radius: f64, expires_ms: u64) -> SimilarityQuery {
        SimilarityQuery::from_target(
            id,
            0,
            target,
            radius,
            SimilarityKind::Correlation,
            2,
            0,
            SimTime::from_ms(expires_ms),
        )
    }

    fn stored(stream: StreamId, window: &[f64], expires_ms: u64) -> StoredMbr {
        let fv = extract_features(window, Normalization::ZNorm, 2);
        StoredMbr {
            stream,
            mbr: dsi_dsp::Mbr::from_point(&fv.to_reals()),
            origin: 9,
            expires: SimTime::from_ms(expires_ms),
        }
    }

    #[test]
    fn candidates_include_matching_streams() {
        let mut dc = DataCenter::new(5);
        let w = wave(32, 0.3);
        dc.store_mbr(stored(1, &w, 10_000));
        dc.store_mbr(stored(2, &wave(32, 1.1), 10_000)); // very different shape
        let q = query(7, w.clone(), 0.05, 10_000);
        let c = dc.local_candidates(&q, SimTime::from_ms(0));
        assert!(c.contains(&1), "identical shape must be a candidate");
        assert!(!c.contains(&2), "distant shape filtered out");
    }

    #[test]
    fn expired_mbrs_are_not_candidates() {
        let mut dc = DataCenter::new(5);
        let w = wave(32, 0.3);
        dc.store_mbr(stored(1, &w, 1000));
        let q = query(7, w, 0.05, 10_000);
        assert!(!dc.local_candidates(&q, SimTime::from_ms(1000)).contains(&1));
        assert!(dc.local_candidates(&q, SimTime::from_ms(999)).contains(&1));
    }

    #[test]
    fn duplicate_streams_deduped() {
        let mut dc = DataCenter::new(5);
        let w = wave(32, 0.3);
        dc.store_mbr(stored(1, &w, 10_000));
        dc.store_mbr(stored(1, &w, 10_000));
        let q = query(7, w, 0.05, 10_000);
        assert_eq!(dc.local_candidates(&q, SimTime::ZERO), vec![1]);
    }

    #[test]
    fn purge_removes_expired_state() {
        let mut dc = DataCenter::new(5);
        dc.store_mbr(stored(1, &wave(32, 0.3), 100));
        dc.store_mbr(stored(2, &wave(32, 0.4), 300));
        dc.subscribe_similarity(query(1, wave(32, 0.3), 0.1, 200));
        let removed = dc.purge_expired(SimTime::from_ms(250));
        assert_eq!(removed, 2); // MBR of stream 1 + the subscription
        assert_eq!(dc.mbr_count(), 1);
        assert!(!dc.has_active_subscriptions(SimTime::from_ms(250)));
    }

    #[test]
    fn peak_storage_tracks_high_water_mark() {
        let mut dc = DataCenter::new(5);
        for i in 0..4 {
            dc.store_mbr(stored(i, &wave(32, 0.3), 100));
        }
        dc.purge_expired(SimTime::from_ms(200));
        assert_eq!(dc.mbr_count(), 0);
        assert_eq!(dc.peak_mbr_count(), 4);
    }

    #[test]
    fn location_service_roundtrip() {
        let mut dc = DataCenter::new(5);
        assert_eq!(dc.location_get(3), None);
        dc.location_put(3, 42);
        assert_eq!(dc.location_get(3), Some(42));
        dc.location_put(3, 43); // source migrated
        assert_eq!(dc.location_get(3), Some(43));
    }

    #[test]
    fn subscription_replacement_by_id() {
        let mut dc = DataCenter::new(5);
        dc.subscribe_similarity(query(1, wave(32, 0.3), 0.1, 1000));
        dc.subscribe_similarity(query(1, wave(32, 0.3), 0.2, 1000));
        let radii: Vec<f64> = dc.active_subscriptions(SimTime::ZERO).map(|q| q.radius).collect();
        assert_eq!(radii, vec![0.2]);
    }

    #[test]
    fn active_ip_subscriptions_respect_expiry() {
        let mut dc = DataCenter::new(5);
        dc.subscribe_inner_product(InnerProductQuery::new(
            9,
            1,
            4,
            vec![0],
            vec![1.0],
            SimTime::from_ms(100),
        ));
        assert_eq!(dc.active_ip_subscriptions(SimTime::from_ms(50)).count(), 1);
        assert_eq!(dc.active_ip_subscriptions(SimTime::from_ms(150)).count(), 0);
    }
}
