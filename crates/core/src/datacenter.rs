//! Per-node middleware state: the data center (sensor proxy / base station)
//! of §IV.
//!
//! Each data center stores the MBRs content-routed to it, the similarity
//! subscriptions replicated over its key interval, the inner-product
//! subscriptions for streams it sources, and its slice of the
//! location-service table (`h2(stream) -> source node`).

use crate::query::{InnerProductQuery, QueryId, SimilarityQuery, StreamId};
use crate::sortable::{sortable_key, SortableSummaryIndex};
use crate::store::{SummaryRef, SummaryStore};
use dsi_chord::ChordId;
use dsi_dsp::Mbr;
use dsi_simnet::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// An MBR stored at a data center, with provenance and expiry (BSPAN).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredMbr {
    /// Stream the MBR summarizes.
    pub stream: StreamId,
    /// The bounding box in feature space.
    pub mbr: Mbr,
    /// Node that sourced the stream (for follow-up verification).
    pub origin: ChordId,
    /// Absolute expiry time.
    pub expires: SimTime,
}

/// The dim-0 (routing-coefficient) extent of a box, widened to the whole
/// axis for degenerate dimension-less boxes so they are never pruned.
#[inline]
fn extent0(mbr: &Mbr) -> (f64, f64) {
    if mbr.dims() == 0 {
        (f64::NEG_INFINITY, f64::INFINITY)
    } else {
        mbr.first_interval()
    }
}

/// Slack added around a search interval so that dim-0 pruning can never
/// exclude a record the exact `min_dist <= radius + 1e-12` test would
/// accept: the rounding of `sqrt(sum of squares)` is at most a few ulps,
/// and this pad is ~1e7 times wider than that at any magnitude.
#[inline]
fn prune_pad(r: f64) -> f64 {
    1e-9 + r.abs() * 1e-9
}

/// A 1-D interval index: sorted endpoint array plus an unsorted staged tail.
///
/// Eq. 6 maps summaries onto the ring through the *first* DFT coefficient
/// only, so both stored MBRs and subscription ranges project onto 1-D
/// intervals of that axis. Intersection queries against a sorted-by-low
/// array need the classic max-width trick: `[l, h]` intersects `[a, b]` iff
/// `l <= b` and `h >= a`, and since `l >= h - max_width` every intersecting
/// interval has `l` in `[a - max_width, b]` — two binary searches bound the
/// scan. Appends go to a small staged tail (scanned linearly, extents
/// inline) and are merged into the sorted run once the tail outgrows
/// `16 + sorted/16`, keeping amortized append cost O(log n).
///
/// The payload is an opaque `u64`: the position in `mbrs` for the MBR index,
/// the `QueryId` for the subscription index.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct IntervalIndex {
    /// `(low, high, payload)` sorted by `(low, payload)`.
    entries: Vec<(f64, f64, u64)>,
    /// Recent appends, unsorted, scanned linearly until compacted.
    staged: Vec<(f64, f64, u64)>,
    /// Widest `high - low` over `entries` and `staged`.
    max_width: f64,
}

impl IntervalIndex {
    fn clear(&mut self) {
        self.entries.clear();
        self.staged.clear();
        self.max_width = 0.0;
    }

    /// Stages one interval; merges the tail into the sorted run when it
    /// outgrows its bound.
    fn push(&mut self, low: f64, high: f64, payload: u64) {
        self.staged.push((low, high, payload));
        self.max_width = self.max_width.max(high - low);
        if self.staged.len() > 16 + self.entries.len() / 16 {
            self.compact();
        }
    }

    /// Merges the staged tail into the sorted run. The stable sort detects
    /// the two pre-sorted runs, so this is effectively one O(n) merge.
    fn compact(&mut self) {
        if self.staged.is_empty() {
            return;
        }
        self.staged.sort_by(|x, y| x.0.total_cmp(&y.0).then(x.2.cmp(&y.2)));
        self.entries.append(&mut self.staged);
        self.entries.sort_by(|x, y| x.0.total_cmp(&y.0).then(x.2.cmp(&y.2)));
    }

    /// Calls `visit` with the payload of every interval intersecting
    /// `[a, b]`, in deterministic (sorted-run, then staged-insertion) order.
    fn for_overlapping(&self, a: f64, b: f64, mut visit: impl FnMut(u64)) {
        let from = self.entries.partition_point(|e| e.0 < a - self.max_width);
        for &(low, high, payload) in &self.entries[from..] {
            if low > b {
                break;
            }
            if high >= a {
                visit(payload);
            }
        }
        for &(low, high, payload) in &self.staged {
            if low <= b && high >= a {
                visit(payload);
            }
        }
    }
}

/// Implicit-array binary min-heap over expiry timestamps (ms).
///
/// Entries are never removed eagerly: replaced subscriptions and rebalanced
/// replicas leave stale timestamps behind, which only makes the heap's
/// minimum a conservative lower bound on the earliest real expiry — a purge
/// fired on a stale minimum simply removes nothing and pops it.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct ExpiryHeap {
    times: Vec<u64>,
}

impl ExpiryHeap {
    fn push(&mut self, t: u64) {
        self.times.push(t);
        let mut i = self.times.len() - 1;
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.times[parent] <= self.times[i] {
                break;
            }
            self.times.swap(parent, i);
            i = parent;
        }
    }

    /// Earliest (possibly stale) expiry, if any.
    fn next_at(&self) -> Option<u64> {
        self.times.first().copied()
    }

    /// Drops every timestamp `<= now` — they all refer to items a purge at
    /// `now` has just removed (or to stale entries).
    fn pop_through(&mut self, now: u64) {
        while self.times.first().is_some_and(|&t| t <= now) {
            let last = self.times.len() - 1;
            self.times.swap(0, last);
            self.times.pop();
            // Sift the promoted leaf back down.
            let mut i = 0;
            loop {
                let (l, r) = (2 * i + 1, 2 * i + 2);
                let mut smallest = i;
                if l < self.times.len() && self.times[l] < self.times[smallest] {
                    smallest = l;
                }
                if r < self.times.len() && self.times[r] < self.times[smallest] {
                    smallest = r;
                }
                if smallest == i {
                    break;
                }
                self.times.swap(i, smallest);
                i = smallest;
            }
        }
    }
}

/// State of one data center.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DataCenter {
    /// This node's Chord identifier.
    pub id: ChordId,
    /// MBRs content-routed here (the local shard of the distributed index),
    /// in struct-of-arrays columns.
    store: SummaryStore,
    /// Similarity subscriptions replicated over this node's interval.
    subscriptions: HashMap<QueryId, SimilarityQuery>,
    /// Inner-product subscriptions for streams this node sources.
    ip_subscriptions: HashMap<QueryId, InnerProductQuery>,
    /// Location-service shard: streams whose `h2` key this node owns.
    location: HashMap<StreamId, ChordId>,
    /// Peak number of simultaneously stored MBRs (storage accounting).
    peak_mbrs: usize,
    /// Sortable-key (z-order) index over `store` (payload = position).
    mbr_index: SortableSummaryIndex,
    /// Dim-0 interval index over `subscriptions` (payload = query id).
    sub_index: IntervalIndex,
    /// Min-heap of pending expiries across all three soft-state tables.
    expiry: ExpiryHeap,
}

impl DataCenter {
    /// Creates an empty data center with the given ring identifier.
    pub fn new(id: ChordId) -> Self {
        DataCenter { id, ..Default::default() }
    }

    // ------------------------------------------------------------------
    // Index shard
    // ------------------------------------------------------------------

    /// Stores an MBR replica. Expired entries for the same batch are left to
    /// the periodic purge (the paper expires by life span, not by version).
    pub fn store_mbr(&mut self, stored: StoredMbr) {
        let (low, high) = extent0(&stored.mbr);
        self.expiry.push(stored.expires.as_ms());
        self.store.push_stored(&stored);
        self.mbr_index.insert(sortable_key(low, high), (self.store.len() - 1) as u32);
        self.peak_mbrs = self.peak_mbrs.max(self.store.len());
    }

    /// Number of currently stored MBRs (including not-yet-purged expired
    /// ones).
    pub fn mbr_count(&self) -> usize {
        self.store.len()
    }

    /// Every stored MBR replica, including not-yet-purged expired ones —
    /// the raw shard contents an external auditor checks placement and
    /// expiry invariants against. Borrowed column views, in storage order.
    pub fn summaries(&self) -> impl Iterator<Item = SummaryRef<'_>> {
        self.store.iter()
    }

    /// Owned transport copies of every stored replica, in storage order —
    /// for serialized audits and bit-compare snapshots.
    pub fn stored_mbrs_snapshot(&self) -> Vec<StoredMbr> {
        self.store.to_stored_vec()
    }

    /// Drops the stored MBRs rejected by `keep` (replica rebalancing after
    /// churn moves records off nodes that no longer cover their range).
    pub(crate) fn retain_mbrs(&mut self, keep: impl FnMut(SummaryRef<'_>) -> bool) {
        self.store.retain(keep);
        self.rebuild_mbr_index();
    }

    /// Bulk-loads the sortable-key index after positions in `store` shifted.
    fn rebuild_mbr_index(&mut self) {
        let store = &self.store;
        self.mbr_index.bulk_load((0..store.len()).map(|pos| {
            let (low, high) = store.get(pos).extent0();
            (sortable_key(low, high), pos as u32)
        }));
    }

    /// Rebuilds the subscription interval index (after removal/replacement).
    fn rebuild_sub_index(&mut self) {
        self.sub_index.clear();
        let mut point = Vec::new();
        // dsilint: allow(unordered-iter, compact() sorts the rebuilt index wholesale)
        for (&qid, q) in &self.subscriptions {
            let (low, high) = Self::sub_interval(q, &mut point);
            self.sub_index.staged.push((low, high, qid));
            self.sub_index.max_width = self.sub_index.max_width.max(high - low);
        }
        self.sub_index.compact();
    }

    /// The dim-0 interval a subscription can match boxes in: the query
    /// point's first coordinate widened by radius plus pruning slack.
    fn sub_interval(q: &SimilarityQuery, scratch: &mut Vec<f64>) -> (f64, f64) {
        q.feature.write_reals(scratch);
        match scratch.first() {
            Some(&p0) => {
                let r = q.radius + 1e-12;
                let pad = prune_pad(r);
                (p0 - r - pad, p0 + r + pad)
            }
            // A dimension-less query matches every box at distance zero.
            None => (f64::NEG_INFINITY, f64::INFINITY),
        }
    }

    /// Peak storage footprint in MBRs.
    pub fn peak_mbr_count(&self) -> usize {
        self.peak_mbrs
    }

    /// The streams whose live MBRs at `now` are candidates for `query`:
    /// every stream with a stored box whose minimum distance to the query
    /// feature is within the radius. This is the superset guarantee — false
    /// positives possible, false dismissals impossible.
    pub fn local_candidates(&self, query: &SimilarityQuery, now: SimTime) -> Vec<StreamId> {
        let point = query.feature.to_reals();
        let mut out = Vec::new();
        self.collect_candidates(query, &point, now, &mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Index-pruned candidate walk: appends every live matching stream to
    /// `out` (unsorted, possibly with duplicates). `point` must be
    /// `query.feature.to_reals()` — callers probing many nodes compute it
    /// once and pass it down.
    ///
    /// Dim-0 of the feature space is the routing coefficient's real part, so
    /// any box within `radius` of the query point must overlap
    /// `[p0 - r, p0 + r]` on that axis; the sortable-key index prunes to a
    /// superset of those boxes (the z-order scan is conservative under the
    /// 32-bit key quantization) before the exact `min_dist` test, which
    /// keeps the result set identical to the brute-force scan.
    pub fn collect_candidates(
        &self,
        query: &SimilarityQuery,
        point: &[f64],
        now: SimTime,
        out: &mut Vec<StreamId>,
    ) {
        let r = query.radius + 1e-12;
        if point.is_empty() {
            // Dimension-less query: min_dist is 0 to every box; no pruning.
            for s in self.store.iter() {
                if now < s.expires && s.min_dist(point) <= r {
                    out.push(s.stream);
                }
            }
            return;
        }
        let pad = prune_pad(r);
        let (a, b) = (point[0] - r - pad, point[0] + r + pad);
        self.mbr_index.for_overlapping(a, b, |pos| {
            let pos = pos as usize;
            // Expiry lives in its own column: dead records skip the corner
            // loads entirely.
            if now < self.store.expires_at(pos) {
                let s = self.store.get(pos);
                if s.min_dist(point) <= r {
                    out.push(s.stream);
                }
            }
        });
    }

    /// Brute-force reference for [`DataCenter::local_candidates`]: the
    /// original full linear scan. Kept for property tests and as the
    /// baseline the bench suite measures the index against.
    pub fn local_candidates_linear(&self, query: &SimilarityQuery, now: SimTime) -> Vec<StreamId> {
        let point = query.feature.to_reals();
        let mut out: Vec<StreamId> = self
            .store
            .iter()
            .filter(|s| now < s.expires)
            .filter(|s| s.min_dist(&point) <= query.radius + 1e-12)
            .map(|s| s.stream)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    // ------------------------------------------------------------------
    // Subscriptions
    // ------------------------------------------------------------------

    /// Registers a similarity subscription (replica of a query whose key
    /// range covers this node).
    pub fn subscribe_similarity(&mut self, q: SimilarityQuery) {
        let mut scratch = Vec::new();
        let (low, high) = Self::sub_interval(&q, &mut scratch);
        let qid = q.id;
        self.expiry.push(q.expires.as_ms());
        let replaced = self.subscriptions.insert(qid, q).is_some();
        if replaced {
            // The old entry's interval is stale; rebuild rather than track it.
            self.rebuild_sub_index();
        } else {
            self.sub_index.push(low, high, qid);
        }
    }

    /// Registers an inner-product subscription at the stream's source node.
    pub fn subscribe_inner_product(&mut self, q: InnerProductQuery) {
        self.expiry.push(q.expires.as_ms());
        self.ip_subscriptions.insert(q.id, q);
    }

    /// Whether a similarity subscription with this id is replicated here
    /// (expired or not).
    pub fn has_subscription(&self, q: QueryId) -> bool {
        self.subscriptions.contains_key(&q)
    }

    /// Every similarity subscription, including not-yet-purged expired ones.
    pub fn all_subscriptions(&self) -> impl Iterator<Item = &SimilarityQuery> {
        // dsilint: allow(unordered-iter, accessor; ordering consumers sort, see notify_cycle)
        self.subscriptions.values()
    }

    /// Every inner-product subscription, including not-yet-purged expired
    /// ones.
    pub fn all_ip_subscriptions(&self) -> impl Iterator<Item = &InnerProductQuery> {
        // dsilint: allow(unordered-iter, accessor; ordering consumers sort, see notify_cycle)
        self.ip_subscriptions.values()
    }

    /// Active similarity subscriptions at `now`.
    pub fn active_subscriptions(&self, now: SimTime) -> impl Iterator<Item = &SimilarityQuery> {
        // dsilint: allow(unordered-iter, accessor; ordering consumers sort, see notify_cycle)
        self.subscriptions.values().filter(move |q| !q.expired(now))
    }

    /// Active inner-product subscriptions at `now`.
    pub fn active_ip_subscriptions(
        &self,
        now: SimTime,
    ) -> impl Iterator<Item = &InnerProductQuery> {
        // dsilint: allow(unordered-iter, accessor; ordering consumers sort, see notify_cycle)
        self.ip_subscriptions.values().filter(move |q| !q.expired(now))
    }

    /// Total subscriptions of both kinds currently replicated here
    /// (including not-yet-purged expired ones) — the load ledger's
    /// per-round subscription gauge.
    pub fn subscription_count(&self) -> usize {
        self.subscriptions.len() + self.ip_subscriptions.len()
    }

    /// Whether any subscription of either kind is active.
    pub fn has_active_subscriptions(&self, now: SimTime) -> bool {
        self.active_subscriptions(now).next().is_some()
            || self.active_ip_subscriptions(now).next().is_some()
    }

    /// The active similarity subscriptions a freshly arrived summary box can
    /// satisfy — the symmetric counterpart of [`DataCenter::local_candidates`]
    /// for the publish side. The subscription interval index prunes by the
    /// box's dim-0 extent before the exact `min_dist` test, so the result is
    /// exactly the set a full scan would produce, ordered deterministically
    /// by (interval low, query id).
    pub fn matching_subscriptions(&self, mbr: &Mbr, now: SimTime) -> Vec<&SimilarityQuery> {
        let (low, high) = extent0(mbr);
        let mut out = Vec::new();
        let mut point = Vec::new();
        self.sub_index.for_overlapping(low, high, |qid| {
            let q = &self.subscriptions[&qid];
            if !q.expired(now) {
                q.feature.write_reals(&mut point);
                if mbr.min_dist(&point) <= q.radius + 1e-12 {
                    out.push(q);
                }
            }
        });
        out
    }

    // ------------------------------------------------------------------
    // Location service
    // ------------------------------------------------------------------

    /// Stores a `stream -> source node` record ("put" at the `h2` owner).
    pub fn location_put(&mut self, stream: StreamId, source: ChordId) {
        self.location.insert(stream, source);
    }

    /// Resolves a stream's source node ("get").
    pub fn location_get(&self, stream: StreamId) -> Option<ChordId> {
        self.location.get(&stream).copied()
    }

    // ------------------------------------------------------------------
    // Expiry
    // ------------------------------------------------------------------

    /// Drops expired MBRs and subscriptions; returns how many were removed.
    /// The paper removes both "in order to prevent cluttering of storage
    /// space and to eliminate query responses that contain stale
    /// information".
    pub fn purge_expired(&mut self, now: SimTime) -> usize {
        // The heap minimum is a lower bound on the earliest expiry of any
        // live item; while it is in the future, nothing can be expired and
        // the scan below would only re-inspect live state.
        if self.expiry.next_at().is_none_or(|t| now.as_ms() < t) {
            return 0;
        }
        let before = self.store.len() + self.subscriptions.len() + self.ip_subscriptions.len();
        self.store.retain(|s| now < s.expires);
        self.subscriptions.retain(|_, q| !q.expired(now));
        self.ip_subscriptions.retain(|_, q| !q.expired(now));
        self.expiry.pop_through(now.as_ms());
        self.rebuild_mbr_index();
        self.rebuild_sub_index();
        before - (self.store.len() + self.subscriptions.len() + self.ip_subscriptions.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::SimilarityKind;
    use dsi_dsp::{extract_features, Normalization};

    fn wave(n: usize, f: f64) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * f).sin() * 2.0 + 5.0).collect()
    }

    fn query(id: QueryId, target: Vec<f64>, radius: f64, expires_ms: u64) -> SimilarityQuery {
        SimilarityQuery::from_target(
            id,
            0,
            target,
            radius,
            SimilarityKind::Correlation,
            2,
            0,
            SimTime::from_ms(expires_ms),
        )
    }

    fn stored(stream: StreamId, window: &[f64], expires_ms: u64) -> StoredMbr {
        let fv = extract_features(window, Normalization::ZNorm, 2);
        StoredMbr {
            stream,
            mbr: dsi_dsp::Mbr::from_point(&fv.to_reals()),
            origin: 9,
            expires: SimTime::from_ms(expires_ms),
        }
    }

    #[test]
    fn candidates_include_matching_streams() {
        let mut dc = DataCenter::new(5);
        let w = wave(32, 0.3);
        dc.store_mbr(stored(1, &w, 10_000));
        dc.store_mbr(stored(2, &wave(32, 1.1), 10_000)); // very different shape
        let q = query(7, w.clone(), 0.05, 10_000);
        let c = dc.local_candidates(&q, SimTime::from_ms(0));
        assert!(c.contains(&1), "identical shape must be a candidate");
        assert!(!c.contains(&2), "distant shape filtered out");
    }

    #[test]
    fn expired_mbrs_are_not_candidates() {
        let mut dc = DataCenter::new(5);
        let w = wave(32, 0.3);
        dc.store_mbr(stored(1, &w, 1000));
        let q = query(7, w, 0.05, 10_000);
        assert!(!dc.local_candidates(&q, SimTime::from_ms(1000)).contains(&1));
        assert!(dc.local_candidates(&q, SimTime::from_ms(999)).contains(&1));
    }

    #[test]
    fn duplicate_streams_deduped() {
        let mut dc = DataCenter::new(5);
        let w = wave(32, 0.3);
        dc.store_mbr(stored(1, &w, 10_000));
        dc.store_mbr(stored(1, &w, 10_000));
        let q = query(7, w, 0.05, 10_000);
        assert_eq!(dc.local_candidates(&q, SimTime::ZERO), vec![1]);
    }

    #[test]
    fn purge_removes_expired_state() {
        let mut dc = DataCenter::new(5);
        dc.store_mbr(stored(1, &wave(32, 0.3), 100));
        dc.store_mbr(stored(2, &wave(32, 0.4), 300));
        dc.subscribe_similarity(query(1, wave(32, 0.3), 0.1, 200));
        let removed = dc.purge_expired(SimTime::from_ms(250));
        assert_eq!(removed, 2); // MBR of stream 1 + the subscription
        assert_eq!(dc.mbr_count(), 1);
        assert!(!dc.has_active_subscriptions(SimTime::from_ms(250)));
    }

    #[test]
    fn peak_storage_tracks_high_water_mark() {
        let mut dc = DataCenter::new(5);
        for i in 0..4 {
            dc.store_mbr(stored(i, &wave(32, 0.3), 100));
        }
        dc.purge_expired(SimTime::from_ms(200));
        assert_eq!(dc.mbr_count(), 0);
        assert_eq!(dc.peak_mbr_count(), 4);
    }

    #[test]
    fn location_service_roundtrip() {
        let mut dc = DataCenter::new(5);
        assert_eq!(dc.location_get(3), None);
        dc.location_put(3, 42);
        assert_eq!(dc.location_get(3), Some(42));
        dc.location_put(3, 43); // source migrated
        assert_eq!(dc.location_get(3), Some(43));
    }

    #[test]
    fn subscription_replacement_by_id() {
        let mut dc = DataCenter::new(5);
        dc.subscribe_similarity(query(1, wave(32, 0.3), 0.1, 1000));
        dc.subscribe_similarity(query(1, wave(32, 0.3), 0.2, 1000));
        let radii: Vec<f64> = dc.active_subscriptions(SimTime::ZERO).map(|q| q.radius).collect();
        assert_eq!(radii, vec![0.2]);
    }

    #[test]
    fn indexed_candidates_match_linear_scan_through_mutations() {
        let mut dc = DataCenter::new(5);
        // Enough inserts to force several staged-tail compactions.
        for i in 0..200u32 {
            let w = wave(32, 0.05 + (i % 23) as f64 * 0.07);
            dc.store_mbr(stored(i, &w, 500 + (i as u64 % 7) * 400));
        }
        let queries: Vec<SimilarityQuery> =
            (0..23).map(|j| query(j, wave(32, 0.05 + j as f64 * 0.07), 0.4, 10_000)).collect();
        for t in [0u64, 600, 1300, 2500, 9000] {
            let now = SimTime::from_ms(t);
            dc.purge_expired(now);
            for q in &queries {
                assert_eq!(
                    dc.local_candidates(q, now),
                    dc.local_candidates_linear(q, now),
                    "indexed/linear divergence at t={t} query={}",
                    q.id
                );
            }
        }
    }

    #[test]
    fn purge_skips_scan_until_first_expiry() {
        let mut dc = DataCenter::new(5);
        dc.store_mbr(stored(1, &wave(32, 0.3), 1000));
        dc.subscribe_similarity(query(1, wave(32, 0.3), 0.1, 2000));
        assert_eq!(dc.purge_expired(SimTime::from_ms(999)), 0);
        assert_eq!(dc.mbr_count(), 1);
        assert_eq!(dc.purge_expired(SimTime::from_ms(1000)), 1);
        assert_eq!(dc.purge_expired(SimTime::from_ms(1500)), 0);
        assert_eq!(dc.purge_expired(SimTime::from_ms(2000)), 1);
        assert_eq!(dc.purge_expired(SimTime::from_ms(90_000)), 0);
    }

    #[test]
    fn matching_subscriptions_equals_brute_force() {
        let mut dc = DataCenter::new(5);
        for j in 0..40 {
            dc.subscribe_similarity(query(j, wave(32, 0.05 + j as f64 * 0.04), 0.3, 5000));
        }
        let now = SimTime::from_ms(10);
        for i in 0..40u32 {
            let fv = extract_features(&wave(32, 0.05 + i as f64 * 0.04), Normalization::ZNorm, 2);
            let mbr = dsi_dsp::Mbr::from_point(&fv.to_reals());
            let mut indexed: Vec<QueryId> =
                dc.matching_subscriptions(&mbr, now).iter().map(|q| q.id).collect();
            indexed.sort_unstable();
            let mut brute: Vec<QueryId> = dc
                .all_subscriptions()
                .filter(|q| !q.expired(now))
                .filter(|q| mbr.min_dist(&q.feature.to_reals()) <= q.radius + 1e-12)
                .map(|q| q.id)
                .collect();
            brute.sort_unstable();
            assert_eq!(indexed, brute, "box {i}");
        }
        // Replacement with a wider radius must be visible through the index.
        dc.subscribe_similarity(query(0, wave(32, 0.9), 2.5, 5000));
        let fv = extract_features(&wave(32, 0.9), Normalization::ZNorm, 2);
        let mbr = dsi_dsp::Mbr::from_point(&fv.to_reals());
        assert!(dc.matching_subscriptions(&mbr, now).iter().any(|q| q.id == 0));
    }

    #[test]
    fn active_ip_subscriptions_respect_expiry() {
        let mut dc = DataCenter::new(5);
        dc.subscribe_inner_product(InnerProductQuery::new(
            9,
            1,
            4,
            vec![0],
            vec![1.0],
            SimTime::from_ms(100),
        ));
        assert_eq!(dc.active_ip_subscriptions(SimTime::from_ms(50)).count(), 1);
        assert_eq!(dc.active_ip_subscriptions(SimTime::from_ms(150)).count(), 0);
    }

    #[test]
    fn purge_at_exact_expiry_tick_removes_once() {
        let mut dc = DataCenter::new(5);
        // `expired(now)` is `now >= expires`: an item expiring exactly at
        // the purge tick must go in that purge, and the heap bound
        // (`next_at() <= now`) must let the scan run at equality.
        dc.subscribe_similarity(query(1, wave(32, 0.2), 0.3, 1000));
        dc.store_mbr(stored(0, &wave(32, 0.2), 1000));
        let tick = SimTime::from_ms(1000);
        assert_eq!(dc.purge_expired(tick), 2, "boundary items purged exactly at their tick");
        assert!(!dc.has_subscription(1));
        assert_eq!(dc.mbr_count(), 0);
        // A second purge at the same tick finds nothing — no double purge.
        assert_eq!(dc.purge_expired(tick), 0);
        assert_eq!(dc.purge_expired(SimTime::from_ms(1001)), 0);
    }

    #[test]
    fn duplicated_delivery_does_not_double_purge() {
        let mut dc = DataCenter::new(5);
        // A duplicated NPER delivery re-subscribes the same query; the
        // replacement leaves one stale heap timestamp behind. The purge at
        // expiry must remove the single live copy once, and the stale
        // entry must only cost a no-op scan, never a second removal.
        dc.subscribe_similarity(query(1, wave(32, 0.2), 0.3, 1000));
        dc.subscribe_similarity(query(1, wave(32, 0.2), 0.3, 1000));
        let tick = SimTime::from_ms(1000);
        assert_eq!(dc.purge_expired(tick), 1, "one live copy, one removal");
        assert_eq!(dc.purge_expired(tick), 0, "stale duplicate timestamp is a no-op");
        // `store_mbr` appends blindly (the dedup cache upstream suppresses
        // duplicated copies); both raw copies purge in one pass.
        dc.store_mbr(stored(0, &wave(32, 0.2), 2000));
        dc.store_mbr(stored(0, &wave(32, 0.2), 2000));
        assert_eq!(dc.purge_expired(SimTime::from_ms(2000)), 2);
        assert_eq!(dc.mbr_count(), 0);
        assert_eq!(dc.purge_expired(SimTime::from_ms(2000)), 0);
    }
}
