//! The application view (paper Fig. 5).
//!
//! Fig. 5 names the middleware's interface: a one-time
//! `update(summary, stream)` per new data value, one-time
//! `subscribe(pattern)` and `subscribe(inner_product)` per client query,
//! and periodic `push_similarity_info` / `push_inner_product_info`
//! notifications flowing back. [`StreamIndex`] exposes exactly that
//! surface over a [`Cluster`], tracking per-subscription deliveries so an
//! application consumes pushes incrementally.

use crate::cluster::{Cluster, ClusterConfig};
use crate::query::{AlertCondition, InnerProductQuery, QueryId, StreamId};
use dsi_chord::{ContentRouter, Ring};
use dsi_simnet::SimTime;
use std::collections::HashMap;

/// A similarity push: the streams detected similar to a subscribed pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimilarityPush {
    /// The subscription this push answers.
    pub subscription: QueryId,
    /// Matching stream.
    pub stream: StreamId,
    /// Emission time at the aggregator.
    pub at: SimTime,
}

/// An inner-product push: the current (approximate) value, plus whether the
/// subscription's alert condition fired.
#[derive(Debug, Clone, PartialEq)]
pub struct InnerProductPush {
    /// The subscription this push answers.
    pub subscription: QueryId,
    /// The pushed value.
    pub value: f64,
    /// True when the alert condition was triggered.
    pub alert: bool,
    /// Emission time at the source.
    pub at: SimTime,
}

/// The Fig. 5 application view over the distributed index.
pub struct StreamIndex<R: ContentRouter = Ring> {
    cluster: Cluster<R>,
    /// How many pushes each subscription's consumer has already taken.
    consumed_similarity: HashMap<QueryId, usize>,
    consumed_ip: HashMap<QueryId, usize>,
}

impl StreamIndex<Ring> {
    /// Builds an index over a fresh Chord-backed cluster.
    pub fn new(cfg: ClusterConfig) -> Self {
        StreamIndex::over(Cluster::new(cfg))
    }
}

impl<R: ContentRouter> StreamIndex<R> {
    /// Wraps an existing cluster (any backend).
    pub fn over(cluster: Cluster<R>) -> Self {
        StreamIndex { cluster, consumed_similarity: HashMap::new(), consumed_ip: HashMap::new() }
    }

    /// Access to the underlying cluster (metrics, topology, quality).
    pub fn cluster(&self) -> &Cluster<R> {
        &self.cluster
    }

    /// Registers a stream at a data center; returns its identifier.
    pub fn register_stream(&mut self, name: &str, home_idx: usize) -> StreamId {
        self.cluster.register_stream(name, home_idx)
    }

    /// Fig. 5: "new data values for different streams arriving at data
    /// centers" — one-time `update(summary, stream)`. Summarization and
    /// content routing happen inside.
    pub fn update(&mut self, stream: StreamId, value: f64, now: SimTime) {
        self.cluster.post_value(stream, value, now);
    }

    /// Fig. 5: one-time `subscribe(pattern)` — a continuous similarity
    /// query over all streams. Returns the subscription handle.
    pub fn subscribe_pattern(
        &mut self,
        client_idx: usize,
        pattern: Vec<f64>,
        radius: f64,
        lifespan_ms: u64,
        now: SimTime,
    ) -> QueryId {
        self.cluster.post_similarity_query(client_idx, pattern, radius, lifespan_ms, now)
    }

    /// Fig. 5: one-time `subscribe(inner_product)` — a continuous weighted
    /// inner product over one stream, optionally alerting.
    #[allow(clippy::too_many_arguments)] // mirrors the paper's quadruple + routing context
    pub fn subscribe_inner_product(
        &mut self,
        client_idx: usize,
        stream: StreamId,
        indices: Vec<usize>,
        weights: Vec<f64>,
        alert: Option<AlertCondition>,
        lifespan_ms: u64,
        now: SimTime,
    ) -> QueryId {
        let mut q = InnerProductQuery::new(0, 0, stream, indices, weights, SimTime::ZERO);
        if let Some(a) = alert {
            q = q.with_alert(a);
        }
        self.cluster.post_inner_product(client_idx, q, lifespan_ms, now)
    }

    /// Drives the periodic NPER processing on every data center
    /// (aggregation, verification, pushes).
    pub fn run_notify_cycle(&mut self, now: SimTime) {
        self.cluster.notify_all(now);
    }

    /// Fig. 5: periodic `push_similarity_info` — drains the pushes for a
    /// pattern subscription that arrived since the last call.
    pub fn push_similarity_info(&mut self, subscription: QueryId) -> Vec<SimilarityPush> {
        let all = self.cluster.notifications(subscription);
        let seen = self.consumed_similarity.entry(subscription).or_insert(0);
        let fresh: Vec<SimilarityPush> = all[*seen..]
            .iter()
            .map(|n| SimilarityPush { subscription, stream: n.stream, at: n.at })
            .collect();
        *seen = all.len();
        fresh
    }

    /// Fig. 5: periodic `push_inner_product_info` — drains the pushes for
    /// an inner-product subscription that arrived since the last call.
    pub fn push_inner_product_info(&mut self, subscription: QueryId) -> Vec<InnerProductPush> {
        let all = self.cluster.ip_results(subscription);
        let alerts = self.cluster.ip_alerts(subscription);
        let seen = self.consumed_ip.entry(subscription).or_insert(0);
        let fresh: Vec<InnerProductPush> = all[*seen..]
            .iter()
            .map(|&(at, value)| InnerProductPush {
                subscription,
                value,
                alert: alerts.iter().any(|&(t, v)| t == at && v == value),
                at,
            })
            .collect();
        *seen = all.len();
        fresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::SimilarityKind;

    fn index() -> StreamIndex {
        let mut cfg = ClusterConfig::new(10);
        cfg.workload.window_len = 16;
        cfg.workload.mbr_batch = 2;
        cfg.kind = SimilarityKind::Subsequence;
        StreamIndex::new(cfg)
    }

    fn feed(ix: &mut StreamIndex, sid: StreamId, n: usize) {
        for i in 0..n {
            let v = 1.0 + (i as f64 * 0.5).sin();
            ix.update(sid, v, SimTime::from_ms(i as u64 * 100));
        }
    }

    #[test]
    fn pattern_subscription_pushes_incrementally() {
        let mut ix = index();
        let sid = ix.register_stream("s", 0);
        feed(&mut ix, sid, 32);
        let pattern = ix.cluster().streams()[0].extractor.window_snapshot();
        let sub = ix.subscribe_pattern(2, pattern, 0.1, 60_000, SimTime::from_ms(3200));

        ix.run_notify_cycle(SimTime::from_ms(4000));
        let first = ix.push_similarity_info(sub);
        assert!(first.iter().any(|p| p.stream == sid));

        // Draining again without new cycles yields nothing.
        assert!(ix.push_similarity_info(sub).is_empty());

        // Another cycle produces only the new pushes.
        ix.run_notify_cycle(SimTime::from_ms(4500));
        let second = ix.push_similarity_info(sub);
        assert!(!second.is_empty());
        assert!(second.iter().all(|p| p.at == SimTime::from_ms(4500)));
    }

    #[test]
    fn inner_product_subscription_with_alert() {
        let mut ix = index();
        let sid = ix.register_stream("temp", 0);
        feed(&mut ix, sid, 20);
        let sub = ix.subscribe_inner_product(
            3,
            sid,
            (0..4).collect(),
            vec![0.25; 4],
            Some(AlertCondition::Above(0.0)),
            60_000,
            SimTime::from_secs(2),
        );
        ix.run_notify_cycle(SimTime::from_secs(4));
        let pushes = ix.push_inner_product_info(sub);
        assert_eq!(pushes.len(), 1);
        assert!(pushes[0].alert, "positive stream must trip an Above(0) alert");
        assert!(ix.push_inner_product_info(sub).is_empty(), "drained");
    }

    #[test]
    fn unknown_subscription_yields_nothing() {
        let mut ix = index();
        assert!(ix.push_similarity_info(999).is_empty());
        assert!(ix.push_inner_product_info(999).is_empty());
    }
}
