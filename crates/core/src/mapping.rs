//! Mapping stream summaries and stream identities onto the Chord ring
//! (§IV-B, Eq. 6).
//!
//! Normalized windows live on the unit hyper-sphere, so the real part of the
//! first retained DFT coefficient lies in `[-1, +1]`. Eq. 6 scales that
//! interval linearly onto the identifier circle `[0, 2^m - 1]`:
//! `-1 -> 0`, `0 -> 2^{m-1}`, `+1 -> 2^m - 1`. Similar streams therefore hash
//! to nearby keys, which is what turns the DHT into a distributed index.

use dsi_chord::{ChordId, IdSpace};
use dsi_dsp::FeatureVector;

/// Eq. 6: maps a feature value in `[-1, +1]` to a Chord identifier.
/// Values outside the interval are clamped (they can only arise from
/// floating-point rounding).
pub fn feature_to_key(space: IdSpace, value: f64) -> ChordId {
    let v = value.clamp(-1.0, 1.0);
    let max = (space.modulus() - 1) as f64;
    ((v + 1.0) / 2.0 * max).round() as ChordId
}

/// Maps a summary to its key via its first retained coefficient.
pub fn summary_key(space: IdSpace, feature: &FeatureVector) -> ChordId {
    feature_to_key(space, feature.first_real())
}

/// The key range a similarity query of radius `radius` around `center`
/// must reach (§IV-E, Eq. 8): `[h(c - r), h(c + r)]`, clamped to the valid
/// feature interval so the range never wraps.
pub fn radius_key_range(space: IdSpace, center: f64, radius: f64) -> (ChordId, ChordId) {
    assert!(radius >= 0.0, "radius must be non-negative");
    let lo = feature_to_key(space, center - radius);
    let hi = feature_to_key(space, center + radius);
    (lo, hi)
}

/// The key range an MBR must be replicated over (§IV-G, Eq. 10):
/// `[h(l_1), h(h_1)]` for its first-dimension interval.
pub fn interval_key_range(space: IdSpace, low: f64, high: f64) -> (ChordId, ChordId) {
    assert!(low <= high, "interval must be ordered");
    (feature_to_key(space, low), feature_to_key(space, high))
}

/// `h2`: hashes a stream identifier to the key of its location-service
/// record (§IV-D). Uses SHA-1 like node placement, so records spread
/// uniformly regardless of stream content.
pub fn stream_key(space: IdSpace, stream_id: &str) -> ChordId {
    space.hash_str(stream_id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsi_dsp::{Complex64, FeatureVector, Normalization};

    /// m = 5 — the space of the paper's running example figures.
    fn fig_space() -> IdSpace {
        IdSpace::new(5)
    }

    #[test]
    fn eq6_anchor_points() {
        // The paper states -1, 0, +1 map to 0, 2^{m-1}, 2^m - 1.
        let s = fig_space();
        assert_eq!(feature_to_key(s, -1.0), 0);
        assert_eq!(feature_to_key(s, 0.0), 16);
        assert_eq!(feature_to_key(s, 1.0), 31);
    }

    #[test]
    fn figure2_summary_keys() {
        // Fig. 2: X = [0.40 0.09] hashes to K22 (stored at N23);
        // Y = [0.42 0.11] also lands on K22's neighborhood.
        let s = fig_space();
        assert_eq!(feature_to_key(s, 0.40), 22);
        assert_eq!(feature_to_key(s, 0.42), 22);
    }

    #[test]
    fn figure3a_query_range() {
        // Fig. 3(a): X = [-0.08 0.12], r = 0.29. High boundary
        // -0.08 + 0.29 = 0.21 -> K19; low boundary -0.08 - 0.29 = -0.37 -> K10.
        let s = fig_space();
        let (lo, hi) = radius_key_range(s, -0.08, 0.29);
        assert_eq!(lo, 10);
        assert_eq!(hi, 19);
    }

    #[test]
    fn figure4_mbr_range() {
        // Fig. 4: MBR with first interval [0.21, 0.40] replicates over
        // [h(0.21), h(0.40)] = [19, 22] — nodes N20 and N23.
        let s = fig_space();
        let (lo, hi) = interval_key_range(s, 0.21, 0.40);
        assert_eq!((lo, hi), (19, 22));
    }

    #[test]
    fn mapping_is_monotone() {
        let s = IdSpace::new(16);
        let mut prev = feature_to_key(s, -1.0);
        let mut v = -1.0;
        while v < 1.0 {
            v += 0.001;
            let k = feature_to_key(s, v);
            assert!(k >= prev, "mapping must be monotone");
            prev = k;
        }
    }

    #[test]
    fn clamps_out_of_range_values() {
        let s = fig_space();
        assert_eq!(feature_to_key(s, -1.5), 0);
        assert_eq!(feature_to_key(s, 7.0), 31);
    }

    #[test]
    fn radius_range_clamps_at_boundaries() {
        let s = fig_space();
        let (lo, hi) = radius_key_range(s, 0.95, 0.2);
        assert_eq!(hi, 31); // clamped at +1
        assert!(lo <= hi, "clamped range never wraps");
        let (lo2, _) = radius_key_range(s, -0.95, 0.2);
        assert_eq!(lo2, 0); // clamped at -1
    }

    #[test]
    fn summary_key_uses_first_coefficient() {
        let s = fig_space();
        let fv = FeatureVector::new(
            vec![Complex64::new(0.40, 0.09), Complex64::new(0.5, 0.5)],
            Normalization::ZNorm,
        );
        assert_eq!(summary_key(s, &fv), 22);
    }

    #[test]
    fn similar_features_map_to_nearby_keys() {
        let s = IdSpace::new(20);
        let a = feature_to_key(s, 0.300);
        let b = feature_to_key(s, 0.301);
        let c = feature_to_key(s, -0.700);
        assert!(a.abs_diff(b) < s.modulus() / 1000);
        assert!(a.abs_diff(c) > s.modulus() / 4);
    }

    #[test]
    fn stream_key_is_stable_and_spread() {
        let s = IdSpace::new(32);
        let k1 = stream_key(s, "stream-1");
        assert_eq!(k1, stream_key(s, "stream-1"));
        assert_ne!(k1, stream_key(s, "stream-2"));
        assert!(k1 < s.modulus());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_radius_panics() {
        let _ = radius_key_range(fig_space(), 0.0, -0.1);
    }
}
