//! # dsi-core — the paper's contribution
//!
//! An adaptive, scalable middleware for distributed data-stream indexing on
//! top of content-based routing (Bulut, Vitenberg & Singh, IPDPS 2005):
//!
//! * [`mapping`] — Eq. 6 feature→key scaling and the `h2` location hash;
//! * [`query`] — similarity and inner-product query types, Eq. 7
//!   reconstruction, the lower-bounding candidate test;
//! * [`batching`] — ζ-batching of summaries into MBRs (§IV-G);
//! * [`datacenter`] — per-node index shards, subscriptions, expiry;
//! * [`cluster`] — the full middleware over a Chord ring with message
//!   accounting;
//! * [`reliability`] — acked delivery with retry/backoff, bounded dedup,
//!   parked late effects and coverage-tagged degradation (DESIGN.md §12);
//! * [`load`] — per-node load ledger and virtual-node re-weighting
//!   mitigation for Fourier-space hotspots (DESIGN.md §13);
//! * [`aggregate`] — sliding-window aggregate queries answered from
//!   per-node ECM-sketch replicas with coverage-tagged ε-δ contracts
//!   (DESIGN.md §15);
//! * [`api`] — the Fig. 5 application view (`update` / `subscribe` /
//!   periodic pushes);
//! * [`system`] — the §V experiment driver (periodic streams, Poisson
//!   queries, staggered NPER cycles);
//! * [`report`] — the exact series of Figures 6, 7 and 8.

#![warn(missing_docs)]

pub mod aggregate;
pub mod api;
pub mod batching;
pub mod cluster;
pub mod datacenter;
pub mod load;
pub mod mapping;
pub mod messages;
pub mod query;
pub mod reliability;
pub mod report;
pub mod sortable;
pub mod store;
pub mod system;

pub use aggregate::{
    quantize, AggregateKind, AggregateNotification, AggregateQuery, AggregateSpec, AggregateValue,
};
pub use api::{InnerProductPush, SimilarityPush, StreamIndex};
pub use batching::MbrBatcher;
pub use cluster::{Cluster, ClusterConfig, QualityStats, StreamRuntime};
pub use datacenter::{DataCenter, StoredMbr};
pub use dsi_sketch::{ErrorBound, SketchDims};
pub use load::{gini, LoadLedger, NodeLoad, ReweightAction, ReweightConfig, RoundLoad};
pub use mapping::{feature_to_key, interval_key_range, radius_key_range, stream_key, summary_key};
pub use messages::{batching_saving, Message, HEADER_BYTES};
pub use query::{
    AlertCondition, InnerProductQuery, MatchNotification, QueryId, SimilarityKind, SimilarityQuery,
    StreamId,
};
pub use reliability::{
    DedupCache, DeliveryVerdict, PendingDelivery, PendingEffect, ReliabilityConfig,
    ReliabilityState, Resolution,
};
pub use report::{
    EventCounts, HopComponents, LoadBalanceReport, LoadComponents, OverheadComponents,
    ReliabilityReport, SystemReport,
};
pub use sortable::{decode_sortable_key, sortable_key, SortableSummaryIndex};
pub use store::{SummaryRef, SummaryStore};
pub use system::{
    run_experiment, run_experiment_on, run_experiment_traced, ExperimentConfig, TracedExperiment,
};
