//! # dsi-sketch — mergeable sliding-window sketches
//!
//! ECM-sketches (Count-Min over exponential histograms) for the
//! middleware's third query family: distributed windowed aggregates.
//! Every per-node sketch built from the same [`SketchParams`] hashes
//! items identically, so partial sketches merge algebraically up the
//! multicast tree and the root pays one small message per subtree
//! instead of one per owner.
//!
//! * [`hash`] — deterministic seeded row hashing (no process entropy);
//! * [`eh`] — bounded-memory exponential-histogram window counters;
//! * [`ecm`] — the `d × w` sketch grid, its ε-δ [`ErrorBound`], and the
//!   coverage→bound widening used by degraded notifications.
//!
//! See DESIGN.md §15 for the bound math and the merge error analysis.

#![warn(missing_docs)]

pub mod ecm;
pub mod eh;
pub mod hash;

pub use ecm::{EcmSketch, ErrorBound, SketchDims, SketchParams};
pub use eh::ExpHistogram;
