//! Exponential-histogram counters for sliding-window counts.
//!
//! One [`ExpHistogram`] approximates "how many events fell in the window
//! `(now - W, now]`" from a bounded list of time-stamped buckets (Datar,
//! Gionis, Indyk, Motwani). Buckets are kept time-sorted, oldest first,
//! under the invariant that every bucket produced by a merge counts at
//! most `max(2, S/k)` events, where `S` is the number of strictly newer
//! events — so the straddling oldest bucket can misattribute at most
//! `1 + S/(2k)` events, a relative error of `~1/(2k)` plus one event.
//!
//! Storage is preallocated at construction (`cap ≈ 2k·34` buckets, enough
//! for canonical histograms up to ~e³³ events), so steady-state
//! [`ExpHistogram::insert`] never touches the heap: when the buffer
//! fills, an in-place compress pass restores the invariant. Only
//! [`ExpHistogram::merge_from`] allocates (a merge scratch), and merges
//! happen at the notification cadence, not on the ingest hot path.

/// One bucket: `count` events, the newest of which arrived at `end_ms`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Bucket {
    count: u64,
    end_ms: u64,
}

/// Preallocated bucket slots per `k`: supports canonical histograms of up
/// to `~2k·ln(N)` buckets for any realistic window population `N`.
const LEVEL_SLOTS: usize = 34;

/// A sliding-window event counter with bounded memory and `~1/(2k)`
/// relative error.
#[derive(Debug)]
pub struct ExpHistogram {
    /// Inverse relative-error knob: larger `k`, more buckets, less error.
    k: u64,
    /// Window width in milliseconds; the window is `(now - W, now]`.
    window_ms: u64,
    /// Compress trigger; the bucket vector is preallocated to this.
    cap: usize,
    /// Time-sorted buckets, oldest first.
    buckets: Vec<Bucket>,
}

impl Clone for ExpHistogram {
    /// Clones preserve the *capacity*, not just the contents: a derived
    /// clone would start the copy with `len`-sized storage (Vec::clone
    /// allocates exactly `len`), and the first inserts into a cloned
    /// sketch replica would regrow it — breaking the zero-alloc ingest
    /// contract for every histogram built via `vec![cell; n]`.
    // dsilint: allow(hot-path-alloc, a clone constructs the copy's buckets once — replica setup and merge cadence, never the steady-state tick; nominal .clone resolution aliases this with Vec::clone)
    fn clone(&self) -> Self {
        let mut buckets = Vec::with_capacity(self.cap.max(self.buckets.len()));
        buckets.extend_from_slice(&self.buckets);
        ExpHistogram { k: self.k, window_ms: self.window_ms, cap: self.cap, buckets }
    }
}

impl ExpHistogram {
    /// New empty counter for a `window_ms` sliding window with inverse
    /// error knob `k` (relative error `~1/(2k)` plus one event).
    pub fn new(k: u64, window_ms: u64) -> Self {
        let k = k.max(1);
        let cap = 2 * (k as usize) * LEVEL_SLOTS + 4;
        ExpHistogram { k, window_ms, cap, buckets: Vec::with_capacity(cap) }
    }

    /// The window width this counter answers for.
    pub fn window_ms(&self) -> u64 {
        self.window_ms
    }

    /// The inverse error knob `k`.
    pub fn k(&self) -> u64 {
        self.k
    }

    /// Number of live (possibly expired-but-unreclaimed) buckets.
    pub fn buckets_len(&self) -> usize {
        self.buckets.len()
    }

    /// Records one event at `at_ms`. Timestamps must be non-decreasing
    /// across calls (a late timestamp is clamped forward to the newest
    /// seen, erring toward keeping the event in the window longer).
    #[inline]
    pub fn insert(&mut self, at_ms: u64) {
        let at_ms = match self.buckets.last() {
            Some(b) => at_ms.max(b.end_ms),
            None => at_ms,
        };
        if self.buckets.len() >= self.cap {
            self.compress(at_ms);
            debug_assert!(
                self.buckets.len() < self.cap,
                "compress must free bucket slots (k={}, cap={})",
                self.k,
                self.cap
            );
        }
        self.buckets.push(Bucket { count: 1, end_ms: at_ms });
    }

    /// Drops expired buckets and re-merges the rest in place, restoring
    /// the `count ≤ max(2, S/k)` invariant with as few buckets as the
    /// greedy right-to-left pass allows. `O(len)`.
    fn compress(&mut self, now_ms: u64) {
        self.drop_expired(now_ms);
        let len = self.buckets.len();
        if len < 2 {
            return;
        }
        // Right-aligned rewrite: walk from the newest bucket toward the
        // oldest, folding each older bucket into the pending one whenever
        // the combined count keeps the invariant; flushed buckets land
        // right-aligned at `write`, and the leftover hole is drained once.
        let mut write = len;
        let mut newer_sum: u64 = 0; // events strictly newer than `pending`
        let mut pending = self.buckets[len - 1];
        let mut read = len - 1;
        while read > 0 {
            read -= 1;
            let older = self.buckets[read];
            let combined = older.count + pending.count;
            if combined <= 2.max(newer_sum / self.k) {
                // Keep the newer end time: the merged bucket errs toward
                // staying in the window, like the classic EH carry.
                pending = Bucket { count: combined, end_ms: pending.end_ms };
            } else {
                write -= 1;
                self.buckets[write] = pending;
                newer_sum += pending.count;
                pending = older;
            }
        }
        write -= 1;
        self.buckets[write] = pending;
        self.buckets.drain(..write);
    }

    /// Estimated number of events in `(now_ms - W, now_ms]`.
    ///
    /// Sums the unexpired buckets, counting the oldest one half — it may
    /// straddle the window edge — unless it is a unit bucket, whose end
    /// time pins it inside the window exactly. Non-mutating; expired
    /// buckets are skipped, not reclaimed.
    pub fn estimate(&self, now_ms: u64) -> f64 {
        let cutoff = now_ms as i64 - self.window_ms as i64;
        let live_from = self.buckets.partition_point(|b| (b.end_ms as i64) <= cutoff);
        let live = &self.buckets[live_from..];
        let (oldest, rest) = match live.split_first() {
            Some(split) => split,
            None => return 0.0,
        };
        let newer: u64 = rest.iter().map(|b| b.count).sum();
        let edge = if oldest.count > 1 { oldest.count as f64 / 2.0 } else { 1.0 };
        newer as f64 + edge
    }

    /// Worst-case additive error of [`Self::estimate`] against the exact
    /// window count `N`: `1 + N/(2k)`.
    pub fn error_bound(&self, window_count: f64) -> f64 {
        1.0 + window_count / (2.0 * self.k as f64)
    }

    /// True if no unexpired bucket remains at `now_ms`.
    pub fn is_empty_at(&self, now_ms: u64) -> bool {
        let cutoff = now_ms as i64 - self.window_ms as i64;
        self.buckets.iter().all(|b| (b.end_ms as i64) <= cutoff)
    }

    /// Folds `other`'s buckets into `self` (same `k` and window
    /// required). Allocates a merge scratch — notification-cadence only,
    /// never the ingest path.
    ///
    /// Buckets from the two lineages are interleaved by end time but NOT
    /// re-merged (unless the union overflows capacity): keeping each
    /// lineage's buckets intact means each contributes at most its own
    /// single straddling bucket, so a merge of `C` histograms errs by at
    /// most `C + N/(2k)` — the relative part does not grow.
    ///
    /// # Panics
    /// If the two histograms have different `k` or window widths.
    pub fn merge_from(&mut self, other: &ExpHistogram, now_ms: u64) {
        assert_eq!(self.k, other.k, "cannot merge histograms with different k");
        assert_eq!(self.window_ms, other.window_ms, "cannot merge different windows");
        if other.buckets.is_empty() {
            self.drop_expired(now_ms);
            return;
        }
        let mut merged: Vec<Bucket> = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (self.buckets.iter().peekable(), other.buckets.iter().peekable());
        loop {
            match (a.peek(), b.peek()) {
                (Some(x), Some(y)) => {
                    // Tie-break equal end times by count so the merged
                    // bucket list depends only on the *multiset* of input
                    // buckets — merging is then exactly commutative and
                    // associative, not just within-bound.
                    if x.end_ms < y.end_ms || (x.end_ms == y.end_ms && x.count <= y.count) {
                        merged.push(**x);
                        a.next();
                    } else {
                        merged.push(**y);
                        b.next();
                    }
                }
                (Some(x), None) => {
                    merged.push(**x);
                    a.next();
                }
                (None, Some(y)) => {
                    merged.push(**y);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
        self.drop_expired(now_ms);
        if self.buckets.len() > self.cap {
            // Overflow fallback: re-canonicalize across lineages. This can
            // combine straddle-able buckets and so costs a little extra
            // absolute slack, but it is unreachable at the fan-ins the
            // middleware merges (per-node bucket lists are far below cap).
            self.compress(now_ms);
        }
        self.buckets.reserve(self.cap.saturating_sub(self.buckets.len()));
    }

    /// Drops the expired prefix of the time-sorted bucket list.
    fn drop_expired(&mut self, now_ms: u64) {
        let cutoff = now_ms as i64 - self.window_ms as i64;
        let live_from = self.buckets.partition_point(|b| (b.end_ms as i64) <= cutoff);
        self.buckets.drain(..live_from);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force sliding-window reference.
    fn exact(times: &[u64], window: u64, now: u64) -> u64 {
        times.iter().filter(|&&t| (t as i64) > now as i64 - window as i64 && t <= now).count()
            as u64
    }

    #[test]
    fn unit_history_is_exact() {
        // Few events, no merges forced: the estimate should be exact.
        let mut eh = ExpHistogram::new(4, 1000);
        let times = [10u64, 20, 400, 990, 1000];
        for &t in &times {
            eh.insert(t);
        }
        for now in [1000u64, 1010, 1400, 2500] {
            assert_eq!(eh.estimate(now), exact(&times, 1000, now) as f64, "now={now}");
        }
    }

    #[test]
    fn long_history_stays_within_bound_and_capacity() {
        let window = 10_000u64;
        for k in [1u64, 2, 5, 16] {
            let mut eh = ExpHistogram::new(k, window);
            let cap = eh.cap;
            let mut times = Vec::new();
            for i in 0..50_000u64 {
                let t = i * 3;
                eh.insert(t);
                times.push(t);
                assert!(eh.buckets_len() <= cap, "k={k}: bucket list exceeded capacity");
            }
            let now = 50_000 * 3;
            let n = exact(&times, window, now) as f64;
            let err = (eh.estimate(now) - n).abs();
            assert!(
                err <= eh.error_bound(n) + 1e-9,
                "k={k}: error {err} > bound {} (n={n})",
                eh.error_bound(n)
            );
        }
    }

    #[test]
    fn everything_expires() {
        let mut eh = ExpHistogram::new(3, 100);
        for t in 0..500u64 {
            eh.insert(t);
        }
        assert!(eh.estimate(10_000) == 0.0);
        assert!(eh.is_empty_at(10_000));
    }

    #[test]
    fn merge_matches_union_within_bound() {
        let window = 5_000u64;
        let k = 8u64;
        let mut a = ExpHistogram::new(k, window);
        let mut b = ExpHistogram::new(k, window);
        let mut union = Vec::new();
        for i in 0..4_000u64 {
            let t = i * 2;
            if i % 3 == 0 {
                a.insert(t);
            } else {
                b.insert(t);
            }
            union.push(t);
        }
        let now = 8_000u64;
        a.merge_from(&b, now);
        let n = exact(&union, window, now) as f64;
        let err = (a.estimate(now) - n).abs();
        // One compress over the union: same invariant, same bound shape;
        // allow both halves' straddling slack.
        assert!(err <= 2.0 * a.error_bound(n), "merged error {err} vs n={n}");
    }

    #[test]
    fn merge_requires_compatible_shape() {
        let a = ExpHistogram::new(4, 1000);
        let b = ExpHistogram::new(5, 1000);
        let result = std::panic::catch_unwind(move || {
            let mut a = a;
            a.merge_from(&b, 0);
        });
        assert!(result.is_err(), "k mismatch must panic");
    }

    #[test]
    fn clones_preserve_preallocated_capacity() {
        // A derived Vec clone would size the copy to `len`, and cloned
        // replicas (every grid cell built via `vec![cell; n]`) would
        // regrow on their first inserts — on the ingest hot path.
        let mut eh = ExpHistogram::new(5, 5_000);
        for t in 0..10u64 {
            eh.insert(t * 100);
        }
        let clone = eh.clone();
        assert_eq!(clone.buckets, eh.buckets, "clone must copy contents");
        assert!(
            clone.buckets.capacity() >= clone.cap,
            "clone must preallocate the compress-trigger capacity"
        );
        let vec_cap = {
            let mut c = clone;
            let cap0 = c.buckets.capacity();
            for t in 0..200_000u64 {
                c.insert(t);
            }
            assert_eq!(c.buckets.capacity(), cap0, "cloned histogram must never regrow");
            cap0
        };
        assert!(vec_cap >= eh.cap);
    }

    #[test]
    fn inserts_after_fill_do_not_allocate_beyond_capacity() {
        let mut eh = ExpHistogram::new(2, 1_000);
        let vec_cap = eh.buckets.capacity();
        for t in 0..200_000u64 {
            eh.insert(t);
        }
        assert_eq!(eh.buckets.capacity(), vec_cap, "steady-state insert must never regrow");
    }
}
