//! Deterministic seeded hashing for the Count-Min rows.
//!
//! Every hash is a pure function of `(seed, row, item)` — no `RandomState`,
//! no process entropy (dsilint D02) — so two data centers constructing a
//! sketch from the same [`crate::SketchParams`] bucket every item
//! identically, which is what makes the sketches mergeable counter-wise.

/// SplitMix64 finalizer: a full-avalanche 64-bit mixer.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Per-row hash seed: decorrelates the `d` Count-Min rows from one shared
/// sketch seed.
#[inline]
pub fn row_seed(seed: u64, row: usize) -> u64 {
    mix64(seed ^ mix64(row as u64 + 1))
}

/// Column of `item` in row `row` of a width-`width` Count-Min grid.
#[inline]
pub fn bucket(seed: u64, row: usize, item: u64, width: usize) -> usize {
    debug_assert!(width > 0, "Count-Min width must be positive");
    // Multiply-shift over the mixed value: the high bits carry the most
    // avalanche, so map them to the column range instead of `% width`.
    let h = mix64(item ^ row_seed(seed, row));
    ((h as u128 * width as u128) >> 64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_is_deterministic_and_in_range() {
        for item in 0..1000u64 {
            for row in 0..4 {
                let a = bucket(7, row, item, 37);
                let b = bucket(7, row, item, 37);
                assert_eq!(a, b);
                assert!(a < 37);
            }
        }
    }

    #[test]
    fn rows_are_decorrelated() {
        // Two rows agreeing on every item would defeat the min-of-rows
        // estimate; count collisions over a small universe.
        let mut agree = 0usize;
        for item in 0..512u64 {
            if bucket(42, 0, item, 64) == bucket(42, 1, item, 64) {
                agree += 1;
            }
        }
        // Expected ~512/64 = 8 agreements for independent hashes.
        assert!(agree < 40, "rows look correlated: {agree}/512 collisions");
    }

    #[test]
    fn seeds_change_the_layout() {
        let moved = (0..256u64).filter(|&i| bucket(1, 0, i, 64) != bucket(2, 0, i, 64)).count();
        assert!(moved > 128, "changing the seed must reshuffle most items, moved {moved}");
    }
}
