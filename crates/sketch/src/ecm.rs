//! ECM-sketches: a Count-Min grid whose counters are exponential
//! histograms, answering sliding-window frequency questions.
//!
//! Layout (Papapetrou, Garofalakis & Deligiannakis): `d` hash rows of `w`
//! [`ExpHistogram`] counters plus one dedicated total-count histogram.
//! An update hashes the item into one counter per row and records the
//! timestamp in each; a query reads the estimated window count of the
//! hashed counters and takes the row-wise minimum.
//!
//! The ε split: the Count-Min collision excess is at most `(e/w)·N ≤
//! (ε/2)·N` with probability `1 - e^{-d} ≥ 1 - δ`, and each histogram
//! misreads its own counter by at most `1 + c/(2k) ≤ 1 + (ε/2)·N`, so
//! with `w = ⌈2e/ε⌉`, `d = ⌈ln(1/δ)⌉`, `k = ⌈1/ε⌉` a point estimate is
//! within `ε·N + C` of exact with probability `≥ 1 - δ`, where `N` is
//! the total window count and `C` the number of merged components
//! ([`EcmSketch::components`]; each component contributes one straddling
//! bucket of absolute slack).

use crate::eh::ExpHistogram;
use crate::hash::bucket;

/// Construction parameters shared by every mergeable replica of a sketch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SketchParams {
    /// Target relative error ε of window estimates.
    pub eps: f64,
    /// Failure probability δ of the Count-Min rows.
    pub delta: f64,
    /// Sliding-window width in milliseconds.
    pub window_ms: u64,
    /// Hash seed; replicas must share it to be counter-aligned.
    pub seed: u64,
}

/// An ε-δ accuracy contract carried alongside estimates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorBound {
    /// Relative error at full coverage.
    pub eps: f64,
    /// Failure probability.
    pub delta: f64,
}

impl ErrorBound {
    /// The bound actually advertised when only a `coverage` fraction of
    /// the data population contributed: the base ε plus the uncovered
    /// fraction. Monotone — the bound only widens as coverage drops, and
    /// equals the base ε at full coverage.
    pub fn effective_eps(&self, coverage: f64) -> f64 {
        self.eps + (1.0 - coverage.clamp(0.0, 1.0))
    }
}

/// Explicit grid dimensions, used by tests to under-size a sketch on
/// purpose (the ninth-oracle negative control).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SketchDims {
    /// Counters per row.
    pub width: usize,
    /// Hash rows.
    pub depth: usize,
    /// Per-histogram inverse error knob.
    pub k: u64,
}

impl SketchDims {
    /// The dimensions [`EcmSketch::from_bound`] derives from `(ε, δ)`.
    pub fn for_bound(eps: f64, delta: f64) -> SketchDims {
        let eps = eps.clamp(1e-3, 1.0);
        let delta = delta.clamp(1e-6, 0.5);
        let width = (2.0 * std::f64::consts::E / eps).ceil() as usize;
        let depth = ((1.0 / delta).ln().ceil() as usize).max(1);
        let k = (1.0 / eps).ceil() as u64;
        SketchDims { width, depth, k }
    }
}

/// A mergeable sliding-window Count-Min sketch over exponential
/// histograms.
#[derive(Debug, Clone)]
pub struct EcmSketch {
    params: SketchParams,
    dims: SketchDims,
    /// Row-major `d × w` counter grid.
    grid: Vec<ExpHistogram>,
    /// Dedicated total-count histogram (scale of the error bound).
    total: ExpHistogram,
    /// Number of per-node sketches folded into this one (≥ 1).
    components: u32,
}

impl EcmSketch {
    /// Builds a sketch sized for the `(ε, δ)` contract.
    pub fn from_bound(eps: f64, delta: f64, window_ms: u64, seed: u64) -> EcmSketch {
        let dims = SketchDims::for_bound(eps, delta);
        EcmSketch::with_dims(SketchParams { eps, delta, window_ms, seed }, dims)
    }

    /// Builds a sketch with explicit dimensions while still *advertising*
    /// the `params` contract. Undersized dimensions make the advertised
    /// bound a lie — exactly what the accuracy oracle's negative control
    /// injects.
    pub fn with_dims(params: SketchParams, dims: SketchDims) -> EcmSketch {
        let dims = SketchDims { width: dims.width.max(1), depth: dims.depth.max(1), k: dims.k };
        let cell = ExpHistogram::new(dims.k, params.window_ms);
        let grid = vec![cell.clone(); dims.width * dims.depth];
        EcmSketch { params, dims, grid, total: cell, components: 1 }
    }

    /// The construction parameters (shared by mergeable replicas).
    pub fn params(&self) -> SketchParams {
        self.params
    }

    /// The grid dimensions.
    pub fn dims(&self) -> SketchDims {
        self.dims
    }

    /// The advertised accuracy contract.
    pub fn bound(&self) -> ErrorBound {
        ErrorBound { eps: self.params.eps, delta: self.params.delta }
    }

    /// How many per-node sketches were folded into this one.
    pub fn components(&self) -> u32 {
        self.components
    }

    /// True if `other` was built from the same parameters and dimensions,
    /// i.e. its counters align with ours cell-for-cell.
    pub fn compatible(&self, other: &EcmSketch) -> bool {
        self.params == other.params && self.dims == other.dims
    }

    /// Records one occurrence of `item` at `at_ms`. Allocation-free in
    /// steady state: every histogram's bucket storage is preallocated.
    #[inline]
    pub fn update(&mut self, item: u64, at_ms: u64) {
        let w = self.dims.width;
        for row in 0..self.dims.depth {
            let col = bucket(self.params.seed, row, item, w);
            self.grid[row * w + col].insert(at_ms);
        }
        self.total.insert(at_ms);
    }

    /// Estimated total number of events in the window at `now_ms`.
    pub fn total_estimate(&self, now_ms: u64) -> f64 {
        self.total.estimate(now_ms)
    }

    /// Estimated window frequency of `item` at `now_ms`: the row-wise
    /// minimum of the hashed counters.
    pub fn point_estimate(&self, item: u64, now_ms: u64) -> f64 {
        let w = self.dims.width;
        let mut best = f64::INFINITY;
        for row in 0..self.dims.depth {
            let col = bucket(self.params.seed, row, item, w);
            let est = self.grid[row * w + col].estimate(now_ms);
            if est < best {
                best = est;
            }
        }
        if best.is_finite() {
            best
        } else {
            0.0
        }
    }

    /// Estimated self-join size (second frequency moment, `Σ f_i²`) of
    /// the window at `now_ms`: the row-wise minimum of the sum of squared
    /// counters. The error scale here is `N²` rather than `N` — see
    /// [`Self::self_join_error_bound`].
    pub fn self_join_size(&self, now_ms: u64) -> f64 {
        let w = self.dims.width;
        let mut best = f64::INFINITY;
        for row in 0..self.dims.depth {
            let sum: f64 =
                self.grid[row * w..(row + 1) * w].iter().map(|c| c.estimate(now_ms).powi(2)).sum();
            if sum < best {
                best = sum;
            }
        }
        if best.is_finite() {
            best
        } else {
            0.0
        }
    }

    /// Worst-case additive error of [`Self::self_join_size`] given the
    /// window total `n`: collision cross-terms contribute up to `ε·n²`
    /// and the histogram noise up to `(2 + ε·n)·(n + C·w)` more — folded
    /// conservatively into `2ε·n² + 3n + 3·C·w`.
    pub fn self_join_error_bound(&self, n: f64, components: f64) -> f64 {
        2.0 * self.params.eps * n * n + 3.0 * n + 3.0 * components * self.dims.width as f64
    }

    /// Items from `universe` whose estimated window frequency is at least
    /// `phi` times the estimated total. Allocates the result vector —
    /// query-time only.
    pub fn heavy_hitters(&self, universe: &[u64], phi: f64, now_ms: u64) -> Vec<(u64, f64)> {
        let threshold = phi.clamp(0.0, 1.0) * self.total_estimate(now_ms);
        universe
            .iter()
            .filter_map(|&item| {
                let est = self.point_estimate(item, now_ms);
                if est >= threshold && est > 0.0 {
                    Some((item, est))
                } else {
                    None
                }
            })
            .collect()
    }

    /// Folds `other` into `self`, counter by counter. Estimates over the
    /// merged sketch cover the union of both windows; the relative ε is
    /// unchanged and the absolute slack grows to the new component count.
    ///
    /// Returns `Err` (leaving `self` untouched) if the sketches were not
    /// built from the same parameters and dimensions.
    pub fn merge_from(&mut self, other: &EcmSketch, now_ms: u64) -> Result<(), &'static str> {
        if !self.compatible(other) {
            return Err("incompatible sketch parameters");
        }
        for (mine, theirs) in self.grid.iter_mut().zip(other.grid.iter()) {
            mine.merge_from(theirs, now_ms);
        }
        self.total.merge_from(&other.total, now_ms);
        self.components += other.components;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_count(events: &[(u64, u64)], item: u64, window: u64, now: u64) -> f64 {
        events
            .iter()
            .filter(|&&(i, t)| i == item && (t as i64) > now as i64 - window as i64 && t <= now)
            .count() as f64
    }

    fn exact_total(events: &[(u64, u64)], window: u64, now: u64) -> f64 {
        events.iter().filter(|&&(_, t)| (t as i64) > now as i64 - window as i64 && t <= now).count()
            as f64
    }

    /// Deterministic pseudo-stream: item ids with a skewed repeat pattern.
    fn stream(n: u64, salt: u64) -> Vec<(u64, u64)> {
        (0..n)
            .map(|i| {
                let h = crate::hash::mix64(i ^ salt);
                let item = (h % 16).min(h % 7); // skew toward small ids
                (item, i * 5)
            })
            .collect()
    }

    #[test]
    fn dims_scale_with_the_contract() {
        let loose = SketchDims::for_bound(0.5, 0.3);
        let tight = SketchDims::for_bound(0.05, 0.01);
        assert!(tight.width > loose.width);
        assert!(tight.depth >= loose.depth);
        assert!(tight.k > loose.k);
    }

    #[test]
    fn point_estimates_respect_the_bound() {
        let window = 2_000u64;
        let events = stream(3_000, 99);
        let eps = 0.1;
        let mut sk = EcmSketch::from_bound(eps, 0.05, window, 7);
        for &(item, t) in &events {
            sk.update(item, t);
        }
        let now = 3_000 * 5;
        let n = exact_total(&events, window, now);
        for item in 0..16u64 {
            let est = sk.point_estimate(item, now);
            let truth = exact_count(&events, item, window, now);
            assert!(
                est + 1e-9 >= truth - (eps * n + 1.0),
                "item {item}: est {est} far below truth {truth}"
            );
            assert!(
                est <= truth + eps * n + 1.0 + 1e-9,
                "item {item}: est {est} far above truth {truth} (n={n})"
            );
        }
    }

    #[test]
    fn total_tracks_the_window() {
        let window = 1_000u64;
        let events = stream(2_000, 3);
        let mut sk = EcmSketch::from_bound(0.1, 0.05, window, 1);
        for &(item, t) in &events {
            sk.update(item, t);
        }
        let now = 2_000 * 5;
        let n = exact_total(&events, window, now);
        assert!((sk.total_estimate(now) - n).abs() <= 0.1 * n + 1.0);
    }

    #[test]
    fn merge_is_cellwise_and_counts_components() {
        let mut a = EcmSketch::from_bound(0.2, 0.1, 5_000, 11);
        let mut b = EcmSketch::from_bound(0.2, 0.1, 5_000, 11);
        for &(item, t) in &stream(500, 1) {
            a.update(item, t);
        }
        for &(item, t) in &stream(500, 2) {
            b.update(item, t);
        }
        assert!(a.merge_from(&b, 2_500).is_ok());
        assert_eq!(a.components(), 2);
        let incompatible = EcmSketch::from_bound(0.2, 0.1, 5_000, 12);
        assert!(a.merge_from(&incompatible, 2_500).is_err(), "seed mismatch must refuse");
    }

    #[test]
    fn self_join_size_matches_exact_on_small_streams() {
        let window = 10_000u64;
        let events = stream(400, 5);
        let mut sk = EcmSketch::from_bound(0.05, 0.01, window, 3);
        for &(item, t) in &events {
            sk.update(item, t);
        }
        let now = 400 * 5;
        let n = exact_total(&events, window, now);
        let exact: f64 = (0..16u64).map(|i| exact_count(&events, i, window, now).powi(2)).sum();
        let est = sk.self_join_size(now);
        assert!(
            (est - exact).abs() <= sk.self_join_error_bound(n, 1.0),
            "est {est} vs exact {exact} (n={n})"
        );
    }

    #[test]
    fn heavy_hitters_surface_the_skewed_head() {
        let window = u64::MAX / 2;
        let events = stream(2_000, 17);
        let mut sk = EcmSketch::from_bound(0.05, 0.01, window, 9);
        for &(item, t) in &events {
            sk.update(item, t);
        }
        let now = 2_000 * 5;
        let universe: Vec<u64> = (0..16).collect();
        let hh = sk.heavy_hitters(&universe, 0.1, now);
        assert!(!hh.is_empty(), "skewed stream must have a heavy head");
        for &(item, est) in &hh {
            let truth = exact_count(&events, item, window, now);
            assert!(truth > 0.0, "item {item} (est {est}) never occurred");
        }
    }

    #[test]
    fn effective_eps_widens_with_lost_coverage() {
        let bound = ErrorBound { eps: 0.1, delta: 0.05 };
        assert!((bound.effective_eps(1.0) - 0.1).abs() < 1e-12);
        let mut last = 0.0;
        for cov in [1.0, 0.9, 0.5, 0.1, 0.0] {
            let eff = bound.effective_eps(cov);
            assert!(eff >= last, "bound must widen monotonically as coverage drops");
            last = eff;
        }
        assert!((bound.effective_eps(0.0) - 1.1).abs() < 1e-12);
    }
}
