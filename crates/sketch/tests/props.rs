//! Property-based tests of the sketch algebra (mirrors the
//! `SummaryStore`↔model pattern in `crates/core/tests/props.rs`): merging
//! is query-equivalent to sketching the concatenated stream, exactly
//! commutative and associative, and window expiry agrees with a
//! brute-force sliding-window model within the advertised bound.

use dsi_sketch::{EcmSketch, ExpHistogram};
use proptest::prelude::*;

const WINDOW_MS: u64 = 2_000;
const EPS: f64 = 0.2;
const DELTA: f64 = 0.1;
const SEED: u64 = 42;

/// Random event stream: (item, inter-arrival gap ms) pairs, materialized
/// into monotone timestamps starting at `t0`.
fn events(len: usize) -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::vec((0u64..8, 0u64..120), 0..len)
}

fn materialize(evs: &[(u64, u64)], t0: u64) -> Vec<(u64, u64)> {
    let mut t = t0;
    evs.iter()
        .map(|&(item, gap)| {
            t += gap;
            (item, t)
        })
        .collect()
}

fn sketch_of(evs: &[(u64, u64)]) -> EcmSketch {
    let mut sk = EcmSketch::from_bound(EPS, DELTA, WINDOW_MS, SEED);
    for &(item, t) in evs {
        sk.update(item, t);
    }
    sk
}

/// Brute-force exact window count of `item` (`u64::MAX` = any item).
fn exact(evs: &[(u64, u64)], item: u64, now: u64) -> f64 {
    evs.iter()
        .filter(|&&(i, t)| {
            (item == u64::MAX || i == item)
                && (t as i64) > now as i64 - WINDOW_MS as i64
                && t <= now
        })
        .count() as f64
}

/// Time-sorted union of two event streams (stable on ties).
fn union(a: &[(u64, u64)], b: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut all: Vec<(u64, u64)> = a.iter().chain(b.iter()).copied().collect();
    all.sort_by_key(|&(_, t)| t);
    all
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `merge(sk(A), sk(B))` answers like `sk(A ++ B)` within the merged
    /// bound: both are within `ε·N + C` of exact, so they are within
    /// `2·(ε·N + C)` of each other — asserted against exact directly,
    /// which is the stronger statement.
    #[test]
    fn merge_is_query_equivalent_to_concatenation(
        a in events(120),
        b in events(120),
        probe in 0u64..8,
    ) {
        let a = materialize(&a, 0);
        let b = materialize(&b, 0);
        let all = union(&a, &b);
        let now = all.iter().map(|&(_, t)| t).max().unwrap_or(0) + 1;

        let mut merged = sketch_of(&a);
        merged.merge_from(&sketch_of(&b), now).expect("same params must merge");
        let direct = sketch_of(&all);

        let n = exact(&all, u64::MAX, now);
        let slack = EPS * n + merged.components() as f64 + 1e-9;
        for (label, est) in [
            ("merged point", merged.point_estimate(probe, now)),
            ("direct point", direct.point_estimate(probe, now)),
        ] {
            let truth = exact(&all, probe, now);
            prop_assert!(
                (est - truth).abs() <= slack,
                "{label}: |{est} - {truth}| > {slack} (n={n})"
            );
        }
        let total_truth = n;
        prop_assert!((merged.total_estimate(now) - total_truth).abs() <= slack);
        prop_assert!((direct.total_estimate(now) - total_truth).abs() <= slack);
    }

    /// Merging is exactly commutative: the merged bucket lists depend
    /// only on the multiset of input buckets.
    #[test]
    fn merge_commutes(a in events(100), b in events(100), probe in 0u64..8) {
        let a = materialize(&a, 0);
        let b = materialize(&b, 50);
        let now = 20_000u64;

        let mut ab = sketch_of(&a);
        ab.merge_from(&sketch_of(&b), now).expect("compatible");
        let mut ba = sketch_of(&b);
        ba.merge_from(&sketch_of(&a), now).expect("compatible");

        prop_assert_eq!(ab.components(), ba.components());
        for q in [0, now / 2, now] {
            prop_assert_eq!(ab.total_estimate(q), ba.total_estimate(q), "total at {}", q);
            prop_assert_eq!(
                ab.point_estimate(probe, q), ba.point_estimate(probe, q), "point at {}", q
            );
        }
    }

    /// Merging is exactly associative for the same reason.
    #[test]
    fn merge_associates(a in events(80), b in events(80), c in events(80), probe in 0u64..8) {
        let a = materialize(&a, 0);
        let b = materialize(&b, 33);
        let c = materialize(&c, 67);
        let now = 20_000u64;

        let mut left = sketch_of(&a);
        left.merge_from(&sketch_of(&b), now).expect("compatible");
        left.merge_from(&sketch_of(&c), now).expect("compatible");

        let mut right_tail = sketch_of(&b);
        right_tail.merge_from(&sketch_of(&c), now).expect("compatible");
        let mut right = sketch_of(&a);
        right.merge_from(&right_tail, now).expect("compatible");

        prop_assert_eq!(left.components(), 3);
        prop_assert_eq!(right.components(), 3);
        prop_assert_eq!(left.total_estimate(now), right.total_estimate(now));
        prop_assert_eq!(left.point_estimate(probe, now), right.point_estimate(probe, now));
        prop_assert_eq!(left.self_join_size(now), right.self_join_size(now));
    }

    /// Window expiry agrees with the brute-force sliding-window model at
    /// every probe time, within the advertised bound.
    #[test]
    fn expiry_matches_brute_force_model(
        evs in events(250),
        probes in prop::collection::vec(0u64..40_000, 1..12),
    ) {
        let evs = materialize(&evs, 0);
        let sk = sketch_of(&evs);
        let horizon = evs.iter().map(|&(_, t)| t).max().unwrap_or(0);
        for &p in &probes {
            // Only probe at or after the last insert: the sketch clamps
            // late timestamps forward, the model does not.
            let now = horizon + p;
            let n = exact(&evs, u64::MAX, now);
            let slack = EPS * n + 1.0 + 1e-9;
            prop_assert!(
                (sk.total_estimate(now) - n).abs() <= slack,
                "total at now={now}: {} vs exact {n}", sk.total_estimate(now)
            );
            for item in 0..8u64 {
                let truth = exact(&evs, item, now);
                let est = sk.point_estimate(item, now);
                prop_assert!(
                    (est - truth).abs() <= slack,
                    "item {item} at now={now}: {est} vs exact {truth} (n={n})"
                );
            }
        }
    }

    /// The raw histogram also tracks the model: insert-only, no sketch
    /// hashing in the way.
    #[test]
    fn histogram_tracks_sliding_count(gaps in prop::collection::vec(0u64..90, 0..300)) {
        let mut eh = ExpHistogram::new(8, WINDOW_MS);
        let mut times = Vec::new();
        let mut t = 0u64;
        for &g in &gaps {
            t += g;
            eh.insert(t);
            times.push(t);
        }
        for now in [t, t + WINDOW_MS / 2, t + 2 * WINDOW_MS] {
            let n = times
                .iter()
                .filter(|&&x| (x as i64) > now as i64 - WINDOW_MS as i64 && x <= now)
                .count() as f64;
            prop_assert!((eh.estimate(now) - n).abs() <= eh.error_bound(n) + 1e-9);
        }
    }
}
