//! # dsi-streamgen — workload substrate
//!
//! Every data source the paper's evaluation uses, synthesized
//! deterministically from a seed:
//!
//! * [`random_walk::RandomWalk`] — the §V synthetic stream model;
//! * [`stocks`] — S&P 500-style sector-correlated market data (substitute
//!   for the dead dataset link; see DESIGN.md §5);
//! * [`hostload`] — CMU Host Load-like AR(1)+burst traces (Fig. 3(b)
//!   substitute);
//! * [`queries`] — similarity / inner-product query workloads;
//! * [`seasonal`] — harmonic (diurnal) streams over drifting baselines;
//! * [`skew`] — adversarial skew: latent-factor correlated streams,
//!   Zipfian query popularity, multi-tenant quotas;
//! * [`config::WorkloadConfig`] — the Table I parameters.

#![warn(missing_docs)]

pub mod config;
pub mod hostload;
pub mod queries;
pub mod random_walk;
pub mod seasonal;
pub mod skew;
pub mod stocks;

pub use config::WorkloadConfig;
pub use hostload::{lag1_autocorrelation, HostLoad, HostLoadConfig};
pub use queries::{InnerProductQuerySpec, QueryWorkload, SimilarityQuerySpec};
pub use random_walk::RandomWalk;
pub use seasonal::{Harmonic, SeasonalStream};
pub use skew::{CorrelatedWalks, TenantLedger, TenantPolicy, ZipfSampler};
pub use stocks::{pearson, Market, MarketConfig, StockRecord};
