//! Synthetic CMU Host Load-like traces.
//!
//! The paper justifies its batching optimization with the "Fourier locality"
//! of summaries computed on the CMU Host Load dataset (Fig. 3(b)); the
//! original traces (Dinda, 1997) are no longer hosted. Host load is well
//! modeled as a strongly autocorrelated AR(1) base load with occasional
//! exponentially-decaying bursts (job arrivals), which reproduces the
//! clustered scatter of consecutive feature vectors the figure shows.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic host-load process.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HostLoadConfig {
    /// AR(1) coefficient; close to 1 gives the strong temporal correlation
    /// real host-load traces exhibit.
    pub ar_coeff: f64,
    /// Standard deviation of the AR innovation.
    pub noise: f64,
    /// Long-run mean load (in "runnable processes" units).
    pub mean_load: f64,
    /// Probability per sample of a new burst (job arrival).
    pub burst_prob: f64,
    /// Burst magnitude range.
    pub burst_mag: (f64, f64),
    /// Per-sample exponential decay of the burst component.
    pub burst_decay: f64,
}

impl Default for HostLoadConfig {
    fn default() -> Self {
        HostLoadConfig {
            ar_coeff: 0.98,
            noise: 0.03,
            mean_load: 0.6,
            burst_prob: 0.01,
            burst_mag: (0.3, 1.5),
            burst_decay: 0.95,
        }
    }
}

/// A synthetic host-load stream.
#[derive(Debug, Clone)]
pub struct HostLoad {
    cfg: HostLoadConfig,
    base: f64,
    burst: f64,
}

impl HostLoad {
    /// Creates a generator at the long-run mean.
    pub fn new(cfg: HostLoadConfig) -> Self {
        assert!(
            (0.0..1.0).contains(&cfg.ar_coeff.abs()) || cfg.ar_coeff.abs() < 1.0,
            "AR coefficient must be stable (|a| < 1)"
        );
        assert!(cfg.noise >= 0.0, "noise must be non-negative");
        let base = cfg.mean_load;
        HostLoad { cfg, base, burst: 0.0 }
    }

    /// Default-configured generator.
    pub fn standard() -> Self {
        HostLoad::new(HostLoadConfig::default())
    }

    /// Next load sample (non-negative).
    pub fn next_value<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        let innovation: f64 = rng.gen_range(-1.0..1.0) * self.cfg.noise * 1.732; // unit-ish var
        self.base =
            self.cfg.mean_load + self.cfg.ar_coeff * (self.base - self.cfg.mean_load) + innovation;
        self.burst *= self.cfg.burst_decay;
        if rng.gen_bool(self.cfg.burst_prob) {
            self.burst += rng.gen_range(self.cfg.burst_mag.0..=self.cfg.burst_mag.1);
        }
        (self.base + self.burst).max(0.0)
    }

    /// Generates `n` consecutive samples.
    pub fn take_values<R: Rng + ?Sized>(&mut self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.next_value(rng)).collect()
    }
}

/// Lag-1 autocorrelation of a series (used to assert the trace resembles
/// real host load, whose short-lag autocorrelation is near 1).
pub fn lag1_autocorrelation(xs: &[f64]) -> f64 {
    if xs.len() < 3 {
        return 0.0;
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    if var == 0.0 {
        return 0.0;
    }
    let cov = xs.windows(2).map(|w| (w[0] - mean) * (w[1] - mean)).sum::<f64>() / (n - 1.0);
    cov / var
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_are_non_negative() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut h = HostLoad::standard();
        for _ in 0..10_000 {
            assert!(h.next_value(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn strong_temporal_correlation() {
        let mut rng = StdRng::seed_from_u64(8);
        let xs = HostLoad::standard().take_values(&mut rng, 20_000);
        let rho = lag1_autocorrelation(&xs);
        assert!(rho > 0.9, "host load autocorrelation {rho} too weak");
    }

    #[test]
    fn bursts_appear() {
        let mut rng = StdRng::seed_from_u64(15);
        let xs = HostLoad::standard().take_values(&mut rng, 20_000);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let max = xs.iter().cloned().fold(0.0, f64::max);
        assert!(max > mean * 1.8, "no visible bursts (max {max}, mean {mean})");
    }

    #[test]
    fn mean_tracks_configuration() {
        let mut rng = StdRng::seed_from_u64(16);
        let cfg = HostLoadConfig { burst_prob: 0.0, ..Default::default() };
        let xs = HostLoad::new(cfg).take_values(&mut rng, 50_000);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.6).abs() < 0.1, "mean {mean} drifted");
    }

    #[test]
    fn lag1_of_white_noise_is_small() {
        let mut rng = StdRng::seed_from_u64(21);
        let xs: Vec<f64> = (0..20_000).map(|_| rng.gen_range(-1.0..1.0)).collect();
        assert!(lag1_autocorrelation(&xs).abs() < 0.05);
    }

    #[test]
    fn deterministic_under_seed() {
        let f = |s| HostLoad::standard().take_values(&mut StdRng::seed_from_u64(s), 100);
        assert_eq!(f(77), f(77));
        assert_ne!(f(77), f(78));
    }
}
