//! The paper's synthetic stream model (§V): a bounded random walk.
//!
//! "For a stream, the value at time `i` equals `x_{i-1} + u_i` where `u_i`
//! is a uniform random number"; we reflect at the configured bounds so the
//! values stay in the bounded range `[min, max]` the data model (§III-A)
//! requires.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A bounded random-walk stream source.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomWalk {
    value: f64,
    step: f64,
    min: f64,
    max: f64,
}

impl RandomWalk {
    /// Creates a walk starting at `start`, taking uniform steps in
    /// `[-step, +step]`, reflected into `[min, max]`.
    ///
    /// # Panics
    /// Panics if the range is empty, `start` lies outside it, or `step` is
    /// not positive.
    pub fn new(start: f64, step: f64, min: f64, max: f64) -> Self {
        assert!(min < max, "empty value range");
        assert!((min..=max).contains(&start), "start outside range");
        assert!(step > 0.0, "step must be positive");
        RandomWalk { value: start, step, min, max }
    }

    /// A walk over `[0, 100]` starting mid-range with unit steps — the
    /// shape used throughout the evaluation.
    pub fn standard() -> Self {
        RandomWalk::new(50.0, 1.0, 0.0, 100.0)
    }

    /// A walk whose *unit-norm DC coefficient* (the Eq. 6 routing value of
    /// subsequence-indexed streams) sits near a target level `q` in
    /// `(-1, +1)`, so that a population of such walks realizes the paper's
    /// uniformity assumption (§IV-B): sampling `q` uniformly spreads the
    /// summaries' keys uniformly over the ring.
    ///
    /// The DC coefficient of a unit-normalized window is
    /// `mean / sqrt(mean^2 + var)`; solving for the band center with window
    /// standard deviation `sigma` gives `c = sigma * q / sqrt(1 - q^2)`.
    ///
    /// # Panics
    /// Panics unless `q` lies strictly inside `(-1, 1)`.
    pub fn with_feature_level(q: f64) -> Self {
        assert!(q.abs() < 1.0, "feature level must lie strictly inside (-1, 1)");
        // Stationary sample sigma of a reflected walk on a +/- 4 band is
        // 8 / sqrt(12) ~= 2.3; early windows hug the center more tightly.
        let sigma = 2.0;
        let center = sigma * q / (1.0 - q * q).sqrt();
        RandomWalk::new(center, 0.5, center - 4.0, center + 4.0)
    }

    /// Samples a walk with a uniformly distributed feature level — the
    /// heterogeneous stream population of the scalability experiments.
    pub fn sample_spread<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let q = rng.gen_range(-0.9..0.9);
        RandomWalk::with_feature_level(q)
    }

    /// Current value without advancing.
    #[inline]
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Advances one step and returns the new value.
    pub fn next_value<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(-self.step..=self.step);
        let mut v = self.value + u;
        // Reflect at the boundaries to stay in the bounded range.
        if v < self.min {
            v = self.min + (self.min - v);
        }
        if v > self.max {
            v = self.max - (v - self.max);
        }
        self.value = v.clamp(self.min, self.max);
        self.value
    }

    /// Generates `n` consecutive values.
    pub fn take_values<R: Rng + ?Sized>(&mut self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.next_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut w = RandomWalk::new(0.5, 0.3, 0.0, 1.0);
        for _ in 0..10_000 {
            let v = w.next_value(&mut rng);
            assert!((0.0..=1.0).contains(&v), "value {v} escaped");
        }
    }

    #[test]
    fn consecutive_values_are_close() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut w = RandomWalk::standard();
        let mut prev = w.value();
        for _ in 0..1000 {
            let v = w.next_value(&mut rng);
            assert!((v - prev).abs() <= 2.0 + 1e-12, "jump too large");
            prev = v;
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = RandomWalk::standard().take_values(&mut StdRng::seed_from_u64(5), 100);
        let b = RandomWalk::standard().take_values(&mut StdRng::seed_from_u64(5), 100);
        assert_eq!(a, b);
    }

    #[test]
    fn walk_actually_moves() {
        let mut rng = StdRng::seed_from_u64(3);
        let vals = RandomWalk::standard().take_values(&mut rng, 500);
        let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min > 1.0, "walk barely moved");
    }

    #[test]
    #[should_panic(expected = "start outside range")]
    fn bad_start_panics() {
        let _ = RandomWalk::new(5.0, 1.0, 0.0, 1.0);
    }

    #[test]
    fn feature_level_controls_dc_coefficient() {
        // The unit-norm DC coefficient of the walk's windows should hover
        // near the requested level (averaged over windows, because any
        // single window of a walk is noisy).
        // The walk is heavily autocorrelated (decorrelation time ~ one
        // window), so the window count sets the estimator's standard error:
        // 400 windows keeps it near 0.05, small against the 0.3 tolerance.
        let mut rng = StdRng::seed_from_u64(31);
        for &q in &[-0.8, -0.3, 0.0, 0.4, 0.85] {
            let mut w = RandomWalk::with_feature_level(q);
            w.take_values(&mut rng, 2048); // burn-in toward stationarity
            let mut x0s = Vec::new();
            for _ in 0..400 {
                let vals = w.take_values(&mut rng, 64);
                let mean = vals.iter().sum::<f64>() / 64.0;
                let rms = (vals.iter().map(|v| v * v).sum::<f64>() / 64.0).sqrt();
                x0s.push(if rms > 0.0 { mean / rms } else { 0.0 });
            }
            let avg = x0s.iter().sum::<f64>() / x0s.len() as f64;
            assert!((avg - q).abs() < 0.3, "level {q}: got average X0 = {avg}");
        }
    }

    #[test]
    fn sample_spread_covers_the_feature_interval() {
        let mut rng = StdRng::seed_from_u64(32);
        let mut levels = Vec::new();
        for _ in 0..200 {
            let mut w = RandomWalk::sample_spread(&mut rng);
            let vals = w.take_values(&mut rng, 64);
            let mean = vals.iter().sum::<f64>() / 64.0;
            let rms = (vals.iter().map(|v| v * v).sum::<f64>() / 64.0).sqrt();
            levels.push(mean / rms);
        }
        let lo = levels.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = levels.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(lo < -0.5 && hi > 0.5, "levels not spread: [{lo}, {hi}]");
    }

    #[test]
    #[should_panic(expected = "strictly inside")]
    fn extreme_feature_level_panics() {
        let _ = RandomWalk::with_feature_level(1.0);
    }
}
