//! Workload and runtime configuration — the paper's Table I.

use serde::{Deserialize, Serialize};

/// The main workload/runtime parameters (Table I), with the summarization
/// parameters the paper leaves implicit made explicit and configurable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// PMIN: minimum stream period in ms (a stream is a periodic process
    /// whose period is chosen uniformly in `[pmin_ms, pmax_ms]`).
    pub pmin_ms: u64,
    /// PMAX: maximum stream period in ms.
    pub pmax_ms: u64,
    /// BSPAN: life span of an MBR at the storing nodes, in ms.
    pub bspan_ms: u64,
    /// QRATE: average query arrival rate (Poisson), queries per second.
    pub qrate_per_sec: f64,
    /// QMIN: minimum query life span in ms.
    pub qmin_ms: u64,
    /// QMAX: maximum query life span in ms.
    pub qmax_ms: u64,
    /// NPER: period of response/neighbor information exchange in ms.
    pub nper_ms: u64,
    /// Similarity query radius (0.1 for most experiments; 0.2 in Fig. 7(b)).
    pub query_radius: f64,
    /// Sliding-window length `w` for summarization.
    pub window_len: usize,
    /// Number of retained DFT coefficients `k`.
    pub num_coeffs: usize,
    /// MBR batching factor ζ: how many consecutive feature vectors form one
    /// MBR (§IV-G).
    pub mbr_batch: usize,
    /// Bound on an MBR's first-dimension (routing) width: a batch is shipped
    /// early rather than exceed it (`None` disables the bound). Keeps MBR
    /// key ranges small, as the paper's MBR-creation mechanism did.
    pub mbr_max_width: Option<f64>,
}

impl Default for WorkloadConfig {
    /// The exact Table I values, radius 0.1, and `w = 64, k = 2, ζ = 10`
    /// summarization defaults.
    fn default() -> Self {
        WorkloadConfig {
            pmin_ms: 150,
            pmax_ms: 250,
            bspan_ms: 5000,
            qrate_per_sec: 2.0,
            qmin_ms: 20_000,
            qmax_ms: 100_000,
            nper_ms: 2000,
            query_radius: 0.1,
            window_len: 64,
            num_coeffs: 2,
            mbr_batch: 10,
            mbr_max_width: Some(0.02),
        }
    }
}

impl WorkloadConfig {
    /// Validates internal consistency.
    ///
    /// # Panics
    /// Panics with a description of the first violated constraint.
    pub fn validate(&self) {
        assert!(self.pmin_ms > 0 && self.pmin_ms <= self.pmax_ms, "PMIN..PMAX must be a range");
        assert!(self.bspan_ms > 0, "BSPAN must be positive");
        assert!(self.qrate_per_sec > 0.0, "QRATE must be positive");
        assert!(self.qmin_ms <= self.qmax_ms, "QMIN..QMAX must be a range");
        assert!(self.nper_ms > 0, "NPER must be positive");
        assert!(self.query_radius > 0.0, "query radius must be positive");
        assert!(self.window_len > 0, "window length must be positive");
        assert!(self.num_coeffs > 0, "must retain at least one coefficient");
        assert!(self.num_coeffs < self.window_len, "coefficients exceed window");
        assert!(self.mbr_batch > 0, "MBR batching factor must be positive");
        if let Some(w) = self.mbr_max_width {
            assert!(w > 0.0, "MBR width bound must be positive");
        }
    }

    /// Returns a copy with a different query radius (the Fig. 7(b) knob).
    pub fn with_radius(mut self, radius: f64) -> Self {
        self.query_radius = radius;
        self
    }

    /// Returns a copy with a different MBR batching factor.
    pub fn with_mbr_batch(mut self, zeta: usize) -> Self {
        self.mbr_batch = zeta;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_one() {
        let c = WorkloadConfig::default();
        assert_eq!(c.pmin_ms, 150);
        assert_eq!(c.pmax_ms, 250);
        assert_eq!(c.bspan_ms, 5000);
        assert_eq!(c.qrate_per_sec, 2.0);
        assert_eq!(c.qmin_ms, 20_000);
        assert_eq!(c.qmax_ms, 100_000);
        assert_eq!(c.nper_ms, 2000);
        c.validate();
    }

    #[test]
    fn with_radius_changes_only_radius() {
        let base = WorkloadConfig::default();
        let wide = base.clone().with_radius(0.2);
        assert_eq!(wide.query_radius, 0.2);
        assert_eq!(wide.pmin_ms, base.pmin_ms);
    }

    #[test]
    #[should_panic(expected = "PMIN..PMAX")]
    fn inverted_period_range_panics() {
        let c = WorkloadConfig { pmin_ms: 300, ..Default::default() };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "coefficients exceed window")]
    fn oversized_coeffs_panic() {
        let c = WorkloadConfig { num_coeffs: 64, ..Default::default() };
        c.validate();
    }

    #[test]
    fn serde_roundtrip() {
        let c = WorkloadConfig::default().with_radius(0.2);
        let json = serde_json::to_string(&c).unwrap();
        let back: WorkloadConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
