//! Synthetic S&P 500-style stock data.
//!
//! The paper's real dataset — "S&P500 Stock Exchange Historical Data ...
//! one record per line ... date, ticker, open, high, low, close, and volume"
//! — is no longer distributed. We substitute a geometric-Brownian-motion
//! generator with *sector factors*: tickers in the same sector share a
//! common daily shock, which plants ground-truth correlated pairs for
//! correlation-query recall tests (see DESIGN.md §5).

use rand::Rng;
use rand_distr_free::standard_normal;
use serde::{Deserialize, Serialize};

/// One daily OHLCV record, mirroring the paper's file format.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StockRecord {
    /// Day index (0-based trading day; the substitute for the date field).
    pub day: u32,
    /// Ticker symbol.
    pub ticker: String,
    /// Opening price.
    pub open: f64,
    /// Daily high.
    pub high: f64,
    /// Daily low.
    pub low: f64,
    /// Closing price.
    pub close: f64,
    /// Shares traded.
    pub volume: u64,
}

/// Configuration of the synthetic market.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MarketConfig {
    /// Number of sectors; tickers within one sector are correlated.
    pub sectors: usize,
    /// Tickers per sector.
    pub tickers_per_sector: usize,
    /// Weight of the shared sector shock in each ticker's daily return
    /// (0 = independent, 1 = perfectly correlated within a sector).
    pub sector_weight: f64,
    /// Daily volatility of returns.
    pub volatility: f64,
    /// Annualized drift, applied per trading day.
    pub drift: f64,
}

impl Default for MarketConfig {
    fn default() -> Self {
        MarketConfig {
            sectors: 10,
            tickers_per_sector: 5,
            sector_weight: 0.8,
            volatility: 0.02,
            drift: 0.0002,
        }
    }
}

/// Minimal inverse-free standard-normal sampling (sum of uniforms is good
/// enough for workload generation and keeps us within the allowed crates).
mod rand_distr_free {
    use rand::Rng;

    /// Approximately standard-normal variate (Irwin–Hall with 12 uniforms).
    pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        (0..12).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() - 6.0
    }
}

/// The synthetic market: a set of tickers evolving by sector-correlated GBM.
#[derive(Debug, Clone)]
pub struct Market {
    config: MarketConfig,
    tickers: Vec<String>,
    sector_of: Vec<usize>,
    prices: Vec<f64>,
    day: u32,
}

impl Market {
    /// Creates a market with all prices at 100.
    pub fn new(config: MarketConfig) -> Self {
        assert!(config.sectors > 0 && config.tickers_per_sector > 0, "empty market");
        assert!((0.0..=1.0).contains(&config.sector_weight), "sector weight must be a fraction");
        let mut tickers = Vec::new();
        let mut sector_of = Vec::new();
        for s in 0..config.sectors {
            for t in 0..config.tickers_per_sector {
                tickers.push(format!("S{s:02}T{t:02}"));
                sector_of.push(s);
            }
        }
        let n = tickers.len();
        Market { config, tickers, sector_of, prices: vec![100.0; n], day: 0 }
    }

    /// All ticker symbols.
    pub fn tickers(&self) -> &[String] {
        &self.tickers
    }

    /// Sector index of ticker `i`.
    pub fn sector_of(&self, i: usize) -> usize {
        self.sector_of[i]
    }

    /// Advances one trading day and returns the records.
    pub fn next_day<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Vec<StockRecord> {
        let sector_shock: Vec<f64> =
            (0..self.config.sectors).map(|_| standard_normal(rng)).collect();
        let w = self.config.sector_weight;
        let records = self
            .prices
            .iter_mut()
            .enumerate()
            .map(|(i, price)| {
                let shared = sector_shock[self.sector_of[i]];
                let own = standard_normal(rng);
                // Correlated shock with unit variance.
                let shock = w * shared + (1.0 - w * w).max(0.0).sqrt() * own;
                let ret = self.config.drift + self.config.volatility * shock;
                let open = *price;
                let close = (open * ret.exp()).max(0.01);
                let wiggle = self.config.volatility * open * 0.5;
                let high = open.max(close) + rng.gen_range(0.0..=wiggle.max(f64::MIN_POSITIVE));
                let low = (open.min(close) - rng.gen_range(0.0..=wiggle.max(f64::MIN_POSITIVE)))
                    .max(0.01);
                let volume = rng.gen_range(100_000..10_000_000);
                *price = close;
                StockRecord {
                    day: self.day,
                    ticker: self.tickers[i].clone(),
                    open,
                    high,
                    low,
                    close,
                    volume,
                }
            })
            .collect();
        self.day += 1;
        records
    }

    /// Generates the closing-price series of every ticker over `days` days.
    /// Returns `(tickers, series)` where `series[i][d]` is ticker `i`'s
    /// close on day `d`.
    pub fn closing_series<R: Rng + ?Sized>(&mut self, rng: &mut R, days: usize) -> Vec<Vec<f64>> {
        let n = self.tickers.len();
        let mut series = vec![Vec::with_capacity(days); n];
        for _ in 0..days {
            for (i, rec) in self.next_day(rng).into_iter().enumerate() {
                series[i].push(rec.close);
            }
        }
        series
    }
}

/// Pearson correlation of two equal-length series.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "series length mismatch");
    let n = a.len() as f64;
    if a.is_empty() {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn record_fields_are_consistent() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut m = Market::new(MarketConfig::default());
        for _ in 0..20 {
            for r in m.next_day(&mut rng) {
                assert!(r.low <= r.open && r.open <= r.high, "{r:?}");
                assert!(r.low <= r.close && r.close <= r.high, "{r:?}");
                assert!(r.low > 0.0);
            }
        }
    }

    #[test]
    fn same_sector_more_correlated_than_cross_sector() {
        let mut rng = StdRng::seed_from_u64(23);
        let cfg = MarketConfig { sectors: 4, tickers_per_sector: 2, ..Default::default() };
        let mut m = Market::new(cfg);
        let series = m.closing_series(&mut rng, 500);
        // Log-returns for correlation.
        let rets: Vec<Vec<f64>> =
            series.iter().map(|s| s.windows(2).map(|w| (w[1] / w[0]).ln()).collect()).collect();
        let same = pearson(&rets[0], &rets[1]); // S00T00 vs S00T01
        let cross = pearson(&rets[0], &rets[2]); // S00T00 vs S01T00
        assert!(same > 0.5, "same-sector correlation {same} too low");
        assert!(same > cross + 0.2, "sector structure not visible: {same} vs {cross}");
    }

    #[test]
    fn day_counter_advances() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = Market::new(MarketConfig::default());
        let d0 = m.next_day(&mut rng);
        let d1 = m.next_day(&mut rng);
        assert_eq!(d0[0].day, 0);
        assert_eq!(d1[0].day, 1);
    }

    #[test]
    fn ticker_naming_and_sectors() {
        let m =
            Market::new(MarketConfig { sectors: 2, tickers_per_sector: 3, ..Default::default() });
        assert_eq!(m.tickers().len(), 6);
        assert_eq!(m.tickers()[0], "S00T00");
        assert_eq!(m.sector_of(4), 1);
    }

    #[test]
    fn pearson_bounds_and_identity() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        assert!((pearson(&a, &a) - 1.0).abs() < 1e-12);
        let b: Vec<f64> = a.iter().map(|v| -v).collect();
        assert!((pearson(&a, &b) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&[], &[]), 0.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let gen = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            Market::new(MarketConfig::default()).closing_series(&mut rng, 30)
        };
        assert_eq!(gen(99), gen(99));
    }
}
