//! Adversarial workload skew: correlated streams, Zipfian popularity and
//! multi-tenant quotas.
//!
//! The paper's Fourier-space locality (§IV-B) assumes stream summaries
//! spread uniformly over the key circle. This module synthesizes the
//! workloads that break the assumption:
//!
//! * [`CorrelatedWalks`] — a population of bounded random walks coupled to
//!   one shared latent walk (a "market factor"): at correlation `ρ = 1`
//!   every stream is byte-identical and all summaries collapse onto one
//!   key arc (the flash-crowd hotspot);
//! * [`ZipfSampler`] — a deterministic Zipf(s) rank sampler for
//!   query-popularity skew (a few streams attract most queries);
//! * [`TenantPolicy`] / [`TenantLedger`] — per-tenant stream/query tagging
//!   with a per-round admission quota, for multi-tenant abuse scenarios.
//!
//! All generators draw from a caller-supplied RNG and consume it in a
//! documented order, so seeded harness runs replay bit-identically.

use crate::random_walk::RandomWalk;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A population of per-stream random walks sharing one latent walk.
///
/// Each tick, stream `i` emits `(1 - ρ) · own_i + ρ · latent`: its private
/// walk blended with the shared factor. The blend is degenerate at the
/// endpoints — `ρ = 0` is the fully independent population and `ρ = 1`
/// makes every stream an exact copy of the latent walk.
///
/// # RNG discipline
/// At `ρ = 0` no latent walk exists: construction and every tick draw
/// **exactly** the values the equivalent `Vec<RandomWalk>` loop would draw,
/// in the same order, so a `ρ = 0` run is bit-identical to the historical
/// independent path (a regression test pins this). At `ρ > 0` the latent
/// walk is sampled after the streams and advanced once per tick, before
/// the per-stream draws.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorrelatedWalks {
    streams: Vec<RandomWalk>,
    latent: Option<RandomWalk>,
    rho: f64,
}

impl CorrelatedWalks {
    /// Samples `n` spread-feature walks (see [`RandomWalk::sample_spread`])
    /// coupled with correlation `rho`; the latent walk is sampled last and
    /// only when `rho > 0`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ rho ≤ 1`.
    pub fn sample_spread<R: Rng + ?Sized>(rng: &mut R, n: usize, rho: f64) -> Self {
        assert!((0.0..=1.0).contains(&rho), "correlation must lie in [0, 1], got {rho}");
        let streams = (0..n).map(|_| RandomWalk::sample_spread(rng)).collect();
        let latent = (rho > 0.0).then(|| RandomWalk::sample_spread(rng));
        CorrelatedWalks { streams, latent, rho }
    }

    /// Number of streams.
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// True when the population is empty.
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// The configured correlation.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// Advances the shared latent walk one step (no-op at `ρ = 0`).
    /// Call once per tick, before the per-stream values.
    pub fn advance_latent<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        if let Some(l) = self.latent.as_mut() {
            l.next_value(rng);
        }
    }

    /// Advances stream `i` one step and returns its blended value. The
    /// latent walk is *not* advanced — within one tick every stream (and
    /// every burst value) sees the same factor level.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn next_value<R: Rng + ?Sized>(&mut self, i: usize, rng: &mut R) -> f64 {
        let own = self.streams[i].next_value(rng);
        match &self.latent {
            // ρ = 0: return the private walk's value untouched (bit-identical
            // to the independent path — no arithmetic applied).
            None => own,
            Some(l) => (1.0 - self.rho) * own + self.rho * l.value(),
        }
    }

    /// One tick: advances the latent walk, then every stream in index
    /// order. Returns the blended values.
    pub fn next_tick<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Vec<f64> {
        self.advance_latent(rng);
        (0..self.streams.len()).map(|i| self.next_value(i, rng)).collect()
    }
}

/// Deterministic Zipf(s) sampler over ranks `0..n` (rank 0 most popular).
///
/// `P(rank = k) ∝ (k + 1)^-s`. The cumulative table is precomputed at
/// construction; each draw consumes exactly one `f64` from the RNG and
/// binary-searches the table, so equal seeds yield equal sequences.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    /// Cumulative (unnormalized) mass; `cdf[k]` = Σ_{j ≤ k} (j+1)^-s.
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative or non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf sampler needs at least one rank");
        assert!(s.is_finite() && s >= 0.0, "Zipf exponent must be finite and non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += ((k + 1) as f64).powf(-s);
            cdf.push(acc);
        }
        ZipfSampler { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the sampler has no ranks (never: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one rank in `0..n`, consuming exactly one `f64`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cdf.last().expect("sampler has at least one rank");
        let u: f64 = rng.gen::<f64>() * total;
        // First rank whose cumulative mass covers u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Static multi-tenant policy: how many tenants share the system and how
/// many query admissions each gets per NPER round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TenantPolicy {
    /// Number of tenants; streams and queries are tagged `id % num_tenants`.
    pub num_tenants: usize,
    /// Maximum queries one tenant may register per NPER round; further
    /// registrations are rejected at admission.
    pub queries_per_round: u32,
}

impl TenantPolicy {
    /// Tenant tag of a stream (round-robin over the tenant set).
    ///
    /// # Panics
    /// Panics if the policy has zero tenants.
    pub fn tenant_of(&self, stream: usize) -> usize {
        assert!(self.num_tenants > 0, "policy needs at least one tenant");
        stream % self.num_tenants
    }
}

/// Runtime admission ledger for a [`TenantPolicy`]: counts admissions per
/// tenant within the current round and enforces the quota.
#[derive(Debug, Clone)]
pub struct TenantLedger {
    policy: TenantPolicy,
    admitted: Vec<u32>,
    rejections: u64,
}

impl TenantLedger {
    /// Fresh ledger with zero admissions.
    ///
    /// # Panics
    /// Panics if the policy has zero tenants or a zero quota.
    pub fn new(policy: TenantPolicy) -> Self {
        assert!(policy.num_tenants > 0, "policy needs at least one tenant");
        assert!(policy.queries_per_round > 0, "quota must admit at least one query per round");
        TenantLedger { policy, admitted: vec![0; policy.num_tenants], rejections: 0 }
    }

    /// The governing policy.
    pub fn policy(&self) -> TenantPolicy {
        self.policy
    }

    /// Tenant tag of a stream.
    pub fn tenant_of(&self, stream: usize) -> usize {
        self.policy.tenant_of(stream)
    }

    /// Attempts to admit one query for `tenant` in the current round.
    /// Returns `false` (and counts a rejection) once the tenant's quota for
    /// the round is exhausted.
    ///
    /// # Panics
    /// Panics if `tenant` is out of range.
    pub fn try_admit(&mut self, tenant: usize) -> bool {
        if self.admitted[tenant] < self.policy.queries_per_round {
            self.admitted[tenant] += 1;
            true
        } else {
            self.rejections += 1;
            false
        }
    }

    /// Admissions for `tenant` so far this round.
    pub fn admitted(&self, tenant: usize) -> u32 {
        self.admitted[tenant]
    }

    /// Total rejections across all rounds.
    pub fn rejections(&self) -> u64 {
        self.rejections
    }

    /// Starts a new round: admission counters reset, the rejection total
    /// survives.
    pub fn reset_round(&mut self) {
        self.admitted.iter_mut().for_each(|a| *a = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Satellite: at ρ = 0 the correlated population consumes the RNG
        /// exactly like the independent `Vec<RandomWalk>` path and emits
        /// bit-identical values.
        #[test]
        fn rho_zero_is_bit_identical_to_independent_walks(
            seed in any::<u64>(),
            n in 1usize..10,
            ticks in 1usize..100,
        ) {
            let mut rng_a = StdRng::seed_from_u64(seed);
            let mut rng_b = StdRng::seed_from_u64(seed);
            let mut independent: Vec<RandomWalk> =
                (0..n).map(|_| RandomWalk::sample_spread(&mut rng_a)).collect();
            let mut correlated = CorrelatedWalks::sample_spread(&mut rng_b, n, 0.0);
            for _ in 0..ticks {
                let want: Vec<u64> = independent
                    .iter_mut()
                    .map(|w| w.next_value(&mut rng_a).to_bits())
                    .collect();
                let got: Vec<u64> = correlated
                    .next_tick(&mut rng_b)
                    .into_iter()
                    .map(f64::to_bits)
                    .collect();
                prop_assert_eq!(want, got);
            }
        }

        /// Satellite: equal seeds produce equal Zipf rank sequences.
        #[test]
        fn zipf_sampling_is_deterministic(
            seed in any::<u64>(),
            n in 1usize..64,
            s in 0.0f64..3.0,
        ) {
            let z = ZipfSampler::new(n, s);
            let draw = |sd| {
                let mut rng = StdRng::seed_from_u64(sd);
                (0..200).map(|_| z.sample(&mut rng)).collect::<Vec<_>>()
            };
            let a = draw(seed);
            prop_assert_eq!(a.clone(), draw(seed));
            prop_assert!(a.iter().all(|&r| r < n));
        }
    }

    /// Satellite: the empirical rank-frequency curve follows the requested
    /// exponent — `freq(rank 0) / freq(rank 1) ≈ 2^s`.
    #[test]
    fn zipf_rank_frequency_matches_exponent() {
        for &s in &[0.8, 1.2, 2.0] {
            let z = ZipfSampler::new(50, s);
            let mut rng = StdRng::seed_from_u64(99);
            let mut freq = [0u64; 50];
            for _ in 0..60_000 {
                freq[z.sample(&mut rng)] += 1;
            }
            let ratio = freq[0] as f64 / freq[1] as f64;
            let want = 2f64.powf(s);
            assert!(
                (ratio / want - 1.0).abs() < 0.15,
                "s={s}: rank0/rank1 = {ratio:.3}, expected ≈ {want:.3}"
            );
            assert!(freq[0] > freq[10], "s={s}: head must dominate the tail");
        }
    }

    #[test]
    fn zipf_exponent_zero_is_uniform() {
        let z = ZipfSampler::new(8, 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut freq = [0u64; 8];
        for _ in 0..16_000 {
            freq[z.sample(&mut rng)] += 1;
        }
        for (r, &f) in freq.iter().enumerate() {
            let dev = (f as f64 / 2000.0 - 1.0).abs();
            assert!(dev < 0.15, "rank {r}: {f} draws deviates {dev:.3} from uniform");
        }
    }

    #[test]
    fn rho_one_makes_streams_byte_identical() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut c = CorrelatedWalks::sample_spread(&mut rng, 6, 1.0);
        for _ in 0..50 {
            let vals = c.next_tick(&mut rng);
            let first = vals[0].to_bits();
            assert!(vals.iter().all(|v| v.to_bits() == first), "streams diverged: {vals:?}");
        }
    }

    #[test]
    fn higher_rho_raises_cross_stream_correlation() {
        // Pearson correlation between two streams' tick series must rise
        // with ρ (the knob is monotone in effect, if not in exact value).
        let corr_at = |rho: f64| {
            let mut rng = StdRng::seed_from_u64(11);
            let mut c = CorrelatedWalks::sample_spread(&mut rng, 2, rho);
            let mut xs = Vec::new();
            let mut ys = Vec::new();
            for _ in 0..800 {
                let v = c.next_tick(&mut rng);
                xs.push(v[0]);
                ys.push(v[1]);
            }
            crate::stocks::pearson(&xs, &ys)
        };
        let lo = corr_at(0.0);
        let hi = corr_at(0.9);
        assert!(hi > lo + 0.3, "ρ=0.9 correlation {hi:.3} not above ρ=0 correlation {lo:.3}");
        assert!(hi > 0.8, "ρ=0.9 streams should co-move strongly, got {hi:.3}");
    }

    #[test]
    fn burst_values_share_the_tick_factor() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut c = CorrelatedWalks::sample_spread(&mut rng, 3, 1.0);
        c.advance_latent(&mut rng);
        // Repeated draws of different streams within one tick all equal the
        // frozen latent level at ρ = 1.
        let a = c.next_value(0, &mut rng);
        let b = c.next_value(1, &mut rng);
        let d = c.next_value(2, &mut rng);
        assert_eq!(a.to_bits(), b.to_bits());
        assert_eq!(b.to_bits(), d.to_bits());
    }

    #[test]
    #[should_panic(expected = "correlation must lie in")]
    fn out_of_range_rho_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = CorrelatedWalks::sample_spread(&mut rng, 2, 1.5);
    }

    #[test]
    fn tenant_quota_admits_then_rejects_then_resets() {
        let mut t = TenantLedger::new(TenantPolicy { num_tenants: 3, queries_per_round: 2 });
        assert_eq!(t.tenant_of(4), 1);
        assert!(t.try_admit(1));
        assert!(t.try_admit(1));
        assert!(!t.try_admit(1), "third admission must breach the quota");
        assert!(t.try_admit(2), "other tenants are unaffected");
        assert_eq!(t.admitted(1), 2);
        assert_eq!(t.rejections(), 1);
        t.reset_round();
        assert!(t.try_admit(1), "quota resets each round");
        assert_eq!(t.rejections(), 1, "rejection total survives the reset");
    }

    #[test]
    #[should_panic(expected = "at least one tenant")]
    fn zero_tenant_policy_panics() {
        let _ = TenantLedger::new(TenantPolicy { num_tenants: 0, queries_per_round: 1 });
    }
}
