//! Query workload generation (§V): queries are issued by uniformly random
//! nodes, arrive as a Poisson process (see `dsi-simnet`), and carry
//! lifespans uniform in `[QMIN, QMAX]`.

use crate::config::WorkloadConfig;
use crate::random_walk::RandomWalk;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A generated similarity-query specification (`(Q, epsilon, lifespan)` of
/// §III-B.2, plus the issuing node).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimilarityQuerySpec {
    /// Index of the issuing node (0-based, uniform over the system).
    pub issuer: usize,
    /// The query sequence `Q` (a raw window; normalization happens at
    /// feature-extraction time).
    pub target: Vec<f64>,
    /// The similarity threshold `epsilon`.
    pub radius: f64,
    /// Query life span in ms.
    pub lifespan_ms: u64,
}

/// A generated inner-product query (`(sid, I, W, lifespan)` of §III-B.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InnerProductQuerySpec {
    /// Index of the issuing node.
    pub issuer: usize,
    /// Target stream index.
    pub stream: usize,
    /// Index vector `I`: positions of interest within the window.
    pub indices: Vec<usize>,
    /// Weight vector `W`, one weight per index.
    pub weights: Vec<f64>,
    /// Query life span in ms.
    pub lifespan_ms: u64,
}

/// Stateless generator of query specifications.
#[derive(Debug, Clone)]
pub struct QueryWorkload {
    cfg: WorkloadConfig,
    num_nodes: usize,
}

impl QueryWorkload {
    /// Creates a workload for a system of `num_nodes` nodes.
    ///
    /// # Panics
    /// Panics if `num_nodes == 0` or the configuration is invalid.
    pub fn new(cfg: WorkloadConfig, num_nodes: usize) -> Self {
        cfg.validate();
        assert!(num_nodes > 0, "need at least one node");
        QueryWorkload { cfg, num_nodes }
    }

    /// The workload configuration.
    pub fn config(&self) -> &WorkloadConfig {
        &self.cfg
    }

    /// Samples a query lifespan uniformly in `[QMIN, QMAX]`.
    pub fn sample_lifespan_ms<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.gen_range(self.cfg.qmin_ms..=self.cfg.qmax_ms)
    }

    /// Samples a stream period uniformly in `[PMIN, PMAX]`.
    pub fn sample_period_ms<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.gen_range(self.cfg.pmin_ms..=self.cfg.pmax_ms)
    }

    /// Generates one similarity query: a uniform issuer and a random-walk
    /// target window whose feature level is uniform over the feature
    /// interval ("queries are generated synthetically by using a uniform
    /// distribution", §V).
    pub fn similarity_query<R: Rng + ?Sized>(&self, rng: &mut R) -> SimilarityQuerySpec {
        let issuer = rng.gen_range(0..self.num_nodes);
        let mut walk = RandomWalk::sample_spread(rng);
        // Randomize the walk's phase so query targets differ.
        for _ in 0..rng.gen_range(0..50) {
            walk.next_value(rng);
        }
        let target = walk.take_values(rng, self.cfg.window_len);
        SimilarityQuerySpec {
            issuer,
            target,
            radius: self.cfg.query_radius,
            lifespan_ms: self.sample_lifespan_ms(rng),
        }
    }

    /// Generates one inner-product query against a uniform target stream,
    /// asking for a weighted average over `span` recent positions.
    pub fn inner_product_query<R: Rng + ?Sized>(&self, rng: &mut R) -> InnerProductQuerySpec {
        let issuer = rng.gen_range(0..self.num_nodes);
        let stream = rng.gen_range(0..self.num_nodes);
        let span = rng.gen_range(2..=self.cfg.window_len.min(20));
        let start = rng.gen_range(0..=self.cfg.window_len - span);
        let indices: Vec<usize> = (start..start + span).collect();
        // Weighted average: weights sum to 1.
        let weights = vec![1.0 / span as f64; span];
        InnerProductQuerySpec {
            issuer,
            stream,
            indices,
            weights,
            lifespan_ms: self.sample_lifespan_ms(rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn workload(n: usize) -> QueryWorkload {
        QueryWorkload::new(WorkloadConfig::default(), n)
    }

    #[test]
    fn lifespans_in_qmin_qmax() {
        let mut rng = StdRng::seed_from_u64(5);
        let w = workload(10);
        for _ in 0..1000 {
            let l = w.sample_lifespan_ms(&mut rng);
            assert!((20_000..=100_000).contains(&l));
        }
    }

    #[test]
    fn periods_in_pmin_pmax() {
        let mut rng = StdRng::seed_from_u64(6);
        let w = workload(10);
        for _ in 0..1000 {
            let p = w.sample_period_ms(&mut rng);
            assert!((150..=250).contains(&p));
        }
    }

    #[test]
    fn similarity_query_shape() {
        let mut rng = StdRng::seed_from_u64(7);
        let w = workload(50);
        let q = w.similarity_query(&mut rng);
        assert!(q.issuer < 50);
        assert_eq!(q.target.len(), 64);
        assert_eq!(q.radius, 0.1);
    }

    #[test]
    fn issuers_are_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(8);
        let w = workload(10);
        let mut counts = [0u32; 10];
        for _ in 0..5000 {
            counts[w.similarity_query(&mut rng).issuer] += 1;
        }
        for &c in &counts {
            assert!((350..=650).contains(&c), "issuer distribution skewed: {counts:?}");
        }
    }

    #[test]
    fn inner_product_query_is_well_formed() {
        let mut rng = StdRng::seed_from_u64(9);
        let w = workload(20);
        for _ in 0..200 {
            let q = w.inner_product_query(&mut rng);
            assert!(q.stream < 20);
            assert_eq!(q.indices.len(), q.weights.len());
            assert!(*q.indices.last().unwrap() < 64);
            let sum: f64 = q.weights.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn query_targets_differ() {
        let mut rng = StdRng::seed_from_u64(10);
        let w = workload(5);
        let a = w.similarity_query(&mut rng);
        let b = w.similarity_query(&mut rng);
        assert_ne!(a.target, b.target);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        let _ = workload(0);
    }
}
