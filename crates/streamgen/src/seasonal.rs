//! Seasonal (periodic) stream generator.
//!
//! The paper's motivating examples — stock tickers, body-temperature
//! sensors, network traffic — carry diurnal/seasonal structure on top of
//! noise. This generator superimposes a configurable set of harmonics on a
//! bounded random walk, producing streams whose DFT summaries carry real
//! spectral content (useful for subsequence-query demos and summarizer
//! ablations).

use crate::random_walk::RandomWalk;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One harmonic of the seasonal pattern.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Harmonic {
    /// Period in samples.
    pub period: f64,
    /// Amplitude.
    pub amplitude: f64,
    /// Phase offset in radians.
    pub phase: f64,
}

/// A seasonal stream: harmonics + drifting baseline + uniform noise.
#[derive(Debug, Clone)]
pub struct SeasonalStream {
    harmonics: Vec<Harmonic>,
    baseline: RandomWalk,
    noise: f64,
    t: u64,
}

impl SeasonalStream {
    /// Creates a stream with the given harmonics, a slowly drifting
    /// baseline centered at `level`, and uniform noise of half-width
    /// `noise`.
    ///
    /// # Panics
    /// Panics if any harmonic has a non-positive period, or `noise < 0`.
    pub fn new(level: f64, harmonics: Vec<Harmonic>, noise: f64) -> Self {
        assert!(harmonics.iter().all(|h| h.period > 0.0), "periods must be positive");
        assert!(noise >= 0.0, "noise must be non-negative");
        SeasonalStream {
            harmonics,
            baseline: RandomWalk::new(level, 0.05, level - 2.0, level + 2.0),
            noise,
            t: 0,
        }
    }

    /// A "daily load" shape: one fundamental plus a half-period harmonic.
    pub fn diurnal(level: f64, day_samples: f64) -> Self {
        SeasonalStream::new(
            level,
            vec![
                Harmonic { period: day_samples, amplitude: 1.0, phase: 0.0 },
                Harmonic { period: day_samples / 2.0, amplitude: 0.3, phase: 0.7 },
            ],
            0.05,
        )
    }

    /// Current sample index.
    pub fn time(&self) -> u64 {
        self.t
    }

    /// Produces the next sample.
    pub fn next_value<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        let base = self.baseline.next_value(rng);
        let season: f64 = self
            .harmonics
            .iter()
            .map(|h| {
                h.amplitude
                    * (2.0 * std::f64::consts::PI * self.t as f64 / h.period + h.phase).sin()
            })
            .sum();
        let noise = if self.noise > 0.0 { rng.gen_range(-self.noise..=self.noise) } else { 0.0 };
        self.t += 1;
        base + season + noise
    }

    /// Generates `n` consecutive samples.
    pub fn take_values<R: Rng + ?Sized>(&mut self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.next_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn autocorr_at(xs: &[f64], lag: usize) -> f64 {
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        if var == 0.0 {
            return 0.0;
        }
        let cov = (0..n - lag).map(|i| (xs[i] - mean) * (xs[i + lag] - mean)).sum::<f64>()
            / (n - lag) as f64;
        cov / var
    }

    #[test]
    fn periodicity_shows_in_autocorrelation() {
        let mut rng = StdRng::seed_from_u64(9);
        let period = 32usize;
        let mut s = SeasonalStream::diurnal(10.0, period as f64);
        let xs = s.take_values(&mut rng, 2048);
        let at_period = autocorr_at(&xs, period);
        let at_half = autocorr_at(&xs, period / 2);
        assert!(at_period > 0.6, "autocorrelation at the period should be strong: {at_period}");
        assert!(at_period > at_half, "period lag should beat off-period lag");
    }

    #[test]
    fn spectrum_concentrates_at_the_harmonics() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut s = SeasonalStream::new(
            0.0,
            vec![Harmonic { period: 16.0, amplitude: 2.0, phase: 0.0 }],
            0.0,
        );
        let xs = s.take_values(&mut rng, 64);
        let z = dsi_dsp_free::z_normalize_local(&xs);
        let spec = dsi_dsp_free::dft_mag(&z);
        // Period 16 over 64 samples = bin 4.
        let peak_bin = spec
            .iter()
            .enumerate()
            .take(32)
            .skip(1)
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak_bin, 4, "spectral peak must sit at the harmonic bin");
    }

    /// Tiny local helpers so this crate stays independent of dsi-dsp.
    mod dsi_dsp_free {
        pub fn z_normalize_local(xs: &[f64]) -> Vec<f64> {
            let n = xs.len() as f64;
            let mean = xs.iter().sum::<f64>() / n;
            let sd = (xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n).sqrt();
            xs.iter().map(|x| (x - mean) / sd.max(1e-12)).collect()
        }
        pub fn dft_mag(xs: &[f64]) -> Vec<f64> {
            let n = xs.len();
            (0..n)
                .map(|f| {
                    let (mut re, mut im) = (0.0f64, 0.0f64);
                    for (i, &x) in xs.iter().enumerate() {
                        let a = -2.0 * std::f64::consts::PI * (f * i) as f64 / n as f64;
                        re += x * a.cos();
                        im += x * a.sin();
                    }
                    (re * re + im * im).sqrt()
                })
                .collect()
        }
    }

    #[test]
    fn baseline_drifts_within_band() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut s = SeasonalStream::diurnal(20.0, 24.0);
        let xs = s.take_values(&mut rng, 4000);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 20.0).abs() < 1.5, "long-run mean {mean} should track the level");
        // Amplitude bound: baseline band 2 + harmonics 1.3 + noise 0.05.
        assert!(xs.iter().all(|&x| (x - 20.0).abs() < 4.0));
    }

    #[test]
    fn deterministic_under_seed() {
        let f =
            |s| SeasonalStream::diurnal(5.0, 24.0).take_values(&mut StdRng::seed_from_u64(s), 50);
        assert_eq!(f(3), f(3));
        assert_ne!(f(3), f(4));
    }

    #[test]
    #[should_panic(expected = "periods must be positive")]
    fn zero_period_panics() {
        let _ = SeasonalStream::new(
            0.0,
            vec![Harmonic { period: 0.0, amplitude: 1.0, phase: 0.0 }],
            0.0,
        );
    }
}
