//! The network cost model.
//!
//! The Chord simulator the paper used "simulates a constant 50 ms delay per
//! hop when routing a message to the destination" (§V). We reproduce exactly
//! that model: latency is `hops * HOP_DELAY_MS`, and bandwidth is accounted
//! in messages (the unit all three evaluation metrics use).

/// Per-overlay-hop delay in milliseconds (the paper's constant).
pub const HOP_DELAY_MS: u64 = 50;

/// Delivery latency of a message that traverses `hops` overlay hops.
#[inline]
pub fn delivery_delay_ms(hops: u32) -> u64 {
    hops as u64 * HOP_DELAY_MS
}

/// Latency of a routed path (origin .. destination inclusive).
#[inline]
pub fn path_delay_ms(path_len: usize) -> u64 {
    delivery_delay_ms(path_len.saturating_sub(1) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_hops_is_instant() {
        assert_eq!(delivery_delay_ms(0), 0);
        assert_eq!(path_delay_ms(1), 0);
        assert_eq!(path_delay_ms(0), 0);
    }

    #[test]
    fn fifty_ms_per_hop() {
        assert_eq!(delivery_delay_ms(3), 150);
        assert_eq!(path_delay_ms(4), 150);
    }
}
