//! Measurement infrastructure for the paper's three scalability
//! characteristics (§V):
//!
//! * **load** — messages an individual node sends or receives per second,
//!   broken into the seven components of Fig. 6(a);
//! * **efficiency** — messages the system sends per input event (Fig. 7);
//! * **responsiveness** — overlay hops a message traverses before being
//!   processed (Fig. 8).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Classification of every overlay message, matching the figure legends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MsgClass {
    /// MBR messages originated by a node as a stream source (Fig. 6a-a).
    MbrOriginated,
    /// Extra MBR copies when the key range spans multiple nodes (Fig. 6a-b).
    MbrInternal,
    /// MBR messages relayed by intermediate routing nodes (Fig. 6a-c).
    MbrTransit,
    /// Query messages delivered to their first covering node (Fig. 6a-d).
    Query,
    /// Extra query copies when the radius spans multiple nodes (Fig. 7-c).
    QueryInternal,
    /// Query messages relayed in transit (Fig. 7-d).
    QueryTransit,
    /// Responses from the notifying node to the client (Fig. 6a-e).
    Response,
    /// Neighbor information exchange about detected similarities (Fig. 6a-f).
    ResponseInternal,
    /// Response messages relayed in transit (Fig. 6a-g).
    ResponseTransit,
    /// Partial aggregate sketches pushed one tree edge toward the
    /// aggregator during an NPER collection round (DESIGN.md §15).
    AggPush,
    /// Aggregate notifications routed from the aggregator to the client.
    AggNotify,
}

impl MsgClass {
    /// All classes, in legend order (aggregate classes appended after the
    /// Fig. 6(a) legends so historical indices stay stable).
    pub const ALL: [MsgClass; 11] = [
        MsgClass::MbrOriginated,
        MsgClass::MbrInternal,
        MsgClass::MbrTransit,
        MsgClass::Query,
        MsgClass::QueryInternal,
        MsgClass::QueryTransit,
        MsgClass::Response,
        MsgClass::ResponseInternal,
        MsgClass::ResponseTransit,
        MsgClass::AggPush,
        MsgClass::AggNotify,
    ];

    /// Dense index for array-backed counters. Constant-time (and usable in
    /// const contexts); a unit test pins it to the position in
    /// [`MsgClass::ALL`].
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            MsgClass::MbrOriginated => 0,
            MsgClass::MbrInternal => 1,
            MsgClass::MbrTransit => 2,
            MsgClass::Query => 3,
            MsgClass::QueryInternal => 4,
            MsgClass::QueryTransit => 5,
            MsgClass::Response => 6,
            MsgClass::ResponseInternal => 7,
            MsgClass::ResponseTransit => 8,
            MsgClass::AggPush => 9,
            MsgClass::AggNotify => 10,
        }
    }

    /// Inverse of [`MsgClass::index`]; `None` for out-of-range indices.
    /// Used to map the `u8` class tags of `dsi-trace` records back to the
    /// enum when rendering or auditing.
    #[inline]
    pub const fn from_index(i: usize) -> Option<MsgClass> {
        if i < NUM_CLASSES {
            Some(Self::ALL[i])
        } else {
            None
        }
    }

    /// Human-readable legend label.
    pub fn name(self) -> &'static str {
        match self {
            MsgClass::MbrOriginated => "MBRs",
            MsgClass::MbrInternal => "MBRs internal",
            MsgClass::MbrTransit => "MBRs in transit",
            MsgClass::Query => "Queries",
            MsgClass::QueryInternal => "Queries internal",
            MsgClass::QueryTransit => "Queries in transit",
            MsgClass::Response => "Responses",
            MsgClass::ResponseInternal => "Responses internal",
            MsgClass::ResponseTransit => "Responses in transit",
            MsgClass::AggPush => "Aggregate pushes",
            MsgClass::AggNotify => "Aggregate notifications",
        }
    }
}

/// Number of message classes.
pub const NUM_CLASSES: usize = 11;

/// The input-event kinds whose per-event message overhead Fig. 7 reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InputEvent {
    /// A new MBR produced by a stream source.
    Mbr,
    /// A new client query posted.
    Query,
    /// A periodic response pushed toward a client.
    Response,
}

impl InputEvent {
    #[inline]
    fn index(self) -> usize {
        match self {
            InputEvent::Mbr => 0,
            InputEvent::Query => 1,
            InputEvent::Response => 2,
        }
    }
}

/// Mutable measurement state, filled in by the simulation.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Metrics {
    sent: HashMap<u64, [u64; NUM_CLASSES]>,
    received: HashMap<u64, [u64; NUM_CLASSES]>,
    totals: [u64; NUM_CLASSES],
    hop_sum: [u64; NUM_CLASSES],
    hop_count: [u64; NUM_CLASSES],
    events: [u64; 3],
    retries: [u64; NUM_CLASSES],
    redeliveries: [u64; NUM_CLASSES],
    dups_suppressed: [u64; NUM_CLASSES],
    coverage_sum: f64,
    coverage_count: u64,
    /// Logical sends that consulted the delivery layer (a reliability
    /// resolution or a partition check). Conservation anchor: every
    /// decision is delivered, lost, or partition-suppressed — nothing else.
    send_decisions: [u64; NUM_CLASSES],
    /// Decisions whose message reached the receiver (on time or late).
    sends_delivered: [u64; NUM_CLASSES],
    /// Decisions lost after retries (the random-drop budget).
    sends_lost: [u64; NUM_CLASSES],
    /// Decisions suppressed by an armed partition plan — deterministic
    /// island membership, kept strictly separate from random drops.
    partition_suppressed: [u64; NUM_CLASSES],
}

impl Metrics {
    /// Creates empty metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one overlay message `from -> to` of the given class.
    pub fn record_message(&mut self, class: MsgClass, from: u64, to: u64) {
        let i = class.index();
        self.sent.entry(from).or_default()[i] += 1;
        self.received.entry(to).or_default()[i] += 1;
        self.totals[i] += 1;
    }

    /// Records a routed message along `path` (origin first): the first hop
    /// carries class `base`, every further hop class `transit`.
    pub fn record_route(&mut self, base: MsgClass, transit: MsgClass, path: &[u64]) {
        for (i, pair) in path.windows(2).enumerate() {
            let class = if i == 0 { base } else { transit };
            self.record_message(class, pair[0], pair[1]);
        }
    }

    /// Records the hop count of one logical message of the given class
    /// (for the Fig. 8 responsiveness series).
    pub fn record_hops(&mut self, class: MsgClass, hops: u32) {
        let i = class.index();
        self.hop_sum[i] += hops as u64;
        self.hop_count[i] += 1;
    }

    /// Records one input event (for Fig. 7 normalization).
    pub fn record_event(&mut self, kind: InputEvent) {
        self.events[kind.index()] += 1;
    }

    /// Total messages of a class.
    pub fn total(&self, class: MsgClass) -> u64 {
        self.totals[class.index()]
    }

    /// Sum of recorded hop counts for a class (numerator of
    /// [`Metrics::avg_hops`]) — exposed for conservation audits: a routed
    /// logical message of `h` hops is charged as `h` per-hop messages, so
    /// for classes where every route also records its hops, the hop sum of
    /// the base class must equal base + transit message totals.
    pub fn hop_sum(&self, class: MsgClass) -> u64 {
        self.hop_sum[class.index()]
    }

    /// Number of logical messages whose hops were recorded for a class
    /// (denominator of [`Metrics::avg_hops`]).
    pub fn hop_count(&self, class: MsgClass) -> u64 {
        self.hop_count[class.index()]
    }

    /// Messages of a class summed over all sending nodes. Always equals
    /// [`Metrics::total`] (every message has exactly one sender); exposed so
    /// auditors can check the bookkeeping itself.
    pub fn sent_total(&self, class: MsgClass) -> u64 {
        let i = class.index();
        // dsilint: allow(unordered-iter, commutative sum over per-node counters)
        self.sent.values().map(|a| a[i]).sum()
    }

    /// Messages of a class summed over all receiving nodes. Always equals
    /// [`Metrics::total`].
    pub fn received_total(&self, class: MsgClass) -> u64 {
        let i = class.index();
        // dsilint: allow(unordered-iter, commutative sum over per-node counters)
        self.received.values().map(|a| a[i]).sum()
    }

    /// Number of recorded input events of a kind.
    pub fn event_count(&self, kind: InputEvent) -> u64 {
        self.events[kind.index()]
    }

    /// Average per-node load in messages/second for one class: every message
    /// counts once at its sender and once at its receiver, as in Fig. 6(a).
    pub fn avg_load(&self, class: MsgClass, num_nodes: usize, duration_s: f64) -> f64 {
        assert!(num_nodes > 0 && duration_s > 0.0, "need nodes and a positive window");
        2.0 * self.totals[class.index()] as f64 / num_nodes as f64 / duration_s
    }

    /// Per-node total load (sent + received messages per second), for the
    /// Fig. 6(b) distribution. Nodes that never appeared get load 0 only if
    /// listed in `all_nodes`.
    pub fn per_node_load(&self, all_nodes: &[u64], duration_s: f64) -> Vec<(u64, f64)> {
        assert!(duration_s > 0.0, "positive window required");
        all_nodes
            .iter()
            .map(|&n| {
                let s: u64 = self.sent.get(&n).map_or(0, |a| a.iter().sum());
                let r: u64 = self.received.get(&n).map_or(0, |a| a.iter().sum());
                (n, (s + r) as f64 / duration_s)
            })
            .collect()
    }

    /// Cumulative messages charged to one node across all classes, counting
    /// both endpoints (sent + received) like [`Metrics::per_node_load`] —
    /// but as a raw count, so callers (the per-round load ledger) can take
    /// exact deltas between observation points.
    pub fn node_message_count(&self, node: u64) -> u64 {
        let s: u64 = self.sent.get(&node).map_or(0, |a| a.iter().sum());
        let r: u64 = self.received.get(&node).map_or(0, |a| a.iter().sum());
        s + r
    }

    /// Message overhead: how many messages of `class` the system sent per
    /// input event of `kind` (Fig. 7). Zero if no such events occurred.
    pub fn overhead(&self, class: MsgClass, kind: InputEvent) -> f64 {
        let ev = self.events[kind.index()];
        if ev == 0 {
            0.0
        } else {
            self.totals[class.index()] as f64 / ev as f64
        }
    }

    /// Average hops per logical message of `class` (Fig. 8). Zero if none.
    pub fn avg_hops(&self, class: MsgClass) -> f64 {
        let i = class.index();
        if self.hop_count[i] == 0 {
            0.0
        } else {
            self.hop_sum[i] as f64 / self.hop_count[i] as f64
        }
    }

    /// Records one retransmission attempt of a message of `class` after a
    /// drop (the message itself is charged once, when an attempt finally
    /// lands — retries measure wasted bandwidth separately).
    pub fn record_retry(&mut self, class: MsgClass) {
        self.retries[class.index()] += 1;
    }

    /// Records a message of `class` whose effect was re-delivered a period
    /// late out of the delay queue.
    pub fn record_redelivery(&mut self, class: MsgClass) {
        self.redeliveries[class.index()] += 1;
    }

    /// Records a duplicate copy of `class` suppressed by the receiver's
    /// dedup cache (the original is charged normally; the duplicate is
    /// accounted here and nowhere else).
    pub fn record_dup_suppressed(&mut self, class: MsgClass) {
        self.dups_suppressed[class.index()] += 1;
    }

    /// Records the key-range coverage achieved by one dissemination
    /// (1.0 = every covering node confirmed reached).
    pub fn record_coverage(&mut self, fraction: f64) {
        debug_assert!((0.0..=1.0).contains(&fraction), "coverage {fraction} outside [0, 1]");
        self.coverage_sum += fraction;
        self.coverage_count += 1;
    }

    /// Records one logical send decision of `class` that ended delivered
    /// (on time or a period late).
    pub fn record_send_delivered(&mut self, class: MsgClass) {
        let i = class.index();
        self.send_decisions[i] += 1;
        self.sends_delivered[i] += 1;
    }

    /// Records one logical send decision of `class` lost after retries.
    pub fn record_send_lost(&mut self, class: MsgClass) {
        let i = class.index();
        self.send_decisions[i] += 1;
        self.sends_lost[i] += 1;
    }

    /// Records one logical send of `class` suppressed because an armed
    /// partition plan severs its endpoints. Separate from random drops by
    /// construction: [`Metrics::record_send_lost`] never counts these.
    pub fn record_partition_suppressed(&mut self, class: MsgClass) {
        let i = class.index();
        self.send_decisions[i] += 1;
        self.partition_suppressed[i] += 1;
    }

    /// Partition-suppressed sends for a class.
    pub fn partition_suppressed(&self, class: MsgClass) -> u64 {
        self.partition_suppressed[class.index()]
    }

    /// Partition-suppressed sends summed over all classes.
    pub fn partition_suppressed_total(&self) -> u64 {
        self.partition_suppressed.iter().sum()
    }

    /// Send-conservation ledger for a class:
    /// `(decisions, delivered, lost, partitioned)`. The identity
    /// `decisions == delivered + lost + partitioned` holds by construction;
    /// the fault harness asserts it every round so a new send site that
    /// forgets one side of the ledger is caught immediately. Duplicated
    /// copies ride on *delivered* decisions and are accounted in
    /// [`Metrics::dups_suppressed`], never here.
    pub fn send_accounting(&self, class: MsgClass) -> (u64, u64, u64, u64) {
        let i = class.index();
        (
            self.send_decisions[i],
            self.sends_delivered[i],
            self.sends_lost[i],
            self.partition_suppressed[i],
        )
    }

    /// Retransmission attempts for a class.
    pub fn retries(&self, class: MsgClass) -> u64 {
        self.retries[class.index()]
    }

    /// Late re-deliveries for a class.
    pub fn redeliveries(&self, class: MsgClass) -> u64 {
        self.redeliveries[class.index()]
    }

    /// Suppressed duplicate copies for a class.
    pub fn dups_suppressed(&self, class: MsgClass) -> u64 {
        self.dups_suppressed[class.index()]
    }

    /// Sum of a reliability counter over all classes:
    /// `(retries, redeliveries, dups_suppressed)`.
    pub fn reliability_totals(&self) -> (u64, u64, u64) {
        (
            self.retries.iter().sum(),
            self.redeliveries.iter().sum(),
            self.dups_suppressed.iter().sum(),
        )
    }

    /// Number of disseminations whose coverage was recorded.
    pub fn coverage_count(&self) -> u64 {
        self.coverage_count
    }

    /// Mean recorded coverage, or `None` if nothing was recorded.
    pub fn avg_coverage(&self) -> Option<f64> {
        if self.coverage_count == 0 {
            None
        } else {
            Some(self.coverage_sum / self.coverage_count as f64)
        }
    }

    /// Resets all counters (used to discard the warm-up phase).
    pub fn reset(&mut self) {
        *self = Metrics::new();
    }
}

/// A fixed-width histogram over non-negative values (Fig. 6(b)).
///
/// Besides the bucket counts it retains the (sorted) raw samples, so it
/// answers exact percentile and tail queries without the caller having to
/// re-supply the value slice it was built from.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    bucket_width: f64,
    counts: Vec<u64>,
    samples: Vec<f64>,
}

impl Histogram {
    /// Builds a histogram of `values` with the given bucket width.
    ///
    /// # Panics
    /// Panics if `bucket_width <= 0`.
    pub fn build(values: &[f64], bucket_width: f64) -> Self {
        assert!(bucket_width > 0.0, "bucket width must be positive");
        let mut counts = Vec::new();
        for &v in values {
            let b = (v.max(0.0) / bucket_width).floor() as usize;
            if b >= counts.len() {
                counts.resize(b + 1, 0);
            }
            counts[b] += 1;
        }
        let mut samples = values.to_vec();
        samples.sort_unstable_by(f64::total_cmp);
        Histogram { bucket_width, counts, samples }
    }

    /// `(bucket_midpoint, count)` pairs.
    pub fn buckets(&self) -> Vec<(f64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| ((i as f64 + 0.5) * self.bucket_width, c))
            .collect()
    }

    /// Total number of samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Exact **nearest-rank** percentile over the retained samples: the
    /// smallest sample `s` such that at least `p` of the distribution is
    /// `<= s`. Returns `None` on an empty histogram.
    ///
    /// # Interpolation contract
    /// There is **no interpolation**: the result is always one of the
    /// recorded samples, `sorted[rank - 1]` with
    /// `rank = ceil(p * n).clamp(1, n)`. In particular `percentile(0.0)`
    /// is the minimum, `percentile(1.0)` the maximum, and for `n = 2`
    /// `percentile(0.5)` is the *lower* sample (not their average, as a
    /// linear-interpolation definition would give). Callers comparing
    /// against externally computed quantiles must use the same
    /// nearest-rank definition; `p` is a fraction in `[0, 1]`, **not** a
    /// percent in `[0, 100]`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&p), "percentile rank must be in [0, 1], got {p}");
        if self.samples.is_empty() {
            return None;
        }
        let n = self.samples.len();
        let rank = ((p * n as f64).ceil() as usize).clamp(1, n);
        Some(self.samples[rank - 1])
    }

    /// A crude heavy-tail indicator: the fraction of samples **strictly
    /// beyond** `factor` times the mean (samples equal to the cutoff are
    /// not in the tail). The paper argues the load distribution is *not*
    /// heavy-tailed; tests assert this is small. Answered from the
    /// retained samples — no need to re-supply the values the histogram
    /// was built from. Returns `0.0` for an empty histogram. `factor` is
    /// a multiplier (e.g. `2.0` = twice the mean), not a percentile rank.
    pub fn tail_fraction(&self, factor: f64) -> f64 {
        debug_assert!(
            factor.is_finite() && factor >= 0.0,
            "tail factor must be a finite non-negative multiplier, got {factor}"
        );
        if self.samples.is_empty() {
            return 0.0;
        }
        let mean = self.samples.iter().sum::<f64>() / self.samples.len() as f64;
        let cut = mean * factor;
        // Samples are sorted: the tail is a suffix.
        let tail = self.samples.partition_point(|&v| v <= cut);
        (self.samples.len() - tail) as f64 / self.samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliability_counters_accumulate_and_reset() {
        let mut m = Metrics::new();
        assert_eq!(m.reliability_totals(), (0, 0, 0));
        assert_eq!(m.avg_coverage(), None);
        m.record_retry(MsgClass::MbrInternal);
        m.record_retry(MsgClass::MbrInternal);
        m.record_retry(MsgClass::Query);
        m.record_redelivery(MsgClass::Response);
        m.record_dup_suppressed(MsgClass::ResponseInternal);
        m.record_coverage(1.0);
        m.record_coverage(0.5);
        assert_eq!(m.retries(MsgClass::MbrInternal), 2);
        assert_eq!(m.retries(MsgClass::Query), 1);
        assert_eq!(m.redeliveries(MsgClass::Response), 1);
        assert_eq!(m.dups_suppressed(MsgClass::ResponseInternal), 1);
        assert_eq!(m.reliability_totals(), (3, 1, 1));
        assert_eq!(m.coverage_count(), 2);
        assert_eq!(m.avg_coverage(), Some(0.75));
        m.reset();
        assert_eq!(m.reliability_totals(), (0, 0, 0));
        assert_eq!(m.avg_coverage(), None);
    }

    #[test]
    fn send_ledger_conserves_every_decision() {
        let mut m = Metrics::new();
        m.record_send_delivered(MsgClass::Query);
        m.record_send_delivered(MsgClass::Query);
        m.record_send_lost(MsgClass::Query);
        m.record_partition_suppressed(MsgClass::Query);
        m.record_partition_suppressed(MsgClass::Response);
        let (decisions, delivered, lost, partitioned) = m.send_accounting(MsgClass::Query);
        assert_eq!((decisions, delivered, lost, partitioned), (4, 2, 1, 1));
        assert_eq!(decisions, delivered + lost + partitioned);
        assert_eq!(m.partition_suppressed(MsgClass::Query), 1);
        assert_eq!(m.partition_suppressed(MsgClass::Response), 1);
        assert_eq!(m.partition_suppressed_total(), 2);
        // Partition suppressions never leak into the random-drop budget.
        assert_eq!(m.send_accounting(MsgClass::Response).2, 0);
        m.reset();
        assert_eq!(m.send_accounting(MsgClass::Query), (0, 0, 0, 0));
        assert_eq!(m.partition_suppressed_total(), 0);
    }

    #[test]
    fn record_route_splits_base_and_transit() {
        let mut m = Metrics::new();
        m.record_route(MsgClass::Query, MsgClass::QueryTransit, &[1, 2, 3, 4]);
        assert_eq!(m.total(MsgClass::Query), 1);
        assert_eq!(m.total(MsgClass::QueryTransit), 2);
    }

    #[test]
    fn single_hop_route_has_no_transit() {
        let mut m = Metrics::new();
        m.record_route(MsgClass::Response, MsgClass::ResponseTransit, &[7, 9]);
        assert_eq!(m.total(MsgClass::Response), 1);
        assert_eq!(m.total(MsgClass::ResponseTransit), 0);
    }

    #[test]
    fn avg_load_counts_both_endpoints() {
        let mut m = Metrics::new();
        // 10 messages between 2 nodes over 5 seconds:
        // each node sees all 10 (sender or receiver) => 2 msg/s each.
        for _ in 0..10 {
            m.record_message(MsgClass::MbrOriginated, 1, 2);
        }
        let load = m.avg_load(MsgClass::MbrOriginated, 2, 5.0);
        assert!((load - 2.0).abs() < 1e-12);
    }

    #[test]
    fn per_node_load_includes_silent_nodes() {
        let mut m = Metrics::new();
        m.record_message(MsgClass::Query, 1, 2);
        let loads = m.per_node_load(&[1, 2, 3], 1.0);
        assert_eq!(loads, vec![(1, 1.0), (2, 1.0), (3, 0.0)]);
    }

    #[test]
    fn overhead_normalizes_by_events() {
        let mut m = Metrics::new();
        for _ in 0..4 {
            m.record_event(InputEvent::Mbr);
        }
        for _ in 0..6 {
            m.record_message(MsgClass::MbrTransit, 0, 1);
        }
        assert!((m.overhead(MsgClass::MbrTransit, InputEvent::Mbr) - 1.5).abs() < 1e-12);
        assert_eq!(m.overhead(MsgClass::Query, InputEvent::Query), 0.0);
    }

    #[test]
    fn conservation_accessors_reconcile() {
        let mut m = Metrics::new();
        // Two routed MBR messages: 3 hops and 1 hop.
        m.record_route(MsgClass::MbrOriginated, MsgClass::MbrTransit, &[1, 2, 3, 4]);
        m.record_hops(MsgClass::MbrOriginated, 3);
        m.record_route(MsgClass::MbrOriginated, MsgClass::MbrTransit, &[5, 6]);
        m.record_hops(MsgClass::MbrOriginated, 1);
        assert_eq!(
            m.hop_sum(MsgClass::MbrOriginated),
            m.total(MsgClass::MbrOriginated) + m.total(MsgClass::MbrTransit)
        );
        assert_eq!(m.hop_count(MsgClass::MbrOriginated), 2);
        for c in MsgClass::ALL {
            assert_eq!(m.sent_total(c), m.total(c));
            assert_eq!(m.received_total(c), m.total(c));
        }
    }

    #[test]
    fn avg_hops_averages() {
        let mut m = Metrics::new();
        m.record_hops(MsgClass::Query, 2);
        m.record_hops(MsgClass::Query, 4);
        assert!((m.avg_hops(MsgClass::Query) - 3.0).abs() < 1e-12);
        assert_eq!(m.avg_hops(MsgClass::Response), 0.0);
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = Metrics::new();
        m.record_message(MsgClass::Query, 1, 2);
        m.record_event(InputEvent::Query);
        m.record_hops(MsgClass::Query, 3);
        m.reset();
        assert_eq!(m.total(MsgClass::Query), 0);
        assert_eq!(m.event_count(InputEvent::Query), 0);
        assert_eq!(m.avg_hops(MsgClass::Query), 0.0);
    }

    #[test]
    fn class_indices_are_dense_and_unique() {
        let mut seen = [false; NUM_CLASSES];
        for c in MsgClass::ALL {
            assert!(!seen[c.index()], "duplicate index for {c:?}");
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn histogram_buckets_and_total() {
        let values = [0.1, 0.4, 0.6, 1.2, 1.3, 5.0];
        let h = Histogram::build(&values, 0.5);
        assert_eq!(h.total(), 6);
        let buckets = h.buckets();
        assert_eq!(buckets[0], (0.25, 2)); // 0.1, 0.4
        assert_eq!(buckets[1], (0.75, 1)); // 0.6
        assert_eq!(buckets[2], (1.25, 2)); // 1.2, 1.3
        assert_eq!(buckets[10], (5.25, 1)); // 5.0
    }

    #[test]
    fn tail_fraction_flags_outliers() {
        let uniform: Vec<f64> = (0..100).map(|i| 1.0 + (i % 10) as f64 * 0.01).collect();
        let h = Histogram::build(&uniform, 0.5);
        assert_eq!(h.tail_fraction(2.0), 0.0);
        let skewed: Vec<f64> = (0..100).map(|i| if i < 90 { 1.0 } else { 50.0 }).collect();
        let h2 = Histogram::build(&skewed, 0.5);
        assert!(h2.tail_fraction(2.0) > 0.05);
        // Exactly 10 of 100 samples sit beyond 2x the mean (mean = 5.9).
        assert!((h2.tail_fraction(2.0) - 0.10).abs() < 1e-12);
    }

    #[test]
    fn percentile_is_exact_nearest_rank() {
        // Canonical nearest-rank example: p30 of {15,20,35,40,50} = 20.
        let h = Histogram::build(&[50.0, 15.0, 40.0, 20.0, 35.0], 10.0);
        assert_eq!(h.percentile(0.30), Some(20.0));
        assert_eq!(h.percentile(0.50), Some(35.0));
        assert_eq!(h.percentile(0.0), Some(15.0));
        assert_eq!(h.percentile(1.0), Some(50.0));
        // Every reported percentile is an actual sample.
        for p in [0.01, 0.25, 0.5, 0.75, 0.95, 0.99] {
            let v = h.percentile(p).unwrap();
            assert!([15.0, 20.0, 35.0, 40.0, 50.0].contains(&v));
        }
        assert_eq!(Histogram::build(&[], 1.0).percentile(0.5), None);
    }

    #[test]
    fn index_agrees_with_position_in_all() {
        for (pos, c) in MsgClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), pos, "{c:?} index diverged from ALL order");
            assert_eq!(MsgClass::from_index(pos), Some(*c));
        }
        assert_eq!(MsgClass::from_index(NUM_CLASSES), None);
        // And it is usable in const position.
        const QUERY_IDX: usize = MsgClass::Query.index();
        assert_eq!(QUERY_IDX, 3);
    }
}
