//! Virtual time for the discrete-event simulation, in integer milliseconds
//! (the granularity of every constant in the paper's Table I).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time (milliseconds since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Constructs from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1000)
    }

    /// Milliseconds since start.
    #[inline]
    pub const fn as_ms(self) -> u64 {
        self.0
    }

    /// Seconds since start, as a float (for rate normalization).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Saturating difference.
    #[inline]
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, ms: u64) -> SimTime {
        SimTime(self.0 + ms)
    }
}

impl AddAssign<u64> for SimTime {
    #[inline]
    fn add_assign(&mut self, ms: u64) {
        self.0 += ms;
    }
}

impl Sub for SimTime {
    type Output = u64;
    #[inline]
    fn sub(self, other: SimTime) -> u64 {
        self.0 - other.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{:03}s", self.0 / 1000, self.0 % 1000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        assert_eq!(SimTime::from_secs(3).as_ms(), 3000);
        assert_eq!(SimTime::from_ms(1500).as_secs_f64(), 1.5);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ms(100) + 50;
        assert_eq!(t.as_ms(), 150);
        assert_eq!(t - SimTime::from_ms(100), 50);
        assert_eq!(SimTime::from_ms(10).saturating_sub(SimTime::from_ms(20)), SimTime::ZERO);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_ms(1) < SimTime::from_ms(2));
        assert_eq!(SimTime::ZERO, SimTime::from_ms(0));
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_ms(2345).to_string(), "2.345s");
    }
}
