//! # dsi-simnet — discrete-event network simulator
//!
//! The substrate standing in for the MIT Chord simulator the paper linked
//! against: a deterministic timed-event replay engine plus the measurement
//! machinery for the paper's three scalability characteristics.
//!
//! * [`time::SimTime`] — virtual clock in milliseconds;
//! * [`engine::Engine`] — binary-heap event queue with FIFO tie-breaking;
//! * [`poisson::PoissonArrivals`] — query arrival process;
//! * [`net`] — the 50 ms/hop cost constants;
//! * [`faults`] — seeded drop/duplicate/delay fault injection, per-class
//!   [`faults::FaultPlan`]s, scheduled [`faults::PartitionPlan`] splits,
//!   and the [`engine::DelayQueue`] re-delivery pen;
//! * [`latency::LatencyModel`] — configurable per-hop delay distributions;
//! * [`metrics`] — per-node load components (Fig. 6), per-event message
//!   overhead (Fig. 7) and hop counts (Fig. 8).

#![warn(missing_docs)]
// Crate-level override on top of the shared [workspace.lints] policy: the
// event engine drives every simulated message, so panic sites must be
// deliberate, documented invariants (`expect`), never a bare `unwrap`.
// Test code is exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod engine;
pub mod faults;
pub mod latency;
pub mod metrics;
pub mod net;
pub mod poisson;
pub mod time;

pub use engine::{DelayQueue, Engine};
pub use faults::{FaultOutcome, FaultPlan, FaultSpec, PartitionPlan};
pub use latency::LatencyModel;
pub use metrics::{Histogram, InputEvent, Metrics, MsgClass, NUM_CLASSES};
pub use net::{delivery_delay_ms, path_delay_ms, HOP_DELAY_MS};
pub use poisson::PoissonArrivals;
pub use time::SimTime;
