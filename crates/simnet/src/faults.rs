//! Message-level fault injection for simulation testing.
//!
//! The paper's middleware is built on soft state, so it must tolerate the
//! usual best-effort network pathologies: periodic (NPER) messages that are
//! lost, duplicated, or arrive a period late. [`FaultSpec`] describes the
//! probabilities of each pathology and draws per-delivery [`FaultOutcome`]s
//! from a caller-supplied RNG, keeping runs deterministic under a seed —
//! the fault-injection harness replays the exact same outcome sequence from
//! a recorded seed.
//!
//! [`FaultPlan`] extends a single spec to the whole message taxonomy: one
//! default [`FaultSpec`] plus optional per-[`MsgClass`] overrides, so a
//! scenario can (say) drop 30% of MBR replication traffic while leaving
//! query responses clean.

use crate::metrics::{MsgClass, NUM_CLASSES};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-delivery fault probabilities. The three probabilities partition the
/// unit interval together with normal delivery, so they must sum to at most
/// one.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Probability a delivery is dropped entirely.
    pub drop_prob: f64,
    /// Probability a delivery is duplicated (processed twice).
    pub dup_prob: f64,
    /// Probability a delivery is delayed to the next period.
    pub delay_prob: f64,
}

impl FaultSpec {
    /// A fault-free network: every delivery succeeds.
    pub const NONE: FaultSpec = FaultSpec { drop_prob: 0.0, dup_prob: 0.0, delay_prob: 0.0 };

    /// Validates the probabilities, returning a description of the first
    /// problem found instead of panicking.
    ///
    /// The sum check is **exact** (`> 1.0`): floating-point summation of
    /// three probabilities that are mathematically ≤ 1 can still land a few
    /// ULPs above `1.0` (e.g. `0.33 + 0.56 + 0.11`), and such a spec would
    /// make [`FaultSpec::outcome`]'s partition of the unit interval
    /// unreachable for `Deliver`. Callers should leave numeric headroom
    /// rather than rely on a hidden tolerance.
    pub fn try_validate(&self) -> Result<(), String> {
        for (name, p) in
            [("drop", self.drop_prob), ("dup", self.dup_prob), ("delay", self.delay_prob)]
        {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} probability {p} outside [0, 1]"));
            }
        }
        let sum = self.drop_prob + self.dup_prob + self.delay_prob;
        if sum > 1.0 {
            return Err(format!("fault probabilities sum to {sum} > 1"));
        }
        Ok(())
    }

    /// Validates the probabilities.
    ///
    /// # Panics
    /// Panics if any probability is outside `[0, 1]` or they sum past one
    /// (see [`FaultSpec::try_validate`] for the exact-sum semantics).
    pub fn validate(&self) {
        if let Err(msg) = self.try_validate() {
            panic!("{msg}");
        }
    }

    /// Whether any fault can occur at all.
    pub fn is_none(&self) -> bool {
        self.drop_prob == 0.0 && self.dup_prob == 0.0 && self.delay_prob == 0.0
    }

    /// Draws the outcome for one delivery. Consumes exactly one `f64` from
    /// the RNG (even for the fault-free spec), so schedules stay aligned
    /// when fault probabilities change between replays of the same seed.
    pub fn outcome<R: Rng + ?Sized>(&self, rng: &mut R) -> FaultOutcome {
        let u: f64 = rng.gen();
        if u < self.drop_prob {
            FaultOutcome::Drop
        } else if u < self.drop_prob + self.dup_prob {
            FaultOutcome::Duplicate
        } else if u < self.drop_prob + self.dup_prob + self.delay_prob {
            FaultOutcome::Delay
        } else {
            FaultOutcome::Deliver
        }
    }
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec::NONE
    }
}

/// What happens to one delivery under a [`FaultSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultOutcome {
    /// Delivered normally.
    Deliver,
    /// Lost; the receiver never processes it.
    Drop,
    /// Processed twice (e.g. a retransmission raced the original).
    Duplicate,
    /// Held in a delay queue and re-delivered one period late: the message
    /// is in flight (it is charged and traced at send time), but its effect
    /// on the receiver is parked until the receiver's next refresh tick
    /// drains the queue.
    Delay,
    /// Suppressed by an armed [`PartitionPlan`]: sender and receiver sit on
    /// different islands. Never produced by [`FaultSpec::outcome`] (a
    /// partition is deterministic set membership, not a random draw), so
    /// the counter distinguishing it from `Drop` in `Metrics` stays exact.
    Partitioned,
}

/// A scheduled network partition: between two NPER rounds the node
/// population is cut into islands, and any delivery whose endpoints sit on
/// different islands is suppressed with [`FaultOutcome::Partitioned`].
///
/// Sides are node *indices* (into the driver's initial node order), taken
/// modulo the live population at arm time like every other scheduled
/// event. `islands[k]` lists the members of side `k + 1`; every index not
/// listed belongs to side 0 — so a two-way split is one list and a
/// three-way split two lists.
///
/// The plan is pure set membership: arming it draws **zero** RNG values
/// (suppression is deterministic), so a disarmed plan leaves seeded runs
/// byte-identical and an armed one never shifts the fault-draw sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionPlan {
    /// Minority sides: `islands[k]` holds the node indices of side `k + 1`.
    /// Unlisted indices form side 0 (the implicit majority).
    pub islands: Vec<Vec<u32>>,
    /// NPER round (0-based, counted over the schedule's `Notify` events)
    /// *before* which the split fires.
    pub split_round: u32,
    /// NPER round before which the partition heals. Must exceed
    /// `split_round`; rounds in `[split_round, heal_round)` run split.
    pub heal_round: u32,
}

impl Serialize for PartitionPlan {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("islands".to_string(), self.islands.to_value()),
            ("split_round".to_string(), self.split_round.to_value()),
            ("heal_round".to_string(), self.heal_round.to_value()),
        ])
    }
}

impl Deserialize for PartitionPlan {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(PartitionPlan {
            islands: Deserialize::from_value(serde::field(v, "islands", "PartitionPlan")?)?,
            split_round: Deserialize::from_value(serde::field(v, "split_round", "PartitionPlan")?)?,
            heal_round: Deserialize::from_value(serde::field(v, "heal_round", "PartitionPlan")?)?,
        })
    }
}

impl PartitionPlan {
    /// Number of sides the split produces (the implicit side 0 plus one
    /// per explicit island).
    pub fn num_sides(&self) -> usize {
        self.islands.len() + 1
    }

    /// The side a node index belongs to: the explicit island listing it,
    /// or side 0 when unlisted.
    pub fn side_of(&self, idx: u32) -> usize {
        for (k, island) in self.islands.iter().enumerate() {
            if island.contains(&idx) {
                return k + 1;
            }
        }
        0
    }

    /// Whether the partition severs a delivery between two sides.
    pub fn severs(&self, side_a: usize, side_b: usize) -> bool {
        side_a != side_b
    }

    /// Whether the plan is split (not yet healed) at NPER round `round`.
    pub fn active_at(&self, round: u32) -> bool {
        (self.split_round..self.heal_round).contains(&round)
    }

    /// Validates the plan, returning the first problem found.
    pub fn try_validate(&self) -> Result<(), String> {
        if self.islands.is_empty() {
            return Err("partition plan needs at least one explicit island".to_string());
        }
        if self.heal_round <= self.split_round {
            return Err(format!(
                "partition heals at round {} but splits at round {}",
                self.heal_round, self.split_round
            ));
        }
        let mut seen = Vec::new();
        for island in &self.islands {
            if island.is_empty() {
                return Err("partition islands must be non-empty".to_string());
            }
            for &idx in island {
                if seen.contains(&idx) {
                    return Err(format!("node index {idx} appears on two islands"));
                }
                seen.push(idx);
            }
        }
        Ok(())
    }

    /// Panicking form of [`PartitionPlan::try_validate`].
    ///
    /// # Panics
    /// Panics on overlapping islands, an empty island list, or a heal
    /// round that does not follow the split round.
    pub fn validate(&self) {
        if let Err(msg) = self.try_validate() {
            panic!("{msg}");
        }
    }
}

/// Fault probabilities for the whole message taxonomy: a default
/// [`FaultSpec`] applied to every [`MsgClass`], plus optional per-class
/// overrides.
///
/// `FaultPlan::NONE` (also the `Default`) is the lossless network; the
/// reliability layer treats it as "disabled" and takes the exact historical
/// code paths, consuming no extra RNG draws.
///
/// Serde is hand-written instead of derived: the message taxonomy grows
/// over time (new [`MsgClass`] variants are appended), and reproducers
/// recorded before a growth carry an `overrides` array shorter than the
/// current [`NUM_CLASSES`]. Deserialization pads missing trailing
/// overrides with `None` — new classes take the default spec — rather
/// than rejecting the file on an exact-length array match.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Spec applied to any class without an override.
    pub default: FaultSpec,
    /// Per-class overrides, indexed by [`MsgClass::index`].
    pub overrides: [Option<FaultSpec>; NUM_CLASSES],
}

impl Serialize for FaultPlan {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("default".to_string(), self.default.to_value()),
            ("overrides".to_string(), self.overrides.to_value()),
        ])
    }
}

impl Deserialize for FaultPlan {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let default = FaultSpec::from_value(serde::field(v, "default", "FaultPlan")?)?;
        let raw = serde::field(v, "overrides", "FaultPlan")?
            .as_array()
            .ok_or_else(|| serde::Error::expected("array", v))?;
        if raw.len() > NUM_CLASSES {
            return Err(serde::Error::msg(format!(
                "FaultPlan overrides has {} entries but only {NUM_CLASSES} classes exist",
                raw.len()
            )));
        }
        let mut overrides = [None; NUM_CLASSES];
        for (slot, val) in overrides.iter_mut().zip(raw.iter()) {
            *slot = <Option<FaultSpec>>::from_value(val)?;
        }
        Ok(FaultPlan { default, overrides })
    }
}

impl FaultPlan {
    /// The lossless network: no class experiences any fault.
    pub const NONE: FaultPlan =
        FaultPlan { default: FaultSpec::NONE, overrides: [None; NUM_CLASSES] };

    /// A plan applying the same spec to every message class.
    pub const fn uniform(spec: FaultSpec) -> FaultPlan {
        FaultPlan { default: spec, overrides: [None; NUM_CLASSES] }
    }

    /// Overrides the spec for one message class (builder-style).
    pub fn with_class(mut self, class: MsgClass, spec: FaultSpec) -> FaultPlan {
        self.overrides[class.index()] = Some(spec);
        self
    }

    /// The effective spec for `class`.
    pub fn spec_for(&self, class: MsgClass) -> FaultSpec {
        self.overrides[class.index()].unwrap_or(self.default)
    }

    /// Whether every class is fault-free (the plan is a no-op).
    pub fn is_none(&self) -> bool {
        self.default.is_none() && self.overrides.iter().all(|o| o.is_none_or(|s| s.is_none()))
    }

    /// Validates the default spec and every override.
    pub fn try_validate(&self) -> Result<(), String> {
        self.default.try_validate().map_err(|e| format!("default: {e}"))?;
        for class in MsgClass::ALL {
            if let Some(spec) = self.overrides[class.index()] {
                spec.try_validate().map_err(|e| format!("{}: {e}", class.name()))?;
            }
        }
        Ok(())
    }

    /// Panicking form of [`FaultPlan::try_validate`].
    ///
    /// # Panics
    /// Panics on the first invalid spec.
    pub fn validate(&self) {
        if let Err(msg) = self.try_validate() {
            panic!("{msg}");
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::NONE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fault_free_spec_always_delivers() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert_eq!(FaultSpec::NONE.outcome(&mut rng), FaultOutcome::Deliver);
        }
    }

    #[test]
    fn outcomes_follow_probabilities() {
        let spec = FaultSpec { drop_prob: 0.2, dup_prob: 0.1, delay_prob: 0.1 };
        spec.validate();
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0u32; 4];
        let n = 20_000;
        for _ in 0..n {
            match spec.outcome(&mut rng) {
                FaultOutcome::Drop => counts[0] += 1,
                FaultOutcome::Duplicate => counts[1] += 1,
                FaultOutcome::Delay => counts[2] += 1,
                FaultOutcome::Deliver => counts[3] += 1,
                FaultOutcome::Partitioned => unreachable!("outcome() never draws Partitioned"),
            }
        }
        let frac = |c: u32| c as f64 / n as f64;
        assert!((frac(counts[0]) - 0.2).abs() < 0.02, "drop {}", frac(counts[0]));
        assert!((frac(counts[1]) - 0.1).abs() < 0.02, "dup {}", frac(counts[1]));
        assert!((frac(counts[2]) - 0.1).abs() < 0.02, "delay {}", frac(counts[2]));
        assert!((frac(counts[3]) - 0.6).abs() < 0.02, "deliver {}", frac(counts[3]));
    }

    #[test]
    fn outcome_sequence_is_deterministic_under_seed() {
        let spec = FaultSpec { drop_prob: 0.3, dup_prob: 0.2, delay_prob: 0.2 };
        let draw = |seed| -> Vec<FaultOutcome> {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..64).map(|_| spec.outcome(&mut rng)).collect()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
    }

    #[test]
    fn every_spec_consumes_one_draw() {
        // Changing the spec must not shift downstream RNG consumption.
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        FaultSpec::NONE.outcome(&mut a);
        FaultSpec { drop_prob: 0.5, dup_prob: 0.2, delay_prob: 0.1 }.outcome(&mut b);
        let next_a: f64 = a.gen();
        let next_b: f64 = b.gen();
        assert_eq!(next_a, next_b);
    }

    #[test]
    #[should_panic(expected = "sum to")]
    fn oversubscribed_probabilities_panic() {
        FaultSpec { drop_prob: 0.6, dup_prob: 0.3, delay_prob: 0.2 }.validate();
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn negative_probability_panics() {
        FaultSpec { drop_prob: -0.1, dup_prob: 0.0, delay_prob: 0.0 }.validate();
    }

    #[test]
    fn try_validate_reports_instead_of_panicking() {
        assert!(FaultSpec::NONE.try_validate().is_ok());
        let err = FaultSpec { drop_prob: 0.6, dup_prob: 0.3, delay_prob: 0.2 }
            .try_validate()
            .unwrap_err();
        assert!(err.contains("sum to"), "{err}");
        let err = FaultSpec { drop_prob: 1.5, dup_prob: 0.0, delay_prob: 0.0 }
            .try_validate()
            .unwrap_err();
        assert!(err.contains("outside [0, 1]"), "{err}");
    }

    #[test]
    fn sum_check_is_exact() {
        // 0.33 + 0.56 + 0.11 is mathematically 1 but sums a few ULPs above
        // 1.0 in f64: under the old 1e-12 tolerance it validated even
        // though `Deliver` was unreachable; now it is rejected.
        let spec = FaultSpec { drop_prob: 0.33, dup_prob: 0.56, delay_prob: 0.11 };
        assert!(spec.drop_prob + spec.dup_prob + spec.delay_prob > 1.0);
        assert!(spec.try_validate().is_err());
        // An exact partition built from dyadic fractions still validates.
        assert!(FaultSpec { drop_prob: 0.25, dup_prob: 0.25, delay_prob: 0.5 }
            .try_validate()
            .is_ok());
    }

    #[test]
    fn plan_resolves_overrides_and_validates() {
        let lossy = FaultSpec { drop_prob: 0.3, dup_prob: 0.1, delay_prob: 0.1 };
        let plan = FaultPlan::uniform(lossy).with_class(MsgClass::Response, FaultSpec::NONE);
        plan.validate();
        assert_eq!(plan.spec_for(MsgClass::MbrOriginated), lossy);
        assert_eq!(plan.spec_for(MsgClass::Response), FaultSpec::NONE);
        assert!(!plan.is_none());
        assert!(FaultPlan::NONE.is_none());
        assert!(FaultPlan::uniform(FaultSpec::NONE).is_none());

        let bad = FaultPlan::NONE.with_class(
            MsgClass::Query,
            FaultSpec { drop_prob: 2.0, dup_prob: 0.0, delay_prob: 0.0 },
        );
        let err = bad.try_validate().unwrap_err();
        assert!(err.contains("Queries"), "override errors name the class: {err}");
    }

    #[test]
    fn plan_round_trips_through_serde() {
        let plan =
            FaultPlan::uniform(FaultSpec { drop_prob: 0.2, dup_prob: 0.05, delay_prob: 0.05 })
                .with_class(MsgClass::MbrInternal, FaultSpec::NONE);
        let json = serde_json::to_string(&plan).expect("serialize");
        let back: FaultPlan = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, plan);
    }

    #[test]
    fn plan_accepts_reproducers_from_before_the_class_table_grew() {
        // A reproducer recorded at NUM_CLASSES == 9 carries a 9-slot
        // overrides array; the trailing (newer) classes must pad to None
        // and fall back to the default spec.
        let json = r#"{
            "default": {"drop_prob": 0.2, "dup_prob": 0.0, "delay_prob": 0.0},
            "overrides": [
                null, null, null,
                {"drop_prob": 1.0, "dup_prob": 0.0, "delay_prob": 0.0},
                null, null, null, null, null
            ]
        }"#;
        let plan: FaultPlan = serde_json::from_str(json).expect("legacy plan must parse");
        assert_eq!(plan.spec_for(MsgClass::Query).drop_prob, 1.0);
        assert_eq!(plan.spec_for(MsgClass::AggPush), plan.default);
        assert_eq!(plan.spec_for(MsgClass::AggNotify), plan.default);

        // An array longer than the taxonomy is a real error, not padding.
        let overlong = format!(
            r#"{{"default": {{"drop_prob": 0.0, "dup_prob": 0.0, "delay_prob": 0.0}},
                "overrides": [{}]}}"#,
            ["null"; NUM_CLASSES + 1].join(", ")
        );
        assert!(serde_json::from_str::<FaultPlan>(&overlong).is_err());
    }

    #[test]
    fn partition_plan_sides_and_schedule() {
        let plan =
            PartitionPlan { islands: vec![vec![1, 4], vec![2]], split_round: 3, heal_round: 6 };
        plan.validate();
        assert_eq!(plan.num_sides(), 3);
        assert_eq!(plan.side_of(0), 0);
        assert_eq!(plan.side_of(1), 1);
        assert_eq!(plan.side_of(4), 1);
        assert_eq!(plan.side_of(2), 2);
        assert_eq!(plan.side_of(99), 0);
        assert!(plan.severs(0, 1));
        assert!(!plan.severs(2, 2));
        assert!(!plan.active_at(2));
        assert!(plan.active_at(3));
        assert!(plan.active_at(5));
        assert!(!plan.active_at(6));
    }

    #[test]
    fn partition_plan_rejects_bad_shapes() {
        let overlap =
            PartitionPlan { islands: vec![vec![1], vec![1]], split_round: 0, heal_round: 1 };
        assert!(overlap.try_validate().unwrap_err().contains("two islands"));
        let backwards = PartitionPlan { islands: vec![vec![1]], split_round: 4, heal_round: 4 };
        assert!(backwards.try_validate().unwrap_err().contains("heals at round"));
        let hollow = PartitionPlan { islands: vec![vec![]], split_round: 0, heal_round: 1 };
        assert!(hollow.try_validate().unwrap_err().contains("non-empty"));
        let none = PartitionPlan { islands: vec![], split_round: 0, heal_round: 1 };
        assert!(none.try_validate().unwrap_err().contains("at least one"));
    }

    #[test]
    fn partition_plan_round_trips_through_serde() {
        let plan =
            PartitionPlan { islands: vec![vec![0, 3], vec![7]], split_round: 2, heal_round: 5 };
        let json = serde_json::to_string(&plan).expect("serialize");
        let back: PartitionPlan = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, plan);
    }

    #[test]
    fn outcome_never_draws_partitioned() {
        // Partition suppression is set membership, not chance: no spec can
        // roll a `Partitioned` outcome, whatever the probabilities.
        let spec = FaultSpec { drop_prob: 0.4, dup_prob: 0.3, delay_prob: 0.3 };
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..2000 {
            assert_ne!(spec.outcome(&mut rng), FaultOutcome::Partitioned);
        }
    }

    proptest! {
        /// `outcome()` consumes exactly one RNG draw per delivery no matter
        /// what the spec is, so replay schedules stay aligned when fault
        /// probabilities change between runs of the same seed.
        #[test]
        fn outcome_consumes_exactly_one_draw(
            seed in any::<u64>(),
            a in 0.0f64..0.5,
            b in 0.0f64..0.25,
            c in 0.0f64..0.25,
        ) {
            let spec = FaultSpec { drop_prob: a, dup_prob: b, delay_prob: c };
            spec.validate();
            let mut faulted = StdRng::seed_from_u64(seed);
            let mut control = StdRng::seed_from_u64(seed);
            spec.outcome(&mut faulted);
            let _skip: f64 = control.gen();
            prop_assert_eq!(faulted.gen::<u64>(), control.gen::<u64>());
        }
    }
}
