//! Message-level fault injection for simulation testing.
//!
//! The paper's middleware is built on soft state, so it must tolerate the
//! usual best-effort network pathologies: periodic (NPER) messages that are
//! lost, duplicated, or arrive a period late. [`FaultSpec`] describes the
//! probabilities of each pathology and draws per-delivery [`FaultOutcome`]s
//! from a caller-supplied RNG, keeping runs deterministic under a seed —
//! the fault-injection harness replays the exact same outcome sequence from
//! a recorded seed.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-delivery fault probabilities. The three probabilities partition the
/// unit interval together with normal delivery, so they must sum to at most
/// one.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Probability a delivery is dropped entirely.
    pub drop_prob: f64,
    /// Probability a delivery is duplicated (processed twice).
    pub dup_prob: f64,
    /// Probability a delivery is delayed to the next period.
    pub delay_prob: f64,
}

impl FaultSpec {
    /// A fault-free network: every delivery succeeds.
    pub const NONE: FaultSpec = FaultSpec { drop_prob: 0.0, dup_prob: 0.0, delay_prob: 0.0 };

    /// Validates the probabilities.
    ///
    /// # Panics
    /// Panics if any probability is outside `[0, 1]` or they sum past one.
    pub fn validate(&self) {
        for (name, p) in
            [("drop", self.drop_prob), ("dup", self.dup_prob), ("delay", self.delay_prob)]
        {
            assert!((0.0..=1.0).contains(&p), "{name} probability {p} outside [0, 1]");
        }
        let sum = self.drop_prob + self.dup_prob + self.delay_prob;
        assert!(sum <= 1.0 + 1e-12, "fault probabilities sum to {sum} > 1");
    }

    /// Whether any fault can occur at all.
    pub fn is_none(&self) -> bool {
        self.drop_prob == 0.0 && self.dup_prob == 0.0 && self.delay_prob == 0.0
    }

    /// Draws the outcome for one delivery. Consumes exactly one `f64` from
    /// the RNG (even for the fault-free spec), so schedules stay aligned
    /// when fault probabilities change between replays of the same seed.
    pub fn outcome<R: Rng + ?Sized>(&self, rng: &mut R) -> FaultOutcome {
        let u: f64 = rng.gen();
        if u < self.drop_prob {
            FaultOutcome::Drop
        } else if u < self.drop_prob + self.dup_prob {
            FaultOutcome::Duplicate
        } else if u < self.drop_prob + self.dup_prob + self.delay_prob {
            FaultOutcome::Delay
        } else {
            FaultOutcome::Deliver
        }
    }
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec::NONE
    }
}

/// What happens to one delivery under a [`FaultSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultOutcome {
    /// Delivered normally.
    Deliver,
    /// Lost; the receiver never processes it.
    Drop,
    /// Processed twice (e.g. a retransmission raced the original).
    Duplicate,
    /// Deferred by one period.
    Delay,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fault_free_spec_always_delivers() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert_eq!(FaultSpec::NONE.outcome(&mut rng), FaultOutcome::Deliver);
        }
    }

    #[test]
    fn outcomes_follow_probabilities() {
        let spec = FaultSpec { drop_prob: 0.2, dup_prob: 0.1, delay_prob: 0.1 };
        spec.validate();
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0u32; 4];
        let n = 20_000;
        for _ in 0..n {
            match spec.outcome(&mut rng) {
                FaultOutcome::Drop => counts[0] += 1,
                FaultOutcome::Duplicate => counts[1] += 1,
                FaultOutcome::Delay => counts[2] += 1,
                FaultOutcome::Deliver => counts[3] += 1,
            }
        }
        let frac = |c: u32| c as f64 / n as f64;
        assert!((frac(counts[0]) - 0.2).abs() < 0.02, "drop {}", frac(counts[0]));
        assert!((frac(counts[1]) - 0.1).abs() < 0.02, "dup {}", frac(counts[1]));
        assert!((frac(counts[2]) - 0.1).abs() < 0.02, "delay {}", frac(counts[2]));
        assert!((frac(counts[3]) - 0.6).abs() < 0.02, "deliver {}", frac(counts[3]));
    }

    #[test]
    fn outcome_sequence_is_deterministic_under_seed() {
        let spec = FaultSpec { drop_prob: 0.3, dup_prob: 0.2, delay_prob: 0.2 };
        let draw = |seed| -> Vec<FaultOutcome> {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..64).map(|_| spec.outcome(&mut rng)).collect()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
    }

    #[test]
    fn every_spec_consumes_one_draw() {
        // Changing the spec must not shift downstream RNG consumption.
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        FaultSpec::NONE.outcome(&mut a);
        FaultSpec { drop_prob: 0.5, dup_prob: 0.2, delay_prob: 0.1 }.outcome(&mut b);
        let next_a: f64 = a.gen();
        let next_b: f64 = b.gen();
        assert_eq!(next_a, next_b);
    }

    #[test]
    #[should_panic(expected = "sum to")]
    fn oversubscribed_probabilities_panic() {
        FaultSpec { drop_prob: 0.6, dup_prob: 0.3, delay_prob: 0.2 }.validate();
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn negative_probability_panics() {
        FaultSpec { drop_prob: -0.1, dup_prob: 0.0, delay_prob: 0.0 }.validate();
    }
}
