//! The discrete-event engine.
//!
//! A binary-heap priority queue of `(time, seq, event)` with stable FIFO
//! tie-breaking. The event type is a caller-supplied enum; the caller's
//! handler receives `(&mut Engine, &mut State, time, event)` and schedules
//! follow-up events, which keeps the engine free of any domain knowledge
//! (this mirrors the "timed events on all nodes" replay of the Chord
//! simulator the paper used).

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the earliest event pops first,
        // breaking ties by insertion order.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event scheduler over events of type `E`.
pub struct Engine<E> {
    clock: SimTime,
    queue: BinaryHeap<Scheduled<E>>,
    seq: u64,
    processed: u64,
    tick_log: Option<TickLog>,
}

/// Bounded log of dispatched events: `(sim_time_ms, dispatch_seq)` pairs,
/// ring-evicted past `capacity`. Feeds the `engine` lane of the
/// chrome://tracing export (see `dsi-trace`), giving timelines a scheduler
/// track to correlate overlay hops against. Disabled by default —
/// dispatch pays nothing but a `None` check.
#[derive(Debug, Clone)]
struct TickLog {
    capacity: usize,
    ticks: VecDeque<(u64, u64)>,
    dropped: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an engine at time zero with an empty queue.
    pub fn new() -> Self {
        Engine {
            clock: SimTime::ZERO,
            queue: BinaryHeap::new(),
            seq: 0,
            processed: 0,
            tick_log: None,
        }
    }

    /// Start logging every dispatched event as a `(time_ms, seq)` tick into
    /// a ring buffer of at most `capacity` entries (oldest evicted first).
    pub fn enable_tick_log(&mut self, capacity: usize) {
        self.tick_log =
            Some(TickLog { capacity: capacity.max(1), ticks: VecDeque::new(), dropped: 0 });
    }

    /// Dispatched-event ticks captured so far (empty when logging is off).
    pub fn tick_log(&self) -> Vec<(u64, u64)> {
        self.tick_log.as_ref().map_or_else(Vec::new, |l| l.ticks.iter().copied().collect())
    }

    /// Ticks evicted by the ring bound since logging was enabled.
    pub fn ticks_dropped(&self) -> u64 {
        self.tick_log.as_ref().map_or(0, |l| l.dropped)
    }

    #[inline]
    fn log_tick(&mut self, at: SimTime) {
        if let Some(log) = &mut self.tick_log {
            if log.ticks.len() == log.capacity {
                log.ticks.pop_front();
                log.dropped += 1;
            }
            log.ticks.push_back((at.as_ms(), self.processed));
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Number of events processed so far.
    #[inline]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    #[inline]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` lies in the past.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(at >= self.clock, "cannot schedule into the past ({at} < {})", self.clock);
        self.queue.push(Scheduled { at, seq: self.seq, event });
        self.seq += 1;
    }

    /// Schedules `event` `delay_ms` after the current time.
    pub fn schedule_after(&mut self, delay_ms: u64, event: E) {
        let at = self.clock + delay_ms;
        self.queue.push(Scheduled { at, seq: self.seq, event });
        self.seq += 1;
    }

    /// Runs until the queue drains or the clock would pass `until`
    /// (events at exactly `until` still fire). The handler may schedule
    /// more events on the engine it is handed.
    pub fn run_until<S, F>(&mut self, state: &mut S, until: SimTime, mut handler: F)
    where
        F: FnMut(&mut Engine<E>, &mut S, SimTime, E),
    {
        while let Some(next) = self.queue.peek() {
            if next.at > until {
                break;
            }
            // dsilint: allow(hot-path-unwrap, peek above proves the heap is non-empty)
            let Scheduled { at, event, .. } = self.queue.pop().expect("peeked");
            self.clock = at;
            self.processed += 1;
            self.log_tick(at);
            handler(self, state, at, event);
        }
        if self.clock < until {
            self.clock = until;
        }
    }

    /// Pops a single event (advancing the clock), if any.
    pub fn step(&mut self) -> Option<(SimTime, E)> {
        let Scheduled { at, event, .. } = self.queue.pop()?;
        self.clock = at;
        self.processed += 1;
        self.log_tick(at);
        Some((at, event))
    }
}

/// A deterministic holding pen for delayed messages: items parked with a
/// due time, drained in `(due_time, insertion_order)` order once the clock
/// reaches them.
///
/// This is the re-delivery half of [`crate::faults::FaultOutcome::Delay`]:
/// the fault layer parks the message here instead of delivering it, and the
/// driver drains the queue at each tick so a message delayed at period *n*
/// re-delivers at period *n + 1*. Items carry no ordering requirements of
/// their own — FIFO among equal due times keeps replays byte-identical.
pub struct DelayQueue<M> {
    heap: BinaryHeap<Scheduled<M>>,
    seq: u64,
}

impl<M> Default for DelayQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> DelayQueue<M> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        DelayQueue { heap: BinaryHeap::new(), seq: 0 }
    }

    /// Number of parked items.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue holds nothing.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Parks `item` until the clock reaches `due`.
    pub fn push(&mut self, due: SimTime, item: M) {
        self.heap.push(Scheduled { at: due, seq: self.seq, event: item });
        self.seq += 1;
    }

    /// Due time of the earliest parked item, if any.
    pub fn next_due(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Removes and returns every item whose due time is `<= now`, earliest
    /// first, FIFO among ties.
    pub fn drain_due(&mut self, now: SimTime) -> Vec<M> {
        let mut out = Vec::new();
        while self.heap.peek().is_some_and(|s| s.at <= now) {
            // dsilint: allow(hot-path-unwrap, peek above proves the heap is non-empty)
            out.push(self.heap.pop().expect("peeked").event);
        }
        out
    }

    /// Drops every parked item for which `keep` returns false (e.g. items
    /// addressed to a node that has since crashed). Due times and insertion
    /// order of survivors are preserved.
    pub fn retain(&mut self, mut keep: impl FnMut(&M) -> bool) {
        let survivors: Vec<Scheduled<M>> = self.heap.drain().filter(|s| keep(&s.event)).collect();
        self.heap = survivors.into_iter().collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        Tick(u32),
        Stop,
    }

    #[test]
    fn fires_in_time_order() {
        let mut eng = Engine::new();
        eng.schedule_at(SimTime::from_ms(30), Ev::Tick(3));
        eng.schedule_at(SimTime::from_ms(10), Ev::Tick(1));
        eng.schedule_at(SimTime::from_ms(20), Ev::Tick(2));
        let mut seen = Vec::new();
        eng.run_until(&mut seen, SimTime::from_secs(1), |_, seen, t, ev| {
            if let Ev::Tick(n) = ev {
                seen.push((t.as_ms(), n));
            }
        });
        assert_eq!(seen, vec![(10, 1), (20, 2), (30, 3)]);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut eng = Engine::new();
        for i in 0..5 {
            eng.schedule_at(SimTime::from_ms(7), Ev::Tick(i));
        }
        let mut seen = Vec::new();
        eng.run_until(&mut seen, SimTime::from_ms(7), |_, seen, _, ev| {
            if let Ev::Tick(n) = ev {
                seen.push(n);
            }
        });
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn handler_can_reschedule() {
        // A periodic process: each tick schedules the next until the horizon.
        let mut eng = Engine::new();
        eng.schedule_at(SimTime::ZERO, Ev::Tick(0));
        let mut count = 0u32;
        eng.run_until(&mut count, SimTime::from_ms(95), |eng, count, _, ev| {
            if let Ev::Tick(_) = ev {
                *count += 1;
                eng.schedule_after(10, Ev::Tick(0));
            }
        });
        // Ticks at 0,10,...,90 fire; the one at 100 is past the horizon.
        assert_eq!(count, 10);
        assert_eq!(eng.now(), SimTime::from_ms(95));
        assert_eq!(eng.pending(), 1);
    }

    #[test]
    fn run_until_stops_at_horizon_and_resumes() {
        let mut eng = Engine::new();
        eng.schedule_at(SimTime::from_ms(50), Ev::Stop);
        let mut fired = false;
        eng.run_until(&mut fired, SimTime::from_ms(40), |_, fired, _, _| *fired = true);
        assert!(!fired);
        assert_eq!(eng.now(), SimTime::from_ms(40));
        eng.run_until(&mut fired, SimTime::from_ms(60), |_, fired, _, _| *fired = true);
        assert!(fired);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut eng: Engine<Ev> = Engine::new();
        eng.schedule_at(SimTime::from_ms(10), Ev::Stop);
        let mut s = ();
        eng.run_until(&mut s, SimTime::from_ms(10), |_, _, _, _| {});
        eng.schedule_at(SimTime::from_ms(5), Ev::Stop);
    }

    #[test]
    fn tick_log_records_dispatches_and_bounds_memory() {
        let mut eng = Engine::new();
        // Off by default: nothing captured.
        eng.schedule_at(SimTime::from_ms(1), Ev::Tick(0));
        eng.step();
        assert!(eng.tick_log().is_empty());

        eng.enable_tick_log(3);
        for i in 0..5u32 {
            eng.schedule_at(SimTime::from_ms(10 + i as u64), Ev::Tick(i));
        }
        let mut s = ();
        eng.run_until(&mut s, SimTime::from_ms(100), |_, _, _, _| {});
        // Ring bound: only the last 3 of 5 dispatches survive.
        let ticks = eng.tick_log();
        assert_eq!(ticks.len(), 3);
        assert_eq!(eng.ticks_dropped(), 2);
        assert_eq!(ticks[0].0, 12);
        assert_eq!(ticks[2], (14, 6)); // 6 events processed in total
    }

    #[test]
    fn delay_queue_drains_in_due_then_fifo_order() {
        let mut q: DelayQueue<u32> = DelayQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.next_due(), None);
        q.push(SimTime::from_ms(20), 1);
        q.push(SimTime::from_ms(10), 2);
        q.push(SimTime::from_ms(10), 3);
        q.push(SimTime::from_ms(30), 4);
        assert_eq!(q.len(), 4);
        assert_eq!(q.next_due(), Some(SimTime::from_ms(10)));
        // Nothing due yet.
        assert_eq!(q.drain_due(SimTime::from_ms(5)), Vec::<u32>::new());
        // Due items come out earliest-first, FIFO among equal due times.
        assert_eq!(q.drain_due(SimTime::from_ms(20)), vec![2, 3, 1]);
        assert_eq!(q.len(), 1);
        assert_eq!(q.drain_due(SimTime::from_ms(30)), vec![4]);
        assert!(q.is_empty());
    }

    #[test]
    fn delay_queue_retain_preserves_order() {
        let mut q: DelayQueue<u32> = DelayQueue::new();
        for (t, v) in [(10u64, 1u32), (10, 2), (10, 3), (5, 4)] {
            q.push(SimTime::from_ms(t), v);
        }
        q.retain(|v| v % 2 == 1);
        assert_eq!(q.len(), 2);
        assert_eq!(q.drain_due(SimTime::from_ms(100)), vec![1, 3]);
    }

    #[test]
    fn delay_queue_delivers_items_parked_across_a_heal_boundary() {
        // A message delayed during a partition window must still come out
        // once its due time passes the heal tick — the queue itself is
        // oblivious to the partition, so nothing may leak or be dropped.
        let mut q: DelayQueue<&str> = DelayQueue::new();
        let heal = SimTime::from_ms(50);
        q.push(SimTime::from_ms(40), "due-during-split");
        q.push(SimTime::from_ms(60), "due-after-heal");
        // Drain at the last split-side tick: only the first item is due.
        assert_eq!(q.drain_due(SimTime::from_ms(45)), vec!["due-during-split"]);
        assert_eq!(q.len(), 1, "the in-flight item must survive the heal");
        // Nothing fires exactly at the heal tick (due 60 > 50)...
        assert_eq!(q.drain_due(heal), Vec::<&str>::new());
        // ...and the first post-heal drain delivers it — no leak.
        assert_eq!(q.drain_due(SimTime::from_ms(60)), vec!["due-after-heal"]);
        assert!(q.is_empty());
    }

    #[test]
    fn delay_queue_fifo_ordering_holds_across_split_and_heal() {
        // Items parked before the split, during it, and at the heal tick
        // with one shared due time must drain in insertion order: the
        // split/heal transition may not perturb the (due, seq) sort key.
        let mut q: DelayQueue<u32> = DelayQueue::new();
        let due = SimTime::from_ms(100);
        q.push(due, 1); // pre-split
        q.push(due, 2); // during split
        q.push(due, 3); // at the heal tick
        q.push(SimTime::from_ms(90), 4); // earlier due still wins
        assert_eq!(q.drain_due(SimTime::from_ms(120)), vec![4, 1, 2, 3]);
        // Survivor filtering (e.g. a node that crashed while split) keeps
        // FIFO order among the remaining equal-due items.
        q.push(due, 5);
        q.push(due, 6);
        q.push(due, 7);
        q.retain(|&v| v != 6);
        assert_eq!(q.drain_due(SimTime::from_ms(200)), vec![5, 7]);
    }

    #[test]
    fn step_pops_one() {
        let mut eng = Engine::new();
        eng.schedule_at(SimTime::from_ms(5), Ev::Tick(9));
        let (t, ev) = eng.step().unwrap();
        assert_eq!(t.as_ms(), 5);
        assert_eq!(ev, Ev::Tick(9));
        assert!(eng.step().is_none());
        assert_eq!(eng.processed(), 1);
    }
}
