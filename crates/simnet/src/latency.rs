//! Configurable per-hop latency models.
//!
//! The paper's simulator charges a constant 50 ms per overlay hop; real
//! deployments see heterogeneous links. The model enumerates the cost
//! functions the harness can charge — the constant paper model is the
//! default, and the alternatives are used for latency-sensitivity runs.

use crate::net::HOP_DELAY_MS;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How long one overlay hop takes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LatencyModel {
    /// Constant delay per hop (the paper's model at 50 ms).
    Constant(u64),
    /// Uniformly distributed per-hop delay in `[lo, hi]` ms.
    Uniform(u64, u64),
    /// Heavy-tailed-ish: base delay plus an exponential tail with the given
    /// mean (rounded to ms) — models occasional congested links.
    BaseWithTail {
        /// Deterministic floor, in ms.
        base_ms: u64,
        /// Mean of the exponential excess, in ms.
        tail_mean_ms: u64,
    },
}

impl Default for LatencyModel {
    /// The paper's constant 50 ms/hop.
    fn default() -> Self {
        LatencyModel::Constant(HOP_DELAY_MS)
    }
}

impl LatencyModel {
    /// Samples the delay of one hop.
    pub fn sample_hop_ms<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        match *self {
            LatencyModel::Constant(ms) => ms,
            LatencyModel::Uniform(lo, hi) => {
                assert!(lo <= hi, "uniform latency bounds inverted");
                rng.gen_range(lo..=hi)
            }
            LatencyModel::BaseWithTail { base_ms, tail_mean_ms } => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                base_ms + (-u.ln() * tail_mean_ms as f64).round() as u64
            }
        }
    }

    /// Samples the end-to-end delay of a path with `hops` hops.
    pub fn sample_path_ms<R: Rng + ?Sized>(&self, hops: u32, rng: &mut R) -> u64 {
        (0..hops).map(|_| self.sample_hop_ms(rng)).sum()
    }

    /// Expected delay per hop, in ms.
    pub fn mean_hop_ms(&self) -> f64 {
        match *self {
            LatencyModel::Constant(ms) => ms as f64,
            LatencyModel::Uniform(lo, hi) => (lo + hi) as f64 / 2.0,
            LatencyModel::BaseWithTail { base_ms, tail_mean_ms } => (base_ms + tail_mean_ms) as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_is_the_papers_constant() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = LatencyModel::default();
        assert_eq!(m.sample_hop_ms(&mut rng), 50);
        assert_eq!(m.sample_path_ms(4, &mut rng), 200);
        assert_eq!(m.mean_hop_ms(), 50.0);
    }

    #[test]
    fn uniform_respects_bounds_and_mean() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = LatencyModel::Uniform(20, 80);
        let samples: Vec<u64> = (0..20_000).map(|_| m.sample_hop_ms(&mut rng)).collect();
        assert!(samples.iter().all(|&s| (20..=80).contains(&s)));
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        assert!((mean - 50.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn tail_model_exceeds_base_and_matches_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = LatencyModel::BaseWithTail { base_ms: 30, tail_mean_ms: 20 };
        let samples: Vec<u64> = (0..20_000).map(|_| m.sample_hop_ms(&mut rng)).collect();
        assert!(samples.iter().all(|&s| s >= 30));
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        assert!((mean - 50.0).abs() < 1.5, "mean {mean}");
        // The tail produces occasional large delays.
        assert!(samples.iter().any(|&s| s > 100));
    }

    #[test]
    fn path_delay_sums_hops() {
        let mut rng = StdRng::seed_from_u64(4);
        let m = LatencyModel::Uniform(10, 10);
        assert_eq!(m.sample_path_ms(7, &mut rng), 70);
        assert_eq!(m.sample_path_ms(0, &mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "bounds inverted")]
    fn inverted_uniform_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = LatencyModel::Uniform(80, 20).sample_hop_ms(&mut rng);
    }
}
