//! Poisson arrival processes (the paper models query arrivals as Poisson
//! with an average rate of 2 queries/second).

use rand::Rng;

/// Exponential inter-arrival sampler for a Poisson process.
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    rate_per_sec: f64,
}

impl PoissonArrivals {
    /// Creates a process with the given average rate (events per second).
    ///
    /// # Panics
    /// Panics unless the rate is positive and finite.
    pub fn new(rate_per_sec: f64) -> Self {
        assert!(
            rate_per_sec > 0.0 && rate_per_sec.is_finite(),
            "arrival rate must be positive and finite"
        );
        PoissonArrivals { rate_per_sec }
    }

    /// The configured rate.
    #[inline]
    pub fn rate(&self) -> f64 {
        self.rate_per_sec
    }

    /// Samples the next inter-arrival gap in milliseconds (at least 1 ms so
    /// the simulation always advances).
    pub fn next_gap_ms<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        // Inverse-CDF sampling: gap = -ln(U) / rate.
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let gap_s = -u.ln() / self.rate_per_sec;
        ((gap_s * 1000.0).round() as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mean_gap_matches_rate() {
        let mut rng = StdRng::seed_from_u64(42);
        let p = PoissonArrivals::new(2.0); // 2/s => mean gap 500 ms
        let n = 20_000;
        let total: u64 = (0..n).map(|_| p.next_gap_ms(&mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 500.0).abs() < 15.0, "mean gap {mean} ms");
    }

    #[test]
    fn gaps_are_positive() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = PoissonArrivals::new(1000.0); // very fast process
        for _ in 0..1000 {
            assert!(p.next_gap_ms(&mut rng) >= 1);
        }
    }

    #[test]
    fn coefficient_of_variation_is_exponential_like() {
        // For an exponential distribution the std deviation equals the mean.
        let mut rng = StdRng::seed_from_u64(3);
        let p = PoissonArrivals::new(5.0);
        let samples: Vec<f64> = (0..20_000).map(|_| p.next_gap_ms(&mut rng) as f64).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        let cv = var.sqrt() / mean;
        assert!((cv - 1.0).abs() < 0.1, "coefficient of variation {cv}");
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_rate_panics() {
        let _ = PoissonArrivals::new(0.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let p = PoissonArrivals::new(2.0);
        let a: Vec<u64> =
            (0..10).scan(StdRng::seed_from_u64(9), |r, _| Some(p.next_gap_ms(r))).collect();
        let b: Vec<u64> =
            (0..10).scan(StdRng::seed_from_u64(9), |r, _| Some(p.next_gap_ms(r))).collect();
        assert_eq!(a, b);
    }
}
