//! Property-based tests of the discrete-event engine and metrics.

use dsi_simnet::{Engine, Histogram, Metrics, MsgClass, SimTime};
use proptest::prelude::*;

/// Events pop in nondecreasing time order, FIFO within a timestamp
/// (plain randomized test: proptest's Result-based assertions don't thread
/// through the engine's `FnMut` handler).
#[test]
fn engine_orders_events_randomized() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..200 {
        let n = rng.gen_range(0..80);
        let times: Vec<u64> = (0..n).map(|_| rng.gen_range(0..500)).collect();
        let mut eng: Engine<(u64, usize)> = Engine::new();
        for (seq, &t) in times.iter().enumerate() {
            eng.schedule_at(SimTime::from_ms(t), (t, seq));
        }
        let mut fired: Vec<(u64, usize)> = Vec::new();
        eng.run_until(&mut fired, SimTime::from_ms(1000), |_, fired, at, ev| {
            assert_eq!(at.as_ms(), ev.0, "clock must equal event time");
            fired.push(ev);
        });
        assert_eq!(fired.len(), times.len());
        for pair in fired.windows(2) {
            assert!(pair[0].0 <= pair[1].0, "time order violated");
            if pair[0].0 == pair[1].0 {
                assert!(pair[0].1 < pair[1].1, "FIFO tie-break violated");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Message conservation: a route of length L records exactly L-1
    /// messages, split base + transit.
    #[test]
    fn route_recording_conserves_messages(path in prop::collection::vec(0u64..50, 2..12)) {
        let mut m = Metrics::new();
        m.record_route(MsgClass::Query, MsgClass::QueryTransit, &path);
        let total = m.total(MsgClass::Query) + m.total(MsgClass::QueryTransit);
        prop_assert_eq!(total as usize, path.len() - 1);
        prop_assert_eq!(m.total(MsgClass::Query), 1);
    }

    /// Per-node load times node count equals twice the message total.
    #[test]
    fn load_accounting_balances(
        edges in prop::collection::vec((0u64..8, 0u64..8), 1..50),
    ) {
        let mut m = Metrics::new();
        for &(a, b) in &edges {
            m.record_message(MsgClass::Response, a, b);
        }
        let nodes: Vec<u64> = (0..8).collect();
        let sum: f64 = m.per_node_load(&nodes, 1.0).iter().map(|(_, l)| l).sum();
        prop_assert!((sum - 2.0 * edges.len() as f64).abs() < 1e-9);
    }

    /// Histograms conserve sample counts and bucket all values.
    #[test]
    fn histogram_conserves_mass(
        values in prop::collection::vec(0.0f64..100.0, 0..100),
        width in 0.5f64..10.0,
    ) {
        let h = Histogram::build(&values, width);
        prop_assert_eq!(h.total() as usize, values.len());
        let bucket_sum: u64 = h.buckets().iter().map(|(_, c)| c).sum();
        prop_assert_eq!(bucket_sum as usize, values.len());
    }

    /// SimTime arithmetic is consistent.
    #[test]
    fn simtime_arithmetic(a in 0u64..1_000_000, d in 0u64..1_000_000) {
        let t = SimTime::from_ms(a);
        prop_assert_eq!((t + d) - t, d);
        prop_assert_eq!(t.saturating_sub(t + d), SimTime::ZERO);
        prop_assert_eq!(SimTime::from_secs(a / 1000).as_ms(), (a / 1000) * 1000);
    }
}
