//! Ablations over the design choices DESIGN.md calls out, measured in wall
//! clock here (message-count ablations live in the `expt_ablations`
//! binary):
//!
//! * sequential vs bidirectional range multicast (§IV-C vs §VI-B);
//! * MBR batching factor ζ;
//! * flat range multicast vs hierarchical escalation for wide queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsi_chord::{IdSpace, RangeStrategy};
use dsi_core::{run_experiment, ExperimentConfig, SimilarityKind, SimilarityQuery};
use dsi_hierarchy::{HierarchicalIndex, Hierarchy};
use dsi_simnet::SimTime;
use std::hint::black_box;

fn cfg(n: usize) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::with_nodes(n);
    cfg.warmup_ms = 10_000;
    cfg.measure_ms = 10_000;
    cfg
}

fn bench_strategy(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_strategy");
    group.sample_size(10);
    for (name, strat) in
        [("sequential", RangeStrategy::Sequential), ("bidirectional", RangeStrategy::Bidirectional)]
    {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut config = cfg(100);
                config.strategy = strat;
                black_box(run_experiment(&config))
            })
        });
    }
    group.finish();
}

fn bench_zeta(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_zeta");
    group.sample_size(10);
    for zeta in [1usize, 5, 10, 20] {
        group.bench_with_input(BenchmarkId::from_parameter(zeta), &zeta, |b, &zeta| {
            b.iter(|| {
                let mut config = cfg(100);
                config.workload.mbr_batch = zeta;
                black_box(run_experiment(&config))
            })
        });
    }
    group.finish();
}

fn bench_wide_query_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_wide_query");
    group.sample_size(20);
    let space = IdSpace::new(20);
    let ids: Vec<u64> = (0..243u64).map(|i| space.hash_str(&format!("dc-{i}"))).collect();
    let ring = dsi_chord::Ring::with_nodes(space, ids.iter().copied());
    let index = HierarchicalIndex::new(Hierarchy::build(&ids, 3), space);
    let target: Vec<f64> = (0..64).map(|i| 0.3 + (i as f64 * 0.5).sin()).collect();
    let q = SimilarityQuery::from_target(
        1,
        ids[0],
        target,
        0.5,
        SimilarityKind::Subsequence,
        2,
        0,
        SimTime::from_secs(60),
    );
    let (lo, hi) = dsi_core::radius_key_range(space, q.feature.first_real(), q.radius);

    group.bench_function("flat_multicast_plan", |b| {
        b.iter(|| black_box(dsi_chord::multicast(&ring, ids[0], lo, hi, RangeStrategy::Sequential)))
    });
    group.bench_function("hierarchy_escalation", |b| b.iter(|| black_box(index.route_query(&q))));
    group.finish();
}

criterion_group!(benches, bench_strategy, bench_zeta, bench_wide_query_routing);
criterion_main!(benches);
