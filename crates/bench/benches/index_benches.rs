//! Hot-path microbenchmarks for the interval-indexed matching layer and the
//! batch ingest pipeline: indexed vs linear `local_candidates`, publish-side
//! `matching_subscriptions`, and `ingest_batch` vs a `post_value` loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsi_core::{Cluster, ClusterConfig, DataCenter, SimilarityKind, SimilarityQuery, StoredMbr};
use dsi_dsp::{Complex64, FeatureVector, Mbr, Normalization};
use dsi_simnet::SimTime;
use std::hint::black_box;

/// Deterministic low-discrepancy point in [-1, 1) — keeps the shard layout
/// stable across runs without rng plumbing.
fn point(i: usize, salt: f64) -> f64 {
    (((i as f64) * 0.754_877_666 + salt).fract()) * 2.0 - 1.0
}

fn shard_with(stored: usize) -> DataCenter {
    let mut dc = DataCenter::new(7);
    for i in 0..stored {
        let (re, im) = (point(i, 0.13), point(i, 0.57));
        let w = 0.01 + 0.02 * point(i, 0.91).abs();
        dc.store_mbr(StoredMbr {
            stream: (i % (stored / 4).max(1)) as u32,
            mbr: Mbr::from_corners(vec![re - w, im - w], vec![re + w, im + w]),
            origin: 1,
            expires: SimTime::from_ms(1_000_000),
        });
    }
    dc
}

fn query(id: u64, re: f64, im: f64, radius: f64) -> SimilarityQuery {
    SimilarityQuery {
        id,
        client: 0,
        feature: FeatureVector::new(vec![Complex64::new(re, im)], Normalization::UnitNorm),
        target: Vec::new(),
        radius,
        kind: SimilarityKind::Subsequence,
        aggregator: 0,
        expires: SimTime::from_ms(u64::MAX / 2),
    }
}

fn bench_local_candidates(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_candidates");
    let now = SimTime::from_ms(10);
    for stored in [1_000usize, 10_000] {
        let dc = shard_with(stored);
        let queries: Vec<SimilarityQuery> = (0..64)
            .map(|i| query(i, point(i as usize, 0.29), point(i as usize, 0.71), 0.05))
            .collect();
        group.bench_with_input(BenchmarkId::new("indexed", stored), &stored, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let q = &queries[i % queries.len()];
                i += 1;
                black_box(dc.local_candidates(q, now))
            })
        });
        group.bench_with_input(BenchmarkId::new("linear", stored), &stored, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let q = &queries[i % queries.len()];
                i += 1;
                black_box(dc.local_candidates_linear(q, now))
            })
        });
    }
    group.finish();
}

fn bench_matching_subscriptions(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching_subscriptions");
    let now = SimTime::from_ms(10);
    for subs in [1_000usize, 5_000] {
        let mut dc = DataCenter::new(7);
        for i in 0..subs {
            dc.subscribe_similarity(query(i as u64, point(i, 0.13), point(i, 0.57), 0.05));
        }
        group.bench_with_input(BenchmarkId::from_parameter(subs), &subs, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let (re, im, w) = (point(i, 0.31), point(i, 0.67), 0.02);
                i += 1;
                let mbr = Mbr::from_corners(vec![re - w, im - w], vec![re + w, im + w]);
                black_box(dc.matching_subscriptions(&mbr, now).len())
            })
        });
    }
    group.finish();
}

fn bench_ingest_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("ingest");
    group.sample_size(20);
    let num_streams = 256u32;
    let build = || {
        let mut cfg = ClusterConfig::new(50);
        cfg.kind = SimilarityKind::Subsequence;
        let mut cluster = Cluster::new(cfg);
        for i in 0..num_streams {
            cluster.register_stream(&format!("bench-ingest-{i}"), (i % 50) as usize);
        }
        cluster
    };

    group.bench_function("post_value_loop", |b| {
        let mut cluster = build();
        let mut tick = 0u64;
        b.iter(|| {
            let now = SimTime::from_ms(tick * 100);
            for s in 0..num_streams {
                let v = 5.0 + ((s as f64) * 0.37 + (tick as f64) * 0.11).sin();
                black_box(cluster.post_value(s, v, now));
            }
            tick += 1;
        })
    });

    group.bench_function("ingest_batch", |b| {
        let mut cluster = build();
        let mut tick = 0u64;
        b.iter(|| {
            let now = SimTime::from_ms(tick * 100);
            let values: Vec<(u32, f64)> = (0..num_streams)
                .map(|s| (s, 5.0 + ((s as f64) * 0.37 + (tick as f64) * 0.11).sin()))
                .collect();
            tick += 1;
            black_box(cluster.ingest_batch(&values, now))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_local_candidates, bench_matching_subscriptions, bench_ingest_batch);
criterion_main!(benches);
