//! Micro-benchmarks of the signal-processing substrate: the FFT vs naive
//! DFT gap and the paper's central per-item cost claim — the Eq. 5 sliding
//! update is O(k) per arriving value, versus O(w log w) for recomputation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsi_dsp::dft::dft;
use dsi_dsp::fft::fft;
use dsi_dsp::{extract_features, FeatureExtractor, Normalization, SlidingDft, SlidingWindow};
use std::hint::black_box;

fn signal(n: usize) -> Vec<f64> {
    (0..n).map(|i| (i as f64 * 0.17).sin() * 3.0 + (i % 7) as f64).collect()
}

fn bench_transforms(c: &mut Criterion) {
    let mut group = c.benchmark_group("transform");
    group.sample_size(20);
    for n in [64usize, 256, 1024] {
        let x = signal(n);
        group.bench_with_input(BenchmarkId::new("naive_dft", n), &x, |b, x| {
            b.iter(|| black_box(dft(black_box(x))))
        });
        group.bench_with_input(BenchmarkId::new("fft", n), &x, |b, x| {
            b.iter(|| black_box(fft(black_box(x))))
        });
    }
    group.finish();
}

fn bench_per_item_summarization(c: &mut Criterion) {
    let mut group = c.benchmark_group("per_item");
    group.sample_size(20);
    let w = 64;
    let k = 2;
    let xs = signal(4096);

    // Eq. 5: O(k) incremental update per item.
    group.bench_function("sliding_dft_update", |b| {
        let mut sdft = SlidingDft::new(w, k + 1);
        let mut win = SlidingWindow::new(w);
        let mut i = 0;
        b.iter(|| {
            let x = xs[i % xs.len()];
            let ev = win.push(x);
            sdft.update(x, ev);
            i += 1;
            black_box(sdft.coeffs()[0])
        })
    });

    // The alternative the paper rules out: recompute the window DFT per item.
    group.bench_function("recompute_dft_per_item", |b| {
        let mut win = SlidingWindow::new(w);
        for &x in xs.iter().take(w) {
            win.push(x);
        }
        let mut i = w;
        b.iter(|| {
            win.push(xs[i % xs.len()]);
            i += 1;
            black_box(dft(&win.to_vec())[0])
        })
    });

    // Full incremental pipeline (window + stats + normalization).
    group.bench_function("feature_extractor_update", |b| {
        let mut ex = FeatureExtractor::new(w, k, Normalization::UnitNorm);
        let mut i = 0;
        b.iter(|| {
            let out = ex.update(xs[i % xs.len()]);
            i += 1;
            black_box(out)
        })
    });

    // The batch path (what a naive implementation would run per item).
    let window: Vec<f64> = xs[..w].to_vec();
    group.bench_function("batch_extract_features", |b| {
        b.iter(|| black_box(extract_features(black_box(&window), Normalization::UnitNorm, k)))
    });

    group.finish();
}

criterion_group!(benches, bench_transforms, bench_per_item_summarization);
criterion_main!(benches);
