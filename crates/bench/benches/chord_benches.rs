//! Benchmarks of the Chord substrate: SHA-1 hashing, lookup scaling with
//! ring size (the O(log N) claim), and range-multicast planning.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsi_chord::{multicast, sha1, IdSpace, RangeStrategy, Ring};
use std::hint::black_box;

fn build_ring(n: u64) -> Ring {
    let space = IdSpace::new(32);
    Ring::with_nodes(space, (0..n).map(|i| space.hash_str(&format!("node-{i}"))))
}

fn bench_sha1(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha1");
    group.sample_size(30);
    for size in [20usize, 256, 4096] {
        let data = vec![0xA5u8; size];
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, d| {
            b.iter(|| black_box(sha1(black_box(d))))
        });
    }
    group.finish();
}

fn bench_lookup_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("lookup");
    group.sample_size(20);
    for n in [64u64, 256, 1024] {
        let ring = build_ring(n);
        let origin = ring.iter_ids().next().unwrap();
        group.bench_with_input(BenchmarkId::new("iterative", n), &ring, |b, ring| {
            let mut key = 7u64;
            b.iter(|| {
                key = key.wrapping_mul(2654435761) % (1u64 << 32);
                black_box(ring.lookup(origin, key).owner)
            })
        });
    }
    group.finish();
}

fn bench_ring_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("ring_build");
    group.sample_size(10);
    for n in [128u64, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(build_ring(n)))
        });
    }
    group.finish();
}

fn bench_multicast_planning(c: &mut Criterion) {
    let mut group = c.benchmark_group("multicast_plan");
    group.sample_size(20);
    let ring = build_ring(512);
    let origin = ring.iter_ids().next().unwrap();
    let space = ring.space();
    // A range covering ~10% of the circle (the radius-0.1 query shape).
    let lo = space.modulus() / 4;
    let hi = lo + space.modulus() / 10;
    for (name, strat) in
        [("sequential", RangeStrategy::Sequential), ("bidirectional", RangeStrategy::Bidirectional)]
    {
        group.bench_function(name, |b| {
            b.iter(|| black_box(multicast(&ring, origin, lo, hi, strat)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sha1,
    bench_lookup_scaling,
    bench_ring_construction,
    bench_multicast_planning
);
criterion_main!(benches);
