//! End-to-end simulation throughput: wall-clock cost of replaying the
//! paper's workload at different system sizes, and middleware hot paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsi_core::{run_experiment, Cluster, ClusterConfig, ExperimentConfig, SimilarityKind};
use dsi_simnet::SimTime;
use std::hint::black_box;

fn quick_cfg(n: usize) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::with_nodes(n);
    cfg.warmup_ms = 10_000;
    cfg.measure_ms = 10_000;
    cfg
}

fn bench_experiment(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiment_20s_sim");
    group.sample_size(10);
    for n in [50usize, 200] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(run_experiment(&quick_cfg(n))))
        });
    }
    group.finish();
}

fn bench_middleware_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("middleware");
    group.sample_size(20);

    // post_value: the per-item fast path (summarize + batch + maybe route).
    group.bench_function("post_value", |b| {
        let mut cfg = ClusterConfig::new(64);
        cfg.kind = SimilarityKind::Subsequence;
        let mut cluster = Cluster::new(cfg);
        let sid = cluster.register_stream("bench-stream", 0);
        let mut i = 0u64;
        b.iter(|| {
            let v = 10.0 + ((i as f64) * 0.1).sin();
            cluster.post_value(sid, v, SimTime::from_ms(i));
            i += 1;
        })
    });

    // post_similarity_query: feature extraction + range multicast planning.
    group.bench_function("post_similarity_query", |b| {
        let mut cfg = ClusterConfig::new(64);
        cfg.kind = SimilarityKind::Subsequence;
        let mut cluster = Cluster::new(cfg);
        let target: Vec<f64> = (0..64).map(|i| (i as f64 * 0.2).sin() + 2.0).collect();
        let mut i = 0u64;
        b.iter(|| {
            let qid = cluster.post_similarity_query(
                (i % 64) as usize,
                target.clone(),
                0.1,
                1000, // expire fast so the registry stays small
                SimTime::from_ms(i),
            );
            if i.is_multiple_of(256) {
                cluster.purge_queries(SimTime::from_ms(i));
            }
            i += 1;
            black_box(qid)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_experiment, bench_middleware_paths);
criterion_main!(benches);
