//! Throughput-under-churn curves, driven by the fault-injection harness.
//! Run: `cargo run --release -p dsi-bench --bin churn_curves [--quick]`
//!
//! Sweeps the NPER message-fault level while seeded scenarios pound the
//! cluster with churn, bursts and query storms, and reports sustained
//! index throughput (MBR shipments and match notifications per simulated
//! second) plus overlay message cost. Every point is averaged over several
//! seeds; all runs keep the five invariant oracles armed, so a curve point
//! is only reported for runs the oracles certified.

use dsi_bench::write_json;
use dsi_faultsim::{run_scenario, Scenario, ScenarioConfig};
use dsi_simnet::FaultSpec;

#[derive(serde::Serialize)]
struct CurvePoint {
    fault_prob: f64,
    churn_events_per_min: f64,
    mbr_ships_per_s: f64,
    notifications_per_s: f64,
    seeds: usize,
}

fn main() {
    let quick = dsi_bench::quick_mode();
    let seeds: Vec<u64> = if quick { (500..503).collect() } else { (500..508).collect() };
    let num_events = if quick { 60 } else { 150 };

    // Fault level sweep: drop/dup/delay applied in equal parts.
    let levels = [0.0, 0.1, 0.2, 0.3, 0.45];
    let mut curve = Vec::new();

    println!("== Throughput under churn (fault-injection harness) ==");
    println!(
        "  {:>10} {:>14} {:>14} {:>16} {:>7}",
        "fault p", "churn ev/min", "MBR ships/s", "notifications/s", "seeds"
    );
    for &p in &levels {
        let faults = FaultSpec { drop_prob: p / 2.0, dup_prob: p / 4.0, delay_prob: p / 4.0 };
        let mut ships = 0.0;
        let mut notifs = 0.0;
        let mut churn = 0.0;
        let mut ok_runs = 0usize;
        for &seed in &seeds {
            let cfg = ScenarioConfig {
                num_events,
                num_nodes: 12,
                num_streams: 10,
                ..ScenarioConfig::default().with_faults(faults)
            };
            let scenario = Scenario::generate(seed, cfg);
            let churn_events = scenario
                .events
                .iter()
                .filter(|e| {
                    matches!(
                        e,
                        dsi_faultsim::FaultEvent::CrashNode { .. }
                            | dsi_faultsim::FaultEvent::JoinNode { .. }
                    )
                })
                .count();
            let report = run_scenario(&scenario);
            if let Some(v) = &report.violation {
                eprintln!("  seed {seed}: ORACLE VIOLATION ({}): {}", v.oracle, v.detail);
                continue;
            }
            let secs = report.final_time_ms as f64 / 1000.0;
            ships += report.mbr_ships as f64 / secs;
            notifs += report.notifications as f64 / secs;
            churn += churn_events as f64 / (secs / 60.0);
            ok_runs += 1;
        }
        assert!(ok_runs > 0, "every seed at fault level {p} violated an invariant");
        let point = CurvePoint {
            fault_prob: p,
            churn_events_per_min: churn / ok_runs as f64,
            mbr_ships_per_s: ships / ok_runs as f64,
            notifications_per_s: notifs / ok_runs as f64,
            seeds: ok_runs,
        };
        println!(
            "  {:>10.2} {:>14.1} {:>14.1} {:>16.1} {:>7}",
            point.fault_prob,
            point.churn_events_per_min,
            point.mbr_ships_per_s,
            point.notifications_per_s,
            point.seeds
        );
        curve.push(point);
    }

    write_json("churn_curves.json", &curve);
}
