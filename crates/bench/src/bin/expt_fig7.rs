//! Regenerates Fig. 7(a)/(b): message overhead per event, radius 0.1 / 0.2.
//! Run: `cargo run --release -p dsi-bench --bin expt_fig7 [--quick]`
fn main() {
    let (narrow, wide, text) = dsi_bench::experiments::fig7(dsi_bench::quick_mode());
    print!("{text}");
    dsi_bench::write_json("fig7a.json", &narrow);
    dsi_bench::write_json("fig7b.json", &wide);
}
