//! First measured performance baseline (`BENCH_ingest.json`).
//!
//! Measures the three hot paths this repo's perf work targets, in
//! machine-readable form so future PRs can track the trajectory:
//!
//! 1. `local_candidates` — interval-indexed vs brute-force linear scan at a
//!    10k-MBR shard (per-op p50/p99 ns, ops/sec, candidates/sec, speedup);
//! 2. batch ingest — `Cluster::ingest_batch` vs a sequential `post_value`
//!    loop (items/sec, per-item ns);
//! 3. the multi-seed experiment driver — `parallel_seed_reports` vs a
//!    sequential loop over the 50-node Table I workload (wall-clock);
//! 4. the observability layer — a traced golden-style run, reporting
//!    exact per-class latency/hop percentiles from the causal trace
//!    (`dsi-trace`) and writing a chrome://tracing timeline to
//!    `target/bench_trace.trace.json` for manual inspection.
//!
//! Parallel speedups scale with available cores (`workers` is recorded in
//! the output; override with `DSI_WORKERS`). `--quick` / `DSI_QUICK=1`
//! shrinks every population for CI smoke runs.

use dsi_bench::{parallel_seed_reports, quick_mode, worker_count};
use dsi_core::{
    run_experiment, run_experiment_traced, Cluster, ClusterConfig, DataCenter, ExperimentConfig,
    SimilarityKind, SimilarityQuery, StoredMbr,
};
use dsi_dsp::{Complex64, FeatureVector, Mbr, Normalization};
use dsi_simnet::{MsgClass, SimTime};
use dsi_trace::{write_chrome_trace, TraceSummary};
use serde_json::Value;
use std::hint::black_box;
use std::time::Instant;

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn f64v(x: f64) -> Value {
    Value::F64(x)
}

fn u64v(x: u64) -> Value {
    Value::U64(x)
}

/// Deterministic xorshift64* generator — keeps the baseline reproducible
/// without pulling rng plumbing into a bench binary.
struct XorShift(u64);

impl XorShift {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in [-1, 1).
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 52) as f64 * 2.0 - 1.0
    }
}

fn query(id: u64, re: f64, im: f64, radius: f64) -> SimilarityQuery {
    SimilarityQuery {
        id,
        client: 0,
        feature: FeatureVector::new(vec![Complex64::new(re, im)], Normalization::UnitNorm),
        target: Vec::new(),
        radius,
        kind: SimilarityKind::Subsequence,
        aggregator: 0,
        expires: SimTime::from_ms(u64::MAX / 2),
    }
}

/// Per-op latency stats over a batch of measured durations.
fn percentiles(mut ns: Vec<u64>) -> (u64, u64) {
    ns.sort_unstable();
    let p = |q: f64| ns[((ns.len() - 1) as f64 * q) as usize];
    (p(0.50), p(0.99))
}

fn bench_local_candidates(stored: usize, num_queries: usize) -> Value {
    let mut rng = XorShift(0x5eed_0001);
    let mut dc = DataCenter::new(7);
    for i in 0..stored {
        let (re, im) = (rng.unit(), rng.unit());
        let w = 0.01 + 0.02 * (rng.unit().abs());
        dc.store_mbr(StoredMbr {
            stream: (i % (stored / 4).max(1)) as u32,
            mbr: Mbr::from_corners(vec![re - w, im - w], vec![re + w, im + w]),
            origin: 1,
            expires: SimTime::from_ms(1_000_000),
        });
    }
    let now = SimTime::from_ms(10);
    let queries: Vec<SimilarityQuery> =
        (0..num_queries).map(|i| query(i as u64, rng.unit(), rng.unit(), 0.05)).collect();

    let run = |indexed: bool| {
        let mut lat = Vec::with_capacity(queries.len());
        let mut candidates = 0usize;
        let start = Instant::now();
        for q in &queries {
            let t0 = Instant::now();
            let out = if indexed {
                dc.local_candidates(q, now)
            } else {
                dc.local_candidates_linear(q, now)
            };
            lat.push(t0.elapsed().as_nanos() as u64);
            candidates += black_box(out).len();
        }
        let total_s = start.elapsed().as_secs_f64();
        let (p50, p99) = percentiles(lat);
        (total_s, p50, p99, candidates)
    };

    // Linear first so the indexed pass cannot benefit from warmed caches.
    let (lin_s, lin_p50, lin_p99, lin_c) = run(false);
    let (idx_s, idx_p50, idx_p99, idx_c) = run(true);
    assert_eq!(lin_c, idx_c, "indexed and linear scans must agree");

    obj(vec![
        ("stored_mbrs", u64v(stored as u64)),
        ("queries", u64v(num_queries as u64)),
        (
            "indexed",
            obj(vec![
                ("ops_per_sec", f64v(num_queries as f64 / idx_s)),
                ("candidates_per_sec", f64v(idx_c as f64 / idx_s)),
                ("p50_ns", u64v(idx_p50)),
                ("p99_ns", u64v(idx_p99)),
            ]),
        ),
        (
            "linear",
            obj(vec![
                ("ops_per_sec", f64v(num_queries as f64 / lin_s)),
                ("candidates_per_sec", f64v(lin_c as f64 / lin_s)),
                ("p50_ns", u64v(lin_p50)),
                ("p99_ns", u64v(lin_p99)),
            ]),
        ),
        ("speedup", f64v(lin_s / idx_s)),
    ])
}

fn bench_matching_subscriptions(subs: usize, probes: usize) -> Value {
    let mut rng = XorShift(0x5eed_0002);
    let mut dc = DataCenter::new(7);
    for i in 0..subs {
        dc.subscribe_similarity(query(i as u64, rng.unit(), rng.unit(), 0.05));
    }
    let now = SimTime::from_ms(10);
    let boxes: Vec<Mbr> = (0..probes)
        .map(|_| {
            let (re, im, w) = (rng.unit(), rng.unit(), 0.02);
            Mbr::from_corners(vec![re - w, im - w], vec![re + w, im + w])
        })
        .collect();
    let mut lat = Vec::with_capacity(boxes.len());
    let mut matched = 0usize;
    let start = Instant::now();
    for mbr in &boxes {
        let t0 = Instant::now();
        matched += black_box(dc.matching_subscriptions(mbr, now)).len();
        lat.push(t0.elapsed().as_nanos() as u64);
    }
    let total_s = start.elapsed().as_secs_f64();
    let (p50, p99) = percentiles(lat);
    obj(vec![
        ("subscriptions", u64v(subs as u64)),
        ("probes", u64v(probes as u64)),
        ("ops_per_sec", f64v(probes as f64 / total_s)),
        ("matches_per_sec", f64v(matched as f64 / total_s)),
        ("p50_ns", u64v(p50)),
        ("p99_ns", u64v(p99)),
    ])
}

fn bench_ingest(num_streams: usize, ticks: u64) -> Value {
    let build = || {
        let mut cfg = ClusterConfig::new(50);
        cfg.kind = SimilarityKind::Subsequence;
        let mut cluster = Cluster::new(cfg);
        for i in 0..num_streams {
            cluster.register_stream(&format!("bench-ingest-{i}"), i % 50);
        }
        cluster
    };
    let mut rng = XorShift(0x5eed_0003);
    let values: Vec<Vec<(u32, f64)>> = (0..ticks)
        .map(|_| (0..num_streams as u32).map(|s| (s, 5.0 + rng.unit())).collect())
        .collect();

    // Best-of-7 per lane: one-shot wall clocks on a shared box swing far
    // more than the lane difference being measured, and the regression
    // guard compares these numbers across runs.
    const REPS: usize = 7;
    let mut seq_s = f64::INFINITY;
    let mut par_s = f64::INFINITY;
    let mut best_seq_lat = Vec::new();
    let mut best_par_lat = Vec::new();

    // Both lanes record a per-tick latency series. Wall clocks on a
    // shared 1-core box are dominated by scheduler/quota tail ticks
    // (p99 is ~20x p50), so the lane comparison below uses per-tick
    // medians — the tails hit whichever lane happens to be running
    // when the cgroup budget empties, not the lane's code.
    let run_seq = |seq_s: &mut f64, best_lat: &mut Vec<u64>| {
        let mut seq = build();
        let mut lat = Vec::with_capacity(values.len());
        let start = Instant::now();
        for (t, tick) in values.iter().enumerate() {
            let now = SimTime::from_ms(t as u64 * 100);
            let t0 = Instant::now();
            for &(s, v) in tick {
                black_box(seq.post_value(s, v, now));
            }
            lat.push(t0.elapsed().as_nanos() as u64 / num_streams as u64);
        }
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed < *seq_s {
            *seq_s = elapsed;
            *best_lat = lat;
        }
    };
    let run_par = |par_s: &mut f64, best_lat: &mut Vec<u64>| {
        let mut par = build();
        let mut lat = Vec::with_capacity(values.len());
        // The emission buffer is caller-owned and reused across ticks, the
        // way a long-running driver would hold it.
        let mut emitted = Vec::new();
        let start = Instant::now();
        for (t, tick) in values.iter().enumerate() {
            let now = SimTime::from_ms(t as u64 * 100);
            let t0 = Instant::now();
            par.ingest_batch_into(tick, now, &mut emitted);
            black_box(&emitted);
            lat.push(t0.elapsed().as_nanos() as u64 / num_streams as u64);
        }
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed < *par_s {
            *par_s = elapsed;
            *best_lat = lat;
        }
    };
    for rep in 0..REPS {
        // Alternate lane order per rep so neither lane systematically
        // aligns with external scheduler/quota periods.
        if rep % 2 == 0 {
            run_seq(&mut seq_s, &mut best_seq_lat);
            run_par(&mut par_s, &mut best_par_lat);
        } else {
            run_par(&mut par_s, &mut best_par_lat);
            run_seq(&mut seq_s, &mut best_seq_lat);
        }
    }
    let (seq_p50, seq_p99) = percentiles(best_seq_lat);
    let (par_p50, par_p99) = percentiles(best_par_lat);

    let items = (ticks as usize * num_streams) as f64;
    obj(vec![
        ("streams", u64v(num_streams as u64)),
        ("ticks", u64v(ticks)),
        ("sequential_items_per_sec", f64v(items / seq_s)),
        ("parallel_items_per_sec", f64v(items / par_s)),
        ("sequential_p50_ns_per_item", u64v(seq_p50)),
        ("sequential_p99_ns_per_item", u64v(seq_p99)),
        ("parallel_p50_ns_per_item", u64v(par_p50)),
        ("parallel_p99_ns_per_item", u64v(par_p99)),
        // Lane comparison over median tick latency (tail-robust); the
        // wall-clock throughputs above are reported raw alongside it.
        ("speedup", f64v(seq_p50 as f64 / par_p50 as f64)),
    ])
}

fn bench_driver_sweep(num_seeds: u64, warmup_ms: u64, measure_ms: u64) -> Value {
    let make_cfg = |seed: u64| {
        let mut cfg = ExperimentConfig::with_nodes(50); // Table I workload
        cfg.seed = seed;
        cfg.warmup_ms = warmup_ms;
        cfg.measure_ms = measure_ms;
        cfg
    };
    let seeds: Vec<u64> = (0..num_seeds).map(|i| 42 + i).collect();

    let start = Instant::now();
    let seq: Vec<_> = seeds.iter().map(|&s| run_experiment(&make_cfg(s))).collect();
    let seq_s = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let par = parallel_seed_reports(&seeds, make_cfg);
    let par_s = start.elapsed().as_secs_f64();

    for (a, b) in seq.iter().zip(par.iter()) {
        assert_eq!(
            serde_json::to_string(a).unwrap(),
            serde_json::to_string(b).unwrap(),
            "parallel sweep diverged from sequential"
        );
    }

    obj(vec![
        ("nodes", u64v(50)),
        ("seeds", u64v(num_seeds)),
        ("sim_ms_per_seed", u64v(warmup_ms + measure_ms)),
        ("sequential_s", f64v(seq_s)),
        ("parallel_s", f64v(par_s)),
        ("speedup", f64v(seq_s / par_s)),
        ("bit_identical", Value::Bool(true)),
    ])
}

/// Observability baseline: one traced golden-style experiment. Reports
/// trace volume, the stable digest, and exact per-class latency/hop
/// percentiles, and drops a loadable chrome://tracing timeline into
/// `target/` (an inspection artifact, deliberately not committed).
fn bench_trace(num_nodes: usize, warmup_ms: u64, measure_ms: u64) -> Value {
    let mut cfg = ExperimentConfig::with_nodes(num_nodes);
    cfg.seed = 20_050_404;
    cfg.warmup_ms = warmup_ms;
    cfg.measure_ms = measure_ms;
    let start = Instant::now();
    let traced = run_experiment_traced(&cfg, 1 << 20);
    let wall_s = start.elapsed().as_secs_f64();

    let names: Vec<&str> = MsgClass::ALL.iter().map(|c| c.name()).collect();
    let summary = TraceSummary::from_tracer(traced.cluster.tracer(), &names);

    let mut buf = Vec::new();
    let records = traced.cluster.tracer().snapshot();
    if write_chrome_trace(&mut buf, &records, &names, &traced.engine_ticks).is_ok() {
        let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/bench_trace.trace.json");
        if std::fs::write(out, &buf).is_ok() {
            eprintln!("[bench_baseline] chrome://tracing timeline: {out}");
        }
    }

    obj(vec![
        ("nodes", u64v(num_nodes as u64)),
        ("sim_ms", u64v(warmup_ms + measure_ms)),
        ("wall_s", f64v(wall_s)),
        ("summary", serde_json::to_value(&summary).expect("summary to json")),
    ])
}

fn main() {
    let quick = quick_mode();
    let (stored, queries) = if quick { (2_000, 200) } else { (10_000, 2_000) };
    let (subs, probes) = if quick { (500, 200) } else { (5_000, 2_000) };
    let (streams, ticks) = if quick { (128, 50) } else { (512, 400) };
    let (seeds, warm, meas) = if quick { (2, 6_000, 6_000) } else { (5, 12_000, 24_000) };
    let (tr_nodes, tr_warm, tr_meas) =
        if quick { (10, 2_000, 4_000) } else { (15, 12_000, 20_000) };

    // Ingest runs first: it is the most allocation-sensitive lane, and
    // measuring it in a fresh heap (before the candidates phase churns
    // through tens of thousands of MBR allocations) keeps the paired
    // sequential/batch comparison free of fragmentation skew.
    eprintln!("[bench_baseline] ingest ({streams} streams x {ticks} ticks)...");
    let ingest = bench_ingest(streams, ticks as u64);
    eprintln!("[bench_baseline] local_candidates ({stored} MBRs, {queries} queries)...");
    let lc = bench_local_candidates(stored, queries);
    eprintln!("[bench_baseline] matching_subscriptions ({subs} subs)...");
    let ms = bench_matching_subscriptions(subs, probes);
    eprintln!("[bench_baseline] driver sweep ({seeds} seeds x 50 nodes)...");
    let sweep = bench_driver_sweep(seeds, warm, meas);
    eprintln!("[bench_baseline] traced run ({tr_nodes} nodes, {} sim-ms)...", tr_warm + tr_meas);
    let trace = bench_trace(tr_nodes, tr_warm, tr_meas);

    let report = obj(vec![
        ("bench", Value::Str("ingest_baseline".to_string())),
        ("quick", Value::Bool(quick)),
        ("workers", u64v(worker_count(usize::MAX) as u64)),
        ("host_cpus", u64v(std::thread::available_parallelism().map_or(1, |n| n.get()) as u64)),
        ("local_candidates", lc),
        ("matching_subscriptions", ms),
        ("ingest", ingest),
        ("driver_sweep", sweep),
        ("trace", trace),
    ]);
    let rendered = serde_json::to_string_pretty(&report).expect("serialize");
    // `DSI_BENCH_OUT` redirects the report (e.g. so CI's regression guard
    // can generate a fresh file without clobbering the committed baseline).
    let path = std::env::var("DSI_BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ingest.json").to_string()
    });
    std::fs::write(&path, &rendered).expect("write BENCH_ingest.json");
    println!("{rendered}");
    eprintln!("[written {path}]");
}
