//! Regenerates Fig. 6(a): average per-node message load vs node count.
//! Run: `cargo run --release -p dsi-bench --bin expt_fig6a [--quick]`
fn main() {
    let (reports, text) = dsi_bench::experiments::fig6a(dsi_bench::quick_mode());
    print!("{text}");
    dsi_bench::write_json("fig6a.json", &reports);
}
