//! Regenerates the Fig. 1 Chord scenario.
//! Run: `cargo run -p dsi-bench --bin expt_fig1`
fn main() {
    print!("{}", dsi_bench::experiments::fig1());
}
