//! Message-count ablations over the design choices DESIGN.md calls out.
//! Run: `cargo run --release -p dsi-bench --bin expt_ablations [--quick]`
//!
//! * ζ (MBR batching factor): update traffic vs candidate precision (§IV-G);
//! * MBR routing-width bound on/off;
//! * sequential vs bidirectional range multicast: propagation depth (§VI-B);
//! * similarity flavor: rotation-prone z-norm routing vs stable unit-norm
//!   routing (the DESIGN.md §5 substitution);
//! * retained coefficients k: candidate precision vs summary size.

use dsi_bench::{quick_mode, write_json};
use dsi_chord::RangeStrategy;
use dsi_core::{run_experiment, ExperimentConfig, SimilarityKind, SystemReport};

fn base(n: usize, quick: bool) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::with_nodes(n);
    cfg.warmup_ms = if quick { 12_000 } else { 30_000 };
    cfg.measure_ms = if quick { 15_000 } else { 45_000 };
    cfg
}

fn precision(r: &SystemReport) -> f64 {
    if r.candidates == 0 {
        1.0
    } else {
        r.matches_delivered as f64 / r.candidates as f64
    }
}

fn main() {
    let quick = quick_mode();
    let n = 200;
    let mut results: Vec<(String, SystemReport)> = Vec::new();

    println!("== Ablation: MBR batching factor zeta (N = {n}) ==");
    println!(
        "  {:>5} {:>12} {:>12} {:>12} {:>12}",
        "zeta", "MBR events/s", "MBR load", "candidates", "precision"
    );
    for zeta in [1usize, 5, 10, 20] {
        let mut cfg = base(n, quick);
        cfg.workload.mbr_batch = zeta;
        let r = run_experiment(&cfg);
        println!(
            "  {:>5} {:>12.1} {:>12.2} {:>12} {:>12.3}",
            zeta,
            r.events.mbrs as f64 / r.duration_s,
            r.load.mbrs + r.load.mbrs_internal + r.load.mbrs_in_transit,
            r.candidates,
            precision(&r)
        );
        results.push((format!("zeta-{zeta}"), r));
    }

    println!("\n== Ablation: MBR routing-width bound (N = {n}, zeta = 10) ==");
    println!("  {:>10} {:>14} {:>14}", "bound", "MBRint load", "MBRint hops");
    for (name, bound) in [("none", None), ("0.05", Some(0.05)), ("0.02", Some(0.02))] {
        let mut cfg = base(n, quick);
        cfg.workload.mbr_max_width = bound;
        let r = run_experiment(&cfg);
        println!("  {:>10} {:>14.3} {:>14.2}", name, r.load.mbrs_internal, r.hops.mbr_internal);
        results.push((format!("width-{name}"), r));
    }

    println!("\n== Ablation: range multicast strategy (N = {n}) ==");
    println!(
        "  {:>14} {:>16} {:>16} {:>12}",
        "strategy", "q-internal hops", "mbr-internal hops", "total load"
    );
    for (name, strat) in
        [("sequential", RangeStrategy::Sequential), ("bidirectional", RangeStrategy::Bidirectional)]
    {
        let mut cfg = base(n, quick);
        cfg.strategy = strat;
        let r = run_experiment(&cfg);
        println!(
            "  {:>14} {:>16.2} {:>16.2} {:>12.2}",
            name,
            r.hops.query_internal,
            r.hops.mbr_internal,
            r.load.total()
        );
        results.push((format!("strategy-{name}"), r));
    }

    println!("\n== Ablation: similarity flavor / routing coefficient (N = {n}) ==");
    println!("  {:>14} {:>14} {:>14}", "flavor", "MBRint/MBR", "total load");
    for (name, kind) in
        [("subsequence", SimilarityKind::Subsequence), ("correlation", SimilarityKind::Correlation)]
    {
        let mut cfg = base(n, quick);
        cfg.kind = kind;
        let r = run_experiment(&cfg);
        println!("  {:>14} {:>14.2} {:>14.2}", name, r.overhead.mbr, r.load.total());
        results.push((format!("flavor-{name}"), r));
    }

    println!("\n== Ablation: retained coefficients k (N = {n}) ==");
    println!("  {:>5} {:>12} {:>12} {:>12}", "k", "candidates", "matches", "precision");
    for k in [1usize, 2, 4, 8] {
        let mut cfg = base(n, quick);
        cfg.workload.num_coeffs = k;
        let r = run_experiment(&cfg);
        println!(
            "  {:>5} {:>12} {:>12} {:>12.3}",
            k,
            r.candidates,
            r.matches_delivered,
            precision(&r)
        );
        results.push((format!("k-{k}"), r));
    }

    println!("\n== Ablation: summarizer — truncated DFT vs top-k Haar wavelets ==");
    summarizer_ablation();

    println!("\n== Ablation: update bandwidth — individual summaries vs one MBR per batch ==");
    println!(
        "  {:>3} {:>5} {:>14} {:>12} {:>8}",
        "k", "zeta", "individual (B)", "batched (B)", "saving"
    );
    for k in [2usize, 4] {
        for zeta in [5usize, 10, 20] {
            let (individual, batched) = dsi_core::batching_saving(k, zeta);
            println!(
                "  {:>3} {:>5} {:>14} {:>12} {:>7.1}x",
                k,
                zeta,
                individual,
                batched,
                individual as f64 / batched as f64
            );
        }
    }

    write_json("ablations.json", &results);
}

/// Energy captured by k-coefficient summaries of the two transforms the
/// paper discusses (DFT here; wavelets in its STARDUST sibling) on the
/// evaluation's stream families. Higher = tighter candidate filtering.
fn summarizer_ablation() {
    use dsi_dsp::dft::{dft, energy};
    use dsi_dsp::{z_normalize, HaarSynopsis};
    use dsi_streamgen::{HostLoad, RandomWalk};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut rng = StdRng::seed_from_u64(7);
    let w = 64usize;
    let mut walk_src = RandomWalk::standard();
    let mut load_src = HostLoad::standard();
    let walks: Vec<Vec<f64>> = (0..50).map(|_| walk_src.take_values(&mut rng, w)).collect();
    let loads: Vec<Vec<f64>> = (0..50).map(|_| load_src.take_values(&mut rng, w)).collect();

    println!("  {:>12} {:>3} {:>12} {:>12}", "family", "k", "DFT energy", "Haar energy");
    for (name, family) in [("random walk", &walks), ("host load", &loads)] {
        for k in [2usize, 4, 8] {
            let mut dft_frac = 0.0;
            let mut haar_frac = 0.0;
            for win in family.iter() {
                let z = z_normalize(win);
                let total = energy(&z).max(1e-12);
                // DFT prefix: bins 1..=k plus mirrors (z-norm kills DC).
                let spec = dft(&z);
                let pref: f64 = (1..=k).map(|f| 2.0 * spec[f].norm_sqr()).sum();
                dft_frac += (pref / total).min(1.0);
                haar_frac += HaarSynopsis::build(&z, 2 * k).energy() / total;
            }
            let n = family.len() as f64;
            println!(
                "  {:>12} {:>3} {:>11.1}% {:>11.1}%",
                name,
                k,
                100.0 * dft_frac / n,
                100.0 * haar_frac / n
            );
        }
    }
    println!("  (top-k Haar is given 2k real coefficients = the DFT's 2k real dims)");
}
