//! Regenerates Table I. Run: `cargo run -p dsi-bench --bin expt_table1`
fn main() {
    print!("{}", dsi_bench::experiments::table1());
}
