//! Million-stream scale sweep (`BENCH_scale.json`).
//!
//! The paper's evaluation stops at 500 nodes and a few thousand streams;
//! the ROADMAP's north star is millions of live streams. This bin sweeps a
//! nodes × streams × workers matrix up to 10k virtual nodes and 1M streams
//! against the SoA summary store + sortable-summary index, reporting:
//!
//! 1. stream registration throughput;
//! 2. batch-ingest throughput (`Cluster::ingest_batch`, items/sec) across
//!    the warm-up and emitting phases, plus emitted-MBR volume;
//! 3. per-node load-distribution statistics over stored summaries —
//!    max, mean, max/mean and Gini (reusing `dsi_core::load`) — the
//!    Fig. 7–9 load-balance lens at 100x the paper's scale;
//! 4. indexed query throughput against the biggest shard, with the
//!    brute-force linear scan as the reference (speedup).
//!
//! `--quick` / `DSI_QUICK=1` shrinks the matrix for CI smoke; the committed
//! `BENCH_scale.json` comes from a full run. Override the output path with
//! `DSI_BENCH_OUT`. The worker axis honours `DSI_WORKERS`.

use dsi_bench::quick_mode;
use dsi_core::{gini, Cluster, ClusterConfig, SimilarityKind, SimilarityQuery};
use dsi_dsp::{Complex64, FeatureVector, Normalization};
use dsi_simnet::SimTime;
use serde_json::Value;
use std::hint::black_box;
use std::time::Instant;

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn f64v(x: f64) -> Value {
    Value::F64(x)
}

fn u64v(x: u64) -> Value {
    Value::U64(x)
}

/// Deterministic xorshift64* generator (same family as `bench_baseline`).
struct XorShift(u64);

impl XorShift {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in [-1, 1).
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 52) as f64 * 2.0 - 1.0
    }
}

/// Per-node load-distribution stats over one `u64` load figure per node.
fn load_stats(loads: &[u64]) -> Value {
    let max = loads.iter().copied().max().unwrap_or(0);
    let total: u64 = loads.iter().sum();
    let mean = if loads.is_empty() { 0.0 } else { total as f64 / loads.len() as f64 };
    let max_over_mean = if mean > 0.0 { max as f64 / mean } else { 0.0 };
    obj(vec![
        ("total", u64v(total)),
        ("max", u64v(max)),
        ("mean", f64v(mean)),
        ("max_over_mean", f64v(max_over_mean)),
        ("gini", f64v(gini(loads))),
    ])
}

/// One (nodes, streams, workers) cell of the sweep.
fn run_config(num_nodes: usize, num_streams: usize, workers: usize) -> Value {
    const WINDOW: usize = 16;
    const NUM_COEFFS: usize = 2;
    const MBR_BATCH: usize = 4;
    // Enough ticks to fill every window and then emit ~3 MBRs per stream.
    let ticks = (WINDOW + 3 * MBR_BATCH) as u64;

    std::env::set_var("DSI_WORKERS", workers.to_string());

    let mut cfg = ClusterConfig::new(num_nodes);
    cfg.kind = SimilarityKind::Subsequence;
    cfg.workload.window_len = WINDOW;
    cfg.workload.num_coeffs = NUM_COEFFS;
    cfg.workload.mbr_batch = MBR_BATCH;
    // No width bound: a uniform emission cadence keeps the throughput
    // figure about ingest, not about early-shipment policy.
    cfg.workload.mbr_max_width = None;

    eprintln!("[bench_scale] {num_nodes} nodes x {num_streams} streams x {workers} workers...");
    let t0 = Instant::now();
    let mut cluster = Cluster::new(cfg);
    let build_s = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    for i in 0..num_streams {
        cluster.register_stream(&format!("scale-{i}"), i % num_nodes);
    }
    let register_s = t0.elapsed().as_secs_f64();

    // Deterministic per-stream phase/level so the emitted MBRs spread over
    // the key space instead of collapsing onto one ring position.
    let mut rng = XorShift(0x5ca1_e000 ^ (num_streams as u64));
    let phases: Vec<f64> = (0..num_streams).map(|_| rng.unit() * 3.0).collect();
    let levels: Vec<f64> = (0..num_streams).map(|_| 5.0 + rng.unit() * 2.0).collect();

    let mut values: Vec<(u32, f64)> = (0..num_streams as u32).map(|s| (s, 0.0)).collect();
    let mut emitted_mbrs = 0u64;
    let t0 = Instant::now();
    for tick in 0..ticks {
        for (i, slot) in values.iter_mut().enumerate() {
            slot.1 = levels[i] + (phases[i] + tick as f64 * 0.31).sin();
        }
        let now = SimTime::from_ms(tick * 100);
        emitted_mbrs += cluster.ingest_batch(&values, now).len() as u64;
    }
    let ingest_s = t0.elapsed().as_secs_f64();
    let items = ticks * num_streams as u64;

    // Per-node load over stored summary replicas.
    let stored: Vec<u64> =
        cluster.node_ids().iter().map(|&n| cluster.node(n).mbr_count() as u64).collect();

    // Indexed vs linear query throughput on the hottest shard.
    let hottest = cluster
        .node_ids()
        .iter()
        .copied()
        .max_by_key(|&n| cluster.node(n).mbr_count())
        .expect("at least one node");
    let dc = cluster.node(hottest);
    let num_queries = 200usize;
    let make_query = |id: usize, coeffs: Vec<Complex64>| SimilarityQuery {
        id: id as u64,
        client: 0,
        feature: FeatureVector::new(coeffs, Normalization::UnitNorm),
        target: Vec::new(),
        radius: 0.05,
        kind: SimilarityKind::Subsequence,
        aggregator: 0,
        expires: SimTime::from_ms(u64::MAX / 2),
    };
    // Selective workload: random probes, mostly missing the data — the
    // index's best case. Dense workload: probes aimed at stored summary
    // midpoints, where the answer itself is large and collection cost
    // dominates — the index's worst case.
    let mut rng_q = XorShift(0xdeca_f000 ^ (num_streams as u64));
    let selective: Vec<SimilarityQuery> = (0..num_queries)
        .map(|i| {
            make_query(
                i,
                (0..NUM_COEFFS).map(|_| Complex64::new(rng_q.unit(), rng_q.unit())).collect(),
            )
        })
        .collect();
    let centers: Vec<Vec<f64>> = dc
        .summaries()
        .step_by((dc.mbr_count() / num_queries).max(1))
        .map(|s| s.low.iter().zip(s.high.iter()).map(|(l, h)| (l + h) * 0.5).collect())
        .collect();
    let dense: Vec<SimilarityQuery> = (0..num_queries)
        .map(|i| {
            let c = &centers[i % centers.len()];
            make_query(
                i,
                (0..NUM_COEFFS)
                    .map(|k| {
                        Complex64::new(
                            c[2 * k] + rng_q.unit() * 0.01,
                            c[2 * k + 1] + rng_q.unit() * 0.01,
                        )
                    })
                    .collect(),
            )
        })
        .collect();
    let now = SimTime::from_ms(ticks * 100);
    let bench_queries = |queries: &[SimilarityQuery]| {
        let run = |indexed: bool| {
            let mut candidates = 0usize;
            let start = Instant::now();
            for q in queries {
                let out = if indexed {
                    dc.local_candidates(q, now)
                } else {
                    dc.local_candidates_linear(q, now)
                };
                candidates += black_box(out).len();
            }
            (start.elapsed().as_secs_f64(), candidates)
        };
        let (lin_s, lin_c) = run(false);
        let (idx_s, idx_c) = run(true);
        assert_eq!(lin_c, idx_c, "indexed and linear scans must agree");
        obj(vec![
            ("queries", u64v(queries.len() as u64)),
            ("indexed_ops_per_sec", f64v(queries.len() as f64 / idx_s)),
            ("linear_ops_per_sec", f64v(queries.len() as f64 / lin_s)),
            ("candidates", u64v(idx_c as u64)),
            ("speedup", f64v(lin_s / idx_s)),
        ])
    };
    let q_selective = bench_queries(&selective);
    let q_dense = bench_queries(&dense);

    obj(vec![
        ("virtual_nodes", u64v(num_nodes as u64)),
        ("streams", u64v(num_streams as u64)),
        ("workers", u64v(workers as u64)),
        ("window_len", u64v(WINDOW as u64)),
        ("mbr_batch", u64v(MBR_BATCH as u64)),
        ("ticks", u64v(ticks)),
        ("build_s", f64v(build_s)),
        ("register_streams_per_sec", f64v(num_streams as f64 / register_s)),
        (
            "ingest",
            obj(vec![
                ("items", u64v(items)),
                ("wall_s", f64v(ingest_s)),
                ("items_per_sec", f64v(items as f64 / ingest_s)),
                ("emitted_mbrs", u64v(emitted_mbrs)),
            ]),
        ),
        ("node_load", obj(vec![("stored_mbrs", load_stats(&stored))])),
        (
            "query_hottest_shard",
            obj(vec![
                ("shard_mbrs", u64v(dc.mbr_count() as u64)),
                ("selective", q_selective),
                ("dense", q_dense),
            ]),
        ),
    ])
}

fn main() {
    let quick = quick_mode();
    let saved_workers = std::env::var("DSI_WORKERS").ok();
    // nodes × streams matrix: the full sweep tops out at 10k virtual nodes
    // and 1M live streams (the ROADMAP scale target).
    let matrix: &[(usize, usize)] = if quick {
        &[(50, 2_000), (200, 10_000)]
    } else {
        &[(100, 10_000), (1_000, 100_000), (10_000, 1_000_000)]
    };
    // Worker axis: 1 (pure sequential fallback) plus the host's parallelism
    // when it has one.
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut worker_axis = vec![1usize];
    if host_cpus > 1 {
        worker_axis.push(host_cpus);
    }

    let mut configs = Vec::new();
    for &(nodes, streams) in matrix {
        for &workers in &worker_axis {
            configs.push(run_config(nodes, streams, workers));
        }
    }
    // Leave the environment as we found it for anything run after us.
    match saved_workers {
        Some(v) => std::env::set_var("DSI_WORKERS", v),
        None => std::env::remove_var("DSI_WORKERS"),
    }

    let report = obj(vec![
        ("bench", Value::Str("scale_sweep".to_string())),
        ("quick", Value::Bool(quick)),
        ("host_cpus", u64v(host_cpus as u64)),
        ("configs", Value::Array(configs)),
    ]);
    let rendered = serde_json::to_string_pretty(&report).expect("serialize");
    let path = std::env::var("DSI_BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scale.json").to_string()
    });
    std::fs::write(&path, &rendered).expect("write BENCH_scale.json");
    println!("{rendered}");
    eprintln!("[written {path}]");
}
