//! Runs every table/figure experiment in sequence and writes all JSON
//! outputs. Run: `cargo run --release -p dsi-bench --bin expt_all [--quick]`
fn main() {
    let quick = dsi_bench::quick_mode();
    let start = std::time::Instant::now();

    println!("{}", dsi_bench::experiments::table1());
    println!("{}", dsi_bench::experiments::fig1());

    let (f3b, t) = dsi_bench::experiments::fig3b();
    println!("{t}");
    dsi_bench::write_json("fig3b.json", &f3b);

    let (f6a, t) = dsi_bench::experiments::fig6a(quick);
    println!("{t}");
    dsi_bench::write_json("fig6a.json", &f6a);

    let (f6b, t) = dsi_bench::experiments::fig6b(quick);
    println!("{t}");
    dsi_bench::write_json("fig6b.json", &f6b);

    let (f7a, f7b, t) = dsi_bench::experiments::fig7(quick);
    println!("{t}");
    dsi_bench::write_json("fig7a.json", &f7a);
    dsi_bench::write_json("fig7b.json", &f7b);

    let (f8, t) = dsi_bench::experiments::fig8(quick);
    println!("{t}");
    dsi_bench::write_json("fig8.json", &f8);

    println!("all experiments completed in {:?}", start.elapsed());
}
