//! Bench-regression guard for CI smoke.
//!
//! Compares a freshly generated `BENCH_ingest.json` against the committed
//! baseline and exits non-zero when a hot path regressed:
//!
//! - `local_candidates.speedup` in the fresh run must stay ≥ 8x (the
//!   indexed candidate scan earning its keep over brute force); quick-mode
//!   reports (`"quick": true`) are held to a 4x floor instead, since the
//!   indexed advantage scales with the stored-set size and the smoke
//!   dataset is 5x smaller;
//! - fresh ingest items/sec (sequential and parallel) must not regress
//!   more than 25% against the committed baseline.
//!
//! Usage: `bench_guard <fresh.json> [committed.json]` — the committed path
//! defaults to the repo's `BENCH_ingest.json`. Generate the fresh file
//! without clobbering the committed one via the `DSI_BENCH_OUT` override:
//!
//! ```text
//! DSI_QUICK=1 DSI_BENCH_OUT=target/BENCH_ingest.fresh.json \
//!     cargo run --release -p dsi-bench --bin bench_baseline
//! cargo run --release -p dsi-bench --bin bench_guard -- target/BENCH_ingest.fresh.json
//! ```

use serde_json::Value;
use std::process::ExitCode;

/// Minimum acceptable indexed-over-linear candidate-scan speedup.
const MIN_CANDIDATES_SPEEDUP: f64 = 8.0;
/// Quick-mode floor: the smoke dataset stores 5x fewer MBRs, and the
/// indexed scan's advantage over brute force grows with the stored set.
const MIN_CANDIDATES_SPEEDUP_QUICK: f64 = 4.0;
/// Maximum tolerated relative ingest-throughput regression.
const MAX_INGEST_REGRESSION: f64 = 0.25;

fn field<'a>(v: &'a Value, path: &[&str]) -> Option<&'a Value> {
    let mut cur = v;
    for key in path {
        cur = cur.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)?;
    }
    Some(cur)
}

fn num(v: &Value, path: &[&str]) -> f64 {
    field(v, path)
        .and_then(Value::as_f64)
        .unwrap_or_else(|| panic!("missing numeric field {}", path.join(".")))
}

fn load(path: &str) -> Value {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read bench report {path}: {e}"));
    serde_json::parse(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e:?}"))
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let fresh_path = args.next().unwrap_or_else(|| {
        eprintln!("usage: bench_guard <fresh.json> [committed.json]");
        std::process::exit(2);
    });
    let committed_path = args.next().unwrap_or_else(|| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ingest.json").to_string()
    });

    let fresh = load(&fresh_path);
    let committed = load(&committed_path);
    let mut failures = Vec::new();

    let quick = field(&fresh, &["quick"]).and_then(Value::as_bool).unwrap_or(false);
    let floor = if quick { MIN_CANDIDATES_SPEEDUP_QUICK } else { MIN_CANDIDATES_SPEEDUP };
    let speedup = num(&fresh, &["local_candidates", "speedup"]);
    eprintln!(
        "[bench_guard] local_candidates.speedup: {speedup:.2}x (floor {floor}x{})",
        if quick { ", quick mode" } else { "" }
    );
    if speedup < floor {
        failures.push(format!("local_candidates.speedup {speedup:.2}x below the {floor}x floor"));
    }

    for lane in ["sequential_items_per_sec", "parallel_items_per_sec"] {
        let was = num(&committed, &["ingest", lane]);
        let now = num(&fresh, &["ingest", lane]);
        let floor = was * (1.0 - MAX_INGEST_REGRESSION);
        eprintln!(
            "[bench_guard] ingest.{lane}: {:.0} fresh vs {:.0} committed (floor {:.0})",
            now, was, floor
        );
        if now < floor {
            failures.push(format!(
                "ingest.{lane} regressed more than {:.0}%: {:.0} < {:.0} (committed {:.0})",
                MAX_INGEST_REGRESSION * 100.0,
                now,
                floor,
                was
            ));
        }
    }

    if failures.is_empty() {
        eprintln!("[bench_guard] OK — no hot-path regression");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("[bench_guard] FAIL: {f}");
        }
        ExitCode::FAILURE
    }
}
