//! Walks through the paper's illustrative scenarios — Fig. 2 (content-based
//! routing of a summary), Fig. 3(a) (similarity-query range lookup) and
//! Fig. 4 (content-based routing of an MBR) — on the exact m = 5 example
//! ring, printing each step next to the paper's values.
//! Run: `cargo run -p dsi-bench --bin expt_scenarios`

use dsi_chord::{multicast, IdSpace, RangeStrategy, Ring};
use dsi_core::{feature_to_key, interval_key_range, radius_key_range};

fn main() {
    let space = IdSpace::new(5);
    let ring = Ring::with_nodes(space, [1, 8, 11, 14, 20, 23]);
    println!("example ring: m = 5, nodes {{N1, N8, N11, N14, N20, N23}}\n");

    // ---------------- Fig. 2 ----------------
    println!("Fig. 2 — content-based routing of stream summaries");
    let x = [0.40, 0.09];
    let kx = feature_to_key(space, x[0]);
    let route = ring.lookup(1, kx);
    println!("  X = [{:.2} {:.2}] computed at N1 hashes to K{kx} (paper: K22)", x[0], x[1]);
    println!(
        "  routed {} -> stored at N{} (paper: via N20 to N23)",
        route.path.iter().map(|n| format!("N{n}")).collect::<Vec<_>>().join(" -> "),
        route.owner
    );
    let y = [0.42, 0.11];
    let ky = feature_to_key(space, y[0]);
    println!(
        "  Y = [{:.2} {:.2}] computed at N8 hashes to K{ky} -> N{} — same neighborhood,",
        y[0],
        y[1],
        ring.ideal_successor(ky).unwrap()
    );
    println!("  which is what makes summary-based routing a similarity index.\n");

    // ---------------- Fig. 3(a) ----------------
    println!("Fig. 3(a) — scalable lookup of similarity queries");
    let (center, radius) = (-0.08, 0.29);
    let (lo, hi) = radius_key_range(space, center, radius);
    println!(
        "  query X = [-0.08 0.12], radius {radius}: boundaries {:.2} -> K{lo}, {:.2} -> K{hi}",
        center - radius,
        center + radius
    );
    println!("  (paper: low -0.37 -> K10, high 0.21 -> K19)");
    let plan = multicast(&ring, 8, lo, hi, RangeStrategy::Sequential);
    println!(
        "  replicated at {} (paper: N11, N14 and N20)",
        plan.nodes().iter().map(|n| format!("N{n}")).collect::<Vec<_>>().join(", ")
    );
    let mid = space.midpoint(lo, hi);
    let aggregator = ring.ideal_successor(mid).unwrap();
    println!("  middle node N{aggregator} aggregates answers (paper: N14 aggregates for N8)\n");

    // ---------------- Fig. 4 ----------------
    println!("Fig. 4 — content-based routing of MBRs");
    let (l1, h1) = (0.21, 0.40);
    let (klo, khi) = interval_key_range(space, l1, h1);
    println!("  MBR first interval [{l1}, {h1}] maps to keys [K{klo}, K{khi}] (paper: K19..K22)");
    let plan = multicast(&ring, 1, klo, khi, RangeStrategy::Sequential);
    println!(
        "  replicated at {} (paper: N20 and N23, \"the only successor nodes",
        plan.nodes().iter().map(|n| format!("N{n}")).collect::<Vec<_>>().join(" and ")
    );
    println!("  for keys in the range\")");
    println!(
        "  messages: {} routed + {} forwards = {} total",
        plan.route_hops,
        plan.forward_messages,
        plan.total_messages()
    );
}
