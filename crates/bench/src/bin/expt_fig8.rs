//! Regenerates Fig. 8: average hops per message type vs node count.
//! Run: `cargo run --release -p dsi-bench --bin expt_fig8 [--quick]`
fn main() {
    let (reports, text) = dsi_bench::experiments::fig8(dsi_bench::quick_mode());
    print!("{text}");
    dsi_bench::write_json("fig8.json", &reports);
}
