//! Regenerates Fig. 3(b): Fourier locality of host-load summaries.
//! Run: `cargo run --release -p dsi-bench --bin expt_fig3b`
fn main() {
    let (data, text) = dsi_bench::experiments::fig3b();
    print!("{text}");
    dsi_bench::write_json("fig3b.json", &data);
}
