//! Regenerates Fig. 6(b): distribution of load across nodes at N = 200.
//! Run: `cargo run --release -p dsi-bench --bin expt_fig6b [--quick]`
fn main() {
    let (data, text) = dsi_bench::experiments::fig6b(dsi_bench::quick_mode());
    print!("{text}");
    dsi_bench::write_json("fig6b.json", &data);
}
