//! # dsi-bench — experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (§V) from
//! the simulator, and hosts the Criterion micro-benchmarks and ablations.
//!
//! Each `expt_*` binary is a thin wrapper over [`experiments`]; results are
//! printed as the paper's rows/series and written as JSON under `results/`.

#![warn(missing_docs)]

pub mod experiments;
pub mod sweep;

pub use sweep::{
    parallel_experiments, parallel_map, parallel_reports, parallel_seed_reports, worker_count,
};

use std::path::PathBuf;

/// Directory experiment outputs are written to (`results/` at the
/// workspace root, created on demand).
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir).expect("create results directory");
    dir
}

/// Writes a serializable value as pretty JSON under `results/`.
pub fn write_json<T: serde::Serialize>(name: &str, value: &T) {
    let path = results_dir().join(name);
    let json = serde_json::to_string_pretty(value).expect("serialize");
    std::fs::write(&path, json).expect("write results file");
    println!("[written {}]", path.display());
}

/// True when the caller asked for a fast, reduced-accuracy run
/// (`--quick` argument or `DSI_QUICK=1`).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick") || std::env::var("DSI_QUICK").as_deref() == Ok("1")
}
