//! Parallel parameter sweeps: one deterministic simulation per work item.
//!
//! Simulations are seeded and single-threaded, so a sweep over node counts,
//! seeds, or ablation configs is embarrassingly parallel. [`parallel_map`]
//! runs a fixed worker pool over the item list with a shared atomic cursor
//! (work stealing by index); each result lands in the slot of its input
//! index, so the merged output order — and every report in it — is
//! bit-identical to a sequential `items.iter().map(f)` regardless of thread
//! scheduling.

use dsi_core::{run_experiment, ExperimentConfig, SystemReport};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Worker count for a sweep: `DSI_WORKERS` if set, else host parallelism,
/// clamped to `[1, cap]`.
pub fn worker_count(cap: usize) -> usize {
    std::env::var("DSI_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| thread::available_parallelism().map_or(1, |n| n.get()))
        .clamp(1, cap.max(1))
}

/// Runs `f` over `items` on a `std::thread::scope` worker pool, returning
/// results in input order. Deterministic for deterministic `f`: the output
/// slot of item `i` depends only on `items[i]`.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let mut slots: Vec<Option<R>> = Vec::new();
    slots.resize_with(items.len(), || None);
    if items.is_empty() {
        return Vec::new();
    }
    let slots = Mutex::new(slots);
    let cursor = AtomicUsize::new(0);
    let workers = worker_count(items.len());
    thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                slots.lock()[i] = Some(r);
            });
        }
    });
    slots.into_inner().into_iter().map(|r| r.expect("every slot filled")).collect()
}

/// Runs one experiment per node count, in parallel, returning reports in
/// input order.
pub fn parallel_reports<F>(node_counts: &[usize], make_cfg: F) -> Vec<SystemReport>
where
    F: Fn(usize) -> ExperimentConfig + Sync,
{
    parallel_map(node_counts, |&n| run_experiment(&make_cfg(n)))
}

/// Runs one experiment per seed, in parallel, returning reports in input
/// order — the multi-seed driver behind confidence intervals and the
/// bench-baseline wall-clock comparison.
pub fn parallel_seed_reports<F>(seeds: &[u64], make_cfg: F) -> Vec<SystemReport>
where
    F: Fn(u64) -> ExperimentConfig + Sync,
{
    parallel_map(seeds, |&s| run_experiment(&make_cfg(s)))
}

/// Runs an arbitrary list of experiment configs (ablation sweeps), in
/// parallel, returning reports in input order.
pub fn parallel_experiments(cfgs: &[ExperimentConfig]) -> Vec<SystemReport> {
    parallel_map(cfgs, run_experiment)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(n: usize) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::with_nodes(n);
        cfg.workload.window_len = 16;
        cfg.warmup_ms = 6_000;
        cfg.measure_ms = 6_000;
        cfg
    }

    fn seeded(seed: u64) -> ExperimentConfig {
        let mut cfg = tiny(8);
        cfg.seed = seed;
        cfg
    }

    #[test]
    fn reports_come_back_in_input_order() {
        let reports = parallel_reports(&[12, 6, 9], tiny);
        assert_eq!(reports.iter().map(|r| r.num_nodes).collect::<Vec<_>>(), vec![12, 6, 9]);
    }

    #[test]
    fn parallel_equals_sequential() {
        let par = parallel_reports(&[8, 10], tiny);
        let seq: Vec<_> = [8, 10].iter().map(|&n| run_experiment(&tiny(n))).collect();
        for (a, b) in par.iter().zip(seq.iter()) {
            assert_eq!(
                serde_json::to_string(a).unwrap(),
                serde_json::to_string(b).unwrap(),
                "parallel sweep must not change results"
            );
        }
    }

    #[test]
    fn seed_sweep_is_bit_identical_to_sequential() {
        // More items than a typical core count, so the worker pool actually
        // multiplexes and the index-slotted merge is exercised.
        let seeds: Vec<u64> = (0..6).map(|i| 1000 + i * 37).collect();
        let par = parallel_seed_reports(&seeds, seeded);
        for (s, report) in seeds.iter().zip(par.iter()) {
            let seq = run_experiment(&seeded(*s));
            assert_eq!(
                serde_json::to_string(report).unwrap(),
                serde_json::to_string(&seq).unwrap(),
                "seed {s}: parallel report must be bit-identical to sequential"
            );
        }
    }

    #[test]
    fn parallel_map_handles_empty_and_singleton() {
        let empty: Vec<i32> = Vec::new();
        assert!(parallel_map(&empty, |x| *x).is_empty());
        assert_eq!(parallel_map(&[41], |x| x + 1), vec![42]);
    }
}
