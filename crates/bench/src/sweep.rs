//! Parallel parameter sweeps: one deterministic simulation per thread.

use dsi_core::{run_experiment, ExperimentConfig, SystemReport};
use parking_lot::Mutex;

/// Runs one experiment per node count, in parallel (crossbeam scoped
/// threads), returning reports in input order. Each simulation is
/// single-threaded and seeded, so the sweep is deterministic regardless of
/// scheduling.
pub fn parallel_reports<F>(node_counts: &[usize], make_cfg: F) -> Vec<SystemReport>
where
    F: Fn(usize) -> ExperimentConfig + Sync,
{
    let slots: Mutex<Vec<Option<SystemReport>>> = Mutex::new(vec![None; node_counts.len()]);
    crossbeam::thread::scope(|scope| {
        for (i, &n) in node_counts.iter().enumerate() {
            let slots = &slots;
            let make_cfg = &make_cfg;
            scope.spawn(move |_| {
                let report = run_experiment(&make_cfg(n));
                slots.lock()[i] = Some(report);
            });
        }
    })
    .expect("sweep threads must not panic");
    slots.into_inner().into_iter().map(|r| r.expect("every slot filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(n: usize) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::with_nodes(n);
        cfg.workload.window_len = 16;
        cfg.warmup_ms = 6_000;
        cfg.measure_ms = 6_000;
        cfg
    }

    #[test]
    fn reports_come_back_in_input_order() {
        let reports = parallel_reports(&[12, 6, 9], tiny);
        assert_eq!(reports.iter().map(|r| r.num_nodes).collect::<Vec<_>>(), vec![12, 6, 9]);
    }

    #[test]
    fn parallel_equals_sequential() {
        let par = parallel_reports(&[8, 10], tiny);
        let seq: Vec<_> = [8, 10].iter().map(|&n| run_experiment(&tiny(n))).collect();
        for (a, b) in par.iter().zip(seq.iter()) {
            assert_eq!(
                serde_json::to_string(a).unwrap(),
                serde_json::to_string(b).unwrap(),
                "parallel sweep must not change results"
            );
        }
    }
}
