//! One function per table/figure of the paper. Each returns the raw data
//! plus a formatted text block printing the same rows/series the paper
//! plots.

use crate::parallel_reports;
use dsi_chord::{IdSpace, Ring};
use dsi_core::{ExperimentConfig, SystemReport};
use dsi_dsp::{FeatureExtractor, Normalization};
use dsi_simnet::Histogram;
use dsi_streamgen::{HostLoad, WorkloadConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::fmt::Write as _;

/// Node counts of the paper's sweeps.
pub const FULL_NODE_COUNTS: [usize; 5] = [50, 100, 200, 300, 500];
/// Node counts of the Fig. 7 sweeps (the paper stops at 300 there).
pub const FIG7_NODE_COUNTS: [usize; 4] = [50, 100, 200, 300];

/// Shared sweep settings.
#[derive(Debug, Clone, Copy)]
pub struct Settings {
    /// Warm-up before measurement (ms).
    pub warmup_ms: u64,
    /// Measured window (ms).
    pub measure_ms: u64,
    /// RNG seed.
    pub seed: u64,
}

/// Default settings; `quick` shortens the simulated horizon for smoke runs.
pub fn settings(quick: bool) -> Settings {
    if quick {
        Settings { warmup_ms: 15_000, measure_ms: 20_000, seed: 42 }
    } else {
        Settings { warmup_ms: 30_000, measure_ms: 60_000, seed: 42 }
    }
}

fn base_config(n: usize, s: Settings) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::with_nodes(n);
    cfg.seed = s.seed;
    cfg.warmup_ms = s.warmup_ms;
    cfg.measure_ms = s.measure_ms;
    cfg
}

// ----------------------------------------------------------------------
// Table I
// ----------------------------------------------------------------------

/// Renders Table I: the workload and runtime parameters.
pub fn table1() -> String {
    let c = WorkloadConfig::default();
    let mut out = String::new();
    writeln!(out, "Table I — parameters used in different experiments").unwrap();
    writeln!(out, "  {:<6} {:>10}   (paper: 150ms)", "PMIN", format!("{}ms", c.pmin_ms)).unwrap();
    writeln!(out, "  {:<6} {:>10}   (paper: 250ms)", "PMAX", format!("{}ms", c.pmax_ms)).unwrap();
    writeln!(out, "  {:<6} {:>10}   (paper: 5000ms)", "BSPAN", format!("{}ms", c.bspan_ms))
        .unwrap();
    writeln!(out, "  {:<6} {:>10}   (paper: 2q/sec)", "QRATE", format!("{}q/sec", c.qrate_per_sec))
        .unwrap();
    writeln!(out, "  {:<6} {:>10}   (paper: 20sec)", "QMIN", format!("{}sec", c.qmin_ms / 1000))
        .unwrap();
    writeln!(out, "  {:<6} {:>10}   (paper: 100sec)", "QMAX", format!("{}sec", c.qmax_ms / 1000))
        .unwrap();
    writeln!(out, "  {:<6} {:>10}   (paper: 2sec)", "NPER", format!("{}sec", c.nper_ms / 1000))
        .unwrap();
    writeln!(
        out,
        "  summarization: w = {}, k = {}, zeta = {}",
        c.window_len, c.num_coeffs, c.mbr_batch
    )
    .unwrap();
    out
}

// ----------------------------------------------------------------------
// Fig. 1 — the Chord running example
// ----------------------------------------------------------------------

/// Reproduces the paper's Fig. 1 scenario: the m = 5 ring with nodes
/// {1, 8, 11, 14, 20, 23}, N8's finger table, key assignment, and the
/// lookup of key 26 from N8.
pub fn fig1() -> String {
    let space = IdSpace::new(5);
    let ring = Ring::with_nodes(space, [1, 8, 11, 14, 20, 23]);
    let mut out = String::new();
    writeln!(out, "Fig. 1 — Chord ring, m = 5, nodes {{1, 8, 11, 14, 20, 23}}").unwrap();
    let n8 = ring.node(8).expect("N8 exists");
    writeln!(out, "  finger table of N8 (paper: N11 N11 N14 N20 N1):").unwrap();
    for (i, f) in n8.fingers.iter().enumerate() {
        writeln!(out, "    N8+{:<2} -> N{}", 1u64 << i, f).unwrap();
    }
    for key in [13u64, 17, 26] {
        writeln!(out, "  key K{key} stored at N{}", ring.ideal_successor(key).unwrap()).unwrap();
    }
    let l = ring.lookup(8, 26);
    writeln!(
        out,
        "  lookup(26) from N8: path {} ({} hops; paper: N8 -> N20 -> N23 -> N1)",
        l.path.iter().map(|n| format!("N{n}")).collect::<Vec<_>>().join(" -> "),
        l.hops()
    )
    .unwrap();
    out
}

// ----------------------------------------------------------------------
// Fig. 3(b) — Fourier locality
// ----------------------------------------------------------------------

/// One scatter point of Fig. 3(b).
#[derive(Debug, Clone, Serialize)]
pub struct Fig3bPoint {
    /// Real part of the first retained coefficient ("1st coeff").
    pub c1: f64,
    /// Real part of the second coefficient.
    pub c2_re: f64,
    /// Imaginary part of the second coefficient.
    pub c2_im: f64,
}

/// Fig. 3(b) data plus locality statistics.
#[derive(Debug, Clone, Serialize)]
pub struct Fig3bData {
    /// Consecutive summary points (the scatter).
    pub points: Vec<Fig3bPoint>,
    /// Mean feature-space distance between *consecutive* summaries.
    pub mean_consecutive_dist: f64,
    /// Mean feature-space distance between *random* summary pairs.
    pub mean_random_dist: f64,
}

/// Computes consecutive summaries on a synthetic host-load trace and
/// quantifies their locality (the justification for MBR batching, §IV-G).
pub fn fig3b() -> (Fig3bData, String) {
    let mut rng = StdRng::seed_from_u64(1997);
    let mut load = HostLoad::standard();
    let mut extractor = FeatureExtractor::new(64, 2, Normalization::UnitNorm);
    let mut points = Vec::new();
    for _ in 0..2000 {
        if let Some(fv) = extractor.update(load.next_value(&mut rng)) {
            let r = fv.to_reals();
            points.push(Fig3bPoint { c1: r[0], c2_re: r[2], c2_im: r[3] });
        }
    }
    let dist = |a: &Fig3bPoint, b: &Fig3bPoint| {
        ((a.c1 - b.c1).powi(2) + (a.c2_re - b.c2_re).powi(2) + (a.c2_im - b.c2_im).powi(2)).sqrt()
    };
    let consecutive: f64 =
        points.windows(2).map(|w| dist(&w[0], &w[1])).sum::<f64>() / (points.len() - 1) as f64;
    let stride = points.len() / 2 + 7; // pseudo-random pairing
    let random: f64 = (0..points.len())
        .map(|i| dist(&points[i], &points[(i + stride) % points.len()]))
        .sum::<f64>()
        / points.len() as f64;

    let mut out = String::new();
    writeln!(out, "Fig. 3(b) — locality of summaries on (synthetic) host-load trace").unwrap();
    writeln!(out, "  {} consecutive summaries (w = 64, k = 2, unit-norm)", points.len()).unwrap();
    let c1_min = points.iter().map(|p| p.c1).fold(f64::INFINITY, f64::min);
    let c1_max = points.iter().map(|p| p.c1).fold(f64::NEG_INFINITY, f64::max);
    writeln!(out, "  1st coeff range: [{c1_min:.3}, {c1_max:.3}]  (paper plot: ~[0, 0.1] band)")
        .unwrap();
    writeln!(out, "  mean consecutive distance: {consecutive:.5}").unwrap();
    writeln!(out, "  mean random-pair distance: {random:.5}").unwrap();
    writeln!(
        out,
        "  locality ratio: {:.1}x tighter than random (>1 justifies MBR batching)",
        random / consecutive
    )
    .unwrap();
    (Fig3bData { points, mean_consecutive_dist: consecutive, mean_random_dist: random }, out)
}

// ----------------------------------------------------------------------
// Fig. 6(a) — average per-node load
// ----------------------------------------------------------------------

/// Runs the Fig. 6(a) sweep and renders the component table.
pub fn fig6a(quick: bool) -> (Vec<SystemReport>, String) {
    let s = settings(quick);
    let counts: Vec<usize> = if quick { vec![50, 100, 200] } else { FULL_NODE_COUNTS.to_vec() };
    let reports = parallel_reports(&counts, |n| base_config(n, s));
    let mut out = String::new();
    writeln!(out, "Fig. 6(a) — average load of messages on a node (per second)").unwrap();
    writeln!(
        out,
        "  {:>5} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "N", "MBRs", "MBRint", "MBRtra", "Queries", "Resp", "RespInt", "RespTra", "total"
    )
    .unwrap();
    for r in &reports {
        let l = &r.load;
        writeln!(
            out,
            "  {:>5} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            r.num_nodes,
            l.mbrs,
            l.mbrs_internal,
            l.mbrs_in_transit,
            l.queries,
            l.responses,
            l.responses_internal,
            l.responses_in_transit,
            l.total()
        )
        .unwrap();
    }
    writeln!(out, "  expected shapes: MBRs/RespInt ~ constant, MBRtra ~ log N,").unwrap();
    writeln!(out, "                   Resp/RespTra ~ 1/N, Queries small").unwrap();
    (reports, out)
}

// ----------------------------------------------------------------------
// Fig. 6(b) — load distribution
// ----------------------------------------------------------------------

/// Fig. 6(b) output: per-node load histogram at N = 200.
#[derive(Debug, Clone, Serialize)]
pub struct Fig6bData {
    /// (bucket midpoint, node count) pairs.
    pub buckets: Vec<(f64, u64)>,
    /// Fraction of nodes with load above 3x the mean (heavy-tail check).
    pub tail_fraction: f64,
    /// The raw per-node loads.
    pub per_node_load: Vec<f64>,
}

/// Runs the N = 200 experiment and histograms per-node load.
pub fn fig6b(quick: bool) -> (Fig6bData, String) {
    let s = settings(quick);
    let reports = parallel_reports(&[200], |n| base_config(n, s));
    let report = &reports[0];
    let hist = Histogram::build(&report.per_node_load, 2.0);
    let tail = hist.tail_fraction(3.0);
    let mut out = String::new();
    writeln!(out, "Fig. 6(b) — distribution of load across nodes (N = 200)").unwrap();
    writeln!(out, "  {:>10} {:>6}  histogram", "load", "nodes").unwrap();
    for (mid, count) in hist.buckets() {
        if count > 0 {
            writeln!(out, "  {:>10.1} {:>6}  {}", mid, count, "#".repeat(count as usize)).unwrap();
        }
    }
    writeln!(out, "  tail fraction (> 3x mean): {tail:.3} (paper: not heavy-tailed)").unwrap();
    (
        Fig6bData {
            buckets: hist.buckets(),
            tail_fraction: tail,
            per_node_load: report.per_node_load.clone(),
        },
        out,
    )
}

// ----------------------------------------------------------------------
// Fig. 7 — message overhead, radius 0.1 and 0.2
// ----------------------------------------------------------------------

/// Runs the Fig. 7(a)/(b) sweeps (query radius 0.1 and 0.2).
pub fn fig7(quick: bool) -> (Vec<SystemReport>, Vec<SystemReport>, String) {
    let s = settings(quick);
    let counts: Vec<usize> = if quick { vec![50, 100, 200] } else { FIG7_NODE_COUNTS.to_vec() };
    let narrow = parallel_reports(&counts, |n| base_config(n, s));
    let wide = parallel_reports(&counts, |n| {
        let mut cfg = base_config(n, s);
        cfg.workload.query_radius = 0.2;
        cfg
    });
    let mut out = String::new();
    for (tag, radius, reports) in [("(a)", 0.1, &narrow), ("(b)", 0.2, &wide)] {
        writeln!(out, "Fig. 7{tag} — message overhead per input event, query radius = {radius}")
            .unwrap();
        writeln!(
            out,
            "  {:>5} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
            "N", "MBR", "MBRtra", "Query", "Qtra", "Resp", "Rtra"
        )
        .unwrap();
        for r in reports.iter() {
            let o = &r.overhead;
            writeln!(
                out,
                "  {:>5} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
                r.num_nodes,
                o.mbr,
                o.mbr_in_transit,
                o.query,
                o.query_in_transit,
                o.response,
                o.response_in_transit
            )
            .unwrap();
        }
    }
    writeln!(out, "  expected shapes: Query (internal copies) ~ linear in N and ~2x larger")
        .unwrap();
    writeln!(out, "                   at radius 0.2; transit components ~ log N").unwrap();
    (narrow, wide, out)
}

// ----------------------------------------------------------------------
// Fig. 8 — hops per message
// ----------------------------------------------------------------------

/// Runs the Fig. 8 sweep (average hops per message type).
pub fn fig8(quick: bool) -> (Vec<SystemReport>, String) {
    let s = settings(quick);
    let counts: Vec<usize> = if quick { vec![50, 100, 200] } else { FULL_NODE_COUNTS.to_vec() };
    let reports = parallel_reports(&counts, |n| base_config(n, s));
    let mut out = String::new();
    writeln!(out, "Fig. 8 — average number of hops traversed by a request").unwrap();
    writeln!(
        out,
        "  {:>5} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "N", "MBR", "MBRint", "Query", "Qint", "Resp"
    )
    .unwrap();
    for r in &reports {
        let h = &r.hops;
        writeln!(
            out,
            "  {:>5} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            r.num_nodes, h.mbr, h.mbr_internal, h.query, h.query_internal, h.response
        )
        .unwrap();
    }
    writeln!(out, "  expected shapes: point-routed messages ~ (1/2) log2 N;").unwrap();
    writeln!(out, "                   internal query messages grow linearly (range walk)").unwrap();
    let model = dsi_simnet::LatencyModel::default();
    writeln!(out, "  responsiveness at 50 ms/hop (largest N):").unwrap();
    if let Some(r) = reports.last() {
        writeln!(
            out,
            "    response latency {:.0} ms, query range propagation {:.0} ms",
            r.response_latency_ms(&model),
            r.query_propagation_ms(&model)
        )
        .unwrap();
    }
    (reports, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_mentions_every_parameter() {
        let t = table1();
        for key in ["PMIN", "PMAX", "BSPAN", "QRATE", "QMIN", "QMAX", "NPER"] {
            assert!(t.contains(key), "missing {key}");
        }
    }

    #[test]
    fn fig1_reproduces_paper_lookup() {
        let t = fig1();
        assert!(t.contains("N8 -> N20 -> N23 -> N1"));
        assert!(t.contains("key K26 stored at N1"));
    }

    #[test]
    fn fig3b_shows_locality() {
        let (data, _) = fig3b();
        assert!(data.points.len() > 1000);
        assert!(
            data.mean_consecutive_dist * 3.0 < data.mean_random_dist,
            "consecutive summaries must be much closer than random pairs: {} vs {}",
            data.mean_consecutive_dist,
            data.mean_random_dist
        );
    }
}
