//! Trace-derived oracles.
//!
//! A trace is only trustworthy if it can be *reconciled* with the
//! independent aggregate counters (`dsi_simnet::Metrics`). This module
//! reconstructs those counters from the raw records:
//!
//! - per-class message totals = count of `Hop` records of that class,
//! - per-class `hop_count` / `hop_sum` = count / depth-sum of records
//!   carrying `hops_class == Some(class)`,
//! - per-multicast delivery sets = the receivers reachable in the causal
//!   tree under each [`MulticastMeta`] root.
//!
//! The conformance suite asserts these equal the live `Metrics` *bit for
//! bit*, and that delivery sets equal brute-force owner sets.

use crate::record::{MulticastMeta, RecordKind, TraceRecord};
use std::collections::{BTreeSet, HashMap};

/// Counters reconstructed from a trace, index-aligned with
/// `MsgClass::index()`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceAudit {
    /// Messages per class (`Metrics::total`).
    pub messages: Vec<u64>,
    /// Hop-log events per class (`Metrics::hop_count`).
    pub hop_count: Vec<u64>,
    /// Summed hop counts per class (`Metrics::hop_sum`).
    pub hop_sum: Vec<u64>,
    /// Origin records seen (number of causal chains).
    pub chains: u64,
}

/// Reconstruct per-class counters from `records`.
pub fn audit<'a, I>(records: I, num_classes: usize) -> TraceAudit
where
    I: IntoIterator<Item = &'a TraceRecord>,
{
    let mut out = TraceAudit {
        messages: vec![0; num_classes],
        hop_count: vec![0; num_classes],
        hop_sum: vec![0; num_classes],
        chains: 0,
    };
    for rec in records {
        match rec.kind {
            RecordKind::Origin => out.chains += 1,
            RecordKind::Hop => {
                let c = rec.class as usize;
                if c < num_classes {
                    out.messages[c] += 1;
                }
            }
        }
        if let Some(hc) = rec.hops_class {
            let c = hc as usize;
            if c < num_classes {
                out.hop_count[c] += 1;
                out.hop_sum[c] += rec.depth as u64;
            }
        }
    }
    out
}

/// Check the structural causality invariants of a complete trace
/// (`dropped == 0`): every `Hop` has a buffered parent with
/// `depth + 1 == child.depth`, `sent_ms == parent.recv_ms`, and
/// `recv_ms >= sent_ms`; every `Origin` is parentless at depth 0; ids are
/// unique. Returns the first violation as an error string.
pub fn validate_causality<'a, I>(records: I) -> Result<(), String>
where
    I: IntoIterator<Item = &'a TraceRecord>,
{
    let records: Vec<&TraceRecord> = records.into_iter().collect();
    let mut by_id: HashMap<u64, &TraceRecord> = HashMap::with_capacity(records.len());
    for rec in &records {
        if by_id.insert(rec.id.0, rec).is_some() {
            return Err(format!("duplicate record id {}", rec.id.0));
        }
    }
    for rec in &records {
        if rec.recv_ms < rec.sent_ms {
            return Err(format!("record {} received before sent", rec.id.0));
        }
        match (rec.kind, rec.parent) {
            (RecordKind::Origin, Some(_)) => {
                return Err(format!("origin {} has a parent", rec.id.0));
            }
            (RecordKind::Origin, None) => {
                if rec.depth != 0 || rec.from != rec.to || rec.sent_ms != rec.recv_ms {
                    return Err(format!("malformed origin {}", rec.id.0));
                }
            }
            (RecordKind::Hop, None) => {
                return Err(format!("hop {} has no parent", rec.id.0));
            }
            (RecordKind::Hop, Some(p)) => {
                let parent = by_id
                    .get(&p.0)
                    .ok_or_else(|| format!("hop {} parent {} missing", rec.id.0, p.0))?;
                if parent.id.0 >= rec.id.0 {
                    return Err(format!("hop {} precedes its parent {}", rec.id.0, p.0));
                }
                if parent.depth + 1 != rec.depth {
                    return Err(format!("hop {} depth not parent+1", rec.id.0));
                }
                if rec.sent_ms != parent.recv_ms {
                    return Err(format!("hop {} sent != parent recv", rec.id.0));
                }
                if rec.from != parent.to {
                    return Err(format!("hop {} does not depart from parent arrival", rec.id.0));
                }
            }
        }
    }
    Ok(())
}

/// The set of nodes a traced multicast delivered to, reconstructed from
/// its causal tree: the route tail (deepest record whose class is *not* in
/// `internal_classes` — the entry node) plus the receiver of every
/// internal-class forward hop. For a multicast whose origin is also the
/// entry (zero-hop route), the origin node itself is the entry.
pub fn multicast_delivery_set(
    records: &[TraceRecord],
    meta: &MulticastMeta,
    internal_classes: &[u8],
) -> BTreeSet<u64> {
    let mut children: HashMap<u64, Vec<&TraceRecord>> = HashMap::new();
    for rec in records {
        if let Some(p) = rec.parent {
            children.entry(p.0).or_default().push(rec);
        }
    }
    let mut delivered = BTreeSet::new();
    let mut entry = (0u32, meta.origin); // (depth, node) of deepest non-internal record
    let mut stack = vec![meta.root.0];
    while let Some(id) = stack.pop() {
        if let Some(kids) = children.get(&id) {
            for rec in kids {
                if internal_classes.contains(&rec.class) {
                    delivered.insert(rec.to);
                } else if rec.depth >= entry.0 {
                    entry = (rec.depth, rec.to);
                }
                stack.push(rec.id.0);
            }
        }
    }
    delivered.insert(entry.1);
    delivered
}

/// Stable FNV-1a (64-bit) digest over every record field plus multicast
/// metadata, rendered as hex. Used for compact golden-trace comparison.
pub fn digest(records: &[TraceRecord], multicasts: &[MulticastMeta]) -> String {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    for rec in records {
        eat(rec.id.0);
        eat(rec.parent.map_or(u64::MAX, |p| p.0));
        eat(match rec.kind {
            RecordKind::Origin => 0,
            RecordKind::Hop => 1,
        });
        eat(rec.class as u64);
        eat(rec.from);
        eat(rec.to);
        eat(rec.sent_ms);
        eat(rec.recv_ms);
        eat(rec.depth as u64);
        eat(rec.hops_class.map_or(u64::MAX, |c| c as u64));
    }
    for m in multicasts {
        eat(m.root.0);
        eat(m.origin);
        eat(m.lo);
        eat(m.hi);
    }
    format!("{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracer;

    fn traced_multicast(t: &mut Tracer) {
        // Route 1 -> 2 -> 3 (entry), then forwards 3 -> 4 and 4 -> 5.
        let rt = t.route(&[1, 2, 3], 0, 2, true).unwrap();
        let f1 = t.hop(rt.tail, 1, 3, 4, Some(1));
        t.hop(f1, 1, 4, 5, Some(1));
        t.push_multicast(rt.root, 1, 100, 200);
    }

    #[test]
    fn audit_counts_messages_and_hops() {
        let mut t = Tracer::disabled();
        t.enable(64);
        traced_multicast(&mut t);
        let recs = t.snapshot();
        let a = audit(recs.iter(), 3);
        assert_eq!(a.messages, vec![1, 2, 1]); // base, internal x2, transit
        assert_eq!(a.hop_count, vec![1, 2, 0]);
        assert_eq!(a.hop_sum, vec![2, 3 + 4, 0]);
        assert_eq!(a.chains, 1);
    }

    #[test]
    fn causality_validates_well_formed_trace() {
        let mut t = Tracer::disabled();
        t.enable(64);
        t.set_now_ms(10);
        traced_multicast(&mut t);
        t.single(2, 9, 8);
        validate_causality(t.iter()).unwrap();
    }

    #[test]
    fn causality_rejects_evicted_parent() {
        let mut t = Tracer::disabled();
        t.enable(2); // origin evicted by the two hops that follow
        t.route(&[1, 2, 3], 0, 1, false);
        assert!(t.dropped() > 0);
        assert!(validate_causality(t.iter()).is_err());
    }

    #[test]
    fn delivery_set_covers_entry_and_forwards() {
        let mut t = Tracer::disabled();
        t.enable(64);
        traced_multicast(&mut t);
        let recs = t.snapshot();
        let set = multicast_delivery_set(&recs, &t.multicasts()[0], &[1]);
        assert_eq!(set, BTreeSet::from([3, 4, 5]));
    }

    #[test]
    fn delivery_set_of_zero_hop_multicast_is_origin() {
        let mut t = Tracer::disabled();
        t.enable(16);
        let rt = t.route(&[7], 0, 2, true).unwrap();
        t.push_multicast(rt.root, 7, 0, 1);
        let recs = t.snapshot();
        let set = multicast_delivery_set(&recs, &t.multicasts()[0], &[1]);
        assert_eq!(set, BTreeSet::from([7]));
    }

    #[test]
    fn digest_is_stable_and_field_sensitive() {
        let mut t = Tracer::disabled();
        t.enable(64);
        traced_multicast(&mut t);
        let d1 = digest(&t.snapshot(), t.multicasts());
        let d2 = digest(&t.snapshot(), t.multicasts());
        assert_eq!(d1, d2);
        let mut recs = t.snapshot();
        recs[0].from ^= 1;
        assert_ne!(digest(&recs, t.multicasts()), d1);
    }
}
