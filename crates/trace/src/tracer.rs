//! Ring-buffered trace sink.
//!
//! The [`Tracer`] is embedded in `Cluster` and is *disabled by default*:
//! every recording entry point checks one boolean and returns immediately,
//! so the instrumented hot paths pay a predictable, branch-predicted test
//! and nothing else (the zero-cost-when-disabled contract, see DESIGN.md
//! §10). When enabled, records go into a bounded ring buffer — once
//! `capacity` is reached the oldest records are evicted and counted in
//! [`Tracer::dropped`]; audits require `dropped == 0` to be exact.

use crate::record::{Cursor, MsgId, MulticastMeta, RecordKind, TraceRecord};
use std::collections::VecDeque;

/// Analytic per-hop latency used to stamp `recv_ms`, mirroring
/// `dsi_simnet::net::HOP_DELAY_MS`. Kept as a tracer field (not a direct
/// dependency) so this crate stays below `simnet` in the crate graph.
pub const DEFAULT_HOP_MS: u64 = 50;

/// Result of tracing a full route path: the root origin record plus a
/// cursor at the route's tail (the owner-side arrival), from which
/// multicast forwards chain onward.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteTrace {
    /// Origin record of the chain.
    pub root: MsgId,
    /// Cursor at the last record of the route (the origin itself for
    /// zero-hop routes).
    pub tail: Cursor,
}

/// Bounded causal trace sink. See module docs.
#[derive(Debug, Clone)]
pub struct Tracer {
    enabled: bool,
    capacity: usize,
    hop_ms: u64,
    now_ms: u64,
    next_id: u64,
    dropped: u64,
    records: VecDeque<TraceRecord>,
    multicasts: Vec<MulticastMeta>,
    suppressed: Vec<u64>,
}

impl Tracer {
    /// A disabled tracer: every recording call is a no-op.
    pub fn disabled() -> Self {
        Tracer {
            enabled: false,
            capacity: 0,
            hop_ms: DEFAULT_HOP_MS,
            now_ms: 0,
            next_id: 0,
            dropped: 0,
            records: VecDeque::new(),
            multicasts: Vec::new(),
            suppressed: Vec::new(),
        }
    }

    /// Enable recording into a ring buffer of at most `capacity` records.
    /// Clears any previously captured state.
    pub fn enable(&mut self, capacity: usize) {
        self.enabled = true;
        self.capacity = capacity.max(1);
        self.clear();
    }

    /// Stop recording (captured records are kept until [`Tracer::clear`]).
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Whether recording entry points currently capture anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Drop all captured records, multicast metadata, and counters.
    pub fn clear(&mut self) {
        self.records.clear();
        self.multicasts.clear();
        self.next_id = 0;
        self.dropped = 0;
        self.suppressed.clear();
    }

    /// Count one message of `class` that a network partition suppressed
    /// before it could produce any trace records. Unlike record-producing
    /// entry points this also counts while the tracer is disabled: the
    /// counters are plain tallies audited against `Metrics`, not buffered
    /// records, so they never touch the golden trace digest (which derives
    /// from records only).
    pub fn note_suppressed(&mut self, class: u8) {
        let idx = class as usize;
        if self.suppressed.len() <= idx {
            self.suppressed.resize(idx + 1, 0);
        }
        self.suppressed[idx] += 1;
    }

    /// Messages of `class` suppressed by partitions since the last clear.
    pub fn suppressed(&self, class: u8) -> u64 {
        self.suppressed.get(class as usize).copied().unwrap_or(0)
    }

    /// Total partition-suppressed messages across all classes.
    pub fn suppressed_total(&self) -> u64 {
        self.suppressed.iter().sum()
    }

    /// Set the simulated wall clock used to stamp subsequent originations.
    #[inline]
    pub fn set_now_ms(&mut self, ms: u64) {
        self.now_ms = ms;
    }

    /// Current simulated wall clock, milliseconds.
    #[inline]
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Per-hop latency added to `recv_ms` at every [`Tracer::hop`].
    #[inline]
    pub fn hop_ms(&self) -> u64 {
        self.hop_ms
    }

    /// Override the analytic per-hop latency (default 50 ms).
    pub fn set_hop_ms(&mut self, ms: u64) {
        self.hop_ms = ms;
    }

    /// Number of records evicted by the ring bound since the last clear.
    /// Audits are exact only when this is zero.
    #[inline]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of records currently buffered.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records are buffered.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterate buffered records in recording order.
    pub fn iter(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Clone the buffered records out as a contiguous vector.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        self.records.iter().cloned().collect()
    }

    /// Metadata of every traced multicast, in issue order.
    pub fn multicasts(&self) -> &[MulticastMeta] {
        &self.multicasts
    }

    fn push(&mut self, rec: TraceRecord) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(rec);
    }

    fn fresh_id(&mut self) -> MsgId {
        let id = MsgId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Record the origination of a causal chain at `node`, stamped with the
    /// current clock. `hops_class` marks origins of zero-hop chains whose
    /// hop count (0) was still logged to `Metrics::record_hops`.
    ///
    /// Returns a cursor for chaining; when disabled, a sentinel no-op
    /// cursor (callers need not branch).
    pub fn originate(&mut self, class: u8, node: u64, hops_class: Option<u8>) -> Cursor {
        let at = self.now_ms;
        if !self.enabled {
            return Cursor { id: MsgId(u64::MAX), depth: 0, at_ms: at };
        }
        let id = self.fresh_id();
        self.push(TraceRecord {
            id,
            parent: None,
            kind: RecordKind::Origin,
            class,
            from: node,
            to: node,
            sent_ms: at,
            recv_ms: at,
            depth: 0,
            hops_class,
        });
        Cursor { id, depth: 0, at_ms: at }
    }

    /// Record one overlay hop `from -> to` continuing the chain at
    /// `parent`. Send time is the parent's receive time; receive time adds
    /// the analytic hop delay, so times are monotone along every chain.
    pub fn hop(
        &mut self,
        parent: Cursor,
        class: u8,
        from: u64,
        to: u64,
        hops_class: Option<u8>,
    ) -> Cursor {
        if !self.enabled {
            return Cursor { id: MsgId(u64::MAX), depth: parent.depth + 1, at_ms: parent.at_ms };
        }
        let sent = parent.at_ms;
        let recv = sent + self.hop_ms;
        let depth = parent.depth + 1;
        let id = self.fresh_id();
        self.push(TraceRecord {
            id,
            parent: Some(parent.id),
            kind: RecordKind::Hop,
            class,
            from,
            to,
            sent_ms: sent,
            recv_ms: recv,
            depth,
            hops_class,
        });
        Cursor { id, depth, at_ms: recv }
    }

    /// Trace a full lookup path (`path[0]` is the querying node, the last
    /// element the owner) as one chain: the first hop carries `base`, the
    /// rest `transit` — mirroring `Metrics::record_route`. When
    /// `log_hops` is set, the record corresponding to the logical
    /// `record_hops(base, path.len() - 1)` call is marked (the route tail,
    /// or the origin itself for single-node paths).
    ///
    /// Returns `None` when disabled or `path` is empty.
    pub fn route(
        &mut self,
        path: &[u64],
        base: u8,
        transit: u8,
        log_hops: bool,
    ) -> Option<RouteTrace> {
        if !self.enabled || path.is_empty() {
            return None;
        }
        let origin_marker = if log_hops && path.len() == 1 { Some(base) } else { None };
        let origin = self.originate(base, path[0], origin_marker);
        let root = origin.id;
        let mut cur = origin;
        let last = path.len() - 1;
        for (i, pair) in path.windows(2).enumerate() {
            let class = if i == 0 { base } else { transit };
            let marker = if log_hops && i + 1 == last { Some(base) } else { None };
            cur = self.hop(cur, class, pair[0], pair[1], marker);
        }
        Some(RouteTrace { root, tail: cur })
    }

    /// Trace a single one-hop logical message (origin + one hop), the
    /// shape of `record_message(class, from, to)` + `record_hops(class, 1)`
    /// pairs (neighbor exchanges, churn-repair transfers).
    pub fn single(&mut self, class: u8, from: u64, to: u64) {
        if !self.enabled {
            return;
        }
        let origin = self.originate(class, from, None);
        self.hop(origin, class, from, to, Some(class));
    }

    /// Attach range metadata to a traced multicast rooted at `root`.
    pub fn push_multicast(&mut self, root: MsgId, origin: u64, lo: u64, hi: u64) {
        if !self.enabled {
            return;
        }
        self.multicasts.push(MulticastMeta { root, origin, lo, hi });
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Self::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        let c = t.originate(0, 7, None);
        let c2 = t.hop(c, 1, 7, 9, None);
        t.single(2, 1, 2);
        assert!(t.route(&[1, 2, 3], 0, 1, true).is_none());
        assert_eq!(t.len(), 0);
        assert_eq!(t.dropped(), 0);
        assert!(t.multicasts().is_empty());
        // Cursors still chain coherently.
        assert_eq!(c2.depth, 1);
    }

    #[test]
    fn route_layout_matches_record_route_semantics() {
        let mut t = Tracer::disabled();
        t.enable(1024);
        t.set_now_ms(1_000);
        let rt = t.route(&[10, 20, 30, 40], 3, 5, true).unwrap();
        let recs = t.snapshot();
        assert_eq!(recs.len(), 4); // origin + 3 hops
        assert_eq!(recs[0].kind, RecordKind::Origin);
        assert_eq!(recs[0].hops_class, None);
        assert_eq!(recs[1].class, 3); // base on first hop
        assert_eq!(recs[2].class, 5); // transit after
        assert_eq!(recs[3].class, 5);
        assert_eq!(recs[3].hops_class, Some(3)); // hops logged at tail, base class
        assert_eq!(recs[3].depth, 3);
        assert_eq!(rt.tail.id, recs[3].id);
        // Times monotone: 1000 -> 1050 -> 1100 -> 1150.
        assert_eq!(recs[3].sent_ms, 1_100);
        assert_eq!(recs[3].recv_ms, 1_150);
    }

    #[test]
    fn zero_hop_route_marks_origin() {
        let mut t = Tracer::disabled();
        t.enable(16);
        let rt = t.route(&[5], 2, 4, true).unwrap();
        let recs = t.snapshot();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].kind, RecordKind::Origin);
        assert_eq!(recs[0].hops_class, Some(2));
        assert_eq!(rt.tail.depth, 0);
    }

    #[test]
    fn ring_bound_evicts_and_counts() {
        let mut t = Tracer::disabled();
        t.enable(3);
        for i in 0..5 {
            t.originate(0, i, None);
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        // Oldest evicted: remaining ids are 2, 3, 4.
        assert_eq!(t.iter().next().unwrap().id, MsgId(2));
    }

    #[test]
    fn clear_resets_everything() {
        let mut t = Tracer::disabled();
        t.enable(2);
        t.single(0, 1, 2);
        t.push_multicast(MsgId(0), 1, 0, 10);
        t.clear();
        assert_eq!(t.len(), 0);
        assert_eq!(t.dropped(), 0);
        assert!(t.multicasts().is_empty());
        // Ids restart from zero after clear.
        let c = t.originate(0, 1, None);
        assert_eq!(c.id, MsgId(0));
    }
}
