//! Trace exporters: JSONL and chrome://tracing (`trace_event` format).
//!
//! The chrome exporter emits the JSON-array form of the Trace Event
//! Format: one `"X"` (complete) event per hop — laid out on the *sending
//! node's* track with microsecond timestamps — plus `"s"`/`"t"` flow
//! events stitching each causal chain together so chrome://tracing (or
//! <https://ui.perfetto.dev>) draws arrows along every multicast tree.
//! Engine scheduler activity can be overlaid as instant events on a
//! dedicated track via `ticks`.

use crate::record::{RecordKind, TraceRecord};
use serde_json::Value;
use std::io::{self, Write};

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn class_name(class: u8, class_names: &[&str]) -> String {
    class_names.get(class as usize).map_or_else(|| format!("class{class}"), |n| n.to_string())
}

/// Write one JSON object per line, one line per record. Every field of
/// [`TraceRecord`] is preserved; `class` is additionally resolved to its
/// name for grep-ability.
pub fn write_jsonl<W: Write>(
    w: &mut W,
    records: &[TraceRecord],
    class_names: &[&str],
) -> io::Result<()> {
    for rec in records {
        let line = obj(vec![
            ("id", Value::U64(rec.id.0)),
            ("parent", rec.parent.map_or(Value::Null, |p| Value::U64(p.0))),
            (
                "kind",
                Value::Str(
                    match rec.kind {
                        RecordKind::Origin => "origin",
                        RecordKind::Hop => "hop",
                    }
                    .to_string(),
                ),
            ),
            ("class", Value::Str(class_name(rec.class, class_names))),
            ("from", Value::U64(rec.from)),
            ("to", Value::U64(rec.to)),
            ("sent_ms", Value::U64(rec.sent_ms)),
            ("recv_ms", Value::U64(rec.recv_ms)),
            ("depth", Value::U64(rec.depth as u64)),
            (
                "hops_class",
                rec.hops_class.map_or(Value::Null, |c| Value::Str(class_name(c, class_names))),
            ),
        ]);
        writeln!(w, "{}", serde_json::to_string(&line).map_err(io::Error::other)?)?;
    }
    Ok(())
}

fn flow_event(ph: &str, rec: &TraceRecord, class_names: &[&str], ts_us: u64) -> Value {
    obj(vec![
        ("name", Value::Str(class_name(rec.class, class_names))),
        ("cat", Value::Str("flow".to_string())),
        ("ph", Value::Str(ph.to_string())),
        ("id", Value::U64(rec.id.0)),
        ("ts", Value::U64(ts_us)),
        ("pid", Value::U64(0)),
        ("tid", Value::U64(rec.from)),
    ])
}

/// Write a chrome://tracing-loadable JSON array. `ticks` (optional) are
/// `(sim_ms, seq)` pairs from the simulation engine's tick log, rendered
/// as instant events on a dedicated `engine` track (tid = `u64::MAX`).
pub fn write_chrome_trace<W: Write>(
    w: &mut W,
    records: &[TraceRecord],
    class_names: &[&str],
    ticks: &[(u64, u64)],
) -> io::Result<()> {
    let mut events: Vec<Value> = Vec::with_capacity(records.len() * 2 + ticks.len());
    for rec in records {
        let ts = rec.sent_ms * 1_000;
        match rec.kind {
            RecordKind::Origin => {
                events.push(obj(vec![
                    ("name", Value::Str(format!("{}+", class_name(rec.class, class_names)))),
                    ("cat", Value::Str("origin".to_string())),
                    ("ph", Value::Str("i".to_string())),
                    ("s", Value::Str("t".to_string())),
                    ("ts", Value::U64(ts)),
                    ("pid", Value::U64(0)),
                    ("tid", Value::U64(rec.from)),
                    ("args", obj(vec![("id", Value::U64(rec.id.0))])),
                ]));
                // Chains flow out of the origin.
                events.push(flow_event("s", rec, class_names, ts));
            }
            RecordKind::Hop => {
                events.push(obj(vec![
                    ("name", Value::Str(class_name(rec.class, class_names))),
                    ("cat", Value::Str("overlay".to_string())),
                    ("ph", Value::Str("X".to_string())),
                    ("ts", Value::U64(ts)),
                    ("dur", Value::U64((rec.recv_ms - rec.sent_ms) * 1_000)),
                    ("pid", Value::U64(0)),
                    ("tid", Value::U64(rec.from)),
                    (
                        "args",
                        obj(vec![
                            ("id", Value::U64(rec.id.0)),
                            ("parent", rec.parent.map_or(Value::Null, |p| Value::U64(p.0))),
                            ("to", Value::U64(rec.to)),
                            ("depth", Value::U64(rec.depth as u64)),
                        ]),
                    ),
                ]));
                events.push(flow_event("t", rec, class_names, ts));
            }
        }
    }
    for &(ms, seq) in ticks {
        events.push(obj(vec![
            ("name", Value::Str("tick".to_string())),
            ("cat", Value::Str("engine".to_string())),
            ("ph", Value::Str("i".to_string())),
            ("s", Value::Str("t".to_string())),
            ("ts", Value::U64(ms * 1_000)),
            ("pid", Value::U64(0)),
            ("tid", Value::U64(u64::MAX)),
            ("args", obj(vec![("seq", Value::U64(seq))])),
        ]));
    }
    let doc = serde_json::to_string(&Value::Array(events)).map_err(io::Error::other)?;
    w.write_all(doc.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracer;

    fn sample_tracer() -> Tracer {
        let mut t = Tracer::disabled();
        t.enable(64);
        t.set_now_ms(100);
        let rt = t.route(&[1, 2, 3], 0, 2, true).unwrap();
        t.hop(rt.tail, 1, 3, 4, Some(1));
        t
    }

    #[test]
    fn jsonl_emits_one_parseable_line_per_record() {
        let t = sample_tracer();
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &t.snapshot(), &["A", "B", "C"]).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), t.len());
        for line in lines {
            let v = serde_json::parse(line).unwrap();
            match v {
                Value::Object(fields) => {
                    assert!(fields.iter().any(|(k, _)| k == "class"));
                }
                other => panic!("expected object, got {other:?}"),
            }
        }
        assert!(text.contains("\"A\""));
    }

    #[test]
    fn chrome_trace_is_a_json_array_with_flow_events() {
        let t = sample_tracer();
        let mut buf = Vec::new();
        write_chrome_trace(&mut buf, &t.snapshot(), &["A", "B", "C"], &[(100, 1)]).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let v = serde_json::parse(&text).unwrap();
        match v {
            Value::Array(events) => {
                // origin: i + s; 3 hops: X + t each; 1 engine tick.
                assert_eq!(events.len(), 2 + 3 * 2 + 1);
                assert!(text.contains("\"ph\":\"X\""));
                assert!(text.contains("\"ph\":\"s\""));
                assert!(text.contains("\"engine\""));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }
}
