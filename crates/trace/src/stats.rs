//! Exact latency/hop percentile accounting over a trace.
//!
//! [`QuantileBuffer`] is a sorted-buffer accumulator: exact nearest-rank
//! percentiles, mergeable (merging two buffers gives the same answer as
//! one buffer over the union — no sketch error). Buffers hold `u64`
//! samples (milliseconds or hop counts), so the memory bound is
//! 8 bytes/sample against the tracer's ring capacity.
//!
//! [`TraceStats::compute`] walks the records once, resolves every
//! hop-marked record's chain origin through the parent links, and builds
//! per-`MsgClass` distributions of end-to-end chain latency
//! (`recv_ms - origin.sent_ms`) and chain hop counts.

use crate::record::TraceRecord;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Exact mergeable quantile accumulator (sorted buffer).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QuantileBuffer {
    sorted: Vec<u64>,
    dirty: bool,
}

impl QuantileBuffer {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one sample.
    pub fn push(&mut self, sample: u64) {
        self.sorted.push(sample);
        self.dirty = true;
    }

    /// Absorb all samples of `other`. Exact: the merged buffer answers
    /// every percentile query as if it had seen the union directly.
    pub fn merge(&mut self, other: &QuantileBuffer) {
        self.sorted.extend_from_slice(&other.sorted);
        self.dirty = true;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when no samples were added.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if self.dirty {
            self.sorted.sort_unstable();
            self.dirty = false;
        }
    }

    /// Exact **nearest-rank** percentile: the smallest sample `s` such that
    /// at least `p` of the distribution is `<= s`. Returns `None` on an
    /// empty buffer.
    ///
    /// # Interpolation contract
    /// There is **no interpolation**: the result is always one of the
    /// recorded samples, `sorted[rank - 1]` with
    /// `rank = ceil(p * n).clamp(1, n)` — identical to
    /// `Histogram::percentile` in `dsi-simnet`, so latency percentiles
    /// from the trace and from live metrics are comparable sample-for-
    /// sample. `p` is a fraction in `[0, 1]`, **not** a percent in
    /// `[0, 100]`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    pub fn percentile(&mut self, p: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&p), "percentile rank must be in [0, 1], got {p}");
        if self.sorted.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let n = self.sorted.len();
        let rank = ((p * n as f64).ceil() as usize).clamp(1, n);
        Some(self.sorted[rank - 1])
    }

    /// Largest sample, `None` when empty.
    pub fn max(&mut self) -> Option<u64> {
        self.percentile(1.0)
    }

    /// Sum of all samples (exact, insertion-order independent).
    pub fn sum(&self) -> u64 {
        self.sorted.iter().sum()
    }

    /// Arithmetic mean, `None` when empty. Exposed for max/mean load-balance
    /// envelopes: `max() / mean()` over per-node round loads is the hotspot
    /// ratio the load ledger and its oracle track.
    pub fn mean(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(self.sum() as f64 / self.sorted.len() as f64)
        }
    }
}

/// p50/p95/p99/max summary of one distribution. All zeros when `count == 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Percentiles {
    /// Number of samples.
    pub count: u64,
    /// Median (nearest-rank).
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Maximum.
    pub max: u64,
}

impl Percentiles {
    /// Summarize a buffer.
    pub fn of(buf: &mut QuantileBuffer) -> Percentiles {
        Percentiles {
            count: buf.len() as u64,
            p50: buf.percentile(0.50).unwrap_or(0),
            p95: buf.percentile(0.95).unwrap_or(0),
            p99: buf.percentile(0.99).unwrap_or(0),
            max: buf.max().unwrap_or(0),
        }
    }
}

/// Per-class distributions for one message class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassStats {
    /// `MsgClass::index()` this row describes.
    pub class: u8,
    /// Overlay messages of this class (hop records).
    pub messages: u64,
    /// End-to-end latency (ms) of hop-logged chains of this class.
    pub latency_ms: Percentiles,
    /// Hop counts of hop-logged chains of this class.
    pub hops: Percentiles,
}

/// Full per-class statistics computed from a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// One row per class index `0..num_classes`.
    pub classes: Vec<ClassStats>,
}

impl TraceStats {
    /// Walk `records` once and build per-class latency/hop distributions.
    ///
    /// A chain contributes to class `c` at every record carrying
    /// `hops_class == Some(c)` — the exact points where the cluster logged
    /// `Metrics::record_hops(c, depth)`. Latency is measured from the
    /// chain's origin (`recv_ms - origin.sent_ms`), resolved through the
    /// parent links, not inferred from the hop model.
    pub fn compute<'a, I>(records: I, num_classes: usize) -> TraceStats
    where
        I: IntoIterator<Item = &'a TraceRecord>,
    {
        let records: Vec<&'a TraceRecord> = records.into_iter().collect();
        let by_id: HashMap<u64, &'a TraceRecord> = records.iter().map(|r| (r.id.0, *r)).collect();
        let origin_sent = |mut rec: &'a TraceRecord| -> u64 {
            loop {
                match rec.parent {
                    Some(p) => match by_id.get(&p.0) {
                        Some(parent) => rec = parent,
                        // Parent evicted by the ring bound: best effort,
                        // fall back to the local send time.
                        None => return rec.sent_ms,
                    },
                    None => return rec.sent_ms,
                }
            }
        };

        let mut messages = vec![0u64; num_classes];
        let mut lat: Vec<QuantileBuffer> = vec![QuantileBuffer::new(); num_classes];
        let mut hops: Vec<QuantileBuffer> = vec![QuantileBuffer::new(); num_classes];
        for rec in &records {
            if rec.kind == crate::RecordKind::Hop {
                let c = rec.class as usize;
                if c < num_classes {
                    messages[c] += 1;
                }
            }
            if let Some(hc) = rec.hops_class {
                let c = hc as usize;
                if c < num_classes {
                    lat[c].push(rec.recv_ms - origin_sent(rec));
                    hops[c].push(rec.depth as u64);
                }
            }
        }

        TraceStats {
            classes: (0..num_classes)
                .map(|c| ClassStats {
                    class: c as u8,
                    messages: messages[c],
                    latency_ms: Percentiles::of(&mut lat[c]),
                    hops: Percentiles::of(&mut hops[c]),
                })
                .collect(),
        }
    }
}

/// Compact, serializable digest of a whole trace run — what gets attached
/// to fault reproducers and golden files instead of the full record list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Records captured (post-eviction).
    pub records: u64,
    /// Records evicted by the ring bound.
    pub dropped: u64,
    /// Traced multicasts.
    pub multicasts: u64,
    /// FNV-1a digest over all records and multicast metadata (hex).
    pub digest: String,
    /// Per-class rows, labelled by `MsgClass` name.
    pub classes: Vec<ClassSummary>,
}

impl TraceSummary {
    /// Summarize everything a [`Tracer`](crate::Tracer) captured: counts,
    /// the golden digest, and per-class latency/hop percentiles, with
    /// class indices resolved against `class_names`.
    pub fn from_tracer(tracer: &crate::Tracer, class_names: &[&str]) -> TraceSummary {
        let records = tracer.snapshot();
        let stats = TraceStats::compute(records.iter(), class_names.len());
        TraceSummary {
            records: records.len() as u64,
            dropped: tracer.dropped(),
            multicasts: tracer.multicasts().len() as u64,
            digest: crate::audit::digest(&records, tracer.multicasts()),
            classes: stats
                .classes
                .into_iter()
                .map(|c| ClassSummary {
                    class: class_names
                        .get(c.class as usize)
                        .map_or_else(|| format!("class{}", c.class), |n| (*n).to_string()),
                    messages: c.messages,
                    latency_ms: c.latency_ms,
                    hops: c.hops,
                })
                .collect(),
        }
    }
}

/// One per-class row of a [`TraceSummary`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassSummary {
    /// Human-readable class name (e.g. `"MbrOriginated"`).
    pub class: String,
    /// Overlay messages of this class.
    pub messages: u64,
    /// End-to-end chain latency (ms).
    pub latency_ms: Percentiles,
    /// Chain hop counts.
    pub hops: Percentiles,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracer;

    #[test]
    fn nearest_rank_percentiles_are_exact() {
        let mut q = QuantileBuffer::new();
        for v in [15, 20, 35, 40, 50] {
            q.push(v);
        }
        // Canonical nearest-rank example: p30 of {15,20,35,40,50} = 20.
        assert_eq!(q.percentile(0.30), Some(20));
        assert_eq!(q.percentile(0.50), Some(35));
        assert_eq!(q.percentile(1.0), Some(50));
        assert_eq!(q.percentile(0.0), Some(15));
        assert_eq!(q.max(), Some(50));
    }

    #[test]
    fn empty_buffer_yields_none() {
        let mut q = QuantileBuffer::new();
        assert_eq!(q.percentile(0.5), None);
        assert_eq!(q.max(), None);
    }

    #[test]
    fn merge_equals_union() {
        let mut a = QuantileBuffer::new();
        let mut b = QuantileBuffer::new();
        let mut whole = QuantileBuffer::new();
        for v in 0..100u64 {
            if v % 2 == 0 {
                a.push(v * 7 % 31);
            } else {
                b.push(v * 7 % 31);
            }
            whole.push(v * 7 % 31);
        }
        a.merge(&b);
        assert_eq!(a.len(), whole.len());
        for p in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(a.percentile(p), whole.percentile(p), "p={p}");
        }
    }

    #[test]
    fn stats_resolve_latency_through_parent_chain() {
        let mut t = Tracer::disabled();
        t.enable(64);
        t.set_now_ms(500);
        // 3-hop chain of class 0, hops logged at the tail.
        t.route(&[1, 2, 3, 4], 0, 1, true);
        let stats = TraceStats::compute(t.iter(), 2);
        // Class 0: one chain, latency 3 hops * 50ms.
        assert_eq!(stats.classes[0].hops.count, 1);
        assert_eq!(stats.classes[0].hops.p50, 3);
        assert_eq!(stats.classes[0].latency_ms.p50, 150);
        assert_eq!(stats.classes[0].latency_ms.max, 150);
        // Messages: 1 base-class hop, 2 transit hops.
        assert_eq!(stats.classes[0].messages, 1);
        assert_eq!(stats.classes[1].messages, 2);
        // Class 1 logged no hops.
        assert_eq!(stats.classes[1].hops.count, 0);
    }
}
