//! Trace record types.
//!
//! A [`TraceRecord`] is one overlay event: either the *origination* of a
//! logical message chain (an MBR replication, a query post, a response, a
//! churn-repair transfer) or one *hop* of that chain between two nodes.
//! Records form trees: every `Hop` points at its parent record, and the
//! root of each tree is an `Origin` record. Walking any record's parent
//! chain therefore terminates at the event that caused it — this is the
//! causality invariant the conformance suite checks.
//!
//! The `class` field is the [`dsi_simnet::MsgClass`] *index* (a `u8`), not
//! the enum itself: this crate sits below `simnet` in the dependency graph
//! so that `chord` can also use it. Callers pass `MsgClass::index() as u8`
//! and map back with `MsgClass::from_index` when rendering.

use serde::{Deserialize, Serialize};

/// Unique id of a trace record within one [`crate::Tracer`] lifetime.
///
/// Ids are assigned from a monotone counter, so `a.0 < b.0` implies `a`
/// was recorded before `b` — parents always have smaller ids than their
/// children.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MsgId(pub u64);

/// What kind of event a record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecordKind {
    /// Root of a causal chain: a logical message was created at `from`
    /// (`from == to`, no network traffic of its own).
    Origin,
    /// One overlay message: the chain moved `from -> to`.
    Hop,
}

/// One traced overlay event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Unique id of this record.
    pub id: MsgId,
    /// Parent record in the causal chain; `None` iff `kind == Origin`.
    pub parent: Option<MsgId>,
    /// Origin or hop.
    pub kind: RecordKind,
    /// `MsgClass::index()` of the message (or of the chain, for origins).
    pub class: u8,
    /// Sending node id (for origins, the originating node).
    pub from: u64,
    /// Receiving node id (for origins, equal to `from`).
    pub to: u64,
    /// Simulated send time, milliseconds.
    pub sent_ms: u64,
    /// Simulated receive time, milliseconds (`>= sent_ms`).
    pub recv_ms: u64,
    /// Number of hops from the chain's origin to this record (0 for origins).
    pub depth: u32,
    /// When `Some(c)`, this record is the point where the cluster logged
    /// `Metrics::record_hops(class_from_index(c), depth)`. The audit pass
    /// reconstructs hop counters from exactly these markers.
    pub hops_class: Option<u8>,
}

/// Metadata for one traced range multicast: the key range it targeted and
/// the root of its causal tree. The audit pass reconstructs the delivery
/// set from the tree and compares it against the brute-force owner set of
/// `[lo, hi]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MulticastMeta {
    /// Origin record of the multicast's causal tree.
    pub root: MsgId,
    /// Node that initiated the multicast.
    pub origin: u64,
    /// Inclusive lower bound of the targeted key range.
    pub lo: u64,
    /// Inclusive upper bound of the targeted key range (may wrap past 0).
    pub hi: u64,
}

/// Position in a causal chain, returned by [`crate::Tracer::originate`] and
/// [`crate::Tracer::hop`] so callers can append further hops. Copyable and
/// meaningful even when tracing is disabled (a sentinel no-op cursor).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cursor {
    /// Record id to use as `parent` for the next hop.
    pub id: MsgId,
    /// Depth of the record this cursor points at.
    pub depth: u32,
    /// Receive time of the record this cursor points at (next hop's send time).
    pub at_ms: u64,
}
