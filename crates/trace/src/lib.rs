//! # dsi-trace — causal message tracing for the DSI overlay
//!
//! Every logical message the middleware moves (MBR replications, range
//! multicasts, similarity queries, responses, churn repairs) becomes a
//! *causal chain* of [`TraceRecord`]s: one `Origin` record where the
//! chain starts and one `Hop` record per overlay message, each pointing
//! at its parent. The [`Tracer`] buffers them in a bounded ring and is a
//! strict no-op when disabled, so instrumented hot paths cost one
//! predictable branch (the zero-overhead contract — DESIGN.md §10).
//!
//! On top of the raw records:
//!
//! - [`stats`] — exact, mergeable latency/hop percentiles per message
//!   class ([`QuantileBuffer`], [`TraceStats`], [`TraceSummary`]);
//! - [`export`] — JSONL and chrome://tracing `trace_event` timelines;
//! - [`audit`] — reconstruction oracles: rebuild `Metrics`-equivalent
//!   counters and multicast delivery sets from the trace alone, so the
//!   conformance suite can demand bit-for-bit agreement with the live
//!   counters and brute-force owner sets.
//!
//! This crate deliberately sits at the bottom of the workspace (serde
//! only) so `chord`, `simnet`, and `core` can all thread tracing through
//! without cycles; message classes are passed as `u8` indices
//! (`MsgClass::index()`).

pub mod audit;
pub mod export;
pub mod record;
pub mod stats;
pub mod tracer;

pub use audit::{audit, digest, multicast_delivery_set, validate_causality, TraceAudit};
pub use export::{write_chrome_trace, write_jsonl};
pub use record::{Cursor, MsgId, MulticastMeta, RecordKind, TraceRecord};
pub use stats::{ClassStats, ClassSummary, Percentiles, QuantileBuffer, TraceStats, TraceSummary};
pub use tracer::{RouteTrace, Tracer, DEFAULT_HOP_MS};
