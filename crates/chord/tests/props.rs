//! Property-based tests of the routing substrate's invariants.

use dsi_chord::{covering_nodes, ChordId, ContentRouter, IdSpace, PastryNet, RangeStrategy, Ring};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    // ----- Identifier-circle arithmetic -----

    #[test]
    fn distances_sum_to_modulus(bits in 2u32..40, a in any::<u64>(), b in any::<u64>()) {
        let s = IdSpace::new(bits);
        let (a, b) = (s.reduce(a), s.reduce(b));
        let fwd = s.distance_cw(a, b);
        let back = s.distance_cw(b, a);
        if a == b {
            prop_assert_eq!(fwd + back, 0);
        } else {
            prop_assert_eq!(fwd + back, s.modulus());
        }
    }

    #[test]
    fn in_open_matches_brute_force(a in 0u64..64, x in 0u64..64, b in 0u64..64) {
        let s = IdSpace::new(6);
        // Brute force: walk clockwise from a+1 to b-1.
        let mut expect = false;
        if a == b {
            expect = x != a;
        } else {
            let mut cur = s.add(a, 1);
            while cur != b {
                if cur == x {
                    expect = true;
                    break;
                }
                cur = s.add(cur, 1);
            }
        }
        prop_assert_eq!(s.in_open(a, x, b), expect, "a={} x={} b={}", a, x, b);
    }

    #[test]
    fn half_open_is_open_plus_endpoint(a in 0u64..64, x in 0u64..64, b in 0u64..64) {
        let s = IdSpace::new(6);
        let half = s.in_half_open(a, x, b);
        let open = s.in_open(a, x, b);
        if x == b && a != b {
            prop_assert!(half && !open);
        } else if a != b {
            prop_assert_eq!(half, open);
        }
    }

    #[test]
    fn midpoint_lies_in_range(a in 0u64..256, w in 0u64..256) {
        let s = IdSpace::new(8);
        let b = s.add(a, w);
        let m = s.midpoint(a, b);
        prop_assert!(s.in_closed(a, m, b), "mid {m} outside [{a},{b}]");
    }

    // ----- Ring construction invariants -----

    #[test]
    fn built_ring_is_fully_consistent(ids in prop::collection::btree_set(0u64..4096, 1..40)) {
        let s = IdSpace::new(12);
        let ring = Ring::with_nodes(s, ids.iter().copied());
        prop_assert!(ring.is_fully_consistent());
    }

    #[test]
    fn lookup_path_visits_only_live_nodes(
        ids in prop::collection::btree_set(0u64..4096, 2..24),
        key in 0u64..4096,
    ) {
        let s = IdSpace::new(12);
        let ids: Vec<ChordId> = ids.into_iter().collect();
        let ring = Ring::with_nodes(s, ids.iter().copied());
        let l = ring.lookup(ids[0], key);
        for n in &l.path {
            prop_assert!(ring.contains(*n), "path visits dead node {n}");
        }
        // Hop bound: Chord guarantees O(log N) with correct fingers;
        // allow a generous constant.
        prop_assert!(l.hops() as usize <= 2 * 12 + 2);
    }

    #[test]
    fn successor_walk_visits_every_node_once(
        ids in prop::collection::btree_set(0u64..4096, 1..30),
    ) {
        let s = IdSpace::new(12);
        let ids: Vec<ChordId> = ids.into_iter().collect();
        let ring = Ring::with_nodes(s, ids.iter().copied());
        let start = ids[0];
        let mut seen = vec![start];
        let mut cur = ring.successor_of(start);
        while cur != start {
            prop_assert!(!seen.contains(&cur), "successor cycle revisits {cur}");
            seen.push(cur);
            cur = ring.successor_of(cur);
        }
        prop_assert_eq!(seen.len(), ids.len());
    }

    // ----- Pastry agrees with Chord on ownership and correctness -----

    #[test]
    fn pastry_routes_to_true_owner(
        seeds in prop::collection::btree_set(0u64..1_000_000, 2..32),
        key in any::<u64>(),
    ) {
        let s = IdSpace::new(32);
        let ids: Vec<ChordId> =
            seeds.iter().map(|x| s.hash_str(&format!("n{x}"))).collect();
        let p = PastryNet::new(s, ids.iter().copied());
        let key = s.reduce(key);
        let origin = *p.node_ids().first().unwrap();
        let l = p.route(origin, key);
        prop_assert_eq!(l.owner, p.ideal_successor(key).unwrap());
        for n in &l.path {
            prop_assert!(p.contains(*n));
        }
    }

    // ----- Multicast invariants -----

    #[test]
    fn multicast_deliveries_have_contiguous_depths(
        ids in prop::collection::btree_set(0u64..1024, 2..20),
        lo in 0u64..1024,
        w in 0u64..512,
        bidir in any::<bool>(),
    ) {
        let s = IdSpace::new(10);
        let ids: Vec<ChordId> = ids.into_iter().collect();
        let ring = Ring::with_nodes(s, ids.iter().copied());
        let hi = s.add(lo, w);
        let strat = if bidir { RangeStrategy::Bidirectional } else { RangeStrategy::Sequential };
        let plan = dsi_chord::multicast(&ring, ids[0], lo, hi, strat);
        // Entry has depth 0; neighbors differ by exactly 1 hop.
        let base = plan.route_hops;
        let entry_depth =
            plan.deliveries.iter().find(|d| d.node == plan.entry).unwrap().hops - base;
        prop_assert_eq!(entry_depth, 0);
        for pair in plan.deliveries.windows(2) {
            let d = pair[0].hops.abs_diff(pair[1].hops);
            prop_assert_eq!(d, 1, "non-adjacent depths");
        }
        // No duplicate deliveries.
        let mut nodes = plan.nodes();
        let total = nodes.len();
        nodes.sort_unstable();
        nodes.dedup();
        prop_assert_eq!(nodes.len(), total);
        // Covering set equals plan set.
        let mut cover = covering_nodes(&ring, lo, hi);
        cover.sort_unstable();
        prop_assert_eq!(nodes, cover);
    }
}
