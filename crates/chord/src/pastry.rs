//! A Pastry-style prefix-routing overlay (Rowstron & Druschel, Middleware
//! 2001) — the second [`crate::router::ContentRouter`] backend.
//!
//! The paper lists Pastry among the interchangeable substrates its
//! middleware can run on; this simulator-grade implementation provides the
//! same ownership semantics as Chord (a key belongs to its ring successor)
//! while routing through *digit-prefix* tables plus a *leaf set*, giving
//! `O(log_16 N)` hops. Running the full indexing middleware unchanged on
//! both backends is the portability demonstration.

use crate::id::{ChordId, IdSpace};
use crate::ring::Lookup;
use crate::router::{BuildRouter, ContentRouter};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Bits per routing digit (base 16, as in the Pastry paper's default).
pub const DIGIT_BITS: u32 = 4;
/// Leaf-set half-size: this many ring neighbors on each side.
pub const LEAF_HALF: usize = 4;

/// Per-node Pastry routing state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PastryNode {
    /// This node's identifier.
    pub id: ChordId,
    /// `table[row][d]`: a node sharing `row` leading digits with this node
    /// and having digit `d` at position `row` (None if no such node).
    pub table: Vec<[Option<ChordId>; 16]>,
    /// Ring-order neighbors: `LEAF_HALF` successors and predecessors.
    pub leaves: Vec<ChordId>,
}

/// A fully-converged Pastry-style overlay.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PastryNet {
    space: IdSpace,
    rows: u32,
    nodes: BTreeMap<ChordId, PastryNode>,
}

impl PastryNet {
    /// Builds the overlay over `ids`.
    ///
    /// # Panics
    /// Panics if the identifier width is not a multiple of [`DIGIT_BITS`]
    /// or `ids` is empty.
    pub fn new<I: IntoIterator<Item = ChordId>>(space: IdSpace, ids: I) -> Self {
        assert!(
            space.bits().is_multiple_of(DIGIT_BITS),
            "identifier width must be a multiple of {DIGIT_BITS} bits"
        );
        let rows = space.bits() / DIGIT_BITS;
        let mut sorted: Vec<ChordId> = ids.into_iter().collect();
        sorted.sort_unstable();
        sorted.dedup();
        assert!(!sorted.is_empty(), "cannot build an empty overlay");

        let mut net = PastryNet { space, rows, nodes: BTreeMap::new() };
        for &id in &sorted {
            net.nodes.insert(
                id,
                PastryNode { id, table: vec![[None; 16]; rows as usize], leaves: Vec::new() },
            );
        }
        net.rebuild_all(&sorted);
        net
    }

    fn digit(&self, id: ChordId, row: u32) -> usize {
        let shift = self.space.bits() - DIGIT_BITS * (row + 1);
        ((id >> shift) & 0xF) as usize
    }

    fn shared_prefix(&self, a: ChordId, b: ChordId) -> u32 {
        for row in 0..self.rows {
            if self.digit(a, row) != self.digit(b, row) {
                return row;
            }
        }
        self.rows
    }

    /// Circular distance (shorter way around) — Pastry's numeric closeness.
    fn circ_dist(&self, a: ChordId, b: ChordId) -> u64 {
        let d = self.space.distance_cw(a, b);
        d.min(self.space.modulus() - d)
    }

    fn rebuild_all(&mut self, sorted: &[ChordId]) {
        let n = sorted.len();
        // Prefix buckets per row: (row, prefix-digits..=row) -> members.
        for i in 0..n {
            let id = sorted[i];
            // Leaf set: LEAF_HALF ring successors and predecessors.
            let mut leaves = Vec::with_capacity(2 * LEAF_HALF);
            for k in 1..=LEAF_HALF.min(n.saturating_sub(1)) {
                leaves.push(sorted[(i + k) % n]);
                leaves.push(sorted[(i + n - k) % n]);
            }
            leaves.sort_unstable();
            leaves.dedup();
            leaves.retain(|&l| l != id);

            let mut table = vec![[None; 16]; self.rows as usize];
            for &other in sorted {
                if other == id {
                    continue;
                }
                let row = self.shared_prefix(id, other);
                if row >= self.rows {
                    continue;
                }
                let d = self.digit(other, row);
                let slot = &mut table[row as usize][d];
                // Deterministic choice: numerically closest candidate.
                let better = match *slot {
                    None => true,
                    Some(cur) => self.circ_dist(id, other) < self.circ_dist(id, cur),
                };
                if better {
                    *slot = Some(other);
                }
            }
            let node = self.nodes.get_mut(&id).expect("member");
            node.table = table;
            node.leaves = leaves;
        }
    }

    /// Read access to a node's routing state.
    pub fn node(&self, id: ChordId) -> Option<&PastryNode> {
        self.nodes.get(&id)
    }

    /// All live node identifiers in ring order, without allocating.
    pub fn iter_ids(&self) -> impl Iterator<Item = ChordId> + '_ {
        self.nodes.keys().copied()
    }
}

impl ContentRouter for PastryNet {
    fn space(&self) -> IdSpace {
        self.space
    }

    fn len(&self) -> usize {
        self.nodes.len()
    }

    fn contains(&self, id: ChordId) -> bool {
        self.nodes.contains_key(&id)
    }

    fn node_ids(&self) -> Vec<ChordId> {
        self.iter_ids().collect()
    }

    fn ideal_successor(&self, key: ChordId) -> Option<ChordId> {
        self.nodes.range(key..).next().or_else(|| self.nodes.iter().next()).map(|(id, _)| *id)
    }

    fn ideal_predecessor(&self, key: ChordId) -> Option<ChordId> {
        self.nodes
            .range(..key)
            .next_back()
            .or_else(|| self.nodes.iter().next_back())
            .map(|(id, _)| *id)
    }

    fn successor_of(&self, id: ChordId) -> ChordId {
        self.ideal_successor(self.space.add(id, 1)).expect("non-empty overlay")
    }

    fn route(&self, from: ChordId, key: ChordId) -> Lookup {
        assert!(self.contains(from), "route origin {from} is not a live node");
        let owner = self.ideal_successor(key).expect("non-empty overlay");
        let mut path = vec![from];
        let mut cur = from;
        let budget = self.rows as usize + 2 * LEAF_HALF + 2;
        for _ in 0..budget {
            if cur == owner {
                return Lookup { owner, path };
            }
            let state = &self.nodes[&cur];
            // Leaf-set finish: the owner is a ring neighbor.
            if state.leaves.contains(&owner) {
                path.push(owner);
                return Lookup { owner, path };
            }
            // Prefix hop: longer shared prefix with the key.
            let row = self.shared_prefix(cur, key);
            let next = if row < self.rows {
                state.table[row as usize][self.digit(key, row)]
            } else {
                None
            };
            let next = next.filter(|&n| n != cur).unwrap_or_else(|| {
                // Rare case: no table entry — move to any known node at
                // least as prefix-close and numerically closer to the key.
                let mut best = self.successor_of(cur);
                let mut best_d = self.circ_dist(best, key);
                for cand in state
                    .leaves
                    .iter()
                    .copied()
                    .chain(state.table.iter().flatten().flatten().copied())
                {
                    let d = self.circ_dist(cand, key);
                    if self.shared_prefix(cand, key) >= row && d < best_d {
                        best = cand;
                        best_d = d;
                    }
                }
                best
            });
            path.push(next);
            cur = next;
        }
        // Budget exhausted (cannot happen with converged tables): finish
        // directly so callers always get the true owner.
        if *path.last().expect("path starts at the querying node") != owner {
            path.push(owner);
        }
        Lookup { owner, path }
    }
}

impl BuildRouter for PastryNet {
    fn build(space: IdSpace, ids: &[ChordId]) -> Self {
        PastryNet::new(space, ids.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(n: u64) -> (PastryNet, Vec<ChordId>) {
        let space = IdSpace::new(32);
        let ids: Vec<ChordId> = (0..n).map(|i| space.hash_str(&format!("p-{i}"))).collect();
        (PastryNet::new(space, ids.iter().copied()), ids)
    }

    #[test]
    fn routes_to_the_true_successor() {
        let (p, ids) = net(64);
        let space = p.space();
        for i in 0..50u64 {
            let key = space.reduce(i.wrapping_mul(2_654_435_761));
            let l = p.route(ids[(i % 64) as usize], key);
            assert_eq!(l.owner, p.ideal_successor(key).unwrap(), "key {key}");
            assert_eq!(*l.path.first().unwrap(), ids[(i % 64) as usize]);
            assert_eq!(*l.path.last().unwrap(), l.owner);
        }
    }

    #[test]
    fn hops_are_logarithmic_base16() {
        let (p, ids) = net(256);
        let space = p.space();
        let mut total = 0u32;
        for i in 0..100u64 {
            let key = space.reduce(i.wrapping_mul(40_503) ^ 0xdead_beef);
            total += p.route(ids[(i % 256) as usize], key).hops();
        }
        let avg = total as f64 / 100.0;
        // log16(256) = 2; leaf-set finish adds ~1.
        assert!(avg < 4.5, "average hops {avg} too high for prefix routing");
        assert!(avg > 0.5);
    }

    #[test]
    fn pastry_needs_fewer_hops_than_chord() {
        let space = IdSpace::new(32);
        let ids: Vec<ChordId> = (0..256u64).map(|i| space.hash_str(&format!("x{i}"))).collect();
        let p = PastryNet::new(space, ids.iter().copied());
        let c = crate::ring::Ring::with_nodes(space, ids.iter().copied());
        let mut hp = 0u32;
        let mut hc = 0u32;
        for i in 0..80u64 {
            let key = space.reduce(i.wrapping_mul(97_003) ^ 0x1234_5678);
            hp += p.route(ids[0], key).hops();
            hc += c.lookup(ids[0], key).hops();
        }
        assert!(hp < hc, "base-16 digits should beat base-2 fingers: {hp} vs {hc}");
    }

    #[test]
    fn leaf_sets_are_ring_neighbors() {
        let (p, ids) = net(32);
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        for (i, &id) in sorted.iter().enumerate() {
            let node = p.node(id).unwrap();
            let n = sorted.len();
            for k in 1..=2 {
                assert!(node.leaves.contains(&sorted[(i + k) % n]));
                assert!(node.leaves.contains(&sorted[(i + n - k) % n]));
            }
            assert!(!node.leaves.contains(&id));
        }
    }

    #[test]
    fn table_entries_share_the_advertised_prefix() {
        let (p, ids) = net(48);
        for &id in &ids {
            let node = p.node(id).unwrap();
            for (row, slots) in node.table.iter().enumerate() {
                for (d, slot) in slots.iter().enumerate() {
                    if let Some(entry) = slot {
                        assert_eq!(p.shared_prefix(id, *entry), row as u32);
                        assert_eq!(p.digit(*entry, row as u32), d);
                    }
                }
            }
        }
    }

    #[test]
    fn ownership_matches_chord_semantics() {
        // Both backends must assign every key to the same node, or the
        // middleware's puts and gets would diverge across substrates.
        let space = IdSpace::new(32);
        let ids: Vec<ChordId> = (0..40u64).map(|i| space.hash_str(&format!("n{i}"))).collect();
        let p = PastryNet::new(space, ids.iter().copied());
        let c = crate::ring::Ring::with_nodes(space, ids.iter().copied());
        for i in 0..200u64 {
            let key = space.reduce(i.wrapping_mul(104_729));
            assert_eq!(p.ideal_successor(key), c.ideal_successor(key));
        }
    }

    #[test]
    fn single_node_overlay() {
        let space = IdSpace::new(32);
        let p = PastryNet::new(space, [42]);
        let l = p.route(42, 7);
        assert_eq!(l.owner, 42);
        assert_eq!(l.hops(), 0);
    }

    #[test]
    #[should_panic(expected = "multiple of")]
    fn odd_bit_width_panics() {
        let _ = PastryNet::new(IdSpace::new(30), [1]);
    }
}
