//! SHA-1 (FIPS 180-1), implemented from scratch.
//!
//! Chord's consistent hashing assigns both nodes and keys `m`-bit identifiers
//! "using SHA-1" (§II-B.1, citing FIPS 180-1). SHA-1 is long broken for
//! collision resistance, but key-space balancing only needs its avalanche
//! behaviour, so we reproduce the paper faithfully.

/// Output size of SHA-1 in bytes.
pub const DIGEST_LEN: usize = 20;

/// Streaming SHA-1 state.
#[derive(Debug, Clone)]
pub struct Sha1 {
    h: [u32; 5],
    /// Total message length in bytes.
    len: u64,
    /// Partially filled block.
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha1 {
            h: [0x6745_2301, 0xEFCD_AB89, 0x98BA_DCFE, 0x1032_5476, 0xC3D2_E1F0],
            len: 0,
            buf: [0; 64],
            buf_len: 0,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.len += data.len() as u64;
        let mut rest = data;
        if self.buf_len > 0 {
            let take = rest.len().min(64 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.process_block(&block);
                self.buf_len = 0;
            }
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.process_block(&b);
            rest = tail;
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Finishes and returns the 160-bit digest.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80, zeros, 64-bit big-endian bit length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0x00]);
        }
        // Manual final block write: update() would recount the length.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.process_block(&block);

        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.h.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn process_block(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.h;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A82_7999),
                20..=39 => (b ^ c ^ d, 0x6ED9_EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1B_BCDC),
                _ => (b ^ c ^ d, 0xCA62_C1D6),
            };
            let tmp =
                a.rotate_left(5).wrapping_add(f).wrapping_add(e).wrapping_add(k).wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        self.h[0] = self.h[0].wrapping_add(a);
        self.h[1] = self.h[1].wrapping_add(b);
        self.h[2] = self.h[2].wrapping_add(c);
        self.h[3] = self.h[3].wrapping_add(d);
        self.h[4] = self.h[4].wrapping_add(e);
    }
}

/// One-shot SHA-1 of `data`.
pub fn sha1(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Sha1::new();
    h.update(data);
    h.finalize()
}

/// First 8 digest bytes as a big-endian `u64` — the raw material for
/// truncated `m`-bit Chord identifiers.
pub fn sha1_u64(data: &[u8]) -> u64 {
    let d = sha1(data);
    u64::from_be_bytes([d[0], d[1], d[2], d[3], d[4], d[5], d[6], d[7]])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(digest: &[u8]) -> String {
        digest.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn fips_vector_empty() {
        assert_eq!(hex(&sha1(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn fips_vector_abc() {
        assert_eq!(hex(&sha1(b"abc")), "a9993e364706816aba3e25717850c26c9cd0d89d");
    }

    #[test]
    fn fips_vector_two_blocks() {
        assert_eq!(
            hex(&sha1(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn quick_brown_fox() {
        assert_eq!(
            hex(&sha1(b"The quick brown fox jumps over the lazy dog")),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(hex(&h.finalize()), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0..500u32).map(|i| (i % 251) as u8).collect();
        let oneshot = sha1(&data);
        // Feed in awkward chunk sizes crossing block boundaries.
        for chunk_size in [1usize, 3, 63, 64, 65, 127] {
            let mut h = Sha1::new();
            for c in data.chunks(chunk_size) {
                h.update(c);
            }
            assert_eq!(h.finalize(), oneshot, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn exact_block_boundary_lengths() {
        // 55, 56, 63, 64 bytes exercise every padding branch.
        for len in [55usize, 56, 63, 64, 119, 120] {
            let data = vec![0xABu8; len];
            let d1 = sha1(&data);
            let mut h = Sha1::new();
            h.update(&data[..len / 2]);
            h.update(&data[len / 2..]);
            assert_eq!(h.finalize(), d1, "len {len}");
        }
    }

    #[test]
    fn u64_truncation_is_prefix() {
        let d = sha1(b"stream-42");
        let v = sha1_u64(b"stream-42");
        assert_eq!(v.to_be_bytes(), d[..8]);
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(sha1(b"node-1"), sha1(b"node-2"));
    }
}
