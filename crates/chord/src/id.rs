//! The `m`-bit identifier circle (§II-B.1).
//!
//! Nodes and keys share one universe of identifiers ordered on a circle
//! modulo `2^m`. All interval tests here are circular: `(a, b]` with
//! `a == b` denotes the *full* circle (one node owns everything), matching
//! Chord's successor semantics.

use crate::sha1::sha1_u64;
use serde::{Deserialize, Serialize};

/// A Chord identifier; always reduced modulo the space's `2^m`.
pub type ChordId = u64;

/// The identifier space: a circle modulo `2^m`, `1 <= m <= 63`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IdSpace {
    bits: u32,
}

impl IdSpace {
    /// Creates an `m`-bit identifier space.
    ///
    /// # Panics
    /// Panics unless `1 <= bits <= 63`.
    pub fn new(bits: u32) -> Self {
        assert!((1..=63).contains(&bits), "identifier space must use 1..=63 bits");
        IdSpace { bits }
    }

    /// Number of identifier bits `m`.
    #[inline]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// `2^m` — the number of identifiers on the circle.
    #[inline]
    pub fn modulus(&self) -> u64 {
        1u64 << self.bits
    }

    /// Reduces an arbitrary value onto the circle.
    #[inline]
    pub fn reduce(&self, v: u64) -> ChordId {
        v & (self.modulus() - 1)
    }

    /// Hashes raw bytes to an identifier (truncated SHA-1, as the paper
    /// prescribes).
    pub fn hash_bytes(&self, data: &[u8]) -> ChordId {
        self.reduce(sha1_u64(data))
    }

    /// Hashes a string label (e.g. a node's address or a stream identifier).
    pub fn hash_str(&self, s: &str) -> ChordId {
        self.hash_bytes(s.as_bytes())
    }

    /// `(a + delta) mod 2^m`.
    #[inline]
    pub fn add(&self, a: ChordId, delta: u64) -> ChordId {
        self.reduce(a.wrapping_add(delta))
    }

    /// Clockwise distance from `a` to `b` (how far forward `b` lies).
    #[inline]
    pub fn distance_cw(&self, a: ChordId, b: ChordId) -> u64 {
        self.reduce(b.wrapping_sub(a))
    }

    /// Circular membership `x in (a, b)`. Empty when `a == b`... except that
    /// the full-circle reading is what open intervals with `a == b` mean in
    /// Chord's finger-walk, so `a == b` yields `x != a`.
    #[inline]
    pub fn in_open(&self, a: ChordId, x: ChordId, b: ChordId) -> bool {
        if a == b {
            x != a
        } else {
            let d_ax = self.distance_cw(a, x);
            let d_ab = self.distance_cw(a, b);
            d_ax > 0 && d_ax < d_ab
        }
    }

    /// Circular membership `x in (a, b]`. When `a == b` this is the whole
    /// circle (a single node is the successor of every key).
    #[inline]
    pub fn in_half_open(&self, a: ChordId, x: ChordId, b: ChordId) -> bool {
        if a == b {
            true
        } else {
            let d_ax = self.distance_cw(a, x);
            let d_ab = self.distance_cw(a, b);
            d_ax > 0 && d_ax <= d_ab
        }
    }

    /// Circular membership `x in [a, b]` (inclusive range used for key-range
    /// multicast coverage).
    #[inline]
    pub fn in_closed(&self, a: ChordId, x: ChordId, b: ChordId) -> bool {
        x == a || self.in_half_open(a, x, b)
    }

    /// Midpoint of the clockwise range `[a, b]` on the circle.
    #[inline]
    pub fn midpoint(&self, a: ChordId, b: ChordId) -> ChordId {
        self.add(a, self.distance_cw(a, b) / 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modulus_and_reduce() {
        let s = IdSpace::new(5);
        assert_eq!(s.modulus(), 32);
        assert_eq!(s.reduce(33), 1);
        assert_eq!(s.reduce(31), 31);
    }

    #[test]
    fn add_wraps() {
        let s = IdSpace::new(5);
        assert_eq!(s.add(30, 5), 3);
        assert_eq!(s.add(8, 16), 24);
    }

    #[test]
    fn distance_cw_wraps() {
        let s = IdSpace::new(5);
        assert_eq!(s.distance_cw(30, 2), 4);
        assert_eq!(s.distance_cw(2, 30), 28);
        assert_eq!(s.distance_cw(7, 7), 0);
    }

    #[test]
    fn in_open_basic_and_wrapping() {
        let s = IdSpace::new(5);
        assert!(s.in_open(3, 5, 9));
        assert!(!s.in_open(3, 3, 9));
        assert!(!s.in_open(3, 9, 9));
        // Wrapping interval (28, 4)
        assert!(s.in_open(28, 30, 4));
        assert!(s.in_open(28, 0, 4));
        assert!(!s.in_open(28, 5, 4));
        // a == b: everything except a.
        assert!(s.in_open(7, 8, 7));
        assert!(!s.in_open(7, 7, 7));
    }

    #[test]
    fn in_half_open_successor_semantics() {
        let s = IdSpace::new(5);
        // Key 26 belongs to (23, 1] — the successor interval of node 1
        // after node 23 (paper Fig. 1).
        assert!(s.in_half_open(23, 26, 1));
        assert!(s.in_half_open(23, 1, 1));
        assert!(!s.in_half_open(23, 23, 1));
        assert!(!s.in_half_open(23, 2, 1));
        // Single-node circle owns everything.
        assert!(s.in_half_open(9, 0, 9));
        assert!(s.in_half_open(9, 9, 9));
    }

    #[test]
    fn in_closed_includes_both_ends() {
        let s = IdSpace::new(6);
        assert!(s.in_closed(10, 10, 20));
        assert!(s.in_closed(10, 20, 20));
        assert!(s.in_closed(60, 2, 5)); // wraps
        assert!(!s.in_closed(10, 21, 20));
    }

    #[test]
    fn midpoint_plain_and_wrapping() {
        let s = IdSpace::new(5);
        assert_eq!(s.midpoint(10, 20), 15);
        assert_eq!(s.midpoint(30, 6), 2); // range 30..6 has width 8
        assert_eq!(s.midpoint(7, 7), 7);
    }

    #[test]
    fn hash_is_stable_and_in_range() {
        let s = IdSpace::new(16);
        let a = s.hash_str("node-a");
        assert_eq!(a, s.hash_str("node-a"));
        assert!(a < s.modulus());
        assert_ne!(a, s.hash_str("node-b"));
    }

    #[test]
    #[should_panic(expected = "1..=63 bits")]
    fn zero_bits_panics() {
        let _ = IdSpace::new(0);
    }

    #[test]
    #[should_panic(expected = "1..=63 bits")]
    fn too_many_bits_panics() {
        let _ = IdSpace::new(64);
    }
}
