//! Key-range multicast (§IV-C, §VI-B).
//!
//! No classical DHT natively multicasts to a *range* of keys, so the paper
//! builds it out of the successor primitive:
//!
//! * **Sequential**: route the message to the lowest key of the range; every
//!   receiving node delivers locally and forwards to its successor until the
//!   range is covered. Message-optimal but serial — propagation depth grows
//!   with the number of covered nodes.
//! * **Bidirectional**: route to the *middle* key and forward both ways
//!   (requires a predecessor primitive). Same message count, roughly half
//!   the propagation depth — the §VI-B improvement.

use crate::id::ChordId;
use crate::router::ContentRouter;
use dsi_trace::{Cursor, MsgId, Tracer};
use serde::{Deserialize, Serialize};

/// How a range multicast propagates once it reaches the range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RangeStrategy {
    /// §IV-C: enter at the lowest key, forward successor-wise.
    Sequential,
    /// §VI-B: enter at the middle key, forward in both directions.
    Bidirectional,
}

/// One delivery of a range multicast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// The node that received the message.
    pub node: ChordId,
    /// Overlay hops from the origin until this node received it
    /// (routing hops plus forwarding-chain depth).
    pub hops: u32,
}

/// The full plan of a range multicast: who receives the message and when.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MulticastPlan {
    /// Node that issued the multicast.
    pub origin: ChordId,
    /// Node at which the routed message entered the range.
    pub entry: ChordId,
    /// Hops of the initial point routing (origin → entry).
    pub route_hops: u32,
    /// Deliveries, in the order the protocol reaches them.
    pub deliveries: Vec<Delivery>,
    /// Forwarding messages exchanged between covering nodes
    /// (the "internal" messages of Fig. 7).
    pub forward_messages: u32,
    /// The initial routing path (origin .. entry inclusive).
    pub route_path: Vec<ChordId>,
}

impl MulticastPlan {
    /// Total overlay messages: routing hops plus internal forwards.
    #[inline]
    pub fn total_messages(&self) -> u32 {
        self.route_hops + self.forward_messages
    }

    /// Propagation depth: hops until the *last* node is reached.
    #[inline]
    pub fn max_hops(&self) -> u32 {
        self.deliveries.iter().map(|d| d.hops).max().unwrap_or(self.route_hops)
    }

    /// The set of covered nodes.
    pub fn nodes(&self) -> Vec<ChordId> {
        self.deliveries.iter().map(|d| d.node).collect()
    }

    /// The forwarding edges between covering nodes: each delivery (other
    /// than the entry) receives the message from its ring-adjacent neighbor
    /// one hop earlier. Works for both strategies because deliveries are in
    /// ring order with per-node depths.
    pub fn forward_edges(&self) -> Vec<(ChordId, ChordId)> {
        let mut edges = Vec::with_capacity(self.deliveries.len().saturating_sub(1));
        for pair in self.deliveries.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            if b.hops == a.hops + 1 {
                edges.push((a.node, b.node));
            } else if a.hops == b.hops + 1 {
                edges.push((b.node, a.node));
            } else {
                debug_assert!(false, "adjacent deliveries must differ by one hop");
            }
        }
        edges
    }

    /// [`MulticastPlan::forward_edges`] annotated with the *absolute* hop
    /// depth at which each receiver gets the message, sorted by that depth.
    ///
    /// `forward_edges` yields edges in ring order, which for bidirectional
    /// plans can mention a sender before the edge that reached it; sorting
    /// by receiver depth restores causal order, so a consumer replaying the
    /// forwards always knows the sender's position in the chain before the
    /// edge departs from it.
    pub fn causal_forwards(&self) -> Vec<(ChordId, ChordId, u32)> {
        let mut forwards: Vec<(ChordId, ChordId, u32)> = self
            .forward_edges()
            .into_iter()
            .map(|(from, to)| {
                let hops = self
                    .deliveries
                    .iter()
                    .find(|d| d.node == to)
                    // dsilint: allow(hot-path-unwrap, plan construction adds a delivery per edge target)
                    .expect("forward edges point at deliveries")
                    .hops;
                (from, to, hops)
            })
            .collect();
        forwards.sort_by_key(|&(_, _, hops)| hops);
        forwards
    }

    /// Record this plan into `tracer` as one causal tree: the initial
    /// routing as a `base`/`transit` chain (hop count logged at the tail,
    /// mirroring `Metrics::record_route` + `record_hops(base, route_hops)`),
    /// then every covering-set forward as an `internal`-class hop whose
    /// depth equals the delivery's absolute hop count (mirroring
    /// `record_message(internal, ..)` + `record_hops(internal, d.hops)`).
    /// Classes are `MsgClass::index()` values; `[lo, hi]` is the targeted
    /// key range, kept as multicast metadata for the delivery-set oracle.
    ///
    /// Returns the root record id, or `None` when the tracer is disabled.
    pub fn trace_into(
        &self,
        tracer: &mut Tracer,
        base: u8,
        transit: u8,
        internal: u8,
        lo: ChordId,
        hi: ChordId,
    ) -> Option<MsgId> {
        let root = self.trace_tree_into(tracer, base, transit, internal)?;
        tracer.push_multicast(root, self.origin, lo, hi);
        Some(root)
    }

    /// The causal-tree half of [`MulticastPlan::trace_into`]: records the
    /// routing chain and every forward, but does **not** register the
    /// multicast metadata with the tracer. Degraded plans (a failover that
    /// skipped unreachable members) use this so the trace-replay audit's
    /// delivery-set check — which asserts a multicast reached *exactly* the
    /// brute-force owner set — only audits complete multicasts.
    pub fn trace_tree_into(
        &self,
        tracer: &mut Tracer,
        base: u8,
        transit: u8,
        internal: u8,
    ) -> Option<MsgId> {
        if !tracer.is_enabled() {
            return None;
        }
        let rt = tracer.route(&self.route_path, base, transit, true)?;
        let mut reached: Vec<(ChordId, Cursor)> = vec![(self.entry, rt.tail)];
        for (from, to, _) in self.causal_forwards() {
            let parent = reached
                .iter()
                .find(|(node, _)| *node == from)
                .map(|(_, c)| *c)
                // dsilint: allow(hot-path-unwrap, forwards are emitted in causal order by build)
                .expect("causal forwards visit senders before their edges");
            let cur = tracer.hop(parent, internal, from, to, Some(internal));
            reached.push((to, cur));
        }
        Some(rt.root)
    }
}

/// All nodes covering some key in the clockwise range `[lo, hi]`, in ring
/// order starting at `successor(lo)`.
///
/// A node `n` covers the keys `(predecessor(n), n]`, so the covering set is
/// `successor(lo)` and every node from there up to and including
/// `successor(hi)`.
pub fn covering_nodes<R: ContentRouter>(ring: &R, lo: ChordId, hi: ChordId) -> Vec<ChordId> {
    if ring.is_empty() {
        return Vec::new();
    }
    let space = ring.space();
    // dsilint: allow(hot-path-unwrap, is_empty checked on entry)
    let first = ring.ideal_successor(lo).expect("non-empty ring");
    let width = space.distance_cw(lo, hi);
    let mut out = vec![first];
    let mut cur = first;
    // Walk successors until the last added node's identifier has passed `hi`
    // clockwise from `lo` (that node owns the tail of the range). The length
    // guard handles ranges that wrap around more nodes than exist.
    while space.distance_cw(lo, cur) < width && out.len() < ring.len() {
        // dsilint: allow(hot-path-unwrap, is_empty checked on entry)
        cur = ring.ideal_successor(space.add(cur, 1)).expect("non-empty ring");
        out.push(cur);
    }
    out
}

/// [`covering_nodes`] restricted to what `origin` can currently reach: the
/// covering set computed over `origin`'s side of a partition via
/// [`ContentRouter::ideal_successor_from`]. On a whole network this returns
/// exactly `covering_nodes(ring, lo, hi)` (the wrap guard `cur == first`
/// fires at the same walk step the global length guard would).
pub fn covering_nodes_from<R: ContentRouter>(
    ring: &R,
    origin: ChordId,
    lo: ChordId,
    hi: ChordId,
) -> Vec<ChordId> {
    if ring.is_empty() {
        return Vec::new();
    }
    let space = ring.space();
    // dsilint: allow(hot-path-unwrap, origin is live, so its side is non-empty)
    let first = ring.ideal_successor_from(origin, lo).expect("origin's side is non-empty");
    let width = space.distance_cw(lo, hi);
    let mut out = vec![first];
    let mut cur = first;
    while space.distance_cw(lo, cur) < width {
        let next = ring.ideal_successor_from(origin, space.add(cur, 1));
        // dsilint: allow(hot-path-unwrap, origin is live, so its side is non-empty)
        cur = next.expect("origin's side is non-empty");
        if cur == first {
            // Wrapped: every node origin can reach already covers the range.
            break;
        }
        out.push(cur);
    }
    out
}

/// Plans a multicast of one message from `origin` to every node covering a
/// key in `[lo, hi]`.
///
/// During a network partition the member set is `origin`-side only
/// ([`covering_nodes_from`]): a multicast can only place payloads on nodes
/// its origin can reach, so cross-side members are simply absent from the
/// plan. On a whole network this is byte-identical to the global covering
/// set.
///
/// # Panics
/// Panics if the ring is empty or `origin` is not a live node.
pub fn multicast<R: ContentRouter>(
    ring: &R,
    origin: ChordId,
    lo: ChordId,
    hi: ChordId,
    strategy: RangeStrategy,
) -> MulticastPlan {
    assert!(!ring.is_empty(), "cannot multicast over an empty ring");
    let members = covering_nodes_from(ring, origin, lo, hi);
    match strategy {
        RangeStrategy::Sequential => {
            let route = ring.route(origin, lo);
            let route_hops = route.hops();
            let entry = route.owner;
            // Requires a side-consistent ring: whole, or split with each
            // side locally stabilized. (A ring healed without re-probing —
            // the negative-control fork — routes elsewhere and must use
            // the failover path instead.)
            debug_assert_eq!(entry, members[0]);
            let deliveries = members
                .iter()
                .enumerate()
                .map(|(i, &node)| Delivery { node, hops: route_hops + i as u32 })
                .collect::<Vec<_>>();
            MulticastPlan {
                origin,
                entry,
                route_hops,
                forward_messages: (members.len() - 1) as u32,
                deliveries,
                route_path: route.path,
            }
        }
        RangeStrategy::Bidirectional => {
            let mid_key = ring.space().midpoint(lo, hi);
            let route = ring.route(origin, mid_key);
            let route_hops = route.hops();
            let entry = route.owner;
            let entry_idx = members
                .iter()
                .position(|&n| n == entry)
                // dsilint: allow(hot-path-unwrap, members = covering_nodes(lo..hi) and mid_key is inside)
                .expect("successor of a key inside the range covers the range");
            let deliveries = members
                .iter()
                .enumerate()
                .map(|(i, &node)| {
                    let depth = (i as i64 - entry_idx as i64).unsigned_abs() as u32;
                    Delivery { node, hops: route_hops + depth }
                })
                .collect::<Vec<_>>();
            MulticastPlan {
                origin,
                entry,
                route_hops,
                forward_messages: (members.len() - 1) as u32,
                deliveries,
                route_path: route.path,
            }
        }
    }
}

/// Which kind of hop a failover multicast is attempting (see
/// [`multicast_with_failover`]'s `judge` argument).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HopKind {
    /// The initial point routing from the origin to an entry candidate.
    Route,
    /// A covering-set forward between ring neighbors.
    Forward,
}

/// What the reliability layer decided about one attempted hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HopOutcome {
    /// The hop succeeded (possibly after retries); the target is reached.
    Deliver,
    /// The hop succeeded but its payload effect is parked in a delay queue;
    /// the target still propagates the multicast onward.
    DeliverLate,
    /// The retry budget was exhausted (or the target is unreachable); the
    /// plan must route around the target.
    Fail,
}

/// Result of a failover-aware range multicast: the achieved plan plus the
/// degradation bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct FailoverOutcome {
    /// The achieved propagation plan, or `None` when no entry candidate was
    /// reachable at all (total loss).
    pub plan: Option<MulticastPlan>,
    /// Covering members the plan could not reach, in ring order.
    pub skipped: Vec<ChordId>,
    /// Reached members whose delivery effect is parked for late re-delivery.
    pub late: Vec<ChordId>,
    /// Fraction of the key range `[lo, hi]` owned by reached members
    /// (1.0 when `skipped` is empty, 0.0 on total loss).
    pub coverage: f64,
}

impl FailoverOutcome {
    /// Whether every covering member was reached (late deliveries count:
    /// the message arrived, only its local effect is deferred).
    #[inline]
    pub fn is_complete(&self) -> bool {
        self.skipped.is_empty() && self.plan.is_some()
    }
}

/// Fraction of the clockwise key range `[lo, hi]` owned by the `reached`
/// subset of `members` (the covering set in ring order). Member `i` owns
/// the arc from just past member `i - 1` (or `lo` for the first) up to its
/// own identifier (or `hi` for the last).
fn covered_fraction<R: ContentRouter>(
    ring: &R,
    members: &[ChordId],
    reached: &[bool],
    lo: ChordId,
    hi: ChordId,
) -> f64 {
    let space = ring.space();
    let total = space.distance_cw(lo, hi) as f64 + 1.0;
    let mut covered = 0.0;
    for (i, &m) in members.iter().enumerate() {
        if !reached[i] {
            continue;
        }
        let start = if i == 0 { lo } else { space.add(members[i - 1], 1) };
        let end = if i == members.len() - 1 { hi } else { m };
        covered += space.distance_cw(start, end) as f64 + 1.0;
    }
    (covered / total).min(1.0)
}

/// Fraction of the clockwise key range `[lo, hi]` owned by covering members
/// that `origin` can currently reach — the honest dissemination coverage of
/// a partition-degraded multicast. Always 1.0 on a whole network.
pub fn reachable_fraction<R: ContentRouter>(
    ring: &R,
    origin: ChordId,
    lo: ChordId,
    hi: ChordId,
) -> f64 {
    let members = covering_nodes(ring, lo, hi);
    if members.is_empty() {
        return 0.0;
    }
    let reached: Vec<bool> = members.iter().map(|&n| ring.reachable(origin, n)).collect();
    covered_fraction(ring, &members, &reached, lo, hi)
}

/// Plans a multicast from `origin` to every node covering a key in
/// `[lo, hi]`, routing around unreachable members via the ring's successor
/// order: when `judge` fails a hop, the sender skips the dead member and
/// forwards directly to the next covering member (its next live successor
/// within the range), preserving the covering-set property for every
/// reachable member.
///
/// `judge(from, to, kind)` is consulted once per attempted hop — the
/// reliability layer's retry/ack state machine lives behind it — in a
/// deterministic order: entry candidates first (the strategy's preferred
/// entry, then the remaining members ring-ascending from it, then
/// ring-descending below it), then the forward chain upward from the entry,
/// then (bidirectional only) the chain downward. With a judge that always
/// returns [`HopOutcome::Deliver`], the achieved plan is identical to
/// [`multicast`]'s.
///
/// # Panics
/// Panics if the ring is empty or `origin` is not a live node.
pub fn multicast_with_failover<R: ContentRouter>(
    ring: &R,
    origin: ChordId,
    lo: ChordId,
    hi: ChordId,
    strategy: RangeStrategy,
    judge: &mut dyn FnMut(ChordId, ChordId, HopKind) -> HopOutcome,
) -> FailoverOutcome {
    assert!(!ring.is_empty(), "cannot multicast over an empty ring");
    let members = covering_nodes(ring, lo, hi);
    let mut late = Vec::new();

    // Preferred entry: the strategy's usual target key.
    let preferred_key = match strategy {
        RangeStrategy::Sequential => lo,
        RangeStrategy::Bidirectional => ring.space().midpoint(lo, hi),
    };
    let preferred = ring.route(origin, preferred_key);
    // On a whole, converged ring the route owner of a key inside `[lo, hi]`
    // is always a covering member. Under a partition (or on a fork healed
    // without re-probing) the side-filtered route can overshoot the range;
    // entry failover then simply starts from the first covering member —
    // with a fresh point routing, because the overshot preferred route ends
    // at a node that is not that member (reusing it would yield a plan whose
    // route tail disagrees with `entry`, breaking the causal trace).
    let e0 = members.iter().position(|&n| n == preferred.owner);
    let start = e0.unwrap_or(0);

    // Entry failover: try the preferred member, then the rest ring-ascending
    // from it, then ring-descending below it. Each candidate is a fresh
    // point routing.
    let mut entry_choice: Option<(usize, crate::ring::Lookup)> = None;
    let candidates = (start..members.len()).chain((0..start).rev());
    for i in candidates {
        let route = if Some(i) == e0 { preferred.clone() } else { ring.route(origin, members[i]) };
        // Even a hop the judge delivers cannot enter through a member the
        // overlay's routing state does not terminate at (a fork left by a
        // heal without re-probe misroutes the message to `route.owner`
        // instead). The judge is still consulted — the message was sent and
        // its loss randomness spent — but the candidacy fails. On a whole
        // ring a member always owns its own identifier, so this never fires.
        let terminates = route.owner == members[i];
        match judge(origin, members[i], HopKind::Route) {
            HopOutcome::Deliver if terminates => {
                entry_choice = Some((i, route));
                break;
            }
            HopOutcome::DeliverLate if terminates => {
                late.push(members[i]);
                entry_choice = Some((i, route));
                break;
            }
            _ => {}
        }
    }

    let Some((entry_idx, route)) = entry_choice else {
        // Total loss: no covering member was reachable within budget.
        return FailoverOutcome { plan: None, skipped: members, late, coverage: 0.0 };
    };

    let route_hops = route.hops();
    let entry = members[entry_idx];
    let mut reached = vec![false; members.len()];
    let mut hops = vec![0u32; members.len()];
    reached[entry_idx] = true;
    hops[entry_idx] = route_hops;

    // Forward chain(s): on a failed hop the sender stays put and tries the
    // next member in that direction — one extra successor-list hop, so the
    // receiver's depth still grows by exactly one per *successful* forward.
    let mut walk_dir = |indices: Vec<usize>,
                        reached: &mut Vec<bool>,
                        hops: &mut Vec<u32>,
                        late: &mut Vec<ChordId>| {
        let mut cur = entry_idx;
        for i in indices {
            match judge(members[cur], members[i], HopKind::Forward) {
                HopOutcome::Deliver => {
                    reached[i] = true;
                    hops[i] = hops[cur] + 1;
                    cur = i;
                }
                HopOutcome::DeliverLate => {
                    late.push(members[i]);
                    reached[i] = true;
                    hops[i] = hops[cur] + 1;
                    cur = i;
                }
                HopOutcome::Fail => {}
            }
        }
    };
    match strategy {
        RangeStrategy::Sequential => {
            walk_dir((entry_idx + 1..members.len()).collect(), &mut reached, &mut hops, &mut late);
        }
        RangeStrategy::Bidirectional => {
            walk_dir((entry_idx + 1..members.len()).collect(), &mut reached, &mut hops, &mut late);
            walk_dir((0..entry_idx).rev().collect(), &mut reached, &mut hops, &mut late);
        }
    }

    let deliveries: Vec<Delivery> = members
        .iter()
        .enumerate()
        .filter(|&(i, _)| reached[i])
        .map(|(i, &node)| Delivery { node, hops: hops[i] })
        .collect();
    let skipped: Vec<ChordId> =
        members.iter().enumerate().filter(|&(i, _)| !reached[i]).map(|(_, &node)| node).collect();
    let coverage = covered_fraction(ring, &members, &reached, lo, hi);
    let forward_messages = (deliveries.len() - 1) as u32;
    FailoverOutcome {
        plan: Some(MulticastPlan {
            origin,
            entry,
            route_hops,
            deliveries,
            forward_messages,
            route_path: route.path,
        }),
        skipped,
        late,
        coverage,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::IdSpace;
    use crate::ring::Ring;

    fn figure_ring() -> Ring {
        // The paper's running example ring: m = 5, nodes {1,8,11,14,20,23}.
        Ring::with_nodes(IdSpace::new(5), [1, 8, 11, 14, 20, 23])
    }

    #[test]
    fn covering_matches_figure2_range() {
        // §IV-C: "a message sent to range ... need to be delivered to N14(?),
        // N20 and N23" — concretely, range [12, 22] is covered by N14
        // (keys 12..14), N20 (15..20) and N23 (21..22).
        let ring = figure_ring();
        assert_eq!(covering_nodes(&ring, 12, 22), vec![14, 20, 23]);
    }

    #[test]
    fn covering_single_key() {
        let ring = figure_ring();
        assert_eq!(covering_nodes(&ring, 17, 17), vec![20]);
        assert_eq!(covering_nodes(&ring, 20, 20), vec![20]);
        assert_eq!(covering_nodes(&ring, 21, 21), vec![23]);
    }

    #[test]
    fn covering_wraps_around_zero() {
        let ring = figure_ring();
        // Range [30, 2] wraps: covered by N1 (keys 24..=1) and N8 (2..8).
        assert_eq!(covering_nodes(&ring, 30, 2), vec![1, 8]);
    }

    #[test]
    fn covering_full_circle() {
        let ring = figure_ring();
        // A range that spans almost the whole circle covers every node.
        let all = covering_nodes(&ring, 2, 1);
        assert_eq!(all.len(), ring.len());
    }

    #[test]
    fn every_key_in_range_is_covered_and_nothing_extra() {
        let ring = figure_ring();
        let space = ring.space();
        for lo in 0..32u64 {
            for width in 0..12u64 {
                let hi = space.add(lo, width);
                let members = covering_nodes(&ring, lo, hi);
                // Every key in [lo, hi] is owned by a member.
                for d in 0..=width {
                    let key = space.add(lo, d);
                    let owner = ring.ideal_successor(key).unwrap();
                    assert!(members.contains(&owner), "key {key} of [{lo},{hi}] uncovered");
                }
                // Every member owns at least one key in [lo, hi].
                for &mem in &members {
                    let pred = ring.ideal_predecessor(mem).unwrap();
                    let owns_some = (0..=width).any(|d| {
                        let key = space.add(lo, d);
                        space.in_half_open(pred, key, mem)
                    });
                    assert!(owns_some, "member {mem} of [{lo},{hi}] covers no key");
                }
            }
        }
    }

    #[test]
    fn sequential_depths_are_consecutive() {
        let ring = figure_ring();
        let plan = multicast(&ring, 8, 12, 22, RangeStrategy::Sequential);
        assert_eq!(plan.nodes(), vec![14, 20, 23]);
        assert_eq!(plan.entry, 14);
        let base = plan.route_hops;
        let depths: Vec<u32> = plan.deliveries.iter().map(|d| d.hops - base).collect();
        assert_eq!(depths, vec![0, 1, 2]);
        assert_eq!(plan.forward_messages, 2);
        assert_eq!(plan.max_hops(), base + 2);
    }

    #[test]
    fn bidirectional_enters_in_middle() {
        let ring = figure_ring();
        // Range [12, 22]: midpoint 17 → entry N20; N14 and N23 at depth 1.
        let plan = multicast(&ring, 8, 12, 22, RangeStrategy::Bidirectional);
        assert_eq!(plan.entry, 20);
        assert_eq!(plan.nodes(), vec![14, 20, 23]);
        let base = plan.route_hops;
        let depth_of =
            |n: ChordId| plan.deliveries.iter().find(|d| d.node == n).unwrap().hops - base;
        assert_eq!(depth_of(20), 0);
        assert_eq!(depth_of(14), 1);
        assert_eq!(depth_of(23), 1);
        assert_eq!(plan.forward_messages, 2);
    }

    #[test]
    fn bidirectional_halves_depth_on_wide_ranges() {
        let space = IdSpace::new(16);
        let ids: Vec<ChordId> = (0..128u64).map(|i| i * 512 + 7).collect();
        let ring = Ring::with_nodes(space, ids);
        let (lo, hi) = (1000u64, 30_000u64);
        let seq = multicast(&ring, 7, lo, hi, RangeStrategy::Sequential);
        let bid = multicast(&ring, 7, lo, hi, RangeStrategy::Bidirectional);
        assert_eq!(seq.nodes().len(), bid.nodes().len());
        let seq_depth = seq.max_hops() - seq.route_hops;
        let bid_depth = bid.max_hops() - bid.route_hops;
        assert!(seq_depth >= 20, "range should span many nodes, got {seq_depth}");
        assert!(
            bid_depth <= seq_depth / 2 + 1,
            "bidirectional depth {bid_depth} not about half of {seq_depth}"
        );
        // Same message efficiency.
        assert_eq!(seq.forward_messages, bid.forward_messages);
    }

    #[test]
    fn strategies_deliver_identical_sets() {
        let space = IdSpace::new(12);
        let ids: Vec<ChordId> = (0..40u64).map(|i| i * 97 + 13).collect();
        let ring = Ring::with_nodes(space, ids.clone());
        for &(lo, hi) in &[(0u64, 500u64), (3000, 3500), (3900, 200), (100, 100)] {
            let mut a = multicast(&ring, ids[0], lo, hi, RangeStrategy::Sequential).nodes();
            let mut b = multicast(&ring, ids[5], lo, hi, RangeStrategy::Bidirectional).nodes();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "range [{lo},{hi}]");
        }
    }

    #[test]
    fn forward_edges_sequential_chain() {
        let ring = figure_ring();
        let plan = multicast(&ring, 8, 12, 22, RangeStrategy::Sequential);
        assert_eq!(plan.forward_edges(), vec![(14, 20), (20, 23)]);
    }

    #[test]
    fn forward_edges_bidirectional_fan() {
        let ring = figure_ring();
        let plan = multicast(&ring, 8, 12, 22, RangeStrategy::Bidirectional);
        // Entry N20 forwards to predecessor N14 and successor N23.
        let mut edges = plan.forward_edges();
        edges.sort_unstable();
        assert_eq!(edges, vec![(20, 14), (20, 23)]);
    }

    #[test]
    fn forward_edge_count_matches_forward_messages() {
        let space = IdSpace::new(12);
        let ids: Vec<ChordId> = (0..40u64).map(|i| i * 97 + 13).collect();
        let ring = Ring::with_nodes(space, ids.clone());
        for strat in [RangeStrategy::Sequential, RangeStrategy::Bidirectional] {
            let plan = multicast(&ring, ids[0], 100, 2000, strat);
            assert_eq!(plan.forward_edges().len() as u32, plan.forward_messages);
        }
    }

    #[test]
    fn total_messages_accounts_route_and_forwards() {
        let ring = figure_ring();
        let plan = multicast(&ring, 1, 12, 22, RangeStrategy::Sequential);
        assert_eq!(plan.total_messages(), plan.route_hops + 2);
    }

    #[test]
    fn causal_forwards_sorted_by_depth_and_sender_reached_first() {
        let space = IdSpace::new(12);
        let ids: Vec<ChordId> = (0..40u64).map(|i| i * 97 + 13).collect();
        let ring = Ring::with_nodes(space, ids.clone());
        for strat in [RangeStrategy::Sequential, RangeStrategy::Bidirectional] {
            let plan = multicast(&ring, ids[0], 100, 2000, strat);
            let forwards = plan.causal_forwards();
            assert_eq!(forwards.len() as u32, plan.forward_messages);
            let mut reached = vec![plan.entry];
            let mut last_hops = plan.route_hops;
            for (from, to, hops) in forwards {
                assert!(hops >= last_hops, "forwards must be depth-sorted");
                assert!(reached.contains(&from), "sender {from} not yet reached");
                let d = plan.deliveries.iter().find(|d| d.node == to).unwrap();
                assert_eq!(d.hops, hops);
                reached.push(to);
                last_hops = hops;
            }
            // Every delivery except the entry was reached by a forward.
            assert_eq!(reached.len(), plan.deliveries.len());
        }
    }

    #[test]
    fn failover_with_lossless_judge_matches_multicast() {
        let space = IdSpace::new(12);
        let ids: Vec<ChordId> = (0..40u64).map(|i| i * 97 + 13).collect();
        let ring = Ring::with_nodes(space, ids.clone());
        for strat in [RangeStrategy::Sequential, RangeStrategy::Bidirectional] {
            for &(lo, hi) in &[(0u64, 500u64), (3000, 3500), (3900, 200), (100, 100)] {
                let plain = multicast(&ring, ids[3], lo, hi, strat);
                let out = multicast_with_failover(&ring, ids[3], lo, hi, strat, &mut |_, _, _| {
                    HopOutcome::Deliver
                });
                assert_eq!(out.plan.as_ref(), Some(&plain), "[{lo},{hi}] {strat:?}");
                assert!(out.skipped.is_empty());
                assert!(out.late.is_empty());
                assert_eq!(out.coverage, 1.0);
                assert!(out.is_complete());
            }
        }
    }

    #[test]
    fn failover_routes_around_a_dead_forward_target() {
        let ring = figure_ring();
        // Range [12, 22] covers {14, 20, 23}; kill every hop into N20.
        let mut out = multicast_with_failover(
            &ring,
            8,
            12,
            22,
            RangeStrategy::Sequential,
            &mut |_, to, _| {
                if to == 20 {
                    HopOutcome::Fail
                } else {
                    HopOutcome::Deliver
                }
            },
        );
        let plan = out.plan.take().expect("entry reachable");
        assert_eq!(plan.entry, 14);
        assert_eq!(plan.nodes(), vec![14, 23]);
        assert_eq!(out.skipped, vec![20]);
        // N23 is reached directly from N14 (one successor-list hop).
        let depth: Vec<u32> = plan.deliveries.iter().map(|d| d.hops - plan.route_hops).collect();
        assert_eq!(depth, vec![0, 1]);
        assert_eq!(plan.forward_edges(), vec![(14, 23)]);
        assert_eq!(plan.forward_messages, 1);
        // Arcs: N14 owns [12,14] (3 keys), N20 [15,20] (6), N23 [21,22] (2).
        let expect = (3.0 + 2.0) / 11.0;
        assert!((out.coverage - expect).abs() < 1e-12, "coverage {}", out.coverage);
        assert!(!out.is_complete());
    }

    #[test]
    fn failover_entry_falls_back_to_next_member() {
        let ring = figure_ring();
        // Bidirectional entry for [12, 22] is N20 (midpoint 17); fail the
        // initial routing into it, so the entry falls forward to N23 and the
        // plan walks back 23 → 20 → 14 over successor-list forwards.
        let mut routed_entries = Vec::new();
        let out = multicast_with_failover(
            &ring,
            8,
            12,
            22,
            RangeStrategy::Bidirectional,
            &mut |_, to, kind| {
                if kind == HopKind::Route {
                    routed_entries.push(to);
                    if to == 20 {
                        return HopOutcome::Fail;
                    }
                }
                HopOutcome::Deliver
            },
        );
        assert_eq!(routed_entries, vec![20, 23]);
        let plan = out.plan.expect("fallback entry reachable");
        assert_eq!(plan.entry, 23);
        assert_eq!(plan.nodes(), vec![14, 20, 23]);
        let depth_of = |n: ChordId| {
            plan.deliveries.iter().find(|d| d.node == n).unwrap().hops - plan.route_hops
        };
        assert_eq!(depth_of(23), 0);
        assert_eq!(depth_of(20), 1);
        assert_eq!(depth_of(14), 2);
        assert!(out.skipped.is_empty());
        assert_eq!(out.coverage, 1.0);
        assert_eq!(plan.forward_edges().len() as u32, plan.forward_messages);
    }

    #[test]
    fn failover_total_loss_degrades_to_empty_plan() {
        let ring = figure_ring();
        let out =
            multicast_with_failover(&ring, 8, 12, 22, RangeStrategy::Sequential, &mut |_, _, _| {
                HopOutcome::Fail
            });
        assert!(out.plan.is_none());
        assert_eq!(out.skipped, vec![14, 20, 23]);
        assert_eq!(out.coverage, 0.0);
        assert!(!out.is_complete());
    }

    #[test]
    fn failover_late_deliveries_still_propagate() {
        let ring = figure_ring();
        let out = multicast_with_failover(
            &ring,
            8,
            12,
            22,
            RangeStrategy::Sequential,
            &mut |_, to, _| {
                if to == 20 {
                    HopOutcome::DeliverLate
                } else {
                    HopOutcome::Deliver
                }
            },
        );
        assert!(out.is_complete());
        let plan = out.plan.expect("entry reachable");
        // N20's payload is parked, but it still forwards the multicast on,
        // so the chain and the covering set are intact.
        assert_eq!(plan.nodes(), vec![14, 20, 23]);
        assert_eq!(out.late, vec![20]);
        assert!(out.skipped.is_empty());
        assert_eq!(out.coverage, 1.0);
    }

    #[test]
    fn degraded_plans_keep_forward_edge_invariants() {
        // Sweep drop patterns and check the achieved plan still satisfies
        // the structural invariants downstream consumers rely on.
        let space = IdSpace::new(12);
        let ids: Vec<ChordId> = (0..40u64).map(|i| i * 97 + 13).collect();
        let ring = Ring::with_nodes(space, ids.clone());
        for strat in [RangeStrategy::Sequential, RangeStrategy::Bidirectional] {
            for kill in 0u64..8 {
                let out =
                    multicast_with_failover(&ring, ids[0], 100, 2000, strat, &mut |_, to, _| {
                        if to % 8 == kill {
                            HopOutcome::Fail
                        } else {
                            HopOutcome::Deliver
                        }
                    });
                let Some(plan) = out.plan else { continue };
                assert_eq!(plan.forward_edges().len() as u32, plan.forward_messages);
                assert_eq!(plan.forward_messages as usize, plan.deliveries.len() - 1);
                // causal_forwards must reach every non-entry delivery.
                assert_eq!(plan.causal_forwards().len(), plan.deliveries.len() - 1);
                assert!((0.0..=1.0).contains(&out.coverage));
                if out.skipped.is_empty() {
                    assert_eq!(out.coverage, 1.0);
                } else {
                    assert!(out.coverage < 1.0);
                }
            }
        }
    }

    #[test]
    fn partition_overshoot_entry_route_terminates_at_the_entry() {
        // Side 0 = {1, 8}, side 1 = {11, 14, 20, 23}. From N1 the
        // side-filtered route of the bidirectional midpoint of [2, 21]
        // (key 11) overshoots every covering member and lands back on N1
        // itself — entry failover must then route the first member (N8)
        // afresh, so the plan's route tail agrees with its entry (the
        // causal-trace audit asserts forwards depart from the route tail).
        let mut ring = figure_ring();
        ring.split([(11, 1), (14, 1), (20, 1), (23, 1)]);
        for _ in 0..4 {
            ring.stabilize_round();
            ring.fix_fingers_round();
        }
        let out = multicast_with_failover(
            &ring,
            1,
            2,
            21,
            RangeStrategy::Bidirectional,
            &mut |from, to, _| {
                if ring.reachable(from, to) {
                    HopOutcome::Deliver
                } else {
                    HopOutcome::Fail
                }
            },
        );
        let plan = out.plan.expect("a same-side member is reachable");
        assert_eq!(plan.entry, 8);
        assert_eq!(plan.route_path.last(), Some(&plan.entry));
        assert_eq!(plan.nodes(), vec![8]);
        assert_eq!(out.skipped, vec![11, 14, 20, 23]);
        assert!(out.coverage < 1.0);
    }

    #[test]
    fn fork_misrouted_entry_candidate_is_not_reached() {
        // Heal without re-probe leaves a persistent fork: from N23, key 0
        // still routes to the forked island successor N8 even though N1 owns
        // it globally. A judge-delivered hop into N1 must not count — the
        // message physically lands on N8 — so the multicast degrades to
        // total loss rather than claiming an entry its route never reached.
        let mut ring = figure_ring();
        ring.split([(8, 1), (14, 1), (23, 1)]);
        for _ in 0..4 {
            ring.stabilize_round();
            ring.fix_fingers_round();
        }
        ring.heal(false);
        for _ in 0..6 {
            ring.stabilize_round();
            ring.fix_fingers_round();
        }
        assert!(!ring.is_fully_consistent(), "the fork must persist");
        assert_eq!(ring.route(23, 0).owner, 8);
        let mut judged = 0;
        let out =
            multicast_with_failover(&ring, 23, 0, 0, RangeStrategy::Sequential, &mut |_, _, _| {
                judged += 1;
                HopOutcome::Deliver
            });
        // The message was sent (loss randomness spent) but the candidacy
        // failed, and no plan pretends otherwise.
        assert_eq!(judged, 1);
        assert!(out.plan.is_none());
        assert_eq!(out.skipped, vec![1]);
        assert_eq!(out.coverage, 0.0);
    }

    #[test]
    fn trace_into_builds_one_tree_per_multicast() {
        let ring = figure_ring();
        let mut tracer = Tracer::disabled();
        let plan = multicast(&ring, 8, 12, 22, RangeStrategy::Bidirectional);
        assert!(plan.trace_into(&mut tracer, 0, 2, 1, 12, 22).is_none());

        tracer.enable(256);
        let root = plan.trace_into(&mut tracer, 0, 2, 1, 12, 22).unwrap();
        // Records: route (1 origin + route_hops hops) + one hop per forward.
        assert_eq!(
            tracer.len() as u32,
            1 + plan.route_hops + plan.forward_messages,
            "one record per overlay message plus the origin"
        );
        // Forward receivers sit at their delivery's absolute depth and are
        // marked as internal-class hop-log points.
        for d in plan.deliveries.iter().filter(|d| d.node != plan.entry) {
            let rec = tracer.iter().find(|r| r.class == 1 && r.to == d.node).unwrap();
            assert_eq!(rec.depth, d.hops);
            assert_eq!(rec.hops_class, Some(1));
        }
        let meta = &tracer.multicasts()[0];
        assert_eq!((meta.root, meta.origin, meta.lo, meta.hi), (root, 8, 12, 22));
        dsi_trace::validate_causality(tracer.iter()).unwrap();
    }
}
