//! The Chord ring: node state, finger tables, and the iterative lookup of
//! §II-B.1.
//!
//! This is a *simulator-grade* Chord, like the one the paper evaluates on:
//! the `Ring` holds the global membership (so ground truth is always
//! available for assertions), while `lookup` walks finger tables exactly the
//! way the protocol routes, returning the full hop path so the network
//! simulator can charge per-hop latency.

use crate::id::{ChordId, IdSpace};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Default successor-list length (fault tolerance depth).
pub const DEFAULT_SUCCESSOR_LIST_LEN: usize = 4;

/// Routing state of a single Chord node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeState {
    /// This node's identifier.
    pub id: ChordId,
    /// `fingers[i]` is the node believed to be `successor(id + 2^i)`.
    pub fingers: Vec<ChordId>,
    /// Successor list: `successors[0]` is the immediate successor.
    pub successors: Vec<ChordId>,
    /// Believed predecessor.
    pub predecessor: Option<ChordId>,
    /// Suspicion list: peers that stopped answering when a partition cut
    /// them off. Stabilization timed them out of the live tables, but they
    /// are remembered (not forgotten) so [`Ring::heal`] can re-probe them
    /// and re-knit the full ring instead of serving a fork forever.
    pub suspects: Vec<ChordId>,
}

/// Result of an iterative lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lookup {
    /// Node that owns (is the successor of) the key.
    pub owner: ChordId,
    /// Nodes visited, starting at the querying node and ending at the owner.
    pub path: Vec<ChordId>,
}

impl Lookup {
    /// Number of overlay messages the lookup needed.
    #[inline]
    pub fn hops(&self) -> u32 {
        (self.path.len().saturating_sub(1)) as u32
    }
}

/// A simulated Chord ring.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ring {
    space: IdSpace,
    nodes: BTreeMap<ChordId, NodeState>,
    succ_list_len: usize,
    /// Active network partition: node id → side index. Empty when the
    /// network is whole (the common case); unlisted nodes are side 0.
    /// While non-empty, protocol traffic (lookups, stabilization, joins)
    /// only flows between nodes on the same side.
    sides: BTreeMap<ChordId, u8>,
}

impl Ring {
    /// Creates an empty ring over the given identifier space.
    pub fn new(space: IdSpace) -> Self {
        Ring {
            space,
            nodes: BTreeMap::new(),
            succ_list_len: DEFAULT_SUCCESSOR_LIST_LEN,
            sides: BTreeMap::new(),
        }
    }

    /// Creates a ring from explicit node identifiers and builds exact
    /// routing state for all of them.
    pub fn with_nodes<I: IntoIterator<Item = ChordId>>(space: IdSpace, ids: I) -> Self {
        let mut ring = Ring::new(space);
        for id in ids {
            ring.insert_raw(id);
        }
        ring.rebuild_all();
        ring
    }

    /// The identifier space.
    #[inline]
    pub fn space(&self) -> IdSpace {
        self.space
    }

    /// Number of live nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if there are no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// True if `id` is a live node.
    #[inline]
    pub fn contains(&self, id: ChordId) -> bool {
        self.nodes.contains_key(&id)
    }

    /// All live node identifiers in ring order, without allocating.
    /// Hot loops (stabilization, oracles, benches) should prefer this over
    /// [`Ring::node_ids`].
    pub fn iter_ids(&self) -> impl Iterator<Item = ChordId> + '_ {
        self.nodes.keys().copied()
    }

    /// All live node identifiers in ring order, collected.
    pub fn node_ids(&self) -> Vec<ChordId> {
        self.iter_ids().collect()
    }

    /// Read access to a node's routing state.
    pub fn node(&self, id: ChordId) -> Option<&NodeState> {
        self.nodes.get(&id)
    }

    /// Inserts a node with empty routing state (no finger computation).
    /// Callers must follow with [`Ring::rebuild_all`] or [`Ring::join`].
    pub fn insert_raw(&mut self, id: ChordId) -> bool {
        assert!(id < self.space.modulus(), "node id outside identifier space");
        self.nodes
            .insert(
                id,
                NodeState {
                    id,
                    fingers: Vec::new(),
                    successors: Vec::new(),
                    predecessor: None,
                    suspects: Vec::new(),
                },
            )
            .is_none()
    }

    // ------------------------------------------------------------------
    // Network partitions (§VII robustness extension)
    // ------------------------------------------------------------------

    /// True while a network partition is in force.
    #[inline]
    pub fn partitioned(&self) -> bool {
        !self.sides.is_empty()
    }

    /// The partition side `id` sits on (0 when unlisted or un-partitioned).
    #[inline]
    pub fn side(&self, id: ChordId) -> u8 {
        self.sides.get(&id).copied().unwrap_or(0)
    }

    /// True when a message from `a` can reach `b` under the current
    /// partition (always true when the network is whole).
    #[inline]
    pub fn reachable(&self, a: ChordId, b: ChordId) -> bool {
        self.sides.is_empty() || self.side(a) == self.side(b)
    }

    /// The true successor of `key` *as seen from `origin`'s side*: the
    /// first node at or after `key` (clockwise) that `origin` can reach.
    /// Equals [`Ring::ideal_successor`] when the network is whole.
    pub fn ideal_successor_from(&self, origin: ChordId, key: ChordId) -> Option<ChordId> {
        if self.sides.is_empty() {
            return self.ideal_successor(key);
        }
        let side = self.side(origin);
        self.nodes
            .range(key..)
            .chain(self.nodes.range(..key))
            .map(|(id, _)| *id)
            .find(|&id| self.side(id) == side)
    }

    /// The true predecessor of `key` as seen from `origin`'s side.
    pub fn ideal_predecessor_from(&self, origin: ChordId, key: ChordId) -> Option<ChordId> {
        if self.sides.is_empty() {
            return self.ideal_predecessor(key);
        }
        let side = self.side(origin);
        self.nodes
            .range(..key)
            .rev()
            .chain(self.nodes.range(key..).rev())
            .map(|(id, _)| *id)
            .find(|&id| self.side(id) == side)
    }

    /// Splits the network into islands. `assignment` maps node ids to side
    /// indices; live nodes not listed fall on side 0.
    ///
    /// Models the first suspicion round after the cut: every node's
    /// cross-side pointers time out, are parked on its suspicion list, and
    /// are dropped from the live tables (fingers are left in place — they
    /// are filtered at use and rewritten by `fix_fingers_round`). Callers
    /// run stabilization afterwards so each island converges to a
    /// consistent sub-ring.
    pub fn split<I: IntoIterator<Item = (ChordId, u8)>>(&mut self, assignment: I) {
        self.sides = assignment.into_iter().collect();
        let ids = self.node_ids();
        for &id in &ids {
            let state = self.nodes.get_mut(&id).expect("listed id");
            // Borrow-friendly: decide reachability from the sides map only.
            let sides = &self.sides;
            let my_side = sides.get(&id).copied().unwrap_or(0);
            let cut = |peer: ChordId| sides.get(&peer).copied().unwrap_or(0) != my_side;

            let mut suspects: Vec<ChordId> = Vec::new();
            for &f in state.fingers.iter().filter(|&&f| cut(f)) {
                suspects.push(f);
            }
            suspects.extend(state.successors.iter().copied().filter(|&s| cut(s)));
            if let Some(p) = state.predecessor {
                if cut(p) {
                    suspects.push(p);
                    state.predecessor = None;
                }
            }
            suspects.sort_unstable();
            suspects.dedup();
            state.suspects = suspects;
            state.successors.retain(|&s| !cut(s));
        }
    }

    /// Heals the partition. With `reprobe` set (the protocol's behavior),
    /// every node re-contacts its suspicion list: dead suspects are
    /// discarded, the live suspect closest after the node (and inside its
    /// current successor gap) is re-adopted as the immediate successor, and
    /// a better predecessor is re-adopted likewise. Follow-up stabilization
    /// rounds then re-knit the full ring.
    ///
    /// With `reprobe` unset (the negative control: stabilization disabled),
    /// suspects are simply forgotten — each island keeps serving its forked
    /// sub-ring and the ring never reconverges to the global ground truth.
    pub fn heal(&mut self, reprobe: bool) {
        self.sides.clear();
        let ids = self.node_ids();
        for &id in &ids {
            let suspects =
                std::mem::take(&mut self.nodes.get_mut(&id).expect("listed id").suspects);
            if !reprobe {
                continue;
            }
            let succ = self.successor_of(id);
            // Best live suspect strictly between us and our current
            // successor becomes the new immediate successor.
            let adopted = suspects
                .iter()
                .copied()
                .filter(|&s| self.contains(s) && self.space.in_open(id, s, succ))
                .min_by_key(|&s| self.space.distance_cw(id, s));
            if let Some(s) = adopted {
                let state = self.nodes.get_mut(&id).expect("listed id");
                state.successors.insert(0, s);
                state.successors.dedup();
                state.successors.truncate(self.succ_list_len);
            }
            // A live suspect closer behind us than the believed predecessor
            // is re-adopted too (speeds up the backward re-knit).
            let cur_pred = self.predecessor_of(id);
            let better_pred = suspects
                .iter()
                .copied()
                .filter(|&p| {
                    self.contains(p)
                        && match cur_pred {
                            Some(q) => self.space.in_open(q, p, id),
                            None => p != id,
                        }
                })
                .min_by_key(|&p| self.space.distance_cw(p, id));
            if let Some(p) = better_pred {
                self.nodes.get_mut(&id).expect("listed id").predecessor = Some(p);
            }
        }
    }

    // ------------------------------------------------------------------
    // Ground truth (global view)
    // ------------------------------------------------------------------

    /// The true successor of `key`: the first live node whose identifier is
    /// equal to or follows `key` on the circle.
    pub fn ideal_successor(&self, key: ChordId) -> Option<ChordId> {
        if self.nodes.is_empty() {
            return None;
        }
        self.nodes.range(key..).next().or_else(|| self.nodes.iter().next()).map(|(id, _)| *id)
    }

    /// The true predecessor of `key` (the last node strictly before it).
    pub fn ideal_predecessor(&self, key: ChordId) -> Option<ChordId> {
        if self.nodes.is_empty() {
            return None;
        }
        self.nodes
            .range(..key)
            .next_back()
            .or_else(|| self.nodes.iter().next_back())
            .map(|(id, _)| *id)
    }

    /// The node's believed immediate successor (first live *reachable*
    /// successor-list entry, falling back to ground truth on the node's own
    /// side when the whole list died).
    pub fn successor_of(&self, id: ChordId) -> ChordId {
        let state = &self.nodes[&id];
        for &s in &state.successors {
            if self.contains(s) && self.reachable(id, s) {
                return s;
            }
        }
        // The entire successor list failed — model Chord's (expensive)
        // re-join recovery by consulting the ring directly.
        self.ideal_successor_from(id, self.space.add(id, 1)).expect("ring is non-empty")
    }

    /// The node's believed predecessor if it is still alive and reachable.
    pub fn predecessor_of(&self, id: ChordId) -> Option<ChordId> {
        self.nodes[&id].predecessor.filter(|p| self.contains(*p) && self.reachable(id, *p))
    }

    /// Rebuilds exact fingers, successor lists and predecessors for every
    /// node from the global view (what a fully converged network holds).
    pub fn rebuild_all(&mut self) {
        let ids = self.node_ids();
        let m = self.space.bits() as usize;
        for &id in &ids {
            let fingers: Vec<ChordId> = (0..m)
                .map(|i| {
                    let start = self.space.add(id, 1u64 << i);
                    self.ideal_successor(start).expect("non-empty")
                })
                .collect();
            let mut successors = Vec::with_capacity(self.succ_list_len);
            let mut cur = id;
            for _ in 0..self.succ_list_len.min(ids.len().saturating_sub(1)).max(1) {
                cur = self.ideal_successor(self.space.add(cur, 1)).expect("non-empty");
                successors.push(cur);
                if cur == id {
                    break;
                }
            }
            let predecessor = self.ideal_predecessor(id);
            let state = self.nodes.get_mut(&id).expect("listed id");
            state.fingers = fingers;
            state.successors = successors;
            state.predecessor = predecessor;
        }
    }

    // ------------------------------------------------------------------
    // Iterative lookup (the protocol)
    // ------------------------------------------------------------------

    /// Finds the node preceding `key` most closely in `from`'s routing
    /// tables (fingers + successor list), skipping dead entries.
    fn closest_preceding(&self, from: ChordId, key: ChordId) -> ChordId {
        let state = &self.nodes[&from];
        for &f in state.fingers.iter().rev() {
            if self.contains(f) && self.reachable(from, f) && self.space.in_open(from, f, key) {
                return f;
            }
        }
        for &s in state.successors.iter().rev() {
            if self.contains(s) && self.reachable(from, s) && self.space.in_open(from, s, key) {
                return s;
            }
        }
        from
    }

    /// Iterative Chord lookup from `from` for `key`, following finger tables
    /// (§II-B.1, Fig. 1(b)). Returns the owner and the full hop path.
    ///
    /// # Panics
    /// Panics if `from` is not a live node or the ring is empty.
    pub fn lookup(&self, from: ChordId, key: ChordId) -> Lookup {
        assert!(self.contains(from), "lookup origin {from} is not a live node");
        let mut path = vec![from];
        let mut cur = from;
        // Bound: with sane tables each hop at least halves the clockwise
        // distance; the generous bound catches inconsistent mid-churn state.
        let budget = 2 * self.space.bits() as usize + self.nodes.len() + 2;
        for _ in 0..budget {
            let succ = self.successor_of(cur);
            if self.space.in_half_open(cur, key, succ) {
                if succ != cur {
                    path.push(succ);
                }
                return Lookup { owner: succ, path };
            }
            let next = self.closest_preceding(cur, key);
            let next = if next == cur { succ } else { next };
            if next == cur {
                // Single-node ring.
                return Lookup { owner: cur, path };
            }
            path.push(next);
            cur = next;
        }
        // Tables too stale to terminate — fall back to ground truth on the
        // querying node's side, charging the hops walked so far (models a
        // flooding-recovery resolution, which cannot cross the partition).
        let owner = self.ideal_successor_from(from, key).expect("non-empty");
        if *path.last().expect("path starts at the querying node") != owner {
            path.push(owner);
        }
        Lookup { owner, path }
    }

    // ------------------------------------------------------------------
    // Churn
    // ------------------------------------------------------------------

    /// A new node joins via `bootstrap`: its successor is found with a real
    /// lookup, its fingers are initialized with lookups, and its successor is
    /// notified. Other nodes' state stays stale until stabilization.
    ///
    /// # Panics
    /// Panics if `bootstrap` is dead or `id` already exists.
    pub fn join(&mut self, id: ChordId, bootstrap: ChordId) {
        assert!(self.contains(bootstrap), "bootstrap node must be alive");
        assert!(!self.contains(id), "node {id} already in ring");
        assert!(id < self.space.modulus(), "node id outside identifier space");

        // A node joining during a partition can only see its bootstrap's
        // side, so it lands on the same island.
        if self.partitioned() {
            let side = self.side(bootstrap);
            self.sides.insert(id, side);
        }
        let m = self.space.bits() as usize;
        let succ = self.lookup(bootstrap, id).owner;
        let fingers: Vec<ChordId> =
            (0..m).map(|i| self.lookup(bootstrap, self.space.add(id, 1u64 << i)).owner).collect();
        let mut successors = vec![succ];
        if let Some(s) = self.nodes.get(&succ) {
            successors.extend(s.successors.iter().copied().filter(|&x| self.reachable(id, x)));
        }
        successors.truncate(self.succ_list_len);
        self.nodes.insert(
            id,
            NodeState { id, fingers, successors, predecessor: None, suspects: Vec::new() },
        );
        // notify(successor): the new node may be its better predecessor.
        let succ_state = self.nodes.get_mut(&succ).expect("successor is alive");
        let better = match succ_state.predecessor {
            Some(p) => self.space.in_open(p, id, succ) || !self.nodes.contains_key(&p),
            None => true,
        };
        if better {
            self.nodes.get_mut(&succ).expect("successor checked alive above").predecessor =
                Some(id);
        }
    }

    /// Graceful departure: the node hands its neighbors to each other before
    /// leaving (predecessor's successor pointer and successor's predecessor
    /// pointer are patched).
    pub fn leave(&mut self, id: ChordId) {
        let Some(state) = self.nodes.remove(&id) else { return };
        let succ = state
            .successors
            .iter()
            .copied()
            .find(|s| self.contains(*s) && self.reachable(id, *s))
            .or_else(|| self.ideal_successor_from(id, self.space.add(id, 1)));
        self.sides.remove(&id);
        if let (Some(pred), Some(succ)) = (state.predecessor, succ) {
            if let Some(p) = self.nodes.get_mut(&pred) {
                if !p.successors.is_empty() {
                    p.successors[0] = succ;
                } else {
                    p.successors.push(succ);
                }
            }
            if let Some(s) = self.nodes.get_mut(&succ) {
                if s.predecessor == Some(id) {
                    s.predecessor = Some(pred);
                }
            }
        }
    }

    /// Abrupt failure: the node vanishes; everyone else's pointers dangle
    /// until stabilization repairs them.
    pub fn crash(&mut self, id: ChordId) {
        self.nodes.remove(&id);
        self.sides.remove(&id);
    }

    /// One round of the stabilization protocol on every node: verify the
    /// immediate successor (adopting its predecessor if closer), notify, and
    /// refresh the successor list. Returns the number of protocol messages
    /// the round cost (one predecessor probe and one notify per node —
    /// Chord's O(N)-per-round maintenance floor).
    pub fn stabilize_round(&mut self) -> u64 {
        let mut messages = 0u64;
        let ids = self.node_ids();
        for &id in &ids {
            if !self.contains(id) {
                continue;
            }
            messages += 2; // successor.predecessor probe + notify
            let succ = self.successor_of(id);
            // stabilize: ask successor for its predecessor.
            let adopted = match self.predecessor_of(succ) {
                Some(x)
                    if x != id
                        && self.space.in_open(id, x, succ)
                        && self.contains(x)
                        && self.reachable(id, x) =>
                {
                    x
                }
                _ => succ,
            };
            // Refresh the successor list from the adopted successor's list.
            let mut successors = vec![adopted];
            if let Some(s) = self.nodes.get(&adopted) {
                successors.extend(
                    s.successors
                        .iter()
                        .copied()
                        .filter(|s| self.contains(*s) && self.reachable(id, *s)),
                );
            }
            successors.dedup();
            successors.truncate(self.succ_list_len);
            self.nodes.get_mut(&id).expect("membership unchanged since collected").successors =
                successors;
            // notify(adopted): we may be its better predecessor.
            if adopted != id {
                let cur_pred = self.nodes.get(&adopted).and_then(|s| s.predecessor);
                let should_adopt = match cur_pred {
                    None => true,
                    Some(p) if !self.contains(p) || !self.reachable(adopted, p) => true,
                    Some(p) => self.space.in_open(p, id, adopted),
                };
                if should_adopt {
                    self.nodes
                        .get_mut(&adopted)
                        .expect("adopted successor is a live node")
                        .predecessor = Some(id);
                }
            }
        }
        // Drop dead (or partitioned-away, hence unresponsive) predecessors
        // (Chord's periodic check_predecessor). Membership has not changed
        // since `ids` was collected above.
        for &id in &ids {
            let dead = self
                .nodes
                .get(&id)
                .and_then(|s| s.predecessor)
                .map(|p| !self.contains(p) || !self.reachable(id, p))
                .unwrap_or(false);
            if dead {
                self.nodes
                    .get_mut(&id)
                    .expect("membership unchanged since collected")
                    .predecessor = None;
            }
        }
        messages
    }

    /// One round of finger refreshing on every node: recompute each finger
    /// entry with a lookup through the *current* (possibly stale) tables.
    /// Returns the total overlay messages (lookup hops) the round cost —
    /// O(N * m * log N) with converged tables.
    pub fn fix_fingers_round(&mut self) -> u64 {
        let mut messages = 0u64;
        let ids = self.node_ids();
        let m = self.space.bits() as usize;
        for &id in &ids {
            let mut fingers = Vec::with_capacity(m);
            for i in 0..m {
                let target = self.space.add(id, 1u64 << i);
                let l = self.lookup(id, target);
                messages += l.hops() as u64;
                fingers.push(l.owner);
            }
            self.nodes.get_mut(&id).expect("membership unchanged since collected").fingers =
                fingers;
        }
        messages
    }

    /// True when every node's successor, predecessor and fingers match the
    /// ground truth of the membership *it can reach*: the global membership
    /// when the network is whole, the node's island while partitioned (each
    /// island must form a consistent sub-ring of its own).
    pub fn is_fully_consistent(&self) -> bool {
        let m = self.space.bits() as usize;
        self.nodes.values().all(|state| {
            let id = state.id;
            let peers = if self.sides.is_empty() {
                self.len()
            } else {
                let side = self.side(id);
                self.iter_ids().filter(|&n| self.side(n) == side).count()
            };
            let true_succ = self
                .ideal_successor_from(id, self.space.add(id, 1))
                .expect("a live node can always reach itself");
            if self.successor_of(id) != true_succ {
                return false;
            }
            if peers > 1 && self.predecessor_of(id) != self.ideal_predecessor_from(id, id) {
                return false;
            }
            state.fingers.len() == m
                && state.fingers.iter().enumerate().all(|(i, &f)| {
                    let start = self.space.add(id, 1u64 << i);
                    Some(f) == self.ideal_successor_from(id, start)
                })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The ring of paper Fig. 1: m = 5, nodes {1, 8, 11, 14, 20, 23}.
    fn figure1_ring() -> Ring {
        Ring::with_nodes(IdSpace::new(5), [1, 8, 11, 14, 20, 23])
    }

    #[test]
    fn figure1_finger_table_of_n8() {
        // Paper Fig. 1(a): N8's fingers are N11, N11, N14, N20, N1.
        let ring = figure1_ring();
        assert_eq!(ring.node(8).unwrap().fingers, vec![11, 11, 14, 20, 1]);
    }

    #[test]
    fn figure1_finger_table_of_n20() {
        // Paper Fig. 2: N20's fingers are N23, N23, N1, N1, N8.
        let ring = figure1_ring();
        assert_eq!(ring.node(20).unwrap().fingers, vec![23, 23, 1, 1, 8]);
    }

    #[test]
    fn figure1_key_assignment() {
        // Fig. 1(a): K26 -> N1 (wraps), K17 -> N20, K13 -> N14.
        let ring = figure1_ring();
        assert_eq!(ring.ideal_successor(26), Some(1));
        assert_eq!(ring.ideal_successor(17), Some(20));
        assert_eq!(ring.ideal_successor(13), Some(14));
    }

    #[test]
    fn figure1_lookup_26_from_n8() {
        // Fig. 1(b): N8 forwards to N20 (closest preceding), N20 to N23,
        // which finds 26 in (23, 1] and returns N1.
        let ring = figure1_ring();
        let l = ring.lookup(8, 26);
        assert_eq!(l.owner, 1);
        assert_eq!(l.path, vec![8, 20, 23, 1]);
        assert_eq!(l.hops(), 3);
    }

    #[test]
    fn lookup_key_owned_by_self() {
        let ring = figure1_ring();
        // Key 21 lies in (20, 23]: owner N23; from N23's own perspective key
        // 23 lies in (20, 23] as well.
        let l = ring.lookup(23, 23);
        assert_eq!(l.owner, 23);
    }

    #[test]
    fn lookup_matches_ground_truth_everywhere() {
        let ring = figure1_ring();
        for from in ring.iter_ids() {
            for key in 0..32 {
                let l = ring.lookup(from, key);
                assert_eq!(l.owner, ring.ideal_successor(key).unwrap(), "from {from} key {key}");
                // Path starts at origin and ends at owner.
                assert_eq!(*l.path.first().unwrap(), from);
                assert_eq!(*l.path.last().unwrap(), l.owner);
            }
        }
    }

    #[test]
    fn single_node_owns_everything() {
        let ring = Ring::with_nodes(IdSpace::new(6), [17]);
        for key in [0u64, 16, 17, 18, 63] {
            let l = ring.lookup(17, key);
            assert_eq!(l.owner, 17);
            assert_eq!(l.hops(), 0);
        }
    }

    #[test]
    fn lookup_hops_scale_logarithmically() {
        // With correct fingers, average hops should be about (1/2) log2 N.
        let space = IdSpace::new(20);
        let ids: Vec<ChordId> = (0..256u64).map(|i| space.reduce(i * 4099 + 17)).collect();
        let ring = Ring::with_nodes(space, ids.clone());
        let mut total = 0u64;
        let mut count = 0u64;
        for (i, &from) in ids.iter().enumerate().take(64) {
            let key = space.reduce((i as u64) * 104_729 + 3);
            total += ring.lookup(from, key).hops() as u64;
            count += 1;
        }
        let avg = total as f64 / count as f64;
        assert!(avg < 8.5, "average hops {avg} too high for 256 nodes");
        assert!(avg > 1.0, "average hops {avg} implausibly low");
    }

    #[test]
    fn join_then_stabilize_converges() {
        let space = IdSpace::new(10);
        let mut ring = Ring::with_nodes(space, [10, 200, 400, 600, 800]);
        ring.join(300, 10);
        ring.join(500, 200);
        ring.join(950, 800);
        for _ in 0..4 {
            ring.stabilize_round();
            ring.fix_fingers_round();
        }
        assert!(ring.is_fully_consistent());
        // New nodes answer lookups correctly.
        assert_eq!(ring.lookup(300, 450).owner, 500);
        assert_eq!(ring.lookup(950, 999).owner, 10); // wraps
    }

    #[test]
    fn crash_is_repaired_by_stabilization() {
        let space = IdSpace::new(12);
        let ids: Vec<ChordId> = (0..32u64).map(|i| i * 113 + 5).collect();
        let mut ring = Ring::with_nodes(space, ids);
        ring.crash(5 + 113 * 7);
        ring.crash(5 + 113 * 20);
        // Lookups still resolve correctly right after the crash (successor
        // lists provide the fault tolerance)...
        let owner = ring.lookup(5, 113 * 7 + 4).owner;
        assert_eq!(owner, ring.ideal_successor(113 * 7 + 4).unwrap());
        // ...and the ring converges back to full consistency.
        for _ in 0..6 {
            ring.stabilize_round();
            ring.fix_fingers_round();
        }
        assert!(ring.is_fully_consistent());
    }

    #[test]
    fn graceful_leave_patches_neighbors() {
        let space = IdSpace::new(8);
        let mut ring = Ring::with_nodes(space, [10, 50, 100, 150, 200]);
        ring.leave(100);
        assert_eq!(ring.successor_of(50), 150);
        assert_eq!(ring.predecessor_of(150), Some(50));
        for _ in 0..3 {
            ring.stabilize_round();
            ring.fix_fingers_round();
        }
        assert!(ring.is_fully_consistent());
    }

    #[test]
    fn ideal_predecessor_wraps() {
        let ring = figure1_ring();
        assert_eq!(ring.ideal_predecessor(1), Some(23));
        assert_eq!(ring.ideal_predecessor(0), Some(23));
        assert_eq!(ring.ideal_predecessor(9), Some(8));
    }

    #[test]
    #[should_panic(expected = "not a live node")]
    fn lookup_from_dead_node_panics() {
        let ring = figure1_ring();
        let _ = ring.lookup(2, 5);
    }

    #[test]
    fn maintenance_costs_scale_as_expected() {
        let space = IdSpace::new(16);
        let build = |n: u64| Ring::with_nodes(space, (0..n).map(|i| space.reduce(i * 769 + 11)));
        let mut small = build(32);
        let mut large = build(128);
        // Stabilization: exactly 2 messages per node per round.
        assert_eq!(small.stabilize_round(), 64);
        assert_eq!(large.stabilize_round(), 256);
        // Finger fixing: O(N * m * log N); the per-node cost grows with N.
        let cs = small.fix_fingers_round() as f64 / 32.0;
        let cl = large.fix_fingers_round() as f64 / 128.0;
        assert!(cl > cs, "per-node finger maintenance must grow with N: {cs} vs {cl}");
        assert!(cl < cs * 4.0, "growth must stay logarithmic-ish: {cs} vs {cl}");
    }

    #[test]
    fn insert_raw_rejects_out_of_space_ids() {
        let mut ring = Ring::new(IdSpace::new(4));
        assert!(ring.insert_raw(15));
        assert!(!ring.insert_raw(15)); // duplicate
    }

    /// Runs stabilization + finger fixing `rounds` times.
    fn converge(ring: &mut Ring, rounds: usize) {
        for _ in 0..rounds {
            ring.stabilize_round();
            ring.fix_fingers_round();
        }
    }

    #[test]
    fn split_islands_converge_to_consistent_subrings() {
        // Interleaved split of the Fig. 1 ring: worst case for re-knitting.
        let mut ring = figure1_ring();
        ring.split([(8, 1), (14, 1), (23, 1)]);
        assert!(ring.partitioned());
        assert_eq!(ring.side(1), 0);
        assert_eq!(ring.side(8), 1);
        // Cross-side pointers were parked on suspicion lists, not forgotten.
        assert!(ring.node(1).unwrap().suspects.contains(&8));
        assert!(ring.node(23).unwrap().suspects.contains(&1));
        converge(&mut ring, 4);
        // Each island is a consistent sub-ring of its own.
        assert!(ring.is_fully_consistent());
        // Lookups resolve against the querying node's island only.
        assert_eq!(ring.lookup(1, 13).owner, 20); // side 0 = {1, 11, 20}
        assert_eq!(ring.lookup(8, 13).owner, 14); // side 1 = {8, 14, 23}
        assert_eq!(ring.ideal_successor_from(1, 13), Some(20));
        assert_eq!(ring.ideal_successor_from(8, 13), Some(14));
        assert_eq!(ring.ideal_predecessor_from(1, 1), Some(20));
    }

    #[test]
    fn heal_with_reprobe_reconverges_to_the_global_ring() {
        let mut ring = figure1_ring();
        ring.split([(8, 1), (14, 1), (23, 1)]);
        converge(&mut ring, 4);
        ring.heal(true);
        assert!(!ring.partitioned());
        converge(&mut ring, 6);
        assert!(ring.is_fully_consistent());
        assert!(ring.node(1).unwrap().suspects.is_empty());
        // Every lookup resolves against the full membership again.
        for from in ring.node_ids() {
            for key in 0..32 {
                assert_eq!(ring.lookup(from, key).owner, ring.ideal_successor(key).unwrap());
            }
        }
    }

    #[test]
    fn heal_without_reprobe_leaves_a_persistent_fork() {
        // Negative control: suspects are forgotten at heal, so stabilization
        // alone never rediscovers the other island.
        let mut ring = figure1_ring();
        ring.split([(8, 1), (14, 1), (23, 1)]);
        converge(&mut ring, 4);
        ring.heal(false);
        converge(&mut ring, 10);
        assert!(!ring.is_fully_consistent());
        // The fork serves wrong owners: key 0 belongs to N1 globally, but
        // N23 still hands it to its forked successor N8.
        assert_eq!(ring.ideal_successor(0), Some(1));
        assert_eq!(ring.lookup(23, 0).owner, 8);
    }

    #[test]
    fn three_island_split_and_heal() {
        let mut ring = figure1_ring();
        ring.split([(11, 1), (14, 1), (20, 2), (23, 2)]); // {1,8} | {11,14} | {20,23}
        converge(&mut ring, 4);
        assert!(ring.is_fully_consistent());
        assert_eq!(ring.successor_of(8), 1);
        assert_eq!(ring.successor_of(14), 11);
        ring.heal(true);
        converge(&mut ring, 6);
        assert!(ring.is_fully_consistent());
    }

    #[test]
    fn single_node_island_survives_split_and_heal() {
        let mut ring = figure1_ring();
        ring.split([(1, 1)]); // N1 alone; everyone else on side 0.
        converge(&mut ring, 4);
        assert!(ring.is_fully_consistent());
        assert_eq!(ring.successor_of(1), 1);
        assert_eq!(ring.lookup(1, 29).owner, 1);
        ring.heal(true);
        converge(&mut ring, 6);
        assert!(ring.is_fully_consistent());
        assert_eq!(ring.successor_of(23), 1);
        assert_eq!(ring.predecessor_of(8), Some(1));
    }

    #[test]
    fn join_during_split_lands_on_bootstraps_island() {
        let mut ring = figure1_ring();
        ring.split([(8, 1), (14, 1), (23, 1)]);
        converge(&mut ring, 4);
        ring.join(15, 8); // bootstrap on side 1
        assert_eq!(ring.side(15), 1);
        converge(&mut ring, 4);
        assert!(ring.is_fully_consistent());
        // The joiner serves on its island...
        assert_eq!(ring.lookup(8, 15).owner, 15);
        // ...and is woven into the global ring after heal.
        ring.heal(true);
        converge(&mut ring, 6);
        assert!(ring.is_fully_consistent());
        assert_eq!(ring.lookup(1, 15).owner, 15);
        assert_eq!(ring.predecessor_of(15), Some(14));
    }

    #[test]
    fn crash_inside_an_island_is_repaired_locally() {
        let mut ring = figure1_ring();
        ring.split([(8, 1), (14, 1), (23, 1)]);
        converge(&mut ring, 4);
        ring.crash(14);
        converge(&mut ring, 6);
        assert!(ring.is_fully_consistent());
        assert_eq!(ring.successor_of(8), 23);
        ring.heal(true);
        converge(&mut ring, 6);
        assert!(ring.is_fully_consistent());
    }
}
