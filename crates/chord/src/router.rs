//! The generic content-based routing interface (§II-B).
//!
//! The paper's middleware deliberately depends only on the standard DHT
//! surface — "join and leave operations", "send operation to send a message
//! to a destination determined by the given key", plus the successor
//! primitive that range multicast is built from — so that it "can be used on
//! top of virtually any existing content-based routing implementation".
//! This trait is that surface; [`crate::ring::Ring`] (Chord) and
//! [`crate::pastry::PastryNet`] both implement it, and the middleware is
//! generic over it.

use crate::id::{ChordId, IdSpace};
use crate::ring::Lookup;
use dsi_trace::{RouteTrace, Tracer};

/// A key-based routing substrate over the `m`-bit identifier circle.
pub trait ContentRouter {
    /// The identifier space.
    fn space(&self) -> IdSpace;

    /// Number of live nodes.
    fn len(&self) -> usize;

    /// True if no nodes are present.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if `id` is a live node.
    fn contains(&self, id: ChordId) -> bool;

    /// All live node identifiers in ring order.
    fn node_ids(&self) -> Vec<ChordId>;

    /// Ground truth: the node owning `key` (its successor on the circle).
    fn ideal_successor(&self, key: ChordId) -> Option<ChordId>;

    /// Ground truth: the last node strictly before `key` on the circle.
    fn ideal_predecessor(&self, key: ChordId) -> Option<ChordId>;

    /// The node's believed immediate successor (ring-order neighbor).
    fn successor_of(&self, id: ChordId) -> ChordId;

    /// True while a network partition currently divides the overlay.
    /// Routers without a partition model are always whole.
    fn partitioned(&self) -> bool {
        false
    }

    /// True when a message from `a` can currently reach `b`. Always true
    /// for routers without a partition model.
    fn reachable(&self, _a: ChordId, _b: ChordId) -> bool {
        true
    }

    /// Ground truth restricted to what `origin` can reach: the owner of
    /// `key` on `origin`'s side of a partition. Falls back to the global
    /// [`ContentRouter::ideal_successor`] on whole networks.
    fn ideal_successor_from(&self, _origin: ChordId, key: ChordId) -> Option<ChordId> {
        self.ideal_successor(key)
    }

    /// Ground truth restricted to what `origin` can reach: the last node
    /// strictly before `key` on `origin`'s side of a partition. Falls back
    /// to the global [`ContentRouter::ideal_predecessor`] on whole networks.
    fn ideal_predecessor_from(&self, _origin: ChordId, key: ChordId) -> Option<ChordId> {
        self.ideal_predecessor(key)
    }

    /// Routes a message from `from` toward `key` through the overlay,
    /// returning the owner and the full hop path (for latency accounting).
    fn route(&self, from: ChordId, key: ChordId) -> Lookup;

    /// [`ContentRouter::route`], additionally recording the hop path into
    /// `tracer` as one causal chain (first hop `base`, later hops
    /// `transit`; hop count marked at the tail when `log_hops` is set —
    /// the exact shape `Metrics::record_route`/`record_hops` count).
    /// A no-op on the tracer when tracing is disabled.
    fn route_traced(
        &self,
        from: ChordId,
        key: ChordId,
        tracer: &mut Tracer,
        base: u8,
        transit: u8,
        log_hops: bool,
    ) -> (Lookup, Option<RouteTrace>) {
        let lookup = self.route(from, key);
        let rt = tracer.route(&lookup.path, base, transit, log_hops);
        (lookup, rt)
    }
}

impl ContentRouter for crate::ring::Ring {
    fn space(&self) -> IdSpace {
        crate::ring::Ring::space(self)
    }

    fn len(&self) -> usize {
        crate::ring::Ring::len(self)
    }

    fn contains(&self, id: ChordId) -> bool {
        crate::ring::Ring::contains(self, id)
    }

    fn node_ids(&self) -> Vec<ChordId> {
        crate::ring::Ring::node_ids(self)
    }

    fn ideal_successor(&self, key: ChordId) -> Option<ChordId> {
        crate::ring::Ring::ideal_successor(self, key)
    }

    fn ideal_predecessor(&self, key: ChordId) -> Option<ChordId> {
        crate::ring::Ring::ideal_predecessor(self, key)
    }

    fn successor_of(&self, id: ChordId) -> ChordId {
        crate::ring::Ring::successor_of(self, id)
    }

    fn partitioned(&self) -> bool {
        crate::ring::Ring::partitioned(self)
    }

    fn reachable(&self, a: ChordId, b: ChordId) -> bool {
        crate::ring::Ring::reachable(self, a, b)
    }

    fn ideal_successor_from(&self, origin: ChordId, key: ChordId) -> Option<ChordId> {
        crate::ring::Ring::ideal_successor_from(self, origin, key)
    }

    fn ideal_predecessor_from(&self, origin: ChordId, key: ChordId) -> Option<ChordId> {
        crate::ring::Ring::ideal_predecessor_from(self, origin, key)
    }

    fn route(&self, from: ChordId, key: ChordId) -> Lookup {
        self.lookup(from, key)
    }
}

/// Routers that can be constructed from a membership list (used by the
/// middleware to bootstrap a simulated deployment on any backend).
pub trait BuildRouter: ContentRouter + Sized {
    /// Builds a fully-converged overlay over `ids`.
    fn build(space: IdSpace, ids: &[ChordId]) -> Self;
}

impl BuildRouter for crate::ring::Ring {
    fn build(space: IdSpace, ids: &[ChordId]) -> Self {
        crate::ring::Ring::with_nodes(space, ids.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::Ring;

    #[test]
    fn ring_implements_router_consistently() {
        let space = IdSpace::new(8);
        let ring = <Ring as BuildRouter>::build(space, &[10, 60, 120, 200]);
        let r: &dyn ContentRouter = &ring;
        assert_eq!(r.len(), 4);
        assert!(r.contains(60));
        assert_eq!(r.ideal_successor(70), Some(120));
        assert_eq!(r.ideal_predecessor(10), Some(200));
        assert_eq!(r.successor_of(200), 10);
        let l = r.route(10, 130);
        assert_eq!(l.owner, 200);
        assert_eq!(*l.path.first().unwrap(), 10);
        assert_eq!(*l.path.last().unwrap(), 200);
    }

    #[test]
    fn route_traced_mirrors_route_and_records_path() {
        let space = IdSpace::new(8);
        let ring = <Ring as BuildRouter>::build(space, &[10, 60, 120, 200]);
        let mut tracer = Tracer::disabled();

        // Disabled: identical lookup, no records, no trace handle.
        let (l, rt) = ring.route_traced(10, 130, &mut tracer, 3, 5, true);
        assert_eq!(l, ring.route(10, 130));
        assert!(rt.is_none());
        assert_eq!(tracer.len(), 0);

        tracer.enable(64);
        let (l, rt) = ring.route_traced(10, 130, &mut tracer, 3, 5, true);
        let rt = rt.unwrap();
        // One origin + one hop per overlay message of the lookup.
        assert_eq!(tracer.len(), l.path.len());
        let tail = tracer.iter().last().unwrap();
        assert_eq!(tail.id, rt.tail.id);
        assert_eq!(tail.to, l.owner);
        assert_eq!(tail.depth, l.hops());
        assert_eq!(tail.hops_class, Some(3));
    }
}
