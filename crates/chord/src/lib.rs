//! # dsi-chord — from-scratch Chord substrate
//!
//! The content-based routing layer of the paper (§II-B), built from scratch:
//!
//! * [`mod@sha1`] — FIPS 180-1 SHA-1 for consistent hashing;
//! * [`id::IdSpace`] — the `m`-bit identifier circle with circular interval
//!   arithmetic;
//! * [`ring::Ring`] — node state, finger tables, iterative lookup with full
//!   hop paths, join/leave/crash and stabilization;
//! * [`mod@multicast`] — key-range multicast built on the successor primitive
//!   (sequential §IV-C and bidirectional §VI-B strategies).
//!
//! The paper's middleware relies only on the generic DHT interface
//! (`join` / `leave` / `send` / `deliver`); this crate exposes exactly that
//! surface plus ground-truth accessors for simulation assertions.

#![warn(missing_docs)]
// Crate-level override on top of the shared [workspace.lints] policy: the
// router and multicast planner sit on the per-message hot path, so every
// panic site must be a deliberate, documented invariant (`expect`), never a
// bare `unwrap`. Test code is exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod id;
pub mod multicast;
pub mod pastry;
pub mod ring;
pub mod router;
pub mod sha1;

pub use id::{ChordId, IdSpace};
pub use multicast::{
    covering_nodes, covering_nodes_from, multicast, multicast_with_failover, reachable_fraction,
    Delivery, FailoverOutcome, HopKind, HopOutcome, MulticastPlan, RangeStrategy,
};
pub use pastry::PastryNet;
pub use ring::{Lookup, NodeState, Ring, DEFAULT_SUCCESSOR_LIST_LEN};
pub use router::{BuildRouter, ContentRouter};
pub use sha1::{sha1, sha1_u64, Sha1};
