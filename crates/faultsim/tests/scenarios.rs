//! Tier-1 fault-injection campaigns: ≥25 seeded scenarios — each also run
//! with all-class message faults through the reliability layer — replaying
//! a full churn/fault/burst/storm schedule against a live cluster with all
//! ten invariant oracles armed after every event, plus an adversarial
//! pack (correlated flash crowds, Zipf query skew, thundering herds,
//! tenant quotas) exercising the load-balance oracle and the virtual-node
//! re-weighting mitigation, an ECM-sketch aggregate pack exercising the
//! sketch-accuracy oracle across loss, churn and degraded coverage, and a
//! split-brain pack severing the ring into islands and auditing post-heal
//! convergence (DESIGN.md §17).
//!
//! A violation writes `results/repro-<seed>.json` and fails the test with
//! the path, so the failure is replayable offline:
//!
//! ```text
//! cargo test -p dsi-faultsim replay_repro -- --ignored --nocapture
//! ```

use dsi_chord::RangeStrategy;
use dsi_core::{AggregateKind, ReweightConfig};
use dsi_faultsim::{
    load_reproducer, run_scenario, write_reproducer, AggregatesConfig, LoadBound, PartitionConfig,
    Reproducer, RunReport, Scenario, ScenarioConfig,
};
use dsi_simnet::{FaultPlan, FaultSpec, MsgClass};
use dsi_streamgen::TenantPolicy;

/// Runs one scenario; on violation, serializes the reproducer and panics
/// with its path.
fn assert_clean(seed: u64, cfg: ScenarioConfig) -> RunReport {
    let scenario = Scenario::generate(seed, cfg);
    let report = run_scenario(&scenario);
    if let Some(v) = report.violation.clone() {
        let repro = Reproducer::from_failure(&scenario, v.clone()).with_trace(report.trace.clone());
        let path = write_reproducer(&repro);
        panic!(
            "seed {seed}: oracle `{}` violated at event {} (t={}ms): {}\nreproducer: {}",
            v.oracle,
            v.event_index,
            v.time_ms,
            v.detail,
            path.display()
        );
    }
    report
}

fn lossy() -> FaultSpec {
    FaultSpec { drop_prob: 0.15, dup_prob: 0.10, delay_prob: 0.10 }
}

/// Uniform per-class fault plan: every overlay send drops with `drop`
/// probability and must be absorbed by retry/failover/repair (oracle 7).
fn allclass(drop: f64) -> FaultPlan {
    FaultPlan::uniform(FaultSpec { drop_prob: drop, dup_prob: 0.0, delay_prob: 0.0 })
}

/// Scenario shape the adversarial pack runs on: enough streams that a
/// flash crowd's key collapse visibly tilts per-host load.
fn hot_shape() -> ScenarioConfig {
    ScenarioConfig { num_nodes: 10, num_streams: 16, num_events: 60, ..ScenarioConfig::default() }
}

/// Aggregate workload posting one query of every kind right after
/// warm-up, at the default (ε = 0.2, δ = 0.1) contract.
fn agg_all() -> AggregatesConfig {
    AggregatesConfig {
        kinds: vec![
            AggregateKind::WindowCount,
            AggregateKind::PointCount { bin: 42 },
            AggregateKind::HeavyHitters { phi: 0.2 },
            AggregateKind::SelfJoinSize,
        ],
        ..AggregatesConfig::default()
    }
}

/// Load-balance envelope used by the mitigation scenarios: trip past
/// 2.5× mean for 2 rounds, then re-weighting has 6 rounds to cool the
/// ring (mirrors `ReweightConfig::default()`'s trigger).
fn hotspot_bound() -> LoadBound {
    LoadBound { max_over_mean: 2.5, grace_rounds: 2, recovery_rounds: 6 }
}

/// Partition plan severing the listed islands from the ring after
/// `split_after` NPER rounds and healing `heal_after` rounds later.
fn split(islands: Vec<Vec<usize>>, split_after: u32, heal_after: u32) -> PartitionConfig {
    PartitionConfig { islands, split_after_rounds: split_after, heal_after_rounds: heal_after }
}

/// Ten-node split-brain shape: a three-node minority island is severed
/// for three rounds while 5% all-class loss keeps the reliability layer
/// hot on both sides; the fork must re-knit within oracle 10's grace
/// window once healed.
fn partition_negctrl_config() -> ScenarioConfig {
    ScenarioConfig { num_nodes: 10, num_streams: 8, num_events: 60, ..ScenarioConfig::default() }
        .with_class_faults(allclass(0.05))
        .with_partition(split(vec![vec![7, 8, 9]], 2, 3))
}

/// Expands to one `#[test]` per seed, so every scenario shows up
/// individually in the test report.
macro_rules! scenario_tests {
    ($($name:ident: seed $seed:expr, $cfg:expr;)*) => {
        $(
            #[test]
            fn $name() {
                let report = assert_clean($seed, $cfg);
                assert!(report.mbr_ships > 0, "scenario never shipped an MBR");
            }
        )*
    };
}

// 25+ distinct seeded scenarios across both multicast strategies, fault
// levels, and cluster sizes. Every run exercises all five oracles after
// every event.
scenario_tests! {
    seq_faultfree_seed_1:  seed 1,  ScenarioConfig::default();
    seq_faultfree_seed_2:  seed 2,  ScenarioConfig::default();
    seq_faultfree_seed_3:  seed 3,  ScenarioConfig::default();
    seq_faultfree_seed_4:  seed 4,  ScenarioConfig::default();
    seq_faultfree_seed_5:  seed 5,  ScenarioConfig::default();
    seq_faultfree_seed_6:  seed 6,  ScenarioConfig::default();
    seq_faultfree_seed_7:  seed 7,  ScenarioConfig::default();
    seq_faultfree_seed_8:  seed 8,  ScenarioConfig::default();

    seq_lossy_seed_11:     seed 11, ScenarioConfig::default().with_faults(lossy());
    seq_lossy_seed_12:     seed 12, ScenarioConfig::default().with_faults(lossy());
    seq_lossy_seed_13:     seed 13, ScenarioConfig::default().with_faults(lossy());
    seq_lossy_seed_14:     seed 14, ScenarioConfig::default().with_faults(lossy());
    seq_lossy_seed_15:     seed 15, ScenarioConfig::default().with_faults(lossy());
    seq_drop_heavy_16:     seed 16, ScenarioConfig::default()
        .with_faults(FaultSpec { drop_prob: 0.4, dup_prob: 0.0, delay_prob: 0.0 });
    seq_dup_heavy_17:      seed 17, ScenarioConfig::default()
        .with_faults(FaultSpec { drop_prob: 0.0, dup_prob: 0.4, delay_prob: 0.0 });
    seq_delay_heavy_18:    seed 18, ScenarioConfig::default()
        .with_faults(FaultSpec { drop_prob: 0.0, dup_prob: 0.0, delay_prob: 0.4 });

    bidi_faultfree_21:     seed 21, ScenarioConfig::default().bidirectional();
    bidi_faultfree_22:     seed 22, ScenarioConfig::default().bidirectional();
    bidi_faultfree_23:     seed 23, ScenarioConfig::default().bidirectional();
    bidi_faultfree_24:     seed 24, ScenarioConfig::default().bidirectional();
    bidi_lossy_25:         seed 25, ScenarioConfig::default().bidirectional().with_faults(lossy());
    bidi_lossy_26:         seed 26, ScenarioConfig::default().bidirectional().with_faults(lossy());

    large_cluster_31:      seed 31, ScenarioConfig {
        num_nodes: 20, num_streams: 12, ..ScenarioConfig::default()
    };
    large_cluster_32:      seed 32, ScenarioConfig {
        num_nodes: 20, num_streams: 12, strategy: RangeStrategy::Bidirectional,
        ..ScenarioConfig::default()
    };
    small_cluster_33:      seed 33, ScenarioConfig {
        num_nodes: 4, num_streams: 3, ..ScenarioConfig::default()
    };
    long_schedule_34:      seed 34, ScenarioConfig {
        num_events: 80, ..ScenarioConfig::default()
    };
    long_lossy_35:         seed 35, ScenarioConfig {
        num_events: 80, ..ScenarioConfig::default().with_faults(lossy())
    };
}

// The same 26 scenarios re-run with every overlay send subject to 20%
// drop through the reliability layer (ISSUE 5 acceptance): retry/backoff,
// failover and periodic repair must keep all seven oracles green — the
// coverage oracles in eventual mode.
scenario_tests! {
    seq_faultfree_seed_1_allclass02:  seed 1,
        ScenarioConfig::default().with_class_faults(allclass(0.2));
    seq_faultfree_seed_2_allclass02:  seed 2,
        ScenarioConfig::default().with_class_faults(allclass(0.2));
    seq_faultfree_seed_3_allclass02:  seed 3,
        ScenarioConfig::default().with_class_faults(allclass(0.2));
    seq_faultfree_seed_4_allclass02:  seed 4,
        ScenarioConfig::default().with_class_faults(allclass(0.2));
    seq_faultfree_seed_5_allclass02:  seed 5,
        ScenarioConfig::default().with_class_faults(allclass(0.2));
    seq_faultfree_seed_6_allclass02:  seed 6,
        ScenarioConfig::default().with_class_faults(allclass(0.2));
    seq_faultfree_seed_7_allclass02:  seed 7,
        ScenarioConfig::default().with_class_faults(allclass(0.2));
    seq_faultfree_seed_8_allclass02:  seed 8,
        ScenarioConfig::default().with_class_faults(allclass(0.2));

    seq_lossy_seed_11_allclass02:     seed 11,
        ScenarioConfig::default().with_faults(lossy()).with_class_faults(allclass(0.2));
    seq_lossy_seed_12_allclass02:     seed 12,
        ScenarioConfig::default().with_faults(lossy()).with_class_faults(allclass(0.2));
    seq_lossy_seed_13_allclass02:     seed 13,
        ScenarioConfig::default().with_faults(lossy()).with_class_faults(allclass(0.2));
    seq_lossy_seed_14_allclass02:     seed 14,
        ScenarioConfig::default().with_faults(lossy()).with_class_faults(allclass(0.2));
    seq_lossy_seed_15_allclass02:     seed 15,
        ScenarioConfig::default().with_faults(lossy()).with_class_faults(allclass(0.2));
    seq_drop_heavy_16_allclass02:     seed 16, ScenarioConfig::default()
        .with_faults(FaultSpec { drop_prob: 0.4, dup_prob: 0.0, delay_prob: 0.0 })
        .with_class_faults(allclass(0.2));
    seq_dup_heavy_17_allclass02:      seed 17, ScenarioConfig::default()
        .with_faults(FaultSpec { drop_prob: 0.0, dup_prob: 0.4, delay_prob: 0.0 })
        .with_class_faults(allclass(0.2));
    seq_delay_heavy_18_allclass02:    seed 18, ScenarioConfig::default()
        .with_faults(FaultSpec { drop_prob: 0.0, dup_prob: 0.0, delay_prob: 0.4 })
        .with_class_faults(allclass(0.2));

    bidi_faultfree_21_allclass02:     seed 21,
        ScenarioConfig::default().bidirectional().with_class_faults(allclass(0.2));
    bidi_faultfree_22_allclass02:     seed 22,
        ScenarioConfig::default().bidirectional().with_class_faults(allclass(0.2));
    bidi_faultfree_23_allclass02:     seed 23,
        ScenarioConfig::default().bidirectional().with_class_faults(allclass(0.2));
    bidi_faultfree_24_allclass02:     seed 24,
        ScenarioConfig::default().bidirectional().with_class_faults(allclass(0.2));
    bidi_lossy_25_allclass02:         seed 25, ScenarioConfig::default()
        .bidirectional().with_faults(lossy()).with_class_faults(allclass(0.2));
    bidi_lossy_26_allclass02:         seed 26, ScenarioConfig::default()
        .bidirectional().with_faults(lossy()).with_class_faults(allclass(0.2));

    large_cluster_31_allclass02:      seed 31, ScenarioConfig {
        num_nodes: 20, num_streams: 12, ..ScenarioConfig::default()
    }.with_class_faults(allclass(0.2));
    large_cluster_32_allclass02:      seed 32, ScenarioConfig {
        num_nodes: 20, num_streams: 12, strategy: RangeStrategy::Bidirectional,
        ..ScenarioConfig::default()
    }.with_class_faults(allclass(0.2));
    small_cluster_33_allclass02:      seed 33, ScenarioConfig {
        num_nodes: 4, num_streams: 3, ..ScenarioConfig::default()
    }.with_class_faults(allclass(0.2));
    long_schedule_34_allclass02:      seed 34, ScenarioConfig {
        num_events: 80, ..ScenarioConfig::default()
    }.with_class_faults(allclass(0.2));
    long_lossy_35_allclass02:         seed 35, ScenarioConfig {
        num_events: 80, ..ScenarioConfig::default().with_faults(lossy())
    }.with_class_faults(allclass(0.2));
}

// Adversarial workload pack: correlated flash crowds, Zipf-skewed query
// popularity, thundering herds, tenant quotas, and skew combined with
// churn and loss — each seeded and reproducer-capable like every other
// tier-1 scenario. Scenarios arming `with_mitigation` also arm the
// load-balance oracle: virtual-node re-weighting must keep the per-host
// max/mean ratio inside the envelope while the other seven oracles stay
// green across the ring changes it makes.
scenario_tests! {
    flash_crowd_rho09_41:      seed 41, hot_shape().correlated(0.9);
    flash_crowd_rho1_42:       seed 42, hot_shape().correlated(1.0);
    flash_crowd_mitigated_43:  seed 43, hot_shape().correlated(1.0)
        .with_load_bound(hotspot_bound()).with_mitigation(ReweightConfig::default());
    flash_crowd_mitigated_44:  seed 44, hot_shape().correlated(1.0)
        .with_load_bound(hotspot_bound()).with_mitigation(ReweightConfig::default());
    flash_crowd_mit_bidi_45:   seed 41, hot_shape().correlated(1.0).bidirectional()
        .with_load_bound(hotspot_bound()).with_mitigation(ReweightConfig::default());
    zipf_queries_12_46:        seed 42, hot_shape().zipfian(1.2);
    zipf_queries_20_47:        seed 43, hot_shape().zipfian(2.0);
    herd_seq_48:               seed 44, hot_shape().with_herd(12);
    herd_bidi_49:              seed 45, hot_shape().with_herd(16).bidirectional();
    herd_zipf_50:              seed 41, hot_shape().zipfian(1.5).with_herd(16);
    skew_churn_loss_51:        seed 42, hot_shape().correlated(1.0).with_faults(lossy())
        .with_mitigation(ReweightConfig::default());
    skew_allclass_52:          seed 43, hot_shape().correlated(1.0)
        .with_class_faults(allclass(0.2)).with_mitigation(ReweightConfig::default());
    large_correlated_53:       seed 44, ScenarioConfig {
        num_nodes: 20, num_streams: 16, num_events: 60, ..ScenarioConfig::default()
    }.correlated(1.0).with_mitigation(ReweightConfig::default());
    long_skew_54:              seed 41, ScenarioConfig {
        num_events: 80, num_streams: 16, ..ScenarioConfig::default()
    }.correlated(0.9).zipfian(1.5);
}

// ECM-sketch aggregate pack (ISSUE 8 acceptance): ≥ 20 seeded tier-1
// scenarios with continuous aggregate queries of every kind riding the
// full churn/fault/burst/storm schedule, and the sketch-accuracy oracle
// auditing every notification against a contributor-scoped brute-force
// reference. The all-class variants degrade dissemination and collection,
// so coverage drops and the advertised bound must provably widen (the
// oracle's structural ε_eff = ε + (1 − coverage) rule) — never lie.
scenario_tests! {
    agg_seq_61:            seed 61, ScenarioConfig::default().with_aggregates(agg_all());
    agg_seq_62:            seed 62, ScenarioConfig::default().with_aggregates(agg_all());
    agg_seq_63:            seed 63, ScenarioConfig::default().with_aggregates(agg_all());
    agg_seq_64:            seed 64, ScenarioConfig::default().with_aggregates(agg_all());
    agg_seq_65:            seed 65, ScenarioConfig::default().with_aggregates(agg_all());
    agg_seq_66:            seed 66, ScenarioConfig::default().with_aggregates(agg_all());

    agg_bidi_67:           seed 67, ScenarioConfig::default().bidirectional()
        .with_aggregates(agg_all());
    agg_bidi_68:           seed 68, ScenarioConfig::default().bidirectional()
        .with_aggregates(agg_all());

    agg_nper_lossy_69:     seed 69, ScenarioConfig::default().with_faults(lossy())
        .with_aggregates(agg_all());
    agg_nper_lossy_70:     seed 70, ScenarioConfig::default().with_faults(lossy())
        .with_aggregates(agg_all());
    agg_nper_lossy_71:     seed 71, ScenarioConfig::default().with_faults(lossy())
        .with_aggregates(agg_all());

    agg_allclass_72:       seed 72, ScenarioConfig::default()
        .with_class_faults(allclass(0.2)).with_aggregates(agg_all());
    agg_allclass_73:       seed 73, ScenarioConfig::default()
        .with_class_faults(allclass(0.2)).with_aggregates(agg_all());
    agg_allclass_74:       seed 74, ScenarioConfig::default()
        .with_class_faults(allclass(0.2)).with_aggregates(agg_all());
    agg_allclass_75:       seed 75, ScenarioConfig::default()
        .with_class_faults(allclass(0.2)).with_aggregates(agg_all());
    agg_allclass_drop3_76: seed 76, ScenarioConfig::default()
        .with_class_faults(allclass(0.3)).with_aggregates(agg_all());
    agg_allclass_bidi_77:  seed 77, ScenarioConfig::default().bidirectional()
        .with_class_faults(allclass(0.2)).with_aggregates(agg_all());

    agg_large_78:          seed 78, ScenarioConfig {
        num_nodes: 20, num_streams: 12, ..ScenarioConfig::default()
    }.with_aggregates(agg_all());
    agg_small_79:          seed 79, ScenarioConfig {
        num_nodes: 4, num_streams: 3, ..ScenarioConfig::default()
    }.with_aggregates(agg_all());
    agg_long_80:           seed 80, ScenarioConfig {
        num_events: 80, ..ScenarioConfig::default()
    }.with_aggregates(agg_all());

    agg_tight_eps_81:      seed 81, ScenarioConfig::default().with_aggregates(
        AggregatesConfig { eps: 0.1, ..agg_all() });
    agg_loose_eps_82:      seed 82, ScenarioConfig::default().with_aggregates(
        AggregatesConfig { eps: 0.4, ..agg_all() });
    agg_long_window_83:    seed 83, ScenarioConfig::default().with_aggregates(
        AggregatesConfig { window_ms: 10_000, ..agg_all() });
    agg_skew_84:           seed 84, hot_shape().correlated(0.9).with_aggregates(agg_all());
}

/// The aggregate pack actually exercises its machinery: queries post,
/// notifications flow, and a lossless run stays violation-free.
#[test]
fn aggregate_scenarios_actually_notify() {
    let report = assert_clean(
        85,
        ScenarioConfig { num_events: 60, ..ScenarioConfig::default() }.with_aggregates(agg_all()),
    );
    assert_eq!(report.aggregates_posted, 4, "one query per configured kind");
    assert!(report.aggregate_notifications > 0, "no aggregate notifications delivered");
}

/// Under all-class loss the degraded collection rounds still notify, and
/// the sketch-accuracy oracle stays green — the advertised bound widened
/// with coverage instead of lying (the oracle's structural rule checks
/// every notification for ε_eff = ε + (1 − coverage) exactly).
#[test]
fn degraded_aggregate_rounds_widen_bounds_honestly() {
    let report = assert_clean(
        86,
        ScenarioConfig { num_events: 60, ..ScenarioConfig::default() }
            .with_class_faults(allclass(0.3))
            .with_aggregates(agg_all()),
    );
    assert_eq!(report.aggregates_posted, 4);
    assert!(report.aggregate_notifications > 0, "lossy run never notified");
    assert!(report.reliability.retries > 0, "30% drop must force retries");
}

/// Oracle 9's negative control (the issue's acceptance criterion): a
/// deliberately under-sized sketch — one row, two counters, k = 1 —
/// advertising a tight ε = 0.05 contract must trip the sketch-accuracy
/// oracle on a pinned seed, and the failing run must serialize a
/// replayable reproducer like any other violation.
#[test]
fn undersized_sketch_trips_the_accuracy_oracle() {
    let cfg = negctrl_config(true);
    let scenario = Scenario::generate(208, cfg);
    let report = run_scenario(&scenario);
    let v = report.violation.expect("an undersized sketch must miss its advertised bound");
    assert_eq!(
        v.oracle, "sketch-accuracy",
        "expected the sketch-accuracy oracle, got `{}`: {}",
        v.oracle, v.detail
    );
    let repro = Reproducer::from_failure(&scenario, v.clone()).with_trace(report.trace);
    let path = write_reproducer(&repro);
    let replayed = load_reproducer(&path).replay().expect("reproducer must replay the violation");
    assert_eq!(replayed, v, "replay must reproduce the identical accuracy violation");
}

/// The same pinned seed with correctly (ε, δ)-derived dimensions passes:
/// the oracle's trip above is the sketch's fault, not the harness's.
#[test]
fn correctly_sized_sketch_passes_the_same_seed() {
    let report = assert_clean(208, negctrl_config(false));
    assert!(report.aggregate_notifications > 0, "control run never notified");
}

/// Negative-control scenario shape: a PointCount query advertising an
/// ε = 0.05 contract. With `undersized` the sketch is forced to one row
/// of two counters with k = 1, so all 64 value bins collide into two
/// counters and the point estimate carries roughly half the whole window
/// population — a miss on nearly every notification (40/40 probed seeds
/// trip; 0/40 with the honest (ε, δ)-derived shape).
fn negctrl_config(undersized: bool) -> ScenarioConfig {
    ScenarioConfig { num_events: 60, ..ScenarioConfig::default() }.with_aggregates(
        AggregatesConfig {
            eps: 0.05,
            undersized,
            kinds: vec![AggregateKind::PointCount { bin: 42 }],
            ..AggregatesConfig::default()
        },
    )
}

/// Multi-tenant quota breach: four tenants capped at two query admissions
/// per NPER round under Zipf-popular anchors — the quota must actually
/// reject (the breach is real), and rejected registrations must leave all
/// oracles untouched.
#[test]
fn tenant_quota_breach_rejects_and_stays_sound() {
    let cfg = hot_shape()
        .zipfian(1.5)
        .with_tenants(TenantPolicy { num_tenants: 4, queries_per_round: 2 });
    let report = assert_clean(43, cfg);
    assert!(report.quota_rejections > 0, "quota never rejected a query");
    assert!(report.queries_posted > 0, "quota rejected everything");
}

/// Oracle 8's negative control (the issue's acceptance criterion): a
/// flash crowd with every stream byte-identical (`rho == 1`) and no
/// mitigation must trip the load-balance oracle; the *same seed* with
/// virtual-node re-weighting armed must end clean, with the re-weighting
/// actually having acted.
#[test]
fn flash_crowd_without_mitigation_trips_load_balance_oracle() {
    let cfg = hot_shape().correlated(1.0).with_load_bound(hotspot_bound());
    let scenario = Scenario::generate(204, cfg);
    let report = run_scenario(&scenario);
    let v = report.violation.expect("unmitigated flash crowd must trip an oracle");
    assert_eq!(
        v.oracle, "load-balance",
        "expected the load-balance oracle, got `{}`: {}",
        v.oracle, v.detail
    );
    assert!(v.detail.contains("no mitigation armed"), "detail must name the verdict: {}", v.detail);
    // The failing run writes a replayable reproducer like any other.
    let repro = Reproducer::from_failure(&scenario, v.clone()).with_trace(report.trace);
    let path = write_reproducer(&repro);
    let replayed = load_reproducer(&path).replay().expect("reproducer must replay the violation");
    assert_eq!(replayed, v, "replay must reproduce the identical load-balance violation");
}

#[test]
fn flash_crowd_with_reweighting_passes_load_balance_oracle() {
    let cfg = hot_shape()
        .correlated(1.0)
        .with_load_bound(hotspot_bound())
        .with_mitigation(ReweightConfig::default());
    let report = assert_clean(204, cfg);
    assert!(report.load.reweight_actions > 0, "mitigation was armed but never acted");
    assert!(report.load.virtual_nodes > 0, "re-weighting must leave live virtual identifiers");
}

#[test]
fn runs_are_deterministic() {
    let scenario = Scenario::generate(42, ScenarioConfig::default().with_faults(lossy()));
    let a = run_scenario(&scenario);
    let b = run_scenario(&scenario);
    assert_eq!(a, b, "same scenario must produce byte-identical reports");
}

#[test]
fn reliable_runs_are_deterministic_and_record_retries() {
    let cfg = ScenarioConfig::default().with_class_faults(allclass(0.2));
    let scenario = Scenario::generate(42, cfg);
    let a = run_scenario(&scenario);
    let b = run_scenario(&scenario);
    assert_eq!(a, b, "armed reliability layer must stay seed-deterministic");
    assert!(a.violation.is_none(), "20% all-class drop must be absorbed: {:?}", a.violation);
    assert!(a.reliability.retries > 0, "a 20% drop rate must force retries");
}

#[test]
fn duplicates_and_delays_on_all_classes_are_absorbed() {
    let plan = FaultPlan::uniform(FaultSpec { drop_prob: 0.0, dup_prob: 0.2, delay_prob: 0.2 });
    let report = assert_clean(57, ScenarioConfig::default().with_class_faults(plan));
    assert!(report.reliability.dups_suppressed > 0, "duplicates must hit the dedup cache");
    assert!(report.reliability.redeliveries > 0, "delays must park redeliveries");
}

/// Oracle 7's own self-test: query dissemination certain to be lost and
/// churn repair disabled, so coverage holes can never close — the
/// eventual-completeness oracle must fire once its grace window lapses.
#[test]
fn unrepaired_holes_trip_the_eventual_completeness_oracle() {
    let lost = FaultSpec { drop_prob: 1.0, dup_prob: 0.0, delay_prob: 0.0 };
    let plan =
        FaultPlan::NONE.with_class(MsgClass::Query, lost).with_class(MsgClass::QueryInternal, lost);
    let mut caught = None;
    for seed in 0..50u64 {
        let cfg = ScenarioConfig {
            disable_churn_repair: true,
            num_events: 60,
            ..ScenarioConfig::default()
        }
        .with_class_faults(plan);
        let scenario = Scenario::generate(seed, cfg);
        let report = run_scenario(&scenario);
        if let Some(v) = report.violation {
            caught = Some(v);
            break;
        }
    }
    let v = caught.expect("total query loss without repair must trip an oracle within 50 seeds");
    assert_eq!(
        v.oracle, "eventual-completeness",
        "expected the grace-window oracle, got `{}`: {}",
        v.oracle, v.detail
    );
}

/// Satellite of the purge-boundary work: a notify round duplicated on
/// every node (NPER dup faults at certainty) must not double-purge or
/// otherwise disturb any oracle.
#[test]
fn duplicated_notify_rounds_never_double_purge() {
    let dup_all = FaultSpec { drop_prob: 0.0, dup_prob: 1.0, delay_prob: 0.0 };
    let report = assert_clean(73, ScenarioConfig::default().with_faults(dup_all));
    assert!(report.mbr_ships > 0);
}

#[test]
fn scenarios_exercise_the_whole_stack() {
    let report = assert_clean(99, ScenarioConfig { num_events: 60, ..ScenarioConfig::default() });
    assert!(report.mbr_ships > 10, "expected steady MBR traffic, got {}", report.mbr_ships);
    assert!(report.queries_posted > 0, "schedule posted no queries");
    assert!(report.final_nodes >= 3, "cluster fell below three nodes");
}

/// The harness's own self-test (the issue's acceptance criterion): disable
/// replica rebalancing on churn — a deliberately injected bug — and the
/// oracles must catch the coverage hole, serialize a reproducer, and that
/// reproducer must replay from disk to the very same failure.
#[test]
fn injected_bug_is_caught_and_replays_from_disk() {
    let mut caught = None;
    for seed in 0..200u64 {
        let cfg = ScenarioConfig {
            disable_churn_repair: true,
            num_events: 60,
            ..ScenarioConfig::default()
        };
        let scenario = Scenario::generate(seed, cfg);
        let report = run_scenario(&scenario);
        if let Some(v) = report.violation.clone() {
            caught = Some((scenario, v, report.trace));
            break;
        }
    }
    let (scenario, violation, trace) =
        caught.expect("disabling churn repair must violate an invariant within 200 seeds");
    assert!(
        violation.oracle == "replica-placement" || violation.oracle == "no-false-dismissal",
        "expected a coverage violation, got `{}`: {}",
        violation.oracle,
        violation.detail
    );

    // Serialize (with the failing run's trace attached), reload from disk,
    // replay: identical failure.
    let repro = Reproducer::from_failure(&scenario, violation.clone()).with_trace(trace);
    let path = write_reproducer(&repro);
    let loaded = load_reproducer(&path);
    assert_eq!(loaded.seed, scenario.seed);
    let attached = loaded.trace.as_ref().expect("reproducer carries the run's trace summary");
    assert!(attached.records > 0, "failing run must have traced messages");
    assert_eq!(attached.dropped, 0, "trace ring must not overflow on tier-1 schedules");
    let replayed = loaded.replay().expect("reproducer must replay to a violation");
    assert_eq!(replayed, violation, "replay must reproduce the identical violation");
    // The reproducer's schedule ends at the failing event, and the failing
    // run exported a loadable timeline next to it.
    assert_eq!(loaded.events.len(), violation.event_index + 1);
    let timeline = path.with_file_name(format!("repro-{}.trace.json", loaded.seed));
    assert!(timeline.exists(), "missing chrome://tracing export {}", timeline.display());
}

// Split-brain pack (ISSUE 10 acceptance): the ring is severed into two or
// three islands mid-run and healed a few NPER rounds later, across 4–100
// nodes, both multicast strategies, and with or without per-class loss
// layered on top of the cut. During the split the coverage oracles
// tolerate the deterministic degradation; after the heal, oracle 10 must
// see successor/finger state reconverge, placement turn green, and no
// unexpired registration lost — all within `K_REFRESH_ROUNDS`.
scenario_tests! {
    part_seq_4n_2i_301:    seed 301, ScenarioConfig {
        num_nodes: 4, num_streams: 3, ..ScenarioConfig::default()
    }.with_partition(split(vec![vec![3]], 2, 2));
    part_seq_10n_2i_302:   seed 302, ScenarioConfig {
        num_nodes: 10, num_streams: 8, ..ScenarioConfig::default()
    }.with_partition(split(vec![vec![7, 8, 9]], 2, 3));
    part_seq_10n_3i_303:   seed 303, ScenarioConfig {
        num_nodes: 10, num_streams: 8, ..ScenarioConfig::default()
    }.with_partition(split(vec![vec![6, 7], vec![8, 9]], 3, 2));
    part_bidi_10n_2i_304:  seed 304, ScenarioConfig {
        num_nodes: 10, num_streams: 8, ..ScenarioConfig::default()
    }.bidirectional().with_partition(split(vec![vec![5, 6, 7, 8]], 2, 3));
    part_bidi_10n_3i_305:  seed 305, ScenarioConfig {
        num_nodes: 10, num_streams: 8, ..ScenarioConfig::default()
    }.bidirectional().with_partition(split(vec![vec![4, 5], vec![8, 9]], 2, 2));
    part_seq_20n_2i_306:   seed 306, ScenarioConfig {
        num_nodes: 20, num_streams: 12, ..ScenarioConfig::default()
    }.with_partition(split(vec![vec![14, 15, 16, 17, 18, 19]], 2, 4));
    part_seq_20n_3i_307:   seed 307, ScenarioConfig {
        num_nodes: 20, num_streams: 12, ..ScenarioConfig::default()
    }.with_partition(split(vec![vec![12, 13, 14], vec![15, 16, 17, 18, 19]], 1, 2));
    part_seq_100n_2i_308:  seed 308, ScenarioConfig {
        num_nodes: 100, num_streams: 8, num_events: 30, ..ScenarioConfig::default()
    }.with_partition(split(vec![(75..100).collect()], 1, 2));
    part_lossy_10n_2i_309: seed 309, ScenarioConfig {
        num_nodes: 10, num_streams: 8, ..ScenarioConfig::default()
    }.with_class_faults(allclass(0.1)).with_partition(split(vec![vec![7, 8, 9]], 2, 3));
    part_lossy_10n_3i_310: seed 310, ScenarioConfig {
        num_nodes: 10, num_streams: 8, ..ScenarioConfig::default()
    }.with_class_faults(allclass(0.1)).with_partition(split(vec![vec![6, 7], vec![8, 9]], 2, 2));
    part_lossy_bidi_311:   seed 311, ScenarioConfig {
        num_nodes: 10, num_streams: 8, ..ScenarioConfig::default()
    }.bidirectional().with_class_faults(allclass(0.1))
        .with_partition(split(vec![vec![7, 8, 9]], 3, 2));
    part_long_split_312:   seed 312, ScenarioConfig {
        num_nodes: 10, num_streams: 8, num_events: 60, ..ScenarioConfig::default()
    }.with_partition(split(vec![vec![7, 8, 9]], 1, 6));
    part_lossy_4n_313:     seed 313, ScenarioConfig {
        num_nodes: 4, num_streams: 3, ..ScenarioConfig::default()
    }.with_class_faults(allclass(0.1)).with_partition(split(vec![vec![3]], 2, 2));
    // Aggregates riding a split: collection rounds on a severed ring must
    // widen their advertised bound by the uncovered fraction (oracle 9's
    // honesty contract) rather than silently under-reporting.
    part_agg_10n_2i_315:   seed 315, ScenarioConfig {
        num_nodes: 10, num_streams: 8, num_events: 60, ..ScenarioConfig::default()
    }.with_aggregates(agg_all()).with_partition(split(vec![vec![7, 8, 9]], 2, 3));
}

/// The scenario family the issue names: writes keep landing on the
/// minority island while the majority side keeps reading, with 5%
/// ambient all-class loss so the retry layer keeps probing the cut. The
/// suppression ledger must charge those severed crossings separately
/// from the random drops (oracle 4 reconciles both), and after the heal
/// the majority-side readers must see minority-side writes again:
/// oracle 1 (no false dismissals) plus oracle 10's fresh probe query
/// audit exactly that convergence.
#[test]
fn split_brain_minority_write_majority_read_converges() {
    let cfg = ScenarioConfig {
        num_nodes: 10,
        num_streams: 8,
        num_events: 60,
        ..ScenarioConfig::default()
    }
    .with_class_faults(allclass(0.05))
    .with_partition(split(vec![vec![7, 8, 9]], 2, 3));
    let report = assert_clean(321, cfg);
    assert!(report.partition_suppressed > 0, "the cut never suppressed a crossing");
    assert!(report.notifications > 0, "majority-side readers never saw a match");
    assert!(report.mbr_ships > 0, "minority-side writers never shipped");
}

/// Oracle 10's negative control (the issue's acceptance criterion): the
/// same split-brain shape with ring stabilization disabled heals the
/// links but never re-knits the fork, so the convergence oracle must trip
/// once its grace window lapses — and the failing run must serialize a
/// replayable reproducer whose committed bytes are pinned.
#[test]
fn disabled_stabilization_trips_the_convergence_oracle() {
    let cfg = partition_negctrl_config().without_stabilization();
    let scenario = Scenario::generate(244, cfg);
    let report = run_scenario(&scenario);
    let v = report.violation.expect("a healed-but-never-stabilized fork must trip an oracle");
    assert_eq!(
        v.oracle, "post-heal-convergence",
        "expected the convergence oracle, got `{}`: {}",
        v.oracle, v.detail
    );
    let repro = Reproducer::from_failure(&scenario, v.clone()).with_trace(report.trace);
    let path = write_reproducer(&repro);
    // Byte-stability of the committed reproducer: regenerating it from
    // the pinned seed must reproduce `results/repro-244.json` exactly
    // (schema or behavior drift shows up as a diff here, not in CI logs).
    let pinned = include_str!("../../../results/repro-244.json");
    let fresh = std::fs::read_to_string(&path).expect("read freshly written reproducer");
    assert_eq!(
        fresh, pinned,
        "repro-244.json drifted from the pinned bytes; review `git diff results/` and re-commit \
         if the schema change is intentional"
    );
    let replayed = load_reproducer(&path).replay().expect("reproducer must replay the violation");
    assert_eq!(replayed, v, "replay must reproduce the identical convergence violation");
}

/// The same pinned seed with stabilization left on passes: the trip above
/// is the fork's fault, not the harness's.
#[test]
fn enabled_stabilization_passes_the_same_seed() {
    let report = assert_clean(244, partition_negctrl_config());
    assert!(report.partition_suppressed > 0, "the split never suppressed a crossing");
}

/// Long randomized soak: 30 fresh seeds × 300-event schedules under lossy
/// delivery, across both strategies. Run with:
/// `cargo test -p dsi-faultsim -- --ignored`
#[test]
#[ignore = "long soak; run explicitly or from the scheduled CI job"]
fn soak_lossy_campaign() {
    for seed in 1000..1030u64 {
        let mut cfg = ScenarioConfig {
            num_events: 300,
            num_nodes: 12,
            num_streams: 10,
            ..ScenarioConfig::default().with_faults(lossy())
        };
        if seed % 2 == 1 {
            cfg = cfg.bidirectional();
        }
        let report = assert_clean(seed, cfg);
        assert!(report.mbr_ships > 0);
    }
}

/// All-class lossy soak for the scheduled CI matrix: 20 fresh seeds ×
/// 200-event schedules with every overlay send subject to drop faults.
/// The drop probability comes from `DSI_LOSSY_DROP` (default 0.2; the CI
/// matrix sweeps 0.1/0.2/0.3). Run with:
/// `DSI_LOSSY_DROP=0.3 cargo test -p dsi-faultsim soak_allclass -- --ignored`
#[test]
#[ignore = "long soak; run explicitly or from the scheduled CI matrix"]
fn soak_allclass_lossy_campaign() {
    let drop: f64 = std::env::var("DSI_LOSSY_DROP")
        .ok()
        .map(|v| v.parse().expect("DSI_LOSSY_DROP must be a probability"))
        .unwrap_or(0.2);
    assert!((0.0..=0.3).contains(&drop), "soak drop rates above 0.3 are not a supported regime");
    for seed in 2000..2020u64 {
        let mut cfg = ScenarioConfig {
            num_events: 200,
            num_nodes: 12,
            num_streams: 10,
            ..ScenarioConfig::default()
        }
        .with_class_faults(allclass(drop));
        if seed % 2 == 1 {
            cfg = cfg.bidirectional();
        }
        let report = assert_clean(seed, cfg);
        assert!(report.mbr_ships > 0);
        if drop > 0.0 {
            assert!(report.reliability.retries > 0, "seed {seed}: lossy soak never retried");
        }
    }
}

/// Adversarial skew soak for the scheduled CI matrix: 20 fresh seeds ×
/// 200-event schedules under correlated streams, Zipf-popular query
/// anchors, thundering herds and NPER loss, with virtual-node
/// re-weighting armed on odd seeds (so the ring is actively reshaped
/// while all eight oracles audit every event). The skew comes from
/// `DSI_SKEW_RHO` (default 0.9) and `DSI_ZIPF_EXP` (default 1.5; the CI
/// matrix sweeps both). Run with:
/// `DSI_SKEW_RHO=1.0 DSI_ZIPF_EXP=2.0 cargo test -p dsi-faultsim soak_skew -- --ignored`
#[test]
#[ignore = "long soak; run explicitly or from the scheduled CI matrix"]
fn soak_skew_campaign() {
    let rho: f64 = std::env::var("DSI_SKEW_RHO")
        .ok()
        .map(|v| v.parse().expect("DSI_SKEW_RHO must be a correlation in [0, 1]"))
        .unwrap_or(0.9);
    let zipf: f64 = std::env::var("DSI_ZIPF_EXP")
        .ok()
        .map(|v| v.parse().expect("DSI_ZIPF_EXP must be a non-negative exponent"))
        .unwrap_or(1.5);
    for seed in 3000..3020u64 {
        let mut cfg = ScenarioConfig {
            num_events: 200,
            num_nodes: 12,
            num_streams: 16,
            ..ScenarioConfig::default()
        }
        .correlated(rho)
        .zipfian(zipf)
        .with_herd(12)
        .with_faults(lossy());
        if seed % 2 == 1 {
            cfg = cfg.with_mitigation(ReweightConfig::default());
        }
        let report = assert_clean(seed, cfg);
        assert!(report.mbr_ships > 0);
        assert!(report.queries_posted > 0, "seed {seed}: skew soak posted no queries");
    }
}

/// Sketch-accuracy soak for the scheduled CI matrix: 20 fresh seeds ×
/// 200-event schedules with all four aggregate kinds riding churn and
/// all-class loss, the ninth oracle auditing every notification. The
/// contract comes from `DSI_AGG_EPS` (default 0.2) and the loss from
/// `DSI_LOSSY_DROP` (default 0.2); the CI matrix sweeps ε × drop over
/// 0.1/0.2/0.3. Run with:
/// `DSI_AGG_EPS=0.1 DSI_LOSSY_DROP=0.3 cargo test -p dsi-faultsim soak_accuracy -- --ignored`
#[test]
#[ignore = "long soak; run explicitly or from the scheduled CI matrix"]
fn soak_accuracy_campaign() {
    let eps: f64 = std::env::var("DSI_AGG_EPS")
        .ok()
        .map(|v| v.parse().expect("DSI_AGG_EPS must be a relative error in (0, 1]"))
        .unwrap_or(0.2);
    let drop: f64 = std::env::var("DSI_LOSSY_DROP")
        .ok()
        .map(|v| v.parse().expect("DSI_LOSSY_DROP must be a probability"))
        .unwrap_or(0.2);
    assert!((0.0..=0.3).contains(&drop), "soak drop rates above 0.3 are not a supported regime");
    for seed in 5000..5020u64 {
        let mut cfg = ScenarioConfig {
            num_events: 200,
            num_nodes: 12,
            num_streams: 10,
            ..ScenarioConfig::default()
        }
        .with_aggregates(AggregatesConfig { eps, ..agg_all() })
        .with_class_faults(allclass(drop));
        if seed % 2 == 1 {
            cfg = cfg.bidirectional();
        }
        let report = assert_clean(seed, cfg);
        assert!(report.mbr_ships > 0);
        assert_eq!(report.aggregates_posted, 4, "seed {seed}: aggregate posting went missing");
        assert!(
            report.aggregate_notifications > 0,
            "seed {seed}: accuracy soak never delivered an aggregate notification"
        );
    }
}

/// Partition soak for the scheduled CI matrix: 16 fresh seeds of
/// split-brain schedules with the minority fraction, schedule length and
/// ambient loss taken from the environment — `DSI_PART_FRAC` (default
/// 0.3), `DSI_PART_EVENTS` (default 200) and `DSI_LOSSY_DROP` (default
/// 0.0; the CI matrix sweeps duration × fraction × drop). Odd seeds run
/// bidirectional; every third seed forks the minority into two islands,
/// so two- and three-way splits both soak. Run with:
/// `DSI_PART_FRAC=0.4 DSI_LOSSY_DROP=0.1 cargo test -p dsi-faultsim soak_partition -- --ignored`
#[test]
#[ignore = "long soak; run explicitly or from the scheduled CI matrix"]
fn soak_partition_campaign() {
    let frac: f64 = std::env::var("DSI_PART_FRAC")
        .ok()
        .map(|v| v.parse().expect("DSI_PART_FRAC must be a fraction in (0, 0.5]"))
        .unwrap_or(0.3);
    assert!((0.0..=0.5).contains(&frac), "a soak minority must stay a minority");
    let drop: f64 = std::env::var("DSI_LOSSY_DROP")
        .ok()
        .map(|v| v.parse().expect("DSI_LOSSY_DROP must be a probability"))
        .unwrap_or(0.0);
    assert!((0.0..=0.3).contains(&drop), "soak drop rates above 0.3 are not a supported regime");
    let events: usize = std::env::var("DSI_PART_EVENTS")
        .ok()
        .map(|v| v.parse().expect("DSI_PART_EVENTS must be an event count"))
        .unwrap_or(200);
    let num_nodes = 12usize;
    let minority = (((num_nodes as f64) * frac).round() as usize).clamp(1, num_nodes - 1);
    let mut suppressed_total = 0u64;
    for seed in 4000..4016u64 {
        let cut: Vec<usize> = (num_nodes - minority..num_nodes).collect();
        let islands = if seed % 3 == 0 && minority >= 2 {
            vec![cut[..minority / 2].to_vec(), cut[minority / 2..].to_vec()]
        } else {
            vec![cut]
        };
        let mut cfg = ScenarioConfig {
            num_events: events,
            num_nodes,
            num_streams: 10,
            ..ScenarioConfig::default()
        }
        .with_partition(split(islands, 2 + (seed % 3) as u32, 2 + (seed % 4) as u32));
        if drop > 0.0 {
            cfg = cfg.with_class_faults(allclass(drop));
        }
        if seed % 2 == 1 {
            cfg = cfg.bidirectional();
        }
        let report = assert_clean(seed, cfg);
        assert!(report.mbr_ships > 0);
        suppressed_total += report.partition_suppressed;
    }
    // The suppression ledger only charges *attempted* crossings, and only
    // the armed retry layer keeps probing the cut — on the plain path the
    // side-aware ring never tries, so the ledger is legitimately empty.
    if drop > 0.0 {
        assert!(suppressed_total > 0, "16 lossy split-brain seeds never once probed the cut");
    }
}
