//! The oracle registry: one typed identifier per invariant the harness
//! audits after every scheduled event.
//!
//! Before this module existed, oracle names lived as string literals
//! scattered through `check_oracles`, and the count ("nine oracles")
//! lived separately in prose — three copies of one fact with nothing
//! holding them together. The registry makes the enum the single source
//! of truth: [`NUM_ORACLES`] and the [`ORACLES`] table are checked
//! against the variant count by dsilint's X02 pass, the [`OracleId::slug`]
//! dispatch match must stay exhaustive (wildcard arms rejected), and the
//! oracle count DESIGN.md advertises via its machine-readable marker is
//! audited against the same enum.

/// Identifies one invariant oracle, in the order DESIGN.md §8 numbers
/// them. `Violation::oracle` and reproducer JSON carry the stable string
/// [`slug`](OracleId::slug), so serialized artifacts are unaffected by
/// variant renames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OracleId {
    /// Oracle 1: the distributed index never misses a match the
    /// brute-force reference finds.
    NoFalseDismissal,
    /// Oracle 2: lookups and range multicasts from every live node
    /// terminate on live nodes over all-live paths.
    RoutingTermination,
    /// Oracle 3: replicas sit on exactly the covering set of their key
    /// range; queries are subscribed on exactly theirs.
    ReplicaPlacement,
    /// Oracle 4: message bookkeeping reconciles with recorded hop counts.
    MetricsConservation,
    /// Oracle 5: expired soft state is gone after each NPER round.
    Purge,
    /// Oracle 6: the causal trace is well-formed and accounts for every
    /// counter and every multicast delivery set.
    TraceConformance,
    /// Oracle 7: under armed per-class faults, coverage holes close
    /// within `K_REFRESH_ROUNDS` NPER rounds.
    EventualCompleteness,
    /// Oracle 8: per-host load stays inside the armed envelope, and
    /// re-weighting recovers within its budget.
    LoadBalance,
    /// Oracle 9: aggregate notifications honor their advertised ε-δ
    /// contract against the contributor-scoped exact reference.
    SketchAccuracy,
    /// Oracle 10: within `K_REFRESH_ROUNDS` NPER rounds after a network
    /// partition heals, successor/finger state matches the brute-force
    /// recomputation, covering-set placement is green again, no
    /// unexpired registration was lost, and fresh queries see full
    /// coverage.
    PostHealConvergence,
}

/// Number of registered oracles. dsilint's X02 pass pins this to the
/// `OracleId` variant count and to the `dsilint: oracle-count` marker in
/// DESIGN.md.
pub const NUM_ORACLES: usize = 10;

/// Every oracle in design order. Audit code that wants "all of them"
/// iterates this table instead of hand-listing variants.
pub const ORACLES: [OracleId; NUM_ORACLES] = [
    OracleId::NoFalseDismissal,
    OracleId::RoutingTermination,
    OracleId::ReplicaPlacement,
    OracleId::MetricsConservation,
    OracleId::Purge,
    OracleId::TraceConformance,
    OracleId::EventualCompleteness,
    OracleId::LoadBalance,
    OracleId::SketchAccuracy,
    OracleId::PostHealConvergence,
];

impl OracleId {
    /// Stable string slug used in `Violation::oracle`, reproducer JSON,
    /// soak logs and CI triage. Exhaustive by construction: adding a
    /// variant without extending this match is a compile error, and a
    /// wildcard arm here is an X02 violation.
    pub fn slug(self) -> &'static str {
        match self {
            OracleId::NoFalseDismissal => "no-false-dismissal",
            OracleId::RoutingTermination => "routing-termination",
            OracleId::ReplicaPlacement => "replica-placement",
            OracleId::MetricsConservation => "metrics-conservation",
            OracleId::Purge => "purge",
            OracleId::TraceConformance => "trace-conformance",
            OracleId::EventualCompleteness => "eventual-completeness",
            OracleId::LoadBalance => "load-balance",
            OracleId::SketchAccuracy => "sketch-accuracy",
            OracleId::PostHealConvergence => "post-heal-convergence",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_slugs_unique() {
        assert_eq!(ORACLES.len(), NUM_ORACLES);
        let mut slugs: Vec<&str> = ORACLES.iter().map(|o| o.slug()).collect();
        slugs.sort_unstable();
        slugs.dedup();
        assert_eq!(slugs.len(), NUM_ORACLES, "duplicate oracle slug");
    }

    #[test]
    fn design_order_matches_doc_numbering() {
        assert_eq!(ORACLES[0], OracleId::NoFalseDismissal);
        assert_eq!(ORACLES[6], OracleId::EventualCompleteness);
        assert_eq!(ORACLES[8], OracleId::SketchAccuracy);
        assert_eq!(ORACLES[9], OracleId::PostHealConvergence);
    }
}
