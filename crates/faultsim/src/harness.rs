//! Scenario execution against a full [`Cluster`], with an invariant audit
//! after every event.
//!
//! Ten oracles run after each scheduled event:
//!
//! 1. **No false dismissals** — every match a brute-force reference index
//!    (a flat list of all surviving MBR records) produces must also be a
//!    candidate of the distributed index, via the query's covering set.
//! 2. **Routing termination** — lookups and range multicasts from every
//!    live node end on live nodes, over live-node paths.
//! 3. **Replica placement** — every unexpired stored MBR sits on *exactly*
//!    the covering set of its Eq. 10 key range (plus its live origin), and
//!    every unexpired query is subscribed on its Eq. 8 covering set.
//! 4. **Metrics conservation** — sent/received/total bookkeeping agrees,
//!    and recorded hop sums reconcile with per-hop message counts.
//! 5. **Purge** — after a notify round, no expired MBR or subscription
//!    survives on any node whose cycle actually ran.
//! 6. **Trace conformance** — the causal trace (see `dsi-trace`) is
//!    well-formed, its reconstructed per-class counters equal [`Metrics`]
//!    bit for bit, and every multicast traced since the previous audit
//!    delivered to exactly the brute-force owner set of its key range.
//! 7. **Eventual completeness** — when per-class faults degrade coverage
//!    (DESIGN.md §12), the coverage oracles (1 and 3) switch from instant
//!    to eventual mode: a hole is tolerated while the periodic repair
//!    converges, but must close within [`K_REFRESH_ROUNDS`] NPER rounds.
//! 8. **Load balance** — when a [`LoadBound`] envelope is armed, the
//!    per-host max/mean message ratio of each NPER round (from the
//!    cluster's load ledger, DESIGN.md §13) must stay under the bound;
//!    `grace_rounds` consecutive hot rounds are tolerated, plus
//!    `recovery_rounds` more when virtual-node re-weighting is armed —
//!    after which a still-hot ring means the mitigation was ineffective.
//! 9. **Sketch accuracy** — when an [`AggregatesConfig`] is armed, every
//!    [`AggregateNotification`] is audited against a brute-force exact
//!    sliding-window reference computed from the run's own feed log,
//!    scoped to the notification's contributor set (a replica healed at
//!    time `s` only ever saw events at `t ≥ s`, and a node that never
//!    contributed contributes nothing to the reference either). The
//!    estimate must sit within `ε_eff·N + C` of the reference (`C` =
//!    merged components), with a miss budget proportional to δ; and the
//!    advertised `ε_eff` must equal `ε + (1 − coverage)` exactly —
//!    degraded rounds widen the contract, they never silently lie.
//! 10. **Post-heal convergence** — when a
//!     [`crate::scenario::PartitionConfig`] is armed,
//!     holes the split tears open are tolerated while the cut is up (the
//!     suppression is deterministic; they provably cannot close), but
//!     within [`K_REFRESH_ROUNDS`] NPER rounds of the heal the ring's
//!     successor/finger state must match the brute-force recomputation,
//!     covering-set placement (Eq. 6) must be green again, no unexpired
//!     registration may be lost, and a freshly posted probe query must
//!     see full (1.0) coverage. The negative control — stabilization
//!     disabled, so the healed ring never re-probes its parked suspects —
//!     must trip this oracle.
//!
//! [`Metrics`]: dsi_simnet::Metrics
//!
//! NPER faults ([`ScenarioConfig::faults`], drop/duplicate/delay) apply
//! only to notify ticks: they model lost periodic messages, which the
//! middleware's soft state must absorb, and they provably cannot create
//! index-coverage violations — so every oracle stays sound and *instant*
//! under them. Per-class faults ([`ScenarioConfig::class_faults`]) instead
//! hit every overlay send inside the cluster's reliability layer; retry,
//! failover and degradation bound the damage, and oracle 7 verifies the
//! repair loop erases it.

use crate::oracle::OracleId;
use crate::scenario::{AggregatesConfig, FaultEvent, LoadBound, Scenario, ScenarioConfig};
use dsi_chord::{covering_nodes, multicast, ChordId, Ring};
use dsi_core::{
    quantize, radius_key_range, AggregateKind, AggregateNotification, AggregateSpec,
    AggregateValue, Cluster, ClusterConfig, LoadBalanceReport, QueryId, ReliabilityReport,
    SimilarityQuery, SketchDims, StoredMbr, StreamId,
};
use dsi_simnet::{DelayQueue, FaultOutcome, MsgClass, SimTime, NUM_CLASSES};
use dsi_streamgen::{CorrelatedWalks, TenantLedger, ZipfSampler};
use dsi_trace::{multicast_delivery_set, validate_causality, TraceSummary};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// One invariant violation, pinned to the event that exposed it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Violation {
    /// Which oracle fired: the stable [`OracleId::slug`] of one of the
    /// [`crate::oracle::ORACLES`] (kept as a string so reproducer JSON
    /// stays self-describing and rename-proof).
    pub oracle: String,
    /// Human-readable description of the violated invariant.
    pub detail: String,
    /// Index of the event after which the check failed.
    pub event_index: usize,
    /// Simulated time of the check, in ms.
    pub time_ms: u64,
}

/// Outcome of one scenario run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// First violation, if any (the run stops there).
    pub violation: Option<Violation>,
    /// Events executed (schedule length, or the failing prefix).
    pub events_run: usize,
    /// MBR batches shipped into the index.
    pub mbr_ships: u64,
    /// Similarity queries posted.
    pub queries_posted: u64,
    /// Match notifications delivered to clients.
    pub notifications: u64,
    /// Data centers alive at the end.
    pub final_nodes: usize,
    /// Final simulated time in ms.
    pub final_time_ms: u64,
    /// Causal-trace digest of the run: counts, golden hash, per-class
    /// latency/hop percentiles. Attached to reproducers on failure.
    pub trace: TraceSummary,
    /// Reliability-layer totals (retries, redeliveries, suppressed
    /// duplicates, coverage). All-zero / coverage-free when
    /// [`ScenarioConfig::class_faults`] is `FaultPlan::NONE`.
    pub reliability: ReliabilityReport,
    /// Queries turned away by per-tenant admission quotas (always zero
    /// without a tenant policy).
    pub quota_rejections: u64,
    /// Per-round load-distribution summary from the cluster's load ledger
    /// (DESIGN.md §13), including any re-weighting actions taken.
    pub load: LoadBalanceReport,
    /// Aggregate queries posted (always zero without an armed
    /// [`AggregatesConfig`]).
    pub aggregates_posted: u64,
    /// Aggregate notifications delivered across all aggregate queries.
    pub aggregate_notifications: u64,
    /// Overlay sends suppressed by an armed network partition — ledgered
    /// separately from random drop faults (DESIGN.md §17) and reconciled
    /// against the metrics ledger by oracle 4. Always zero without a
    /// [`crate::scenario::PartitionConfig`].
    pub partition_suppressed: u64,
}

/// Replays a scenario's schedule against a fresh cluster, auditing every
/// invariant after every event. Stops at the first violation; a failing
/// run additionally exports its causal trace as a chrome://tracing
/// timeline to `results/repro-<seed>.trace.json`, next to where the
/// reproducer lands.
pub fn run_scenario(scenario: &Scenario) -> RunReport {
    let mut h = Harness::new(scenario);
    for (i, ev) in scenario.events.iter().enumerate() {
        h.apply(ev);
        if let Some((oracle, detail)) = h.check_oracles(ev) {
            h.export_timeline(scenario.seed);
            return RunReport {
                violation: Some(Violation {
                    oracle: oracle.slug().into(),
                    detail,
                    event_index: i,
                    time_ms: h.now.as_ms(),
                }),
                events_run: i + 1,
                mbr_ships: h.mbr_ships,
                queries_posted: h.queries_posted,
                notifications: h.cluster.total_notifications(),
                final_nodes: h.cluster.num_nodes(),
                final_time_ms: h.now.as_ms(),
                trace: h.trace_summary(),
                reliability: ReliabilityReport::from_metrics(h.cluster.metrics()),
                quota_rejections: h.quota_rejections,
                load: h.load_report(),
                aggregates_posted: h.aggregates_posted,
                aggregate_notifications: h.cluster.total_aggregate_notifications(),
                partition_suppressed: h.cluster.tracer().suppressed_total(),
            };
        }
    }
    RunReport {
        violation: None,
        events_run: scenario.events.len(),
        mbr_ships: h.mbr_ships,
        queries_posted: h.queries_posted,
        notifications: h.cluster.total_notifications(),
        final_nodes: h.cluster.num_nodes(),
        final_time_ms: h.now.as_ms(),
        trace: h.trace_summary(),
        reliability: ReliabilityReport::from_metrics(h.cluster.metrics()),
        quota_rejections: h.quota_rejections,
        load: h.load_report(),
        aggregates_posted: h.aggregates_posted,
        aggregate_notifications: h.cluster.total_aggregate_notifications(),
        partition_suppressed: h.cluster.tracer().suppressed_total(),
    }
}

/// `MsgClass` names in index order, for trace exports and summaries.
fn class_names() -> Vec<&'static str> {
    MsgClass::ALL.iter().map(|c| c.name()).collect()
}

/// Trace ring capacity: comfortably above the record count of the longest
/// tier-1 schedule, so oracle 6 always audits a complete trace.
const TRACE_CAPACITY: usize = 1 << 20;

/// Refresh rounds the eventual-completeness oracle grants repair before a
/// persistent coverage hole becomes a violation. Each NPER round runs one
/// [`Cluster::repair_coverage`] sweep, which re-sends every missing copy
/// through the armed fault plan; with per-copy retry budgets of 5 the
/// probability a specific copy survives `drop_prob = 0.3` unrepaired for 6
/// independent sweeps is (0.3⁶)⁶ ≈ 10⁻¹⁹ — any persistent hole is a bug,
/// not bad luck.
const K_REFRESH_ROUNDS: u32 = 6;

/// Scenario executor: the cluster under test plus the reference state the
/// oracles compare against.
struct Harness {
    cluster: Cluster<Ring>,
    cfg: ScenarioConfig,
    /// Execution RNG: stream values, query shapes, fault draws — consumed
    /// strictly in event order (the truncation-replay guarantee).
    rng: StdRng,
    now: SimTime,
    /// Stream value generators: independent walks at `rho == 0`
    /// (bit-identical to the historical `Vec<RandomWalk>` path), blended
    /// with a shared latent walk under correlation skew.
    walks: CorrelatedWalks,
    /// Execution-time Zipf anchor sampler for query storms (mirrors the
    /// generation-side sampler used for scheduled `PostQuery` events).
    zipf: Option<ZipfSampler>,
    /// Per-tenant admission quotas; `None` admits everything.
    tenants: Option<TenantLedger>,
    /// Brute-force reference index: every shipped record, pruned when its
    /// last live holder disappears or it expires.
    ref_mbrs: Vec<StoredMbr>,
    /// Reference copies of posted queries (pruned on expiry).
    ref_queries: Vec<SimilarityQuery>,
    /// Nodes whose NPER cycle was delayed into a later round, keyed by the
    /// simulated time their late cycle becomes due.
    delayed: DelayQueue<ChordId>,
    /// Nodes whose cycle ran during the latest notify round.
    notified: Vec<ChordId>,
    mbr_ships: u64,
    queries_posted: u64,
    join_counter: u32,
    /// Multicast metas already coverage-checked by oracle 6 (delta cursor:
    /// each meta is audited exactly once, against the ring it was sent on).
    audited_multicasts: usize,
    /// Consecutive Notify-round audits on which a coverage oracle (1 or 3)
    /// reported a hole while per-class faults were active. Reset to zero on
    /// any clean audit; past [`K_REFRESH_ROUNDS`] oracle 7 fires.
    incomplete_rounds: u32,
    /// Consecutive Notify rounds whose max/mean ratio exceeded the armed
    /// [`LoadBound`]; past its grace (plus recovery, when mitigation is
    /// armed) oracle 8 fires.
    hot_rounds: u32,
    /// Queries rejected by the tenant quota.
    quota_rejections: u64,
    /// Exact feed log for the sketch-accuracy oracle: `(home node, value,
    /// at_ms)` for every value posted while an [`AggregatesConfig`] is
    /// armed (empty otherwise). A value counts toward a notification's
    /// reference exactly when its home is in the contributor set and its
    /// timestamp is at or after that replica's `since` — the same
    /// condition under which the cluster's ingest path sketched it.
    agg_log: Vec<(ChordId, f64, u64)>,
    /// Posted aggregate queries with their audit cursors and δ budgets.
    agg_audits: Vec<AggAudit>,
    /// Aggregate queries posted so far.
    aggregates_posted: u64,
    /// Completed NPER rounds since the partition healed. `None` before
    /// the heal — and again once oracle 10 has confirmed convergence, so
    /// later loss-induced holes are judged by oracle 7, not blamed on
    /// the long-converged heal.
    rounds_since_heal: Option<u32>,
    /// Oracle 10's one-shot probe query was posted and checked.
    heal_probe_done: bool,
}

/// Deliberately under-sized sketch shape for the negative control: one
/// row of two counters with `k = 1` cannot honor any realistic ε.
const UNDERSIZED_DIMS: SketchDims = SketchDims { width: 2, depth: 1, k: 1 };

/// Audit state for one posted aggregate query: which notifications were
/// already checked, and the running ε-δ miss budget.
struct AggAudit {
    id: QueryId,
    kind: AggregateKind,
    /// Notifications already audited (delta cursor).
    cursor: usize,
    /// Bound checks performed across all audited notifications.
    checks: u64,
    /// Bound checks that missed. The δ contract makes occasional misses
    /// legitimate; the oracle fires when misses exceed
    /// `max(1, ⌈δ·checks⌉)`.
    failures: u64,
    /// Detail of the most recent miss, for the eventual violation.
    last_miss: String,
}

/// Structural lies in one aggregate notification — checked before the
/// estimate itself, and never δ-budgeted: a contract that *tightens* under
/// degradation, or a coverage/ε_eff pair that disagrees with the
/// `ε_eff = ε + (1 − coverage)` composition rule, is wrong regardless of
/// how accurate the estimate happens to be.
fn structural_violation(agg: &AggregatesConfig, note: &AggregateNotification) -> Option<String> {
    if !note.coverage.is_finite() || !(-1e-9..=1.0 + 1e-9).contains(&note.coverage) {
        return Some(format!("query {}: coverage {} outside [0, 1]", note.query, note.coverage));
    }
    if note.eps_effective < agg.eps - 1e-9 {
        return Some(format!(
            "query {}: advertised eps {} tighter than the posted contract ε = {} — bounds may \
             widen, never tighten",
            note.query, note.eps_effective, agg.eps
        ));
    }
    let want = agg.eps + (1.0 - note.coverage.clamp(0.0, 1.0));
    if (note.eps_effective - want).abs() > 1e-9 {
        return Some(format!(
            "query {}: eps_effective {} disagrees with ε + (1 − coverage) = {want} at coverage {}",
            note.query, note.eps_effective, note.coverage
        ));
    }
    None
}

/// Brute-force covering set, computed independently of the multicast
/// planner: every node whose owned arc `(pred, n]` intersects the circular
/// key range `[lo, hi]`. `sorted` must be the live node ids in ascending
/// order.
fn brute_owners(
    space: dsi_chord::IdSpace,
    sorted: &[ChordId],
    lo: ChordId,
    hi: ChordId,
) -> BTreeSet<ChordId> {
    let contains =
        |a: ChordId, b: ChordId, x: ChordId| space.distance_cw(a, x) <= space.distance_cw(a, b);
    let mut owners = BTreeSet::new();
    for (i, &n) in sorted.iter().enumerate() {
        let pred = sorted[(i + sorted.len() - 1) % sorted.len()];
        let own_lo = space.add(pred, 1);
        // Two circular closed intervals intersect iff either contains the
        // other's low endpoint.
        if contains(own_lo, n, lo) || contains(lo, hi, own_lo) {
            owners.insert(n);
        }
    }
    owners
}

impl Harness {
    fn new(scenario: &Scenario) -> Self {
        let cfg = scenario.config.clone();
        let cluster_cfg = ClusterConfig {
            num_nodes: cfg.num_nodes,
            workload: cfg.workload.clone(),
            id_bits: 32,
            strategy: cfg.strategy,
            kind: dsi_core::SimilarityKind::Subsequence,
        };
        let mut cluster = Cluster::new(cluster_cfg);
        cluster.set_churn_repair(!cfg.disable_churn_repair);
        // The convergence oracle's bug injection: without stabilization a
        // healed ring never re-probes its parked suspects.
        cluster.set_stabilization_enabled(!cfg.disable_stabilization);
        // Arm (or leave disarmed) the virtual-node re-weighting mitigation.
        cluster.set_reweighting(cfg.mitigation);
        // Arm the reliability layer with its own seed stream, decoupled from
        // the execution RNG so schedules truncate-replay identically whether
        // or not per-class faults are active. `FaultPlan::NONE` disarms.
        cluster.set_fault_plan(
            cfg.class_faults,
            scenario.seed.wrapping_mul(0xA076_1D64_78BD_642F).wrapping_add(0x2545_F491_4F6C_DD1D),
        );
        let mut rng = StdRng::seed_from_u64(scenario.seed);
        for i in 0..cfg.num_streams {
            cluster.register_stream(&format!("fault-stream-{i}"), i % cfg.num_nodes);
        }
        // At rho == 0 this draws exactly one sample_spread per stream and
        // no latent walk — the same rng consumption, and the same values,
        // as the historical independent-walk vector.
        let walks = CorrelatedWalks::sample_spread(&mut rng, cfg.num_streams, cfg.skew.rho);
        let zipf = cfg.skew.zipf_exponent.map(|s| ZipfSampler::new(cfg.num_streams, s));
        let tenants = cfg.skew.tenants.map(TenantLedger::new);
        // Measure from the start: oracle 4 audits the full message history,
        // and oracle 6 audits its causal trace against it.
        cluster.enable_tracing(TRACE_CAPACITY);
        cluster.start_measurement();
        Harness {
            cluster,
            cfg,
            rng,
            now: SimTime::ZERO,
            walks,
            zipf,
            tenants,
            ref_mbrs: Vec::new(),
            ref_queries: Vec::new(),
            delayed: DelayQueue::new(),
            notified: Vec::new(),
            mbr_ships: 0,
            queries_posted: 0,
            join_counter: 0,
            audited_multicasts: 0,
            incomplete_rounds: 0,
            hot_rounds: 0,
            quota_rejections: 0,
            agg_log: Vec::new(),
            agg_audits: Vec::new(),
            aggregates_posted: 0,
            rounds_since_heal: None,
            heal_probe_done: false,
        }
    }

    /// Load-distribution summary of the run so far.
    fn load_report(&self) -> LoadBalanceReport {
        LoadBalanceReport::from_ledger(
            self.cluster.load_ledger(),
            self.cluster.reweight_actions().len() as u64,
            self.cluster.virtual_node_count() as u64,
        )
    }

    /// Compact trace digest of the run so far (attached to every report).
    fn trace_summary(&self) -> TraceSummary {
        TraceSummary::from_tracer(self.cluster.tracer(), &class_names())
    }

    /// Write the captured trace as a chrome://tracing timeline next to the
    /// reproducer. Best effort: a failing oracle must never be masked by
    /// an export error.
    fn export_timeline(&self, seed: u64) {
        let dir = crate::repro::results_dir();
        let _ = std::fs::create_dir_all(&dir);
        let mut buf = Vec::new();
        let records = self.cluster.tracer().snapshot();
        if dsi_trace::write_chrome_trace(&mut buf, &records, &class_names(), &[]).is_ok() {
            let _ = std::fs::write(dir.join(format!("repro-{seed}.trace.json")), buf);
        }
    }

    /// Mean stream period — the virtual-time width of one feed tick.
    fn tick_ms(&self) -> u64 {
        (self.cfg.workload.pmin_ms + self.cfg.workload.pmax_ms) / 2
    }

    fn feed_one(&mut self, stream: usize) {
        let v = self.walks.next_value(stream, &mut self.rng);
        if self.cfg.aggregates.is_some() {
            let home = self.cluster.streams()[stream].home;
            self.agg_log.push((home, v, self.now.as_ms()));
        }
        if let Some(plan) = self.cluster.post_value(stream as StreamId, v, self.now) {
            self.mbr_ships += 1;
            // Capture the shipped record for the reference index: the entry
            // delivery stored it last — unless total loss or a severed
            // covering set left nothing on the wire, in which case the
            // summary fell back to the §IV-A local store at the home.
            let at = match plan.deliveries.first() {
                Some(d) => d.node,
                None => self.cluster.streams()[stream].home,
            };
            let rec = self
                .cluster
                .node(at)
                .summaries()
                .last()
                .expect("delivery node stored the shipment")
                .to_stored();
            self.ref_mbrs.push(rec);
        }
    }

    /// One virtual-time tick advancing every stream by one value through the
    /// parallel batch-ingest path. Random values are drawn sequentially in
    /// stream order *before* summarization, so rng consumption is identical
    /// to the per-stream [`Harness::feed_one`] loop this replaces; shipped
    /// records are reconstructed from the batch result (same fields the
    /// cluster stored) instead of being fished out of a node's shard.
    fn feed_tick(&mut self) {
        self.now += self.tick_ms();
        // One correlated tick: the latent walk advances first (a no-op at
        // rho == 0), then every stream in index order — the same per-stream
        // draw sequence as the historical loop.
        let values: Vec<(StreamId, f64)> = self
            .walks
            .next_tick(&mut self.rng)
            .into_iter()
            .enumerate()
            .map(|(s, v)| (s as StreamId, v))
            .collect();
        if self.cfg.aggregates.is_some() {
            let at = self.now.as_ms();
            for &(s, v) in &values {
                let home = self.cluster.streams()[s as usize].home;
                self.agg_log.push((home, v, at));
            }
        }
        let bspan = self.cluster.config().workload.bspan_ms;
        for (stream, mbr, _plan) in self.cluster.ingest_batch(&values, self.now) {
            self.mbr_ships += 1;
            let origin = self.cluster.streams()[stream as usize].home;
            let expires = self.now + bspan;
            self.ref_mbrs.push(StoredMbr { stream, mbr, origin, expires });
        }
    }

    fn post_query(&mut self, client: u32, anchor: u32, radius: f64, lifespan_ms: u64) {
        let w = self.cfg.workload.window_len;
        let anchor = anchor as usize % self.cfg.num_streams;
        // Tenant admission runs before any rng draw, so a rejected query
        // consumes nothing and the remaining schedule replays identically.
        if let Some(t) = &mut self.tenants {
            let tenant = t.tenant_of(anchor);
            if !t.try_admit(tenant) {
                self.quota_rejections += 1;
                return;
            }
        }
        let target: Vec<f64> = if self.cluster.streams()[anchor].extractor.is_warm() {
            // Near-miss of a live shape: exercises both matches and the
            // false-positive filter.
            let snap = self.cluster.streams()[anchor].extractor.window_snapshot();
            let jitter = self.rng.gen_range(0.0..0.1);
            snap.iter().enumerate().map(|(i, v)| v + jitter * ((i as f64) * 1.7).cos()).collect()
        } else {
            let f: f64 = self.rng.gen_range(0.1..0.9);
            let a: f64 = self.rng.gen_range(0.5..3.0);
            (0..w).map(|i| a * ((i as f64) * f).sin() + 5.0).collect()
        };
        let client_idx = client as usize % self.cluster.num_nodes();
        let qid = self.cluster.post_similarity_query(
            client_idx,
            target.clone(),
            radius,
            lifespan_ms,
            self.now,
        );
        self.queries_posted += 1;
        // Independent reference copy, built outside the cluster.
        let q = SimilarityQuery::from_target(
            qid,
            self.cluster.node_id(client_idx),
            target,
            radius,
            self.cluster.config().kind,
            self.cfg.workload.num_coeffs,
            0,
            self.now + lifespan_ms,
        );
        self.ref_queries.push(q);
    }

    fn apply(&mut self, ev: &FaultEvent) {
        // Events that trace without an explicit timestamp (churn-repair
        // copies) inherit the current event time.
        self.cluster.set_trace_time(self.now);
        match *ev {
            FaultEvent::Feed { steps } => {
                for _ in 0..steps {
                    self.feed_tick();
                }
            }
            FaultEvent::Burst { stream, count } => {
                self.now += self.tick_ms();
                let s = stream as usize % self.cfg.num_streams;
                for _ in 0..count {
                    self.feed_one(s);
                }
            }
            FaultEvent::PostQuery { client, anchor, radius_milli, lifespan_ms } => {
                self.post_query(client, anchor, radius_milli as f64 / 1000.0, lifespan_ms);
            }
            FaultEvent::QueryStorm { count } => {
                for _ in 0..count {
                    let client: u32 = self.rng.gen();
                    let anchor: u32 = match &self.zipf {
                        Some(z) => z.sample(&mut self.rng) as u32,
                        None => self.rng.gen_range(0..self.cfg.num_streams as u32),
                    };
                    let radius = self.rng.gen_range(0.03..0.25);
                    let lifespan = self.rng.gen_range(4_000..30_000);
                    self.post_query(client, anchor, radius, lifespan);
                }
            }
            FaultEvent::Herd { client, anchor, count } => {
                // Thundering herd: distinct clients rush one anchor in a
                // single tick; radius/lifespan jitter keeps the queries
                // near-identical rather than byte-identical.
                for i in 0..count {
                    let radius = self.rng.gen_range(0.03..0.25);
                    let lifespan = self.rng.gen_range(4_000..30_000);
                    self.post_query(client.wrapping_add(i), anchor, radius, lifespan);
                }
            }
            FaultEvent::CrashNode { victim } => {
                if self.cluster.num_nodes() > 2 {
                    let id = self.cluster.node_id(victim as usize % self.cluster.num_nodes());
                    self.cluster.crash_node(id);
                    self.delayed.retain(|&n| n != id);
                    self.notified.retain(|&n| n != id);
                }
            }
            FaultEvent::JoinNode { salt } => {
                self.join_counter += 1;
                let label = format!("faultsim-join-{salt}-{}", self.join_counter);
                let id = self.cluster.space().hash_str(&label);
                // An (astronomically unlikely) hash collision with a live
                // node would trip the join assertion; skip the event.
                if !self.cluster.node_ids().contains(&id) {
                    self.cluster.join_node(&label);
                }
            }
            FaultEvent::RehomeOrphans { to } => {
                let to_idx = to as usize % self.cluster.num_nodes();
                for sid in self.cluster.orphaned_streams() {
                    self.cluster.rehome_stream(sid, to_idx, self.now);
                }
            }
            FaultEvent::PostAggregate { client, kind } => {
                // Sketch shape comes from the config; the schedule only
                // carries the kind. A schedule with aggregate events but
                // no armed config (hand-edited reproducer) no-ops safely.
                if let Some(agg) = self.cfg.aggregates.clone() {
                    let spec = AggregateSpec {
                        kind,
                        eps: agg.eps,
                        delta: agg.delta,
                        window_ms: agg.window_ms,
                        lifespan_ms: agg.lifespan_ms,
                        bins: agg.bins,
                        forced_dims: agg.undersized.then_some(UNDERSIZED_DIMS),
                    };
                    let client_idx = client as usize % self.cluster.num_nodes();
                    let id = self.cluster.post_aggregate_query(client_idx, spec, self.now);
                    self.aggregates_posted += 1;
                    self.agg_audits.push(AggAudit {
                        id,
                        kind,
                        cursor: 0,
                        checks: 0,
                        failures: 0,
                        last_miss: String::new(),
                    });
                }
            }
            FaultEvent::PartitionSplit => {
                // The island assignment lives in the config (like the
                // aggregate sketch shape); a schedule carrying the marker
                // without an armed config no-ops safely.
                if let Some(p) = self.cfg.partition.clone() {
                    self.cluster.split_partition(&p.islands);
                }
            }
            FaultEvent::PartitionHeal => {
                if self.cfg.partition.is_some() {
                    // Healing re-probes parked suspects unless the
                    // negative-control bug injection is armed — then the
                    // ring stays forked and oracle 10 must notice.
                    self.cluster.heal_partition(!self.cfg.disable_stabilization);
                    self.rounds_since_heal = Some(0);
                    self.heal_probe_done = false;
                    // The convergence clock restarts at the heal: holes
                    // torn by the split get the full K-round repair
                    // budget from here.
                    self.incomplete_rounds = 0;
                }
            }
            FaultEvent::Notify => {
                self.now += self.cfg.workload.nper_ms;
                self.notified.clear();
                // Deliver previously delayed cycles that are now due (late
                // arrival, in original delay order for equal due times).
                for n in self.delayed.drain_due(self.now) {
                    if self.cluster.node_ids().contains(&n) {
                        self.cluster.notify_cycle(n, self.now);
                        self.notified.push(n);
                    }
                }
                let nper = self.cfg.workload.nper_ms;
                for n in self.cluster.node_ids().to_vec() {
                    match self.cfg.faults.outcome(&mut self.rng) {
                        FaultOutcome::Deliver => {
                            self.cluster.notify_cycle(n, self.now);
                            self.notified.push(n);
                        }
                        FaultOutcome::Duplicate => {
                            self.cluster.notify_cycle(n, self.now);
                            self.cluster.notify_cycle(n, self.now);
                            self.notified.push(n);
                        }
                        FaultOutcome::Drop => {}
                        FaultOutcome::Delay => self.delayed.push(self.now + nper, n),
                        // Partition cuts are deterministic topology state,
                        // never a random per-delivery draw.
                        FaultOutcome::Partitioned => {
                            unreachable!("outcome() never draws Partitioned")
                        }
                    }
                }
                self.cluster.purge_queries(self.now);
                // Under per-class faults, each NPER round ends with one
                // repair sweep re-sending the copies loss left missing —
                // the convergence loop oracle 7 audits. Aggregate runs
                // sweep too: churn rebalance has no clock for replica
                // `since` stamps, so joined nodes stay replica holes until
                // a timed repair heals them. Skipped when the injected
                // churn-repair bug is armed: the self-test wants holes to
                // persist.
                // Partition runs sweep as well: the NPER refresh rounds
                // double as post-heal anti-entropy, re-shipping the copies
                // the cut suppressed (DESIGN.md §17).
                if (self.cluster.fault_plan_active()
                    || self.cfg.aggregates.is_some()
                    || self.cfg.partition.is_some())
                    && !self.cfg.disable_churn_repair
                {
                    self.cluster.set_trace_time(self.now);
                    self.cluster.repair_coverage(self.now);
                }
                if let Some(r) = &mut self.rounds_since_heal {
                    *r += 1;
                }
                // Round boundary bookkeeping: tenant quotas refill, the
                // load ledger samples the round (purely observational),
                // and the mitigation — when armed — re-evaluates. All
                // three consume no rng.
                if let Some(t) = &mut self.tenants {
                    t.reset_round();
                }
                self.cluster.record_load_round(self.now);
                let _ = self.cluster.maybe_reweight(self.now);
            }
        }
    }

    // ------------------------------------------------------------------
    // Oracles
    // ------------------------------------------------------------------

    fn check_oracles(&mut self, last: &FaultEvent) -> Option<(OracleId, String)> {
        self.prune_reference();
        // Coverage oracles (1 and 3). Instant on a reliable network; under
        // per-class faults they switch to eventual mode — oracle 7: a hole
        // is tolerated while repair converges, but a violation persisting
        // across K_REFRESH_ROUNDS consecutive Notify audits means the
        // retry/failover/repair loop failed to restore completeness.
        let coverage = self
            .oracle_no_false_dismissal()
            .map(|d| (OracleId::NoFalseDismissal, d))
            .or_else(|| self.oracle_replica_placement().map(|d| (OracleId::ReplicaPlacement, d)));
        match coverage {
            // While the cut is up, cross-side holes are deterministic
            // suppression — they provably cannot close, so they are not
            // evidence of a bug. Oracle 10's clock starts at the heal.
            Some(_) if self.cluster.ring().partitioned() => {}
            Some((oracle, d)) if self.rounds_since_heal.is_some() => {
                // Post-heal grace: anti-entropy gets K rounds to erase the
                // split's holes; past the deadline the heal did not
                // converge and oracle 10 fires.
                let overdue = if self.cluster.fault_plan_active() {
                    // Random loss keeps tearing fresh transient holes, so
                    // (exactly like oracle 7) the failure must persist
                    // across K consecutive Notify audits to count.
                    if matches!(last, FaultEvent::Notify) {
                        self.incomplete_rounds += 1;
                    }
                    self.incomplete_rounds > K_REFRESH_ROUNDS
                } else {
                    // Without loss the repair sweeps are deterministic:
                    // any hole still open at the deadline is a failure.
                    self.rounds_since_heal.unwrap_or(0) >= K_REFRESH_ROUNDS
                };
                if overdue {
                    return Some((
                        OracleId::PostHealConvergence,
                        format!(
                            "coverage not restored within {K_REFRESH_ROUNDS} refresh rounds of \
                             the heal ({}: {d})",
                            oracle.slug()
                        ),
                    ));
                }
            }
            Some((oracle, d)) if !self.cluster.fault_plan_active() => {
                return Some((oracle, d));
            }
            Some((oracle, d)) => {
                if matches!(last, FaultEvent::Notify) {
                    self.incomplete_rounds += 1;
                    if self.incomplete_rounds > K_REFRESH_ROUNDS {
                        return Some((
                            OracleId::EventualCompleteness,
                            format!(
                                "coverage hole not repaired within {K_REFRESH_ROUNDS} refresh \
                                 rounds ({}: {d})",
                                oracle.slug()
                            ),
                        ));
                    }
                }
            }
            None => self.incomplete_rounds = 0,
        }
        if let Some(d) = self.oracle_routing_termination() {
            return Some((OracleId::RoutingTermination, d));
        }
        if let Some(d) = self.oracle_metrics_conservation() {
            return Some((OracleId::MetricsConservation, d));
        }
        if matches!(last, FaultEvent::Notify) {
            if let Some(d) = self.oracle_purge() {
                return Some((OracleId::Purge, d));
            }
            if let Some(d) = self.oracle_load_balance() {
                return Some((OracleId::LoadBalance, d));
            }
            if let Some(d) = self.oracle_post_heal_convergence() {
                return Some((OracleId::PostHealConvergence, d));
            }
        }
        if let Some(d) = self.oracle_sketch_accuracy() {
            return Some((OracleId::SketchAccuracy, d));
        }
        if let Some(d) = self.oracle_trace_conformance() {
            return Some((OracleId::TraceConformance, d));
        }
        None
    }

    /// Oracle 9: every aggregate notification honors its advertised ε-δ
    /// contract. Structural lies — a bound tighter than the posted
    /// contract, an `ε_eff` that is not exactly `ε + (1 − coverage)`, a
    /// coverage outside `[0, 1]` — are immediate violations. Estimate
    /// misses against the contributor-scoped exact reference consume the
    /// δ budget instead: the contract promises each bound *with
    /// probability 1 − δ*, so the oracle fires only when misses exceed
    /// `max(1, ⌈δ·checks⌉)` for one query. Disarmed without an
    /// [`AggregatesConfig`].
    fn oracle_sketch_accuracy(&mut self) -> Option<String> {
        let agg = self.cfg.aggregates.clone()?;
        for qi in 0..self.agg_audits.len() {
            let (id, kind, cursor) = {
                let a = &self.agg_audits[qi];
                (a.id, a.kind, a.cursor)
            };
            let fresh: Vec<AggregateNotification> =
                self.cluster.aggregate_notifications(id)[cursor..].to_vec();
            for note in &fresh {
                if let Some(d) = structural_violation(&agg, note) {
                    return Some(d);
                }
                let miss = self.check_note_bound(&agg, kind, note);
                let audit = &mut self.agg_audits[qi];
                audit.checks += 1;
                if let Some(m) = miss {
                    audit.failures += 1;
                    audit.last_miss = m;
                    let budget = ((agg.delta * audit.checks as f64).ceil() as u64).max(1);
                    if audit.failures > budget {
                        return Some(format!(
                            "query {id} ({kind:?}): {} of {} bound checks missed the advertised \
                             ε-δ contract (δ budget {budget}); latest: {}",
                            audit.failures, audit.checks, audit.last_miss
                        ));
                    }
                }
            }
            self.agg_audits[qi].cursor += fresh.len();
        }
        None
    }

    /// One notification's estimate checked against the brute-force exact
    /// sliding window over the run's own feed log, scoped to the
    /// notification's contributors: a value counts exactly when its home
    /// node contributed this round and its timestamp is at or after that
    /// replica's `since` — the same condition under which the ingest path
    /// sketched it. Returns a miss description, or `None` when the
    /// estimate sits inside the advertised bound.
    fn check_note_bound(
        &self,
        agg: &AggregatesConfig,
        kind: AggregateKind,
        note: &AggregateNotification,
    ) -> Option<String> {
        let at = note.at.as_ms() as i64;
        let lo = at - agg.window_ms as i64;
        let mut covered: Vec<f64> = Vec::new();
        for &(home, v, t) in &self.agg_log {
            let ti = t as i64;
            if ti <= lo || ti > at {
                continue;
            }
            if note.contributors.iter().any(|&(n, since)| n == home && t >= since.as_ms()) {
                covered.push(v);
            }
        }
        let n_cov = covered.len() as f64;
        let comp = note.components as f64;
        let eps_eff = note.eps_effective;
        // Count-Min + merged-EH absolute error at the advertised contract:
        // ε_eff·N over the covered population plus one straddling bucket
        // per merged component.
        let e_abs = eps_eff * n_cov + comp;
        let t_ms = note.at.as_ms();
        match (kind, &note.value) {
            (AggregateKind::WindowCount, AggregateValue::Scalar(est)) => ((est - n_cov).abs()
                > e_abs + 1e-6)
                .then(|| format!("window count {est} vs exact {n_cov} (±{e_abs:.3}) at t={t_ms}")),
            (AggregateKind::PointCount { bin }, AggregateValue::Scalar(est)) => {
                let truth =
                    covered.iter().filter(|&&v| quantize(v, agg.bins) == bin).count() as f64;
                ((est - truth).abs() > e_abs + 1e-6).then(|| {
                    format!(
                        "point count of bin {bin} {est} vs exact {truth} (±{e_abs:.3}) at t={t_ms}"
                    )
                })
            }
            (AggregateKind::SelfJoinSize, AggregateValue::Scalar(est)) => {
                let mut freq = std::collections::BTreeMap::<u64, f64>::new();
                for &v in &covered {
                    *freq.entry(quantize(v, agg.bins)).or_default() += 1.0;
                }
                let truth: f64 = freq.values().map(|f| f * f).sum();
                // Mirrors `EcmSketch::self_join_error_bound`, widened to
                // the advertised ε_eff; `w` is the row width the posted
                // (ε, δ) contract derives.
                let w = (2.0 * std::f64::consts::E / agg.eps).ceil();
                let slack = 2.0 * eps_eff * n_cov * n_cov + 3.0 * n_cov + 3.0 * comp * w;
                ((est - truth).abs() > slack + 1e-6).then(|| {
                    format!("self-join size {est} vs exact {truth} (±{slack:.3}) at t={t_ms}")
                })
            }
            (AggregateKind::HeavyHitters { phi }, AggregateValue::Bins(bins)) => {
                let mut freq = std::collections::BTreeMap::<u64, f64>::new();
                for &v in &covered {
                    *freq.entry(quantize(v, agg.bins)).or_default() += 1.0;
                }
                // Both the per-bin estimate and the φ·total threshold are
                // sketch estimates, so the separation margin is (1 + φ)
                // times the absolute error.
                let margin = (1.0 + phi) * e_abs + 1e-6;
                for &(b, _) in bins {
                    let f = freq.get(&b).copied().unwrap_or(0.0);
                    if f + margin < phi * n_cov {
                        return Some(format!(
                            "reported heavy hitter bin {b} has exact frequency {f}, below \
                             φ·N = {:.3} − margin {margin:.3} at t={t_ms}",
                            phi * n_cov
                        ));
                    }
                }
                for (&b, &f) in &freq {
                    if f > phi * n_cov + margin && !bins.iter().any(|&(rb, _)| rb == b) {
                        return Some(format!(
                            "bin {b} with exact frequency {f} above φ·N = {:.3} + margin \
                             {margin:.3} missing from heavy hitters at t={t_ms}",
                            phi * n_cov
                        ));
                    }
                }
                None
            }
            (k, v) => {
                Some(format!("query {}: value shape {v:?} does not match kind {k:?}", note.query))
            }
        }
    }

    /// Oracle 8: per-host message load stays inside the armed
    /// [`LoadBound`] envelope. A round is *hot* when its max/mean ratio
    /// (per physical host, virtuals charged to their host) exceeds the
    /// bound; `grace_rounds` consecutive hot rounds are tolerated. With
    /// mitigation armed the budget stretches by `recovery_rounds` — the
    /// re-weighting must then actually cool the ring, or the oracle calls
    /// it ineffective. Disarmed (`load_bound: None`) it never fires.
    fn oracle_load_balance(&mut self) -> Option<String> {
        let bound: LoadBound = self.cfg.load_bound?;
        let last = self.cluster.load_ledger().rounds().last()?;
        let ratio = last.max_over_mean().unwrap_or(0.0);
        if ratio <= bound.max_over_mean {
            self.hot_rounds = 0;
            return None;
        }
        self.hot_rounds += 1;
        let mitigated = self.cfg.mitigation.is_some();
        let budget = bound.grace_rounds + if mitigated { bound.recovery_rounds } else { 0 };
        if self.hot_rounds <= budget {
            return None;
        }
        let actions = self.cluster.reweight_actions().len();
        let verdict = if actions > 0 {
            format!("mitigation ineffective after {actions} re-weighting action(s)")
        } else if mitigated {
            "mitigation armed but never tripped".to_string()
        } else {
            "no mitigation armed".to_string()
        };
        Some(format!(
            "per-host max/mean load ratio {ratio:.2} exceeded bound {:.2} for {} consecutive \
             rounds (budget {budget}; gini {:.3}); {verdict}",
            bound.max_over_mean,
            self.hot_rounds,
            last.gini(),
        ))
    }

    /// Oracle 10: within [`K_REFRESH_ROUNDS`] NPER rounds of a partition
    /// heal, the ring's successor/finger state must match the brute-force
    /// recomputation and a freshly posted probe query must see the whole
    /// ring again. (The companion coverage checks — placement green, no
    /// registration lost — route through the coverage match in
    /// `check_oracles`, which re-labels an overdue post-heal hole as this
    /// oracle.) Once everything is green the oracle disarms itself, so
    /// later loss-induced holes are judged by oracle 7, not blamed on the
    /// long-converged heal.
    fn oracle_post_heal_convergence(&mut self) -> Option<String> {
        let r = self.rounds_since_heal?;
        if r < K_REFRESH_ROUNDS {
            return None;
        }
        if !self.cluster.ring().is_fully_consistent() {
            return Some(format!(
                "successor/finger state still disagrees with the brute-force recomputation \
                 {r} rounds after the heal (stabilization never re-knit the fork)"
            ));
        }
        // Fresh work must see full coverage again: one deterministic probe
        // query at the deadline. It draws nothing from the execution RNG,
        // so the remaining schedule replays identically. Skipped under
        // armed per-class loss, where a dropped hop could legitimately
        // dent the probe's first-shot coverage.
        if !self.heal_probe_done && !self.cluster.fault_plan_active() {
            self.heal_probe_done = true;
            if let Some(d) = self.check_heal_probe() {
                return Some(d);
            }
        }
        if self.incomplete_rounds == 0 {
            self.rounds_since_heal = None;
        }
        None
    }

    /// Posts oracle 10's probe query (fixed shape, no RNG draws) and
    /// checks it lands with 1.0 coverage on exactly its covering set.
    fn check_heal_probe(&mut self) -> Option<String> {
        let w = self.cfg.workload.window_len;
        let target: Vec<f64> = (0..w).map(|i| 2.0 * ((i as f64) * 0.37).sin() + 5.0).collect();
        let radius = 0.2;
        // Expires at the next NPER round, purging with everything else.
        let lifespan = self.cfg.workload.nper_ms;
        let qid = self.cluster.post_similarity_query(0, target.clone(), radius, lifespan, self.now);
        self.queries_posted += 1;
        let q = SimilarityQuery::from_target(
            qid,
            self.cluster.node_id(0),
            target,
            radius,
            self.cluster.config().kind,
            self.cfg.workload.num_coeffs,
            0,
            self.now + lifespan,
        );
        let (lo, hi) = radius_key_range(self.cluster.space(), q.feature.first_real(), q.radius);
        self.ref_queries.push(q);
        if let Some(cov) = self.cluster.query_coverage(qid) {
            if (cov - 1.0).abs() > 1e-9 {
                return Some(format!(
                    "probe query posted {K_REFRESH_ROUNDS} rounds after the heal sees coverage \
                     {cov}, not 1.0"
                ));
            }
        }
        for n in covering_nodes(self.cluster.ring(), lo, hi) {
            if !self.cluster.node(n).has_subscription(qid) {
                return Some(format!(
                    "post-heal probe query (range [{lo},{hi}]) is not subscribed at covering \
                     node {n}"
                ));
            }
        }
        None
    }

    /// Drops reference records that legitimately left the system: expired,
    /// or lost because *every* holder crashed (soft state — the record
    /// returns with the stream's next shipment).
    fn prune_reference(&mut self) {
        let now = self.now;
        let cluster = &self.cluster;
        self.ref_mbrs.retain(|r| {
            now < r.expires
                && cluster
                    .node_ids()
                    .iter()
                    .any(|&n| cluster.node(n).summaries().any(|s| s.matches(r)))
        });
        self.ref_queries.retain(|q| !q.expired(now));
    }

    /// Oracle 1: the distributed index never misses a match the flat
    /// reference index finds (the lower-bounding superset guarantee,
    /// end to end through routing, replication and churn).
    fn oracle_no_false_dismissal(&self) -> Option<String> {
        let space = self.cluster.space();
        for q in &self.ref_queries {
            let point = q.feature.to_reals();
            let reference: BTreeSet<StreamId> = self
                .ref_mbrs
                .iter()
                .filter(|r| r.mbr.min_dist(&point) <= q.radius + 1e-12)
                .map(|r| r.stream)
                .collect();
            if reference.is_empty() {
                continue;
            }
            let (lo, hi) = radius_key_range(space, q.feature.first_real(), q.radius);
            let system: BTreeSet<StreamId> = covering_nodes(self.cluster.ring(), lo, hi)
                .into_iter()
                .flat_map(|n| self.cluster.node(n).local_candidates(q, self.now))
                .collect();
            for s in &reference {
                if !system.contains(s) {
                    return Some(format!(
                        "query {} (radius {:.3}) dismisses stream {s}: reference candidates \
                         {reference:?}, index candidates {system:?}",
                        q.id, q.radius
                    ));
                }
            }
        }
        None
    }

    /// Oracle 2: lookups and multicasts from every live node terminate on
    /// live nodes, over all-live paths.
    fn oracle_routing_termination(&self) -> Option<String> {
        let live: BTreeSet<ChordId> = self.cluster.node_ids().iter().copied().collect();
        let space = self.cluster.space();
        let ring = self.cluster.ring();
        let step = (space.modulus() / 16).max(1);
        for &origin in self.cluster.node_ids() {
            for k in 0..16u64 {
                let key = (k * step) % space.modulus();
                let l = ring.lookup(origin, key);
                if !live.contains(&l.owner) {
                    return Some(format!("lookup({origin}, {key}) ends on dead node {}", l.owner));
                }
                if let Some(bad) = l.path.iter().find(|n| !live.contains(n)) {
                    return Some(format!("lookup({origin}, {key}) routes through dead node {bad}"));
                }
            }
        }
        // Range multicast termination over each active query's range.
        // During a split the planner is side-consistent and the subcheck
        // holds per side; on a ring healed without re-probing (the
        // negative-control fork) the planner's ground truth and the stale
        // routing state legitimately disagree, so the subcheck stands
        // down until stabilization re-knits the ring — oracle 10 owns
        // that failure.
        if self.cfg.partition.is_some() && !self.cluster.ring().is_fully_consistent() {
            return None;
        }
        let origin = self.cluster.node_id(0);
        for q in &self.ref_queries {
            let (lo, hi) = radius_key_range(space, q.feature.first_real(), q.radius);
            let plan = multicast(ring, origin, lo, hi, self.cfg.strategy);
            if !live.contains(&plan.entry) {
                return Some(format!("multicast [{lo},{hi}] enters at dead node {}", plan.entry));
            }
            if let Some(bad) = plan.deliveries.iter().find(|d| !live.contains(&d.node)) {
                return Some(format!("multicast [{lo},{hi}] delivers to dead node {}", bad.node));
            }
        }
        None
    }

    /// Oracle 3: after stabilization, every unexpired record sits on exactly
    /// the covering set of its key range (plus its origin while alive), and
    /// every unexpired query is subscribed on its whole covering set.
    fn oracle_replica_placement(&self) -> Option<String> {
        let space = self.cluster.space();
        let ring = self.cluster.ring();
        let mut seen: Vec<StoredMbr> = Vec::new();
        for &n in self.cluster.node_ids() {
            for rec in self.cluster.node(n).summaries() {
                if self.now >= rec.expires || seen.iter().any(|r| rec.matches(r)) {
                    continue;
                }
                let rec = rec.to_stored();
                seen.push(rec.clone());
                let holders: BTreeSet<ChordId> = self
                    .cluster
                    .node_ids()
                    .iter()
                    .copied()
                    .filter(|&m| self.cluster.node(m).summaries().any(|s| s.matches(&rec)))
                    .collect();
                let (lo_v, hi_v) = rec.mbr.first_interval();
                let (lo, hi) = dsi_core::interval_key_range(
                    space,
                    lo_v.clamp(-1.0, 1.0),
                    hi_v.clamp(-1.0, 1.0),
                );
                let mut want: BTreeSet<ChordId> =
                    covering_nodes(ring, lo, hi).into_iter().collect();
                if self.cluster.node_ids().contains(&rec.origin) {
                    want.insert(rec.origin);
                }
                if holders != want {
                    return Some(format!(
                        "MBR of stream {} (range [{lo},{hi}], origin {}) held by {holders:?}, \
                         covering set wants {want:?}",
                        rec.stream, rec.origin
                    ));
                }
            }
        }
        for q in &self.ref_queries {
            let (lo, hi) = radius_key_range(space, q.feature.first_real(), q.radius);
            for n in covering_nodes(ring, lo, hi) {
                if !self.cluster.node(n).has_subscription(q.id) {
                    return Some(format!(
                        "query {} (range [{lo},{hi}]) not subscribed at covering node {n}",
                        q.id
                    ));
                }
            }
        }
        None
    }

    /// Oracle 4: message bookkeeping reconciles — per-node sent/received
    /// sums match class totals, and hop accounting is conserved against
    /// per-hop message counts for the classes where every route logs hops.
    fn oracle_metrics_conservation(&self) -> Option<String> {
        let m = self.cluster.metrics();
        for c in MsgClass::ALL {
            if m.sent_total(c) != m.total(c) || m.received_total(c) != m.total(c) {
                return Some(format!(
                    "{}: sent {} / received {} / total {} disagree",
                    c.name(),
                    m.sent_total(c),
                    m.received_total(c),
                    m.total(c)
                ));
            }
        }
        // Every MBR shipment logs its route hops: the hop sum is exactly the
        // per-hop messages (1 originated + hops-1 transit per route).
        let mbr_msgs = m.total(MsgClass::MbrOriginated) + m.total(MsgClass::MbrTransit);
        if m.hop_sum(MsgClass::MbrOriginated) != mbr_msgs {
            return Some(format!(
                "MBR hop sum {} != originated+transit messages {mbr_msgs}",
                m.hop_sum(MsgClass::MbrOriginated)
            ));
        }
        // Internal (range-forward and rebalance-copy) messages log exactly
        // one hop record per message.
        for c in [MsgClass::MbrInternal, MsgClass::QueryInternal] {
            if m.hop_count(c) != m.total(c) {
                return Some(format!(
                    "{}: {} hop records for {} messages",
                    c.name(),
                    m.hop_count(c),
                    m.total(c)
                ));
            }
        }
        if m.hop_sum(MsgClass::ResponseInternal) != m.total(MsgClass::ResponseInternal) {
            return Some(format!(
                "neighbor exchanges are single-hop: hop sum {} != messages {}",
                m.hop_sum(MsgClass::ResponseInternal),
                m.total(MsgClass::ResponseInternal)
            ));
        }
        // Query/Response classes also carry location-service traffic that
        // logs no hop records, so their hop sums only lower-bound messages.
        let query_msgs = m.total(MsgClass::Query) + m.total(MsgClass::QueryTransit);
        if m.hop_sum(MsgClass::Query) > query_msgs {
            return Some(format!(
                "query hop sum {} exceeds query messages {query_msgs}",
                m.hop_sum(MsgClass::Query)
            ));
        }
        let resp_msgs = m.total(MsgClass::Response) + m.total(MsgClass::ResponseTransit);
        if m.hop_sum(MsgClass::Response) > resp_msgs {
            return Some(format!(
                "response hop sum {} exceeds response messages {resp_msgs}",
                m.hop_sum(MsgClass::Response)
            ));
        }
        // Send-decision ledger (DESIGN.md §17): every judged overlay send
        // is exactly one of delivered, lost to random faults, or
        // partition-suppressed — and the suppression count must agree
        // with the trace-side tally, so a cut can never be silently
        // double-charged as (or confused with) random loss.
        let mut suppressed_sum = 0u64;
        for c in MsgClass::ALL {
            let (decisions, delivered, lost, partitioned) = m.send_accounting(c);
            if decisions != delivered + lost + partitioned {
                return Some(format!(
                    "{}: {decisions} send decisions != {delivered} delivered + {lost} lost + \
                     {partitioned} partition-suppressed",
                    c.name()
                ));
            }
            suppressed_sum += partitioned;
        }
        let traced = self.cluster.tracer().suppressed_total();
        if suppressed_sum != traced {
            return Some(format!(
                "metrics ledger counts {suppressed_sum} partition-suppressed sends, the trace \
                 audit tallied {traced}"
            ));
        }
        None
    }

    /// Oracle 6: the causal trace is internally consistent and accounts
    /// for the metrics exactly — unique ids, chains rooted at origins,
    /// per-class message/hop counters reconstructed from trace records
    /// equal to [`dsi_simnet::Metrics`] bit for bit — and every multicast
    /// traced since the previous audit delivered to exactly the
    /// brute-force owner set of its key range. Skipped (for coverage)
    /// only if the ring buffer ever overflowed, which `TRACE_CAPACITY`
    /// is sized to prevent on tier-1 schedules.
    fn oracle_trace_conformance(&mut self) -> Option<String> {
        let tracer = self.cluster.tracer();
        let n_metas = tracer.multicasts().len();
        if tracer.dropped() > 0 {
            self.audited_multicasts = n_metas;
            return None;
        }
        if let Err(e) = validate_causality(tracer.iter()) {
            return Some(format!("causal structure broken: {e}"));
        }
        let rec = dsi_trace::audit(tracer.iter(), NUM_CLASSES);
        let m = self.cluster.metrics();
        for c in MsgClass::ALL {
            let i = c.index();
            if rec.messages[i] != m.total(c) {
                return Some(format!(
                    "{}: trace counts {} messages, metrics counted {}",
                    c.name(),
                    rec.messages[i],
                    m.total(c)
                ));
            }
            if rec.hop_count[i] != m.hop_count(c) || rec.hop_sum[i] != m.hop_sum(c) {
                return Some(format!(
                    "{}: trace hop count/sum {}/{}, metrics {}/{}",
                    c.name(),
                    rec.hop_count[i],
                    rec.hop_sum[i],
                    m.hop_count(c),
                    m.hop_sum(c)
                ));
            }
        }
        // Coverage of multicasts traced since the last audit. Sound to
        // check against the *current* ring: no event both multicasts and
        // churns, so the topology is the one each multicast was sent on.
        // Multicasts sent while the network is split (or still forked
        // after a stabilization-free heal) legitimately deliver to one
        // side only; their metas are skipped — the cursor still advances,
        // so they are never later audited against a ring they were not
        // sent on.
        let partition_grace = self.cluster.ring().partitioned()
            || (self.cfg.partition.is_some() && !self.cluster.ring().is_fully_consistent());
        let new_metas = &tracer.multicasts()[self.audited_multicasts..];
        if !new_metas.is_empty() && !partition_grace {
            let records = tracer.snapshot();
            let internal =
                [MsgClass::MbrInternal.index() as u8, MsgClass::QueryInternal.index() as u8];
            let mut sorted: Vec<ChordId> = self.cluster.node_ids().to_vec();
            sorted.sort_unstable();
            let space = self.cluster.space();
            for meta in new_metas {
                let delivered = multicast_delivery_set(&records, meta, &internal);
                let expected = brute_owners(space, &sorted, meta.lo, meta.hi);
                if delivered != expected {
                    return Some(format!(
                        "multicast over [{}, {}] delivered to {delivered:?}, \
                         brute-force owner set is {expected:?}",
                        meta.lo, meta.hi
                    ));
                }
            }
        }
        self.audited_multicasts = n_metas;
        None
    }

    /// Oracle 5: a notify round actually purged expired state on every node
    /// whose cycle ran.
    fn oracle_purge(&self) -> Option<String> {
        for &n in &self.notified {
            let dc = self.cluster.node(n);
            if let Some(s) = dc.summaries().find(|s| self.now >= s.expires) {
                return Some(format!(
                    "node {n} still stores MBR of stream {} expired at {} (now {})",
                    s.stream,
                    s.expires.as_ms(),
                    self.now.as_ms()
                ));
            }
            if let Some(q) = dc.all_subscriptions().find(|q| q.expired(self.now)) {
                return Some(format!(
                    "node {n} still holds similarity subscription {} expired at {}",
                    q.id,
                    q.expires.as_ms()
                ));
            }
            if let Some(q) = dc.all_ip_subscriptions().find(|q| q.expired(self.now)) {
                return Some(format!(
                    "node {n} still holds inner-product subscription {} expired at {}",
                    q.id,
                    q.expires.as_ms()
                ));
            }
        }
        None
    }
}
