//! Seed-generated fault scenarios.
//!
//! A [`Scenario`] is a fully materialized event schedule: churn, stream
//! bursts, query storms and NPER rounds, produced up front by a *generation*
//! RNG derived from the seed. Execution consumes a second RNG (seeded from
//! the same seed) strictly in event order, so a schedule truncated at the
//! failing event replays the identical prefix — the property the serialized
//! reproducers rely on.

use dsi_chord::RangeStrategy;
use dsi_core::load::ReweightConfig;
use dsi_core::AggregateKind;
use dsi_simnet::{FaultPlan, FaultSpec};
use dsi_streamgen::{TenantPolicy, WorkloadConfig, ZipfSampler};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Adversarial workload skew knobs. The all-default value (`rho == 0`, no
/// Zipf bias, no herd, no tenants) reproduces the historical independent
/// workload bit-for-bit — every knob is strictly opt-in.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct SkewConfig {
    /// Cross-stream correlation in `[0, 1]`: streams share a latent walk
    /// with weight `rho`. At 1.0 every stream is byte-identical — the
    /// worst-case Fourier-space hotspot.
    pub rho: f64,
    /// When set, query anchors are drawn from a Zipf(`s`) distribution
    /// over stream ranks instead of uniformly — query-popularity skew.
    pub zipf_exponent: Option<f64>,
    /// When positive, query storms become thundering herds: `herd_count`
    /// clients register near-identical queries on one anchor in one tick.
    pub herd_count: u32,
    /// Per-tenant query admission quotas (multi-tenant isolation).
    pub tenants: Option<TenantPolicy>,
}

impl SkewConfig {
    /// Validates all knobs.
    ///
    /// # Panics
    /// Panics on out-of-range correlation or non-positive Zipf exponent.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.rho) && self.rho.is_finite(),
            "correlation must lie in [0, 1], got {}",
            self.rho
        );
        if let Some(s) = self.zipf_exponent {
            assert!(s.is_finite() && s >= 0.0, "zipf exponent must be finite and >= 0, got {s}");
        }
    }
}

/// Aggregate-query workload for the sketch-accuracy oracle (oracle 9).
/// When set, the schedule posts one continuous aggregate query per entry
/// in `kinds` right after warm-up, and every notification the run
/// produces is audited against a brute-force sliding-window reference
/// scoped to the notification's own contributor set (DESIGN.md §15).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregatesConfig {
    /// Target relative error ε at full coverage.
    pub eps: f64,
    /// Failure probability δ — also the oracle's miss budget.
    pub delta: f64,
    /// Sliding-window width in milliseconds.
    pub window_ms: u64,
    /// Query lifespan in milliseconds.
    pub lifespan_ms: u64,
    /// Quantization universe size (see [`dsi_core::quantize`]).
    pub bins: u64,
    /// One query is posted per kind, in order, right after warm-up.
    pub kinds: Vec<AggregateKind>,
    /// Negative-control switch: force a deliberately under-sized sketch
    /// (one row, two counters, `k = 1`) whose advertised ε-δ contract is
    /// a lie the accuracy oracle must catch.
    pub undersized: bool,
}

impl Default for AggregatesConfig {
    fn default() -> Self {
        AggregatesConfig {
            eps: 0.2,
            delta: 0.1,
            window_ms: 4_000,
            lifespan_ms: 600_000,
            bins: 64,
            kinds: vec![AggregateKind::WindowCount],
            undersized: false,
        }
    }
}

impl AggregatesConfig {
    /// Validates the knobs.
    ///
    /// # Panics
    /// Panics on out-of-range ε/δ, a zero-width window, or an empty kinds
    /// list.
    pub fn validate(&self) {
        assert!(
            self.eps.is_finite() && self.eps > 0.0 && self.eps <= 1.0,
            "aggregate eps must lie in (0, 1], got {}",
            self.eps
        );
        assert!(
            self.delta.is_finite() && self.delta > 0.0 && self.delta <= 0.5,
            "aggregate delta must lie in (0, 0.5], got {}",
            self.delta
        );
        assert!(self.window_ms > 0, "aggregate window must be positive");
        assert!(self.bins >= 1, "aggregate universe needs at least one bin");
        assert!(!self.kinds.is_empty(), "aggregate config must post at least one query");
    }
}

/// Network-partition injection for the post-heal convergence oracle
/// (oracle 10, DESIGN.md §17). When set, the schedule carries one
/// [`FaultEvent::PartitionSplit`] / [`FaultEvent::PartitionHeal`] pair at
/// positions measured in NPER rounds, and churn rolls degrade to plain
/// rounds — a partition and membership churn both rewrite the ring, and
/// isolating the cut keeps the convergence oracle's brute-force
/// expectation exact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionConfig {
    /// Islands by data-center creation index: entry `k` lists the nodes
    /// severed onto side `k + 1`; unlisted indices stay together on side
    /// 0 (the "majority" side when the listed islands are minorities).
    pub islands: Vec<Vec<usize>>,
    /// NPER rounds after the warm-up round before the split lands.
    pub split_after_rounds: u32,
    /// NPER rounds the cut stays up before the heal event.
    pub heal_after_rounds: u32,
}

impl PartitionConfig {
    /// Validates the islands against the scenario's node count.
    ///
    /// # Panics
    /// Panics on empty or overlapping islands, out-of-range indices, an
    /// empty side 0, or a zero-round split/heal spacing.
    pub fn validate(&self, num_nodes: usize) {
        assert!(!self.islands.is_empty(), "a partition needs at least one severed island");
        assert!(self.islands.len() <= 254, "at most 254 severed islands");
        let mut seen = Vec::new();
        for island in &self.islands {
            assert!(!island.is_empty(), "severed islands must be non-empty");
            for &idx in island {
                assert!(idx < num_nodes, "island index {idx} out of range (< {num_nodes})");
                assert!(!seen.contains(&idx), "node index {idx} listed in two islands");
                seen.push(idx);
            }
        }
        assert!(
            seen.len() < num_nodes,
            "every node is severed onto a listed island; side 0 must keep at least one"
        );
        assert!(self.split_after_rounds >= 1, "split needs at least one settled round first");
        assert!(self.heal_after_rounds >= 1, "the cut must stay up for at least one round");
    }
}

/// NPER rounds guaranteed to follow the heal event in every generated
/// schedule, so the post-heal convergence oracle always gets its full
/// audit window (the harness grants repair `K_REFRESH_ROUNDS = 6`
/// rounds; two more rounds are audited *after* the deadline).
pub const POST_HEAL_SETTLE_ROUNDS: usize = 8;

/// The Fig. 8-style load-balance envelope the eighth oracle enforces.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadBound {
    /// Maximum tolerated per-host max/mean message ratio per NPER round.
    pub max_over_mean: f64,
    /// Consecutive over-ratio rounds tolerated before the oracle trips
    /// (mirrors the re-weighting trigger's K).
    pub grace_rounds: u32,
    /// Extra rounds granted when mitigation is armed: after re-weighting
    /// fires, the ratio must fall back under the bound within this many
    /// rounds or the mitigation is judged ineffective.
    pub recovery_rounds: u32,
}

impl LoadBound {
    /// Validates the envelope.
    ///
    /// # Panics
    /// Panics if the ratio bound is not above 1 (max/mean is never below 1).
    pub fn validate(&self) {
        assert!(
            self.max_over_mean.is_finite() && self.max_over_mean > 1.0,
            "load bound must exceed 1 (max/mean is never below 1)"
        );
        assert!(self.grace_rounds > 0, "need at least one grace round");
    }
}

/// Static shape of a scenario (everything except the seed-driven schedule).
///
/// `Serialize` / `Deserialize` are hand-written (below) so the three skew
/// fields default when absent — reproducers serialized before the
/// adversarial pack still parse, as a skew-free config.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioConfig {
    /// Initial number of data centers.
    pub num_nodes: usize,
    /// Number of registered streams (homed round-robin).
    pub num_streams: usize,
    /// Number of scheduled events after the warm-up feed.
    pub num_events: usize,
    /// Range multicast strategy under test.
    pub strategy: RangeStrategy,
    /// Workload parameters (small Table I variant for test speed).
    pub workload: WorkloadConfig,
    /// Message faults applied to NPER notify ticks.
    pub faults: FaultSpec,
    /// Per-message-class faults applied to *every* overlay send through
    /// the cluster's reliability layer (retry/backoff, failover,
    /// degradation — DESIGN.md §12). `FaultPlan::NONE` leaves the layer
    /// disarmed and the run byte-identical to the historical behavior.
    pub class_faults: FaultPlan,
    /// Disables replica rebalancing on churn — the known-bug injection
    /// switch the oracle self-test flips.
    pub disable_churn_repair: bool,
    /// Adversarial workload skew (correlation, Zipf queries, herds,
    /// tenants). Defaults to no skew; absent in old serialized scenarios.
    pub skew: SkewConfig,
    /// Arms the load-balance oracle with a max/mean envelope. `None`
    /// (default) leaves oracle 8 disarmed.
    pub load_bound: Option<LoadBound>,
    /// Arms virtual-node re-weighting as the hotspot mitigation. `None`
    /// (default) leaves the cluster's ring membership untouched.
    pub mitigation: Option<ReweightConfig>,
    /// Arms continuous aggregate queries and the sketch-accuracy oracle
    /// (oracle 9). `None` (default) leaves both disarmed and the run
    /// byte-identical to the historical behavior.
    pub aggregates: Option<AggregatesConfig>,
    /// Arms a network partition and the post-heal convergence oracle
    /// (oracle 10). `None` (default) leaves both disarmed and the run
    /// byte-identical to the historical behavior.
    pub partition: Option<PartitionConfig>,
    /// Disables timeout-driven stabilization and post-heal re-probing —
    /// the known-bug injection switch the convergence oracle's negative
    /// control flips: a healed ring that never re-probes its parked
    /// suspects stays forked forever.
    pub disable_stabilization: bool,
}

impl Serialize for ScenarioConfig {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("num_nodes".into(), self.num_nodes.to_value()),
            ("num_streams".into(), self.num_streams.to_value()),
            ("num_events".into(), self.num_events.to_value()),
            ("strategy".into(), self.strategy.to_value()),
            ("workload".into(), self.workload.to_value()),
            ("faults".into(), self.faults.to_value()),
            ("class_faults".into(), self.class_faults.to_value()),
            ("disable_churn_repair".into(), self.disable_churn_repair.to_value()),
            ("skew".into(), self.skew.to_value()),
            ("load_bound".into(), self.load_bound.to_value()),
            ("mitigation".into(), self.mitigation.to_value()),
            ("aggregates".into(), self.aggregates.to_value()),
            ("partition".into(), self.partition.to_value()),
            ("disable_stabilization".into(), self.disable_stabilization.to_value()),
        ])
    }
}

impl Deserialize for ScenarioConfig {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        // The three skew knobs default when absent (pre-pack reproducers);
        // everything else is required, exactly like the derived impl.
        let req = |name: &str| serde::field(v, name, "ScenarioConfig");
        Ok(ScenarioConfig {
            num_nodes: Deserialize::from_value(req("num_nodes")?)?,
            num_streams: Deserialize::from_value(req("num_streams")?)?,
            num_events: Deserialize::from_value(req("num_events")?)?,
            strategy: Deserialize::from_value(req("strategy")?)?,
            workload: Deserialize::from_value(req("workload")?)?,
            faults: Deserialize::from_value(req("faults")?)?,
            class_faults: Deserialize::from_value(req("class_faults")?)?,
            disable_churn_repair: Deserialize::from_value(req("disable_churn_repair")?)?,
            skew: match v.get("skew") {
                Some(x) => Deserialize::from_value(x)?,
                None => SkewConfig::default(),
            },
            load_bound: match v.get("load_bound") {
                Some(x) => Deserialize::from_value(x)?,
                None => None,
            },
            mitigation: match v.get("mitigation") {
                Some(x) => Deserialize::from_value(x)?,
                None => None,
            },
            aggregates: match v.get("aggregates") {
                Some(x) => Deserialize::from_value(x)?,
                None => None,
            },
            partition: match v.get("partition") {
                Some(x) => Deserialize::from_value(x)?,
                None => None,
            },
            disable_stabilization: match v.get("disable_stabilization") {
                Some(x) => Deserialize::from_value(x)?,
                None => false,
            },
        })
    }
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        // Shrunk for test speed: short windows warm quickly and small
        // batches ship MBRs often, so every oracle sees real state churn.
        let workload = WorkloadConfig {
            window_len: 16,
            num_coeffs: 2,
            mbr_batch: 4,
            mbr_max_width: None,
            bspan_ms: 5_000,
            nper_ms: 1_000,
            ..WorkloadConfig::default()
        };
        ScenarioConfig {
            num_nodes: 10,
            num_streams: 8,
            num_events: 40,
            strategy: RangeStrategy::Sequential,
            workload,
            faults: FaultSpec::NONE,
            class_faults: FaultPlan::NONE,
            disable_churn_repair: false,
            skew: SkewConfig::default(),
            load_bound: None,
            mitigation: None,
            aggregates: None,
            partition: None,
            disable_stabilization: false,
        }
    }
}

impl ScenarioConfig {
    /// A variant with lossy/duplicating/delaying NPER delivery.
    pub fn with_faults(mut self, faults: FaultSpec) -> Self {
        self.faults = faults;
        self
    }

    /// A variant arming the cluster's reliability layer with per-class
    /// faults on every overlay send.
    pub fn with_class_faults(mut self, plan: FaultPlan) -> Self {
        self.class_faults = plan;
        self
    }

    /// A variant using bidirectional range multicast.
    pub fn bidirectional(mut self) -> Self {
        self.strategy = RangeStrategy::Bidirectional;
        self
    }

    /// A variant with cross-stream correlation `rho` (flash-crowd skew).
    pub fn correlated(mut self, rho: f64) -> Self {
        self.skew.rho = rho;
        self
    }

    /// A variant drawing query anchors from a Zipf(`s`) popularity law.
    pub fn zipfian(mut self, s: f64) -> Self {
        self.skew.zipf_exponent = Some(s);
        self
    }

    /// A variant turning query storms into thundering herds of `count`
    /// clients registering against one anchor in a single tick.
    pub fn with_herd(mut self, count: u32) -> Self {
        self.skew.herd_count = count;
        self
    }

    /// A variant enforcing per-tenant query admission quotas.
    pub fn with_tenants(mut self, tenants: TenantPolicy) -> Self {
        self.skew.tenants = Some(tenants);
        self
    }

    /// A variant arming the load-balance oracle with `bound`.
    pub fn with_load_bound(mut self, bound: LoadBound) -> Self {
        self.load_bound = Some(bound);
        self
    }

    /// A variant arming virtual-node re-weighting as the mitigation.
    pub fn with_mitigation(mut self, cfg: ReweightConfig) -> Self {
        self.mitigation = Some(cfg);
        self
    }

    /// A variant posting continuous aggregate queries and arming the
    /// sketch-accuracy oracle.
    pub fn with_aggregates(mut self, cfg: AggregatesConfig) -> Self {
        self.aggregates = Some(cfg);
        self
    }

    /// A variant injecting a network partition and arming the post-heal
    /// convergence oracle.
    pub fn with_partition(mut self, cfg: PartitionConfig) -> Self {
        self.partition = Some(cfg);
        self
    }

    /// A variant with stabilization disabled — the convergence oracle's
    /// negative-control bug injection.
    pub fn without_stabilization(mut self) -> Self {
        self.disable_stabilization = true;
        self
    }
}

/// One scheduled event. All structural choices are baked in at generation
/// time; indices are taken modulo the live population at execution time so
/// a schedule stays valid whatever the interleaved churn did.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// Advance `steps` stream ticks, feeding every homed stream one value
    /// per tick.
    Feed {
        /// Number of ticks.
        steps: u32,
    },
    /// One stream produces `count` values in a single tick (a burst).
    Burst {
        /// Stream index (modulo the stream count).
        stream: u32,
        /// Values produced.
        count: u32,
    },
    /// Post one similarity query shaped after a stream's current window.
    PostQuery {
        /// Posting client (modulo the live node count).
        client: u32,
        /// Stream whose shape anchors the target (modulo stream count).
        anchor: u32,
        /// Query radius in thousandths.
        radius_milli: u32,
        /// Query life span in ms.
        lifespan_ms: u64,
    },
    /// A burst of queries arriving in one tick.
    QueryStorm {
        /// Number of queries.
        count: u32,
    },
    /// A thundering herd: `count` distinct clients register near-identical
    /// queries against the *same* anchor stream in one tick — the
    /// registration-burst hotspot the load-balance oracle watches for.
    Herd {
        /// First client id; the herd uses `client + i` for `i < count`.
        client: u32,
        /// The single anchor stream everyone rushes (modulo stream count).
        anchor: u32,
        /// Herd size.
        count: u32,
    },
    /// Abrupt failure of one data center.
    CrashNode {
        /// Victim (modulo the live node count); skipped at ≤ 2 nodes.
        victim: u32,
    },
    /// A fresh data center joins the ring.
    JoinNode {
        /// Uniquifier for the new node's label.
        salt: u32,
    },
    /// Re-home every orphaned stream to one live data center.
    RehomeOrphans {
        /// Destination (modulo the live node count).
        to: u32,
    },
    /// Post one continuous aggregate query (only meaningful when
    /// [`ScenarioConfig::aggregates`] is armed; a no-op otherwise). The
    /// sketch shape comes from the config, so the event itself stays
    /// small and schedule generation consumes no extra RNG draws.
    PostAggregate {
        /// Posting client (modulo the live node count).
        client: u32,
        /// The aggregate function to compute.
        kind: AggregateKind,
    },
    /// The network splits into the configured islands (only meaningful
    /// when [`ScenarioConfig::partition`] is armed; a no-op otherwise).
    /// The island assignment lives in the config, so the event itself
    /// stays small and consumes no generation-RNG draws.
    PartitionSplit,
    /// The partition heals. With stabilization enabled the ring re-knits
    /// immediately; the negative control leaves the fork for the
    /// convergence oracle to catch.
    PartitionHeal,
    /// One NPER round on every node (with injected message faults),
    /// followed by the global query purge.
    Notify,
}

/// A seed plus its fully materialized schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Seed for the execution RNG (stream values, fault draws).
    pub seed: u64,
    /// Static configuration.
    pub config: ScenarioConfig,
    /// The event schedule.
    pub events: Vec<FaultEvent>,
}

impl Scenario {
    /// Generates the schedule for `seed`. The generation RNG is decoupled
    /// from the execution RNG so truncating the schedule never shifts the
    /// values the remaining events consume.
    pub fn generate(seed: u64, config: ScenarioConfig) -> Scenario {
        config.workload.validate();
        config.faults.validate();
        config.class_faults.validate();
        config.skew.validate();
        if let Some(b) = &config.load_bound {
            b.validate();
        }
        if let Some(m) = &config.mitigation {
            m.validate();
        }
        if let Some(a) = &config.aggregates {
            a.validate();
        }
        if let Some(p) = &config.partition {
            p.validate(config.num_nodes);
        }
        assert!(config.num_nodes >= 3, "scenarios need at least three data centers");
        assert!(config.num_streams >= 1, "scenarios need at least one stream");
        let mut rng =
            StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0xFA17));
        // Popularity-skewed anchor choice. With no Zipf bias the draw is
        // the exact historical `gen_range` call, keeping old schedules
        // byte-identical.
        let zipf = config.skew.zipf_exponent.map(|s| ZipfSampler::new(config.num_streams, s));

        let w = &config.workload;
        let mut events = Vec::with_capacity(config.num_events + 3);
        // Warm-up: fill every window and ship the first MBR batches, then
        // settle one NPER round so queries posted early see a live index.
        events.push(FaultEvent::Feed { steps: (w.window_len + 2 * w.mbr_batch) as u32 });
        events.push(FaultEvent::Notify);

        // Generation-side live-node estimate; the harness re-checks at
        // execution time, this only keeps schedules from over-crashing.
        let mut live = config.num_nodes;
        while events.len() < config.num_events + 2 {
            let roll: u32 = rng.gen_range(0..100);
            let ev = match roll {
                0..=24 => FaultEvent::Feed { steps: rng.gen_range(1..=6) },
                25..=39 => FaultEvent::Notify,
                40..=52 => FaultEvent::PostQuery {
                    client: rng.gen(),
                    anchor: match &zipf {
                        Some(z) => z.sample(&mut rng) as u32,
                        None => rng.gen_range(0..config.num_streams as u32),
                    },
                    radius_milli: rng.gen_range(30..250),
                    lifespan_ms: rng.gen_range(4_000..30_000),
                },
                // The branch choice is config-driven (not an extra roll),
                // so herd-free configs keep the historical draw sequence.
                53..=58 if config.skew.herd_count > 0 => FaultEvent::Herd {
                    client: rng.gen(),
                    anchor: match &zipf {
                        Some(z) => z.sample(&mut rng) as u32,
                        None => rng.gen_range(0..config.num_streams as u32),
                    },
                    count: config.skew.herd_count,
                },
                53..=58 => FaultEvent::QueryStorm { count: rng.gen_range(3..9) },
                59..=68 => FaultEvent::Burst {
                    stream: rng.gen_range(0..config.num_streams as u32),
                    count: rng.gen_range(8..40),
                },
                69..=78 if live > 3 => {
                    live -= 1;
                    FaultEvent::CrashNode { victim: rng.gen() }
                }
                79..=86 => {
                    live += 1;
                    FaultEvent::JoinNode { salt: rng.gen() }
                }
                87..=92 => FaultEvent::RehomeOrphans { to: rng.gen() },
                _ => FaultEvent::Notify,
            };
            events.push(ev);
        }
        // Settle: a final NPER round exercises the purge oracle once more.
        events.push(FaultEvent::Notify);
        // Aggregate queries go in at fixed post-warm-up positions and
        // consume no generation-RNG draws, so arming them never shifts the
        // rest of the schedule — aggregate and plain variants of one seed
        // replay the identical churn/fault history.
        if let Some(agg) = &config.aggregates {
            for (i, &kind) in agg.kinds.iter().enumerate() {
                let client = (i as u32).wrapping_mul(5).wrapping_add(1);
                events.insert(2 + i, FaultEvent::PostAggregate { client, kind });
            }
        }
        // Partition injection rewrites the generated schedule in place and
        // consumes no generation-RNG draws, like the aggregate block above.
        // Churn rolls degrade to plain NPER rounds first: a partition and
        // membership churn both rewrite the ring, and isolating the cut
        // keeps oracle 10's brute-force expectation exact (it also keeps
        // the island indices valid — creation order never shifts).
        if let Some(p) = &config.partition {
            for ev in &mut events {
                if matches!(
                    ev,
                    FaultEvent::CrashNode { .. }
                        | FaultEvent::JoinNode { .. }
                        | FaultEvent::RehomeOrphans { .. }
                ) {
                    *ev = FaultEvent::Notify;
                }
            }
            // Positions are measured in NPER rounds: the warm-up Notify is
            // round 1, the split lands `split_after_rounds` rounds later,
            // the heal `heal_after_rounds` after that. (The heal insertion
            // counts only Notify events, so the split marker never shifts
            // it.) Rounds missing from the rolled schedule are appended.
            insert_after_round(&mut events, 1 + p.split_after_rounds, FaultEvent::PartitionSplit);
            insert_after_round(
                &mut events,
                1 + p.split_after_rounds + p.heal_after_rounds,
                FaultEvent::PartitionHeal,
            );
            // Guarantee the convergence oracle its full audit window.
            let heal_at = events
                .iter()
                .position(|e| *e == FaultEvent::PartitionHeal)
                .expect("heal marker was just inserted");
            let settled =
                events[heal_at..].iter().filter(|e| matches!(e, FaultEvent::Notify)).count();
            for _ in settled..POST_HEAL_SETTLE_ROUNDS {
                events.push(FaultEvent::Notify);
            }
        }
        Scenario { seed, config, events }
    }
}

/// Inserts `marker` immediately after the `round`-th [`FaultEvent::Notify`]
/// of the schedule, appending the missing rounds first when the rolled
/// schedule has fewer than `round` of them.
fn insert_after_round(events: &mut Vec<FaultEvent>, round: u32, marker: FaultEvent) {
    let mut seen = 0u32;
    for i in 0..events.len() {
        if matches!(events[i], FaultEvent::Notify) {
            seen += 1;
            if seen == round {
                events.insert(i + 1, marker);
                return;
            }
        }
    }
    while seen < round {
        events.push(FaultEvent::Notify);
        seen += 1;
    }
    events.push(marker);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Scenario::generate(7, ScenarioConfig::default());
        let b = Scenario::generate(7, ScenarioConfig::default());
        assert_eq!(a, b);
        let c = Scenario::generate(8, ScenarioConfig::default());
        assert_ne!(a.events, c.events);
    }

    #[test]
    fn schedule_has_expected_length_and_warmup() {
        let s = Scenario::generate(3, ScenarioConfig::default());
        assert_eq!(s.events.len(), s.config.num_events + 3);
        assert!(matches!(s.events[0], FaultEvent::Feed { .. }));
        assert_eq!(s.events[1], FaultEvent::Notify);
        assert_eq!(*s.events.last().unwrap(), FaultEvent::Notify);
    }

    #[test]
    fn schedules_never_overcrash() {
        for seed in 0..50 {
            let s = Scenario::generate(seed, ScenarioConfig::default());
            let mut live = s.config.num_nodes as i64;
            for ev in &s.events {
                match ev {
                    FaultEvent::CrashNode { .. } => live -= 1,
                    FaultEvent::JoinNode { .. } => live += 1,
                    _ => {}
                }
                assert!(live >= 3, "seed {seed} crashes below three nodes");
            }
        }
    }

    #[test]
    fn scenario_roundtrips_through_json() {
        let s = Scenario::generate(11, ScenarioConfig::default().bidirectional());
        let json = serde_json::to_string(&s).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    #[should_panic(expected = "at least three")]
    fn tiny_cluster_config_panics() {
        let cfg = ScenarioConfig { num_nodes: 2, ..ScenarioConfig::default() };
        let _ = Scenario::generate(1, cfg);
    }

    #[test]
    fn default_skew_leaves_generation_byte_identical() {
        // The skew knobs are strictly opt-in: an all-default SkewConfig
        // must not shift a single generation-RNG draw.
        let plain = Scenario::generate(9, ScenarioConfig::default());
        let skewed = Scenario::generate(
            9,
            ScenarioConfig { skew: SkewConfig::default(), ..ScenarioConfig::default() },
        );
        assert_eq!(plain, skewed);
    }

    #[test]
    fn herd_config_replaces_query_storms() {
        let mut saw_herd = false;
        for seed in 0..20 {
            let s = Scenario::generate(seed, ScenarioConfig::default().with_herd(12));
            for ev in &s.events {
                assert!(
                    !matches!(ev, FaultEvent::QueryStorm { .. }),
                    "herd configs must not schedule plain storms"
                );
                if let FaultEvent::Herd { count, .. } = ev {
                    assert_eq!(*count, 12);
                    saw_herd = true;
                }
            }
        }
        assert!(saw_herd, "twenty seeds without a single herd roll");
    }

    #[test]
    fn zipf_anchors_concentrate_on_low_ranks() {
        let mut low = 0u32;
        let mut total = 0u32;
        for seed in 0..40 {
            let s = Scenario::generate(seed, ScenarioConfig::default().zipfian(2.0));
            for ev in &s.events {
                if let FaultEvent::PostQuery { anchor, .. } = ev {
                    total += 1;
                    if *anchor < 2 {
                        low += 1;
                    }
                }
            }
        }
        assert!(total > 50, "expected a healthy query population, got {total}");
        // Zipf(2.0) over 8 ranks puts ~85% of mass on ranks 0-1.
        assert!(low * 10 > total * 6, "only {low}/{total} anchors hit the hot ranks");
    }

    #[test]
    fn legacy_scenario_json_without_skew_fields_parses() {
        let s = Scenario::generate(4, ScenarioConfig::default());
        let mut v = serde_json::to_value(&s).unwrap();
        // Strip the three skew fields, simulating a reproducer serialized
        // before the adversarial pack existed.
        if let serde::Value::Object(entries) = &mut v {
            for (k, cv) in entries.iter_mut() {
                if k == "config" {
                    if let serde::Value::Object(cfg) = cv {
                        cfg.retain(|(f, _)| {
                            f.as_str() != "skew"
                                && f.as_str() != "load_bound"
                                && f.as_str() != "mitigation"
                        });
                    }
                }
            }
        }
        let back: Scenario = serde_json::from_value(&v).unwrap();
        assert_eq!(s, back, "defaults must reconstruct the pre-skew config");
    }

    #[test]
    #[should_panic(expected = "correlation must lie in")]
    fn out_of_range_rho_is_rejected() {
        let _ = Scenario::generate(1, ScenarioConfig::default().correlated(1.5));
    }

    fn two_islands() -> PartitionConfig {
        PartitionConfig {
            islands: vec![vec![7, 8, 9]],
            split_after_rounds: 2,
            heal_after_rounds: 3,
        }
    }

    #[test]
    fn partition_markers_land_at_their_rounds_with_a_settle_window() {
        for seed in 0..20 {
            let s =
                Scenario::generate(seed, ScenarioConfig::default().with_partition(two_islands()));
            let split = s.events.iter().position(|e| *e == FaultEvent::PartitionSplit).unwrap();
            let heal = s.events.iter().position(|e| *e == FaultEvent::PartitionHeal).unwrap();
            assert!(split < heal, "seed {seed}: split must precede heal");
            let rounds_before = |end: usize| {
                s.events[..end].iter().filter(|e| matches!(e, FaultEvent::Notify)).count()
            };
            assert_eq!(rounds_before(split), 3, "seed {seed}: split after warm-up + 2 rounds");
            assert_eq!(rounds_before(heal), 6, "seed {seed}: heal 3 rounds after the split");
            let settle =
                s.events[heal..].iter().filter(|e| matches!(e, FaultEvent::Notify)).count();
            assert!(
                settle >= POST_HEAL_SETTLE_ROUNDS,
                "seed {seed}: only {settle} rounds follow the heal"
            );
        }
    }

    #[test]
    fn partition_schedules_degrade_churn_to_plain_rounds() {
        for seed in 0..20 {
            let s =
                Scenario::generate(seed, ScenarioConfig::default().with_partition(two_islands()));
            for ev in &s.events {
                assert!(
                    !matches!(
                        ev,
                        FaultEvent::CrashNode { .. }
                            | FaultEvent::JoinNode { .. }
                            | FaultEvent::RehomeOrphans { .. }
                    ),
                    "seed {seed}: partition schedules must not churn membership"
                );
            }
        }
    }

    #[test]
    fn disarmed_partition_leaves_generation_byte_identical() {
        // Like the skew knobs: an absent partition config must not shift
        // a single generation-RNG draw or schedule position.
        let plain = Scenario::generate(13, ScenarioConfig::default());
        let disarmed = Scenario::generate(
            13,
            ScenarioConfig {
                partition: None,
                disable_stabilization: false,
                ..ScenarioConfig::default()
            },
        );
        assert_eq!(plain, disarmed);
    }

    #[test]
    fn partition_scenarios_roundtrip_through_json() {
        let s = Scenario::generate(
            14,
            ScenarioConfig::default().with_partition(two_islands()).without_stabilization(),
        );
        let json = serde_json::to_string(&s).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn legacy_scenario_json_without_partition_fields_parses() {
        let s = Scenario::generate(15, ScenarioConfig::default());
        let mut v = serde_json::to_value(&s).unwrap();
        if let serde::Value::Object(entries) = &mut v {
            for (k, cv) in entries.iter_mut() {
                if k == "config" {
                    if let serde::Value::Object(cfg) = cv {
                        cfg.retain(|(f, _)| {
                            f.as_str() != "partition" && f.as_str() != "disable_stabilization"
                        });
                    }
                }
            }
        }
        let back: Scenario = serde_json::from_value(&v).unwrap();
        assert_eq!(s, back, "defaults must reconstruct the pre-partition config");
    }

    #[test]
    #[should_panic(expected = "listed in two islands")]
    fn overlapping_islands_are_rejected() {
        let cfg = ScenarioConfig::default().with_partition(PartitionConfig {
            islands: vec![vec![1, 2], vec![2, 3]],
            split_after_rounds: 1,
            heal_after_rounds: 1,
        });
        let _ = Scenario::generate(1, cfg);
    }

    #[test]
    #[should_panic(expected = "side 0 must keep at least one")]
    fn fully_severed_rings_are_rejected() {
        let cfg = ScenarioConfig { num_nodes: 4, ..ScenarioConfig::default() }.with_partition(
            PartitionConfig {
                islands: vec![vec![0, 1], vec![2, 3]],
                split_after_rounds: 1,
                heal_after_rounds: 1,
            },
        );
        let _ = Scenario::generate(1, cfg);
    }
}
